// Distributed graph analytics end-to-end: generate a power-law graph,
// partition it with a vertex cut, and run all four paper benchmarks (bfs,
// cc, sssp, pagerank) on a simulated 4-host cluster with the LCI runtime,
// validating each against the sequential reference.
//
// Build & run:   ./build/examples/graph_analytics
#include <cstdio>

#include "apps/reference.hpp"
#include "bench_support/runner.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace lcr;

  graph::GenOptions opt;
  opt.seed = 42;
  opt.make_weights = true;
  graph::Csr g = graph::rmat(10, 16.0, opt);
  std::printf("%s\n",
              graph::format_stats("rmat10", graph::compute_stats(g)).c_str());

  bench::RunSpec spec;
  spec.engine = "abelian";
  spec.backend = comm::BackendKind::Lci;
  spec.policy = graph::PartitionPolicy::CartesianVertexCut;
  spec.hosts = 4;
  spec.threads = 2;
  spec.source = bench::choose_source(g);
  spec.pagerank_iters = 10;

  // --- BFS ---
  spec.app = "bfs";
  bench::RunResult r = bench::run_app(g, spec);
  const bool bfs_ok = r.labels_u32 == apps::reference_bfs(g, spec.source);
  std::printf("bfs:      %.3fs  rounds=%llu  %s\n", r.total_s,
              static_cast<unsigned long long>(r.rounds),
              bfs_ok ? "VALIDATED" : "MISMATCH");

  // --- SSSP ---
  spec.app = "sssp";
  r = bench::run_app(g, spec);
  const bool sssp_ok = r.labels_u32 == apps::reference_sssp(g, spec.source);
  std::printf("sssp:     %.3fs  rounds=%llu  %s\n", r.total_s,
              static_cast<unsigned long long>(r.rounds),
              sssp_ok ? "VALIDATED" : "MISMATCH");

  // --- CC (undirected closure) ---
  graph::Csr sym = graph::symmetrize(g);
  spec.app = "cc";
  r = bench::run_app(sym, spec);
  const bool cc_ok = r.labels_u32 == apps::reference_cc(sym);
  std::printf("cc:       %.3fs  rounds=%llu  %s\n", r.total_s,
              static_cast<unsigned long long>(r.rounds),
              cc_ok ? "VALIDATED" : "MISMATCH");

  // --- PageRank ---
  spec.app = "pagerank";
  r = bench::run_app(g, spec);
  const auto expected = apps::reference_pagerank(g, 0.85, 10, 0.0);
  double max_err = 0.0;
  for (std::size_t v = 0; v < expected.size(); ++v)
    max_err = std::max(max_err, std::abs(r.labels_f64[v] - expected[v]));
  std::printf("pagerank: %.3fs  rounds=%llu  max|err|=%.2e %s\n", r.total_s,
              static_cast<unsigned long long>(r.rounds), max_err,
              max_err < 1e-9 ? "VALIDATED" : "MISMATCH");

  return (bfs_ok && sssp_ok && cc_ok && max_err < 1e-9) ? 0 : 1;
}
