// Side-by-side comparison of the three communication layers on one
// workload, printing the end-to-end time, non-overlapped communication time
// and peak communication-buffer memory per backend - a miniature of the
// paper's core result.
//
// Build & run:   ./build/examples/backend_comparison
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lcr;

  graph::Csr g = graph::kron(11, 16.0);
  std::printf("workload: pagerank on kron11 (%u nodes, %llu edges), "
              "4 hosts, vertex-cut partition\n\n",
              g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  bench::Table table({"backend", "total", "comm", "compute", "peak-mem/host",
                      "messages"});

  for (auto kind : {comm::BackendKind::Lci, comm::BackendKind::MpiProbe,
                    comm::BackendKind::MpiRma}) {
    bench::RunSpec spec;
    spec.app = "pagerank";
    spec.backend = kind;
    spec.hosts = 4;
    spec.threads = 2;
    spec.pagerank_iters = 10;
    spec.fabric = fabric::omnipath_knl_config();
    const bench::RunResult r = bench::run_app(g, spec);
    const std::uint64_t peak =
        *std::max_element(r.peak_mem.begin(), r.peak_mem.end());
    table.add_row({comm::to_string(kind), bench::fmt_seconds(r.total_s),
                   bench::fmt_seconds(r.comm_s),
                   bench::fmt_seconds(r.compute_s), bench::fmt_bytes(peak),
                   std::to_string(r.messages)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape (paper Figs 3, 5): lci fastest or tied with mpi-rma;"
      "\nmpi-rma allocates the most memory (worst-case windows); mpi-probe"
      "\nslowest on communication.\n");
  return 0;
}
