// Writing your own vertex program against the public engine API.
//
// Implements two custom analytics not shipped in lcr_apps:
//   1. "widest path" (maximize the minimum edge weight along a path) - a
//      monotone push program with a custom relax, via the generic
//      run_push driver and a label inversion trick.
//   2. "degree histogram via reduce" - uses sync_reduce directly to count
//      each vertex's global in-degree across a vertex-cut partition,
//      showing the raw reduce/broadcast API.
//
// Build & run:   ./build/examples/custom_vertex_program
#include <cstdio>
#include <limits>
#include <vector>

#include "abelian/cluster.hpp"
#include "abelian/engine.hpp"
#include "apps/push_engine.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

// --- Custom program 1: widest path ---------------------------------------
// Label = 255 - bottleneck capacity, so that "smaller is better" fits the
// monotone-min machinery of run_push unchanged.
struct WidestPathTraits {
  using Label = std::uint32_t;
  static constexpr Label kInf = std::numeric_limits<Label>::max();
  static constexpr const char* kName = "widest";

  static Label init_label(graph::VertexId gid, graph::VertexId source) {
    return gid == source ? 0 : kInf;  // source has infinite capacity
  }
  static bool init_active(graph::VertexId gid, graph::VertexId source) {
    return gid == source;
  }
  static Label relax(Label src_label, graph::Weight w) {
    if (src_label == kInf) return kInf;
    // Path bottleneck = min(capacity so far, edge capacity); inverted.
    const Label edge_cost = 255 - std::min<graph::Weight>(w, 255);
    return std::max(src_label, edge_cost);
  }
};

int main() {
  graph::GenOptions opt;
  opt.make_weights = true;
  opt.max_weight = 255;
  graph::Csr g = graph::rmat(9, 8.0, opt);
  constexpr int kHosts = 4;
  auto parts = graph::partition(g, kHosts,
                                graph::PartitionPolicy::CartesianVertexCut);
  abelian::Cluster cluster(kHosts, fabric::omnipath_knl_config());

  // ---- run the custom widest-path program on every host ----
  std::vector<std::uint32_t> widest(g.num_nodes(), 0);
  cluster.run([&](int h) {
    const auto& part = parts[static_cast<std::size_t>(h)];
    abelian::EngineConfig cfg;  // defaults: LCI backend
    abelian::HostEngine eng(cluster, part, cfg);
    auto labels = apps::run_push<WidestPathTraits>(eng, /*source=*/0);
    for (graph::VertexId lid = 0; lid < part.num_masters; ++lid)
      widest[part.local_to_global(lid)] =
          labels[lid] == WidestPathTraits::kInf ? 0 : 255 - labels[lid];
    cluster.oob_barrier();
  });
  std::size_t reachable = 0;
  for (graph::VertexId v = 1; v < g.num_nodes(); ++v)
    if (widest[v] > 0) ++reachable;
  std::printf("widest-path: %zu vertices reachable from 0\n", reachable);

  // ---- custom program 2: global in-degree via raw sync_reduce ----
  std::vector<std::uint32_t> indeg(g.num_nodes(), 0);
  cluster.run([&](int h) {
    const auto& part = parts[static_cast<std::size_t>(h)];
    abelian::EngineConfig cfg;
    abelian::HostEngine eng(cluster, part, cfg);

    // Count local in-edges per proxy, then Add-reduce mirrors to masters.
    std::vector<std::uint32_t> counts(part.num_local, 0);
    rt::ConcurrentBitset dirty(part.num_local);
    for (graph::VertexId src = 0; src < part.num_local; ++src)
      part.out_edges.for_each_edge(src,
                                   [&](graph::VertexId dst, graph::Weight) {
                                     ++counts[dst];
                                     if (!part.is_master(dst)) dirty.set(dst);
                                   });
    eng.sync_reduce<std::uint32_t>(
        counts.data(), dirty,
        [](std::uint32_t& current, std::uint32_t incoming) {
          // Add-combine; plain because the engine serializes combines on the
          // same destination shard even when two peers' messages apply
          // concurrently (DESIGN.md §12).
          apps::plain_add(current, incoming);
          return true;
        },
        [](graph::VertexId) {});
    for (graph::VertexId lid = 0; lid < part.num_masters; ++lid)
      indeg[part.local_to_global(lid)] = counts[lid];
    cluster.oob_barrier();
  });

  // Validate against a sequential count.
  std::vector<std::uint32_t> expected(g.num_nodes(), 0);
  for (graph::VertexId u = 0; u < g.num_nodes(); ++u)
    g.for_each_edge(u, [&](graph::VertexId v, graph::Weight) {
      ++expected[v];
    });
  const bool ok = indeg == expected;
  std::printf("distributed in-degree count: %s\n",
              ok ? "VALIDATED" : "MISMATCH");
  return ok ? 0 : 1;
}
