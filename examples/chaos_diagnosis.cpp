// Chaos diagnosis: the DESIGN.md §14 observability artifacts, end to end.
//
// Runs a seeded lossy-fabric BFS (20% drop, one injected straggler host)
// with causal-trace sampling on, then writes the full diagnosis bundle to
// --out-dir (default ./diagnosis):
//
//   trace.json   Chrome trace with per-hop flow arrows (Perfetto-loadable)
//   flows.json   stitched per-message causal timelines
//   health.json  per-phase cluster timeline + classifier findings
//   flight_*.json  anomaly flight-recorder dump (ring breadcrumbs)
//
// Exit status is the diagnosis contract CI gates on: nonzero when the
// result labels are wrong, when no sampled message's stitched flow shows
// the post -> drop -> retransmit -> deliver -> apply recovery path, or
// when the health report fails to flag the injected loss episode
// (retransmit_storm) and straggler host.
//
// Build & run:   ./build/examples/chaos_diagnosis --out-dir diagnosis
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/reference.hpp"
#include "bench_support/runner.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace lcr;

  std::string out_dir = "diagnosis";
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--out-dir") out_dir = argv[i + 1];
  std::filesystem::create_directories(out_dir);

  telemetry::set_enabled(true);
  telemetry::set_trace_sampling(/*every=*/1, /*seed=*/0x5EED);
  telemetry::flight_set_dir(out_dir);

  // Same seeded scenario the acceptance test pins (test_observability):
  // every backend sees the fault roll eat payload-bearing chunks, and the
  // 8ms round tax on host 2 dominates the loss-induced retransmit RTOs.
  graph::Csr g = graph::rmat(9, 8.0);
  bench::RunSpec spec;
  spec.app = "bfs";
  spec.backend = comm::BackendKind::Lci;
  spec.hosts = 3;
  spec.policy = graph::PartitionPolicy::CartesianVertexCut;
  spec.source = bench::choose_source(g);
  spec.fabric = fabric::test_config();
  spec.fabric.fault.seed = 0xC0FFEE;
  spec.fabric.fault.drop_rate = 0.20;
  spec.fabric.fault.slow_host = 2;
  spec.fabric.fault.slow_round_ns = 8000000;
  spec.health_out = out_dir + "/health.json";

  const auto result = bench::run_app(g, spec);

  int rc = 0;
  if (result.labels_u32 != apps::reference_bfs(g, spec.source)) {
    std::fprintf(stderr, "FAIL: BFS labels diverge from the reference\n");
    rc = 1;
  }

  // Stitched causal flows: at least one sampled message must show the
  // whole lost-and-recovered life across hosts.
  const auto flows = telemetry::stitch_flows();
  std::size_t full_path = 0;
  for (const auto& flow : flows)
    if (telemetry::flow_has_path(
            flow, {"post", "drop", "retransmit", "deliver", "apply"}))
      ++full_path;
  if (full_path == 0) {
    std::fprintf(stderr,
                 "FAIL: no flow shows post->drop->retransmit->deliver->apply "
                 "(%zu flows stitched)\n",
                 flows.size());
    rc = 1;
  }

  // Health report: the classifiers must name the injected loss episode and
  // the slow host.
  bool storm = false;
  bool straggler = false;
  for (const auto& f : result.health.findings) {
    if (f.kind == "retransmit_storm") storm = true;
    if (f.kind == "straggler" && f.host == 2) straggler = true;
  }
  if (!storm) {
    std::fprintf(stderr,
                 "FAIL: health report missed the injected loss episode\n");
    rc = 1;
  }
  if (!straggler) {
    std::fprintf(stderr, "FAIL: health report missed straggler host 2\n");
    rc = 1;
  }

  telemetry::write_chrome_trace(out_dir + "/trace.json");
  telemetry::write_flow_trace(out_dir + "/flows.json");
  // Snapshot the breadcrumb ring into the bundle. Kill/revive-triggered
  // dumps (failure_pending, rollback) are pinned by test_observability;
  // this loss-only run dumps the watchdog/protocol breadcrumbs it left.
  telemetry::flight_dump("post_run");

  std::printf(
      "diagnosis bundle in %s/: %zu flows (%zu full recovery paths), "
      "%zu health findings, retransmits=%llu\n",
      out_dir.c_str(), flows.size(), full_path, result.health.findings.size(),
      static_cast<unsigned long long>(result.rel_retransmits));
  for (const auto& f : result.health.findings)
    std::printf("  finding: %s host=%d phases=[%u,%u] severity=%.2f %s\n",
                f.kind.c_str(), f.host, f.phase_lo, f.phase_hi, f.severity,
                f.detail.c_str());
  return rc;
}
