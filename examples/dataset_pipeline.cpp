// Dataset pipeline: generate -> save -> load -> partition -> analyze.
//
// Mirrors the workflow of running the library on a real dataset (the paper
// uses clueweb12 from disk): write a graph in both supported formats, load
// it back, and run BFS + k-core over the LCI runtime, validating against
// the in-memory original.
//
// Build & run:   ./build/examples/dataset_pipeline
#include <cstdio>

#include "apps/kcore.hpp"
#include "apps/reference.hpp"
#include "bench_support/runner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace lcr;

  // 1. Generate a web-crawl-like graph and persist it.
  graph::GenOptions opt;
  opt.seed = 7;
  graph::Csr original = graph::web(11, 16.0, opt);
  const std::string text_path = "/tmp/lcr_example_graph.txt";
  const std::string bin_path = "/tmp/lcr_example_graph.lcrb";
  graph::save_edge_list(original, text_path);
  graph::save_binary(original, bin_path);
  std::printf("saved %s\n",
              graph::format_stats("web11", graph::compute_stats(original))
                  .c_str());

  // 2. Load from both formats; they must agree.
  graph::Csr from_text =
      graph::load_edge_list(text_path, original.num_nodes());
  graph::Csr from_bin = graph::load_binary(bin_path);
  const bool io_ok = from_text.offsets() == original.offsets() &&
                     from_bin.targets() == original.targets();
  std::printf("round-trip text+binary: %s\n", io_ok ? "OK" : "MISMATCH");

  // 3. Analyze the loaded graph on a 4-host simulated cluster.
  bench::RunSpec spec;
  spec.app = "bfs";
  spec.hosts = 4;
  spec.source = bench::choose_source(from_bin);
  const auto bfs = bench::run_app(from_bin, spec);
  const bool bfs_ok =
      bfs.labels_u32 == apps::reference_bfs(original, spec.source);
  std::printf("bfs on loaded graph: %.3fs %s\n", bfs.total_s,
              bfs_ok ? "VALIDATED" : "MISMATCH");

  graph::Csr sym = graph::symmetrize(from_bin);
  spec.app = "kcore";
  spec.kcore_k = 8;
  const auto kcore = bench::run_app(sym, spec);
  std::size_t in_core = 0;
  for (auto v : kcore.labels_u32) in_core += v;
  const bool kcore_ok =
      kcore.labels_u32 == apps::reference_kcore(sym, spec.kcore_k);
  std::printf("8-core of web11: %zu vertices %s\n", in_core,
              kcore_ok ? "VALIDATED" : "MISMATCH");

  return (io_ok && bfs_ok && kcore_ok) ? 0 : 1;
}
