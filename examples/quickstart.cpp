// Quickstart: the LCI Queue interface in ~60 lines.
//
// Two simulated hosts exchange messages over the fabric using SEND-ENQ /
// RECV-DEQ with a progress server per host (paper Algorithms 1-3). Shows
// the eager path, the rendezvous path, and the single-flag completion model.
//
// Build & run:   ./build/examples/quickstart
// Tracing:       ./build/examples/quickstart --trace-out trace.json
//                (or LCR_TRACE_OUT=trace.json) writes a Chrome trace-event
//                file with the exchange spans plus a telemetry snapshot --
//                open it in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fabric/fabric.hpp"
#include "lci/queue.hpp"
#include "lci/server.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace lcr;

  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--trace-out") trace_path = argv[i + 1];
  if (trace_path.empty())
    if (const char* s = std::getenv("LCR_TRACE_OUT")) trace_path = s;
  if (!trace_path.empty()) telemetry::set_enabled(true);

  // A 2-host fabric with an Omni-Path-like personality.
  fabric::Fabric fab(2, fabric::omnipath_knl_config());
  lci::Queue q0(fab, 0, {});
  lci::Queue q1(fab, 1, {});

  // Each host runs a communication server (Algorithm 3) on its own thread.
  lci::ProgressServer server0(q0);
  lci::ProgressServer server1(q1);
  server0.start();
  server1.start();

  std::thread host1([&] {
    telemetry::Span span("example", "host1_exchange", /*pid=*/1);
    // RECV-DEQ: first-packet policy - no tag matching, no ordering.
    lci::Request req;
    q1.recv_blocking(req);
    std::printf("[host1] got %zu bytes from host %u (tag %u): \"%s\"\n",
                req.size, req.peer, req.tag,
                std::string(static_cast<const char*>(req.buffer), req.size)
                    .c_str());
    q1.release(req);  // recycle the packet into the receive window

    // A large message takes the rendezvous path (RTS/RTR + RDMA put).
    lci::Request big_req;
    q1.recv_blocking(big_req);
    std::printf("[host1] rendezvous message: %zu bytes, first byte %d\n",
                big_req.size, static_cast<int>(
                                  static_cast<const char*>(
                                      big_req.buffer)[0]));
    q1.release(big_req);

    // Reply.
    const std::string reply = "pong";
    q1.send_blocking(reply.data(), reply.size(), 0, 99);
  });

  {
    telemetry::Span span("example", "host0_exchange", /*pid=*/0);
    // SEND-ENQ: non-blocking initiation; false means "resources exhausted,
    // retry" - never a fatal error. send_blocking wraps the retry loop.
    const std::string hello = "ping over LCI";
    q0.send_blocking(hello.data(), hello.size(), 1, 42);

    // Anything above the eager limit automatically uses rendezvous.
    std::vector<char> big(3 * q0.eager_limit(), 7);
    q0.send_blocking(big.data(), big.size(), 1, 43);

    lci::Request reply;
    q0.recv_blocking(reply);
    std::printf("[host0] reply: \"%s\"\n",
                std::string(static_cast<const char*>(reply.buffer),
                            reply.size)
                    .c_str());
    q0.release(reply);
  }

  host1.join();
  server0.stop();
  server1.stop();
  if (!trace_path.empty()) {
    // Embed the fabric's metrics snapshot (wire counters, queue histograms,
    // progress-profiler tallies) alongside the spans.
    if (telemetry::write_chrome_trace(trace_path, fab.telemetry().snapshot()))
      std::printf("trace written to %s\n", trace_path.c_str());
  }
  std::printf("quickstart done\n");
  return 0;
}
