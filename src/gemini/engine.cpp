#include "gemini/engine.hpp"

#include <cassert>
#include <cmath>
#include <mutex>

#include "comm/lci_backend.hpp"
#include "mpilite/comm.hpp"
#include "mpilite/personality.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::gemini {

const char* to_string(CommKind k) {
  switch (k) {
    case CommKind::Lci: return "lci";
    case CommKind::MpiProbeMulti: return "mpi-probe";
  }
  return "?";
}

comm::BufferLease GeminiComm::acquire(int /*dst*/, std::size_t max_bytes) {
  comm::BufferLease lease;
  lease.heap.resize(max_bytes);
  lease.data = lease.heap.data();
  lease.capacity = max_bytes;
  return lease;
}

bool GeminiComm::commit(int dst, comm::BufferLease& lease,
                        std::size_t bytes) {
  // Shrink-only; regrowing would value-initialize over serialized records.
  if (lease.heap.size() != bytes) lease.heap.resize(bytes);
  if (!try_send(dst, lease.heap)) return false;
  lease = comm::BufferLease{};
  return true;
}

void GeminiComm::abandon(comm::BufferLease& lease) {
  lease = comm::BufferLease{};
}

namespace {

constexpr int kTag = 11;

/// LCI shim: wraps the Abelian LCI backend, which is already thread-safe
/// send_enq/recv_deq over the Queue.
class GeminiLciComm final : public GeminiComm {
 public:
  GeminiLciComm(fabric::Fabric& fabric, int rank, rt::MemTracker* tracker,
                std::size_t lanes, std::size_t servers) {
    comm::BackendOptions opt;
    opt.tracker = tracker;
    opt.lci_lanes = lanes;
    opt.lci_servers = servers;
    backend_ = std::make_unique<comm::LciBackend>(fabric, rank, opt);
  }
  const char* name() const override { return "lci"; }
  bool try_send(int dst, std::vector<std::byte>& payload) override {
    return backend_->try_send(dst, payload);
  }
  comm::BufferLease acquire(int dst, std::size_t max_bytes) override {
    return backend_->acquire(dst, max_bytes);
  }
  bool commit(int dst, comm::BufferLease& lease, std::size_t bytes) override {
    return backend_->commit(dst, lease, bytes);
  }
  void abandon(comm::BufferLease& lease) override {
    backend_->abandon(lease);
  }
  std::size_t preferred_chunk() const override {
    return backend_->chunk_bytes();
  }
  bool try_recv(comm::InMessage& out) override {
    if (backend_->try_recv(out)) return true;
    // Nothing pending: lend this thread to the server for one progress
    // step. On the paper's clusters the LCI server owns a core and this
    // never helps; on this simulation's single-core hosts the polling
    // thread would otherwise just spin waiting for the server to be
    // scheduled. Queue::progress is thread-safe here.
    backend_->progress();
    return backend_->try_recv(out);
  }
  void progress() override { backend_->progress(); }

  // Direct-write (DESIGN.md §15): delegate to the wrapped backend's
  // registered-region put path. LciBackend is thread-safe throughout.
  bool supports_direct_write() const override {
    return backend_->supports_direct_write();
  }
  comm::DirectRegion register_direct_region(int src, std::byte* base,
                                            std::size_t bytes,
                                            std::uint32_t gen) override {
    return backend_->register_direct_region(src, base, bytes, gen);
  }
  void release_direct_region(int src,
                             const comm::DirectRegion& region) override {
    backend_->release_direct_region(src, region);
  }
  comm::DirectPutStatus direct_put(int dst, const comm::DirectRegion& r,
                                   const void* payload, std::size_t bytes,
                                   std::uint32_t phase_id,
                                   std::uint32_t pattern_key) override {
    return backend_->direct_put(dst, r, payload, bytes, phase_id,
                                pattern_key);
  }
  bool poll_direct(comm::DirectSignal& out) override {
    return backend_->poll_direct(out);
  }

 private:
  std::unique_ptr<comm::LciBackend> backend_;
};

/// MPI shim under MPI_THREAD_MULTIPLE: every compute thread isends its own
/// chunks and probes with wildcards; probe+recv pairs are serialized by a
/// lock (the race real codes avoid by funnelling receives into one thread).
class GeminiMpiComm final : public GeminiComm {
 public:
  GeminiMpiComm(fabric::Fabric& fabric, int rank,
                const std::string& personality, rt::MemTracker* tracker,
                std::size_t num_threads)
      : comm_(fabric, rank, personality_by_name(personality),
              mpi::ThreadLevel::Multiple,
              mpi::CommConfig{fabric.config().default_rx_buffers, nullptr,
                              /*declared_concurrency=*/num_threads + 1}),
        tracker_(tracker) {}

  const char* name() const override { return "mpi-probe"; }

  bool try_send(int dst, std::vector<std::byte>& payload) override {
    mpi::Request req = comm_.isend(payload.data(), payload.size(), dst, kTag);
    if (!comm_.test(req)) {
      // Rendezvous in flight: pin the buffer until completion.
      std::lock_guard<rt::Spinlock> guard(out_lock_);
      outstanding_.push_back(Outstanding{std::move(payload), std::move(req)});
    } else {
      if (tracker_ != nullptr) tracker_->on_free(payload.size());
      payload.clear();
    }
    reap();
    return true;  // MPI accepts everything (no back pressure)
  }

  bool try_recv(comm::InMessage& out) override {
    std::unique_lock<rt::Spinlock> guard(recv_lock_, std::try_to_lock);
    if (!guard.owns_lock()) return false;
    mpi::Status st;
    if (!comm_.iprobe(mpi::kAnySource, kTag, &st)) return false;
    // shared_ptr staging: the buffer is freed on every path, including when
    // the InMessage is destroyed without release() being called.
    auto buf = std::make_shared<std::vector<std::byte>>(st.size);
    comm_.recv(buf->data(), st.size, st.source, st.tag);
    guard.unlock();
    if (tracker_ != nullptr) tracker_->on_alloc(st.size);
    out.src = st.source;
    out.data = buf->data();
    out.size = buf->size();
    rt::MemTracker* tracker = tracker_;
    out.release = [buf, tracker] {
      if (tracker != nullptr) tracker->on_free(buf->size());
    };
    return true;
  }

  void progress() override {
    comm_.progress();
    reap();
  }

 private:
  struct Outstanding {
    std::vector<std::byte> payload;
    mpi::Request req;
  };

  static mpi::Personality personality_by_name(const std::string& name) {
    if (name == "intelmpi") return mpi::intelmpi_like();
    if (name == "mvapich") return mpi::mvapich_like();
    if (name == "openmpi") return mpi::openmpi_like();
    return mpi::default_personality();
  }

  void reap() {
    std::unique_lock<rt::Spinlock> guard(out_lock_, std::try_to_lock);
    if (!guard.owns_lock()) return;
    while (!outstanding_.empty() &&
           outstanding_.front().req->complete.load(
               std::memory_order_acquire)) {
      if (tracker_ != nullptr)
        tracker_->on_free(outstanding_.front().payload.size());
      outstanding_.pop_front();
    }
  }

  mpi::Comm comm_;
  rt::MemTracker* tracker_;
  rt::Spinlock recv_lock_;
  rt::Spinlock out_lock_;
  std::deque<Outstanding> outstanding_;
};

}  // namespace

GeminiHost::GeminiHost(abelian::Cluster& cluster, const graph::DistGraph& g,
                       GeminiConfig cfg)
    : cluster_(cluster), g_(g), cfg_(cfg) {
  assert(g.policy == graph::PartitionPolicy::BlockedEdgeCut &&
         "Gemini requires a blocked edge-cut partition");
  switch (cfg_.comm) {
    case CommKind::Lci:
      // Per-compute-thread injection lanes by default: every compute thread
      // injects on the gemini produce path (send_with_backpressure).
      comm_ = std::make_unique<GeminiLciComm>(
          cluster.fabric(), g.host_id, cfg_.tracker,
          cfg_.lci_lanes != 0 ? cfg_.lci_lanes : cfg_.compute_threads,
          cfg_.lci_servers);
      break;
    case CommKind::MpiProbeMulti:
      comm_ = std::make_unique<GeminiMpiComm>(
          cluster.fabric(), g.host_id, cfg_.mpi_personality, cfg_.tracker,
          cfg_.compute_threads);
      break;
  }
  stats_.graph_mem_bytes.store(g.mem_bytes(), std::memory_order_relaxed);
  stats_.graph_mem_bytes_uncompressed.store(g.mem_bytes_uncompressed(),
                                            std::memory_order_relaxed);
  stats_.graph_mirrors.store(g.num_local - g.num_masters,
                             std::memory_order_relaxed);
  stat_reg_ = cluster.fabric().telemetry().register_probes({
      {"gemini.messages", &stats_.messages},
      {"gemini.bytes", &stats_.bytes},
      {"gemini.direct_sends", &stats_.direct_sends},
      {"graph.mem_bytes", &stats_.graph_mem_bytes},
      {"graph.mem_bytes_uncompressed", &stats_.graph_mem_bytes_uncompressed},
      {"graph.mirrors", &stats_.graph_mirrors},
  });
  team_ = std::make_unique<rt::ThreadTeam>(cfg_.compute_threads);
  chunks_sent_.reserve(static_cast<std::size_t>(g.num_hosts));
  for (int h = 0; h < g.num_hosts; ++h)
    chunks_sent_.emplace_back(new std::atomic<std::uint32_t>(0));

  // Direct-write setup (DESIGN.md §15): one registered receive region per
  // source peer, sized for the worst dense frame a peer can send (one record
  // per master we own, value at most sizeof(double)). Published through the
  // cluster directory so peers can resolve it; a peer that starts its first
  // round before we registered simply misses the lookup and streams - the
  // two paths are interchangeable per (peer, round).
  cfg_.direct_write = comm::resolve_direct_write(cfg_.direct_write);
  direct_sent_.assign(static_cast<std::size_t>(g.num_hosts), 0);
  direct_skip_.assign(static_cast<std::size_t>(g.num_hosts), 0);
  if (cfg_.direct_write != comm::DirectWriteMode::Off &&
      comm_->supports_direct_write()) {
    direct_homes_.resize(static_cast<std::size_t>(g.num_hosts));
    const std::size_t cap =
        comm::kChunkHeaderBytes +
        g_.num_masters * (sizeof(graph::VertexId) + sizeof(double));
    for (int src = 0; src < g.num_hosts; ++src) {
      if (src == g.host_id) continue;
      DirectHome& home = direct_homes_[static_cast<std::size_t>(src)];
      home.buf = std::make_unique<std::byte[]>(cap);
      const std::uint32_t gen = cluster.direct_directory().next_generation();
      home.region =
          comm_->register_direct_region(src, home.buf.get(), cap, gen);
      if (!home.region.valid()) {
        home.buf.reset();
        continue;
      }
      if (cfg_.tracker != nullptr) cfg_.tracker->on_alloc(cap);
      cluster.direct_directory().publish(g.host_id, src, kGeminiPatternKey,
                                         home.region);
    }
    direct_enabled_ = true;
  }
  server_thread_ = rt::AuxThread([this] {
    rt::Backoff backoff;
    while (!stop_.load(std::memory_order_acquire)) {
      comm_->progress();
      backoff.pause();
    }
  });
}

GeminiHost::~GeminiHost() {
  stop_.store(true, std::memory_order_release);
  if (server_thread_.joinable()) server_thread_.join();
  // Retract published regions before tearing down the comm shim: once the
  // directory entry is gone peers fall back to streaming, and a straggler
  // put built against the old registration dies on the generation check of
  // whatever occupies the region's token next (generations never repeat).
  for (std::size_t src = 0; src < direct_homes_.size(); ++src) {
    DirectHome& home = direct_homes_[src];
    if (!home.region.valid()) continue;
    cluster_.direct_directory().retract(g_.host_id, static_cast<int>(src),
                                        kGeminiPatternKey,
                                        home.region.generation);
    comm_->release_direct_region(static_cast<int>(src), home.region);
    if (cfg_.tracker != nullptr) cfg_.tracker->on_free(home.region.capacity);
  }
  // Defensive: round completion implies the apply queue drained (chunks are
  // applied before note_chunk), so this only fires after an aborted round.
  while (auto m = apply_queue_.try_pop()) {
    if ((*m)->release) (*m)->release();
    delete *m;
  }
  // Next-round chunks stashed when a round aborted still hold live comm
  // resources; release them before the comm shim goes away.
  for (auto& m : stash_)
    if (m.release) m.release();
  stash_.clear();
  // The comm shim must quiesce before the region buffers are freed: a
  // retransmitted put already materialized in the endpoint's CQ still
  // references region memory until the shim's final pump, and comm_ is
  // declared before direct_homes_ so default member order would free the
  // buffers first.
  comm_.reset();
  direct_homes_.clear();
}

void GeminiHost::RoundState::arm(std::uint32_t id, int num_hosts) {
  std::lock_guard<rt::Spinlock> guard(lock);
  round_id = id;
  total.assign(static_cast<std::size_t>(num_hosts), -1);
  got.assign(static_cast<std::size_t>(num_hosts), 0);
  direct_expected.assign(static_cast<std::size_t>(num_hosts), 0);
  direct_got.assign(static_cast<std::size_t>(num_hosts), 0);
  finished.assign(static_cast<std::size_t>(num_hosts), 0);
  peers_remaining = static_cast<std::size_t>(num_hosts - 1);
  complete.store(peers_remaining == 0, std::memory_order_release);
}

void GeminiHost::RoundState::note_chunk(int src,
                                        const comm::ChunkHeader& header) {
  std::lock_guard<rt::Spinlock> guard(lock);
  const auto s = static_cast<std::size_t>(src);
  if (header.num_chunks != 0) {  // the tail carries the expected totals
    total[s] = static_cast<std::int32_t>(header.num_chunks);
    if (header.payload_bytes == 0)  // direct-put ledger rides in base_pos
      direct_expected[s] = static_cast<std::int32_t>(header.base_pos);
  }
  ++got[s];
  check_peer(s);
}

void GeminiHost::RoundState::note_direct(int src) {
  std::lock_guard<rt::Spinlock> guard(lock);
  const auto s = static_cast<std::size_t>(src);
  ++direct_got[s];
  check_peer(s);
}

void GeminiHost::RoundState::check_peer(std::size_t s) {
  if (finished[s] != 0 || total[s] < 0 || got[s] != total[s] ||
      direct_got[s] < direct_expected[s])
    return;
  finished[s] = 1;
  assert(peers_remaining > 0);
  if (--peers_remaining == 0)
    complete.store(true, std::memory_order_release);
}

void GeminiHost::send_with_backpressure(int dst,
                                        std::vector<std::byte>& payload,
                                        const std::function<bool()>& drain) {
  if (cfg_.tracker != nullptr) cfg_.tracker->on_alloc(payload.size());
  rt::Backoff backoff;
  while (!comm_->try_send(dst, payload)) {
    if (aborting()) {
      // Abandon the send; the phase is unwinding for recovery.
      if (cfg_.tracker != nullptr) cfg_.tracker->on_free(payload.size());
      return;
    }
    // Relieve back pressure by consuming incoming records; back off only
    // when the drain made no progress.
    if (drain())
      backoff.reset();
    else
      backoff.pause();
  }
}

std::vector<double> GeminiHost::run_pagerank(double damping,
                                             std::uint32_t max_iterations,
                                             double tolerance,
                                             rt::RecoveryCtx* rec) {
  const graph::VertexId mlo =
      g_.master_bounds[static_cast<std::size_t>(g_.host_id)];
  const std::size_t n_masters = g_.num_masters;
  const double n_global = static_cast<double>(g_.global_nodes);

  const std::size_t n_local = g_.num_local;
  std::vector<double> rank(n_masters, 1.0 / n_global);
  std::vector<double> accum(n_masters, 0.0);

  // Per-destination partial sums: pagerank is topology-driven (dense every
  // round), so contributions are always combined locally and each
  // destination is signalled once per round (Gemini's aggregated slot).
  std::vector<double> partial(n_local, 0.0);
  rt::ConcurrentBitset touched(n_local);

  std::function<void(graph::VertexId, const double&)> apply =
      [&](graph::VertexId gid, const double& value) {
        apps::atomic_add(accum[gid - mlo], value);
      };

  std::uint32_t iter = 0;
  std::uint32_t resumed_at = std::numeric_limits<std::uint32_t>::max();

  // Recovery: per-iteration transients (accum, partial, touched) are rebuilt
  // every round, so the checkpoint is just the master rank vector.
  if (rec != nullptr && rec->resume && rec->resume_round >= 0) {
    std::vector<std::vector<std::uint8_t>> arrays;
    if (rec->store->load(rec->host, rec->resume_round, arrays) &&
        arrays.size() == 1 && arrays[0].size() == n_masters * sizeof(double)) {
      if (n_masters > 0)
        std::memcpy(rank.data(), arrays[0].data(), arrays[0].size());
      iter = static_cast<std::uint32_t>(rec->resume_round);
      resumed_at = iter;
    }
  }

  for (; iter < max_iterations; ++iter) {
    cluster_.round_tick(g_.host_id, static_cast<std::int64_t>(iter));
    if (rec != nullptr && rec->interval > 0 &&
        iter % static_cast<std::uint32_t>(rec->interval) == 0 &&
        iter != resumed_at) {
      rec->store->save(rec->host, static_cast<std::int64_t>(iter),
                       {{rank.data(), n_masters * sizeof(double)}});
    }
    rt::Timer combine_timer;
    {
      telemetry::Span compute_span("gemini", "compute",
                                   static_cast<std::uint32_t>(g_.host_id));
      team_->parallel_chunks(
          0, n_masters, [&](std::size_t lo, std::size_t hi, std::size_t) {
            for (std::size_t i = lo; i < hi; ++i) {
              const std::uint32_t outdeg = g_.global_out_degree[i];
              if (outdeg == 0) continue;
              const double contrib = rank[i] / static_cast<double>(outdeg);
              g_.out_edges.for_each_edge(
                  static_cast<graph::VertexId>(i),
                  [&](graph::VertexId dst_lid, graph::Weight) {
                    apps::atomic_add(partial[dst_lid], contrib);
                    touched.set(dst_lid);
                  });
            }
          });
    }
    stats_.compute_s += combine_timer.elapsed_s();

    // Pagerank is dense every round: the whole per-destination frame goes
    // out as one direct put when the peer's region resolves (DESIGN.md §15).
    direct_put_dense<double>(touched,
                             [&](std::size_t dst) { return partial[dst]; });
    std::atomic<std::size_t> cursor{0};
    stream_round<double>(
        [&](std::size_t, const std::function<void(graph::VertexId,
                                                  const double&)>& emit) {
          constexpr std::size_t kGrain = 512;
          for (;;) {
            const std::size_t lo =
                cursor.fetch_add(kGrain, std::memory_order_relaxed);
            if (lo >= n_local) break;
            const std::size_t hi = std::min(n_local, lo + kGrain);
            touched.for_each_in_range(lo, hi, [&](std::size_t dst) {
              const graph::VertexId gid =
                  g_.local_to_global(static_cast<graph::VertexId>(dst));
              const auto owner = static_cast<std::size_t>(g_.owner_of(gid));
              if (direct_skip_[owner] != 0) return;  // already put
              emit(gid, partial[dst]);
            });
          }
        },
        apply);
    touched.for_each([&](std::size_t dst) { partial[dst] = 0.0; });
    touched.clear_all();

    double local_delta = 0.0;
    for (std::size_t i = 0; i < n_masters; ++i) {
      const double next = (1.0 - damping) / n_global + damping * accum[i];
      local_delta += std::abs(next - rank[i]);
      rank[i] = next;
      accum[i] = 0.0;
    }
    const double global_delta = cluster_.oob_allreduce_sum(local_delta);
    if (tolerance > 0.0 && global_delta < tolerance) break;
  }
  return rank;
}

}  // namespace lcr::gemini
