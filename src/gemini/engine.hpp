// Gemini-style distributed graph engine (paper Sections II, IV-B1).
//
// Gemini partitions with a blocked edge-cut ("a simple blocked edge-cut
// partitioning policy that tries to balance the assigned edges across
// hosts") and, unlike Abelian's proxy synchronization, streams *signal
// records* (destination global id, value) from many threads directly to the
// destination's owner, which applies the *slot* (combine) function.
//
// Communication style is what Section IV-B1 highlights: "Gemini ... relies
// on communication from many threads with MPI_THREAD_MULTIPLE ... In
// particular, MPI_PROBE is used frequently inside a receiving thread to
// receive incoming messages (traversing nodes from different hosts and with
// different sizes)". The two comm shims reproduce exactly that contrast:
//
//   * GeminiMpiComm  - mpilite under THREAD_MULTIPLE: every compute thread
//     isends its own buffers (paying the global lock) and probes/receives
//     with wildcards (paying matching-queue traversal).
//   * GeminiLciComm  - "simple modifications ... such that each
//     sending/receiving thread uses LCI Queue instead of MPI": send_enq /
//     recv_deq from every thread, one LCI server thread for progress.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "abelian/cluster.hpp"
#include "apps/atomic_ops.hpp"
#include "comm/backend.hpp"
#include "comm/message.hpp"
#include "graph/dist_graph.hpp"
#include "runtime/aux_thread.hpp"
#include "runtime/bitset.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/cpu_relax.hpp"
#include "runtime/mem_tracker.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/spinlock.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace lcr::gemini {

enum class CommKind : std::uint8_t { Lci, MpiProbeMulti };

const char* to_string(CommKind k);

struct GeminiConfig {
  CommKind comm = CommKind::Lci;
  std::size_t compute_threads = 2;
  std::string mpi_personality = "default";
  rt::MemTracker* tracker = nullptr;
  /// Record-batch bytes per (thread, destination) before a chunk is sent.
  std::size_t batch_bytes = 8 * 1024;
  /// Dual-mode switch: when the frontier covers more than this fraction of
  /// the local masters, push rounds run in *dense* mode - updates to the
  /// same destination are pre-combined locally and sent once per
  /// destination, instead of one signal per edge (Gemini's sparse/dense
  /// signal-slot adaptivity). Set > 1.0 to force sparse, 0.0 to force dense.
  double dense_threshold = 0.05;
  /// LCI injection lanes for the produce path; 0 = one per compute thread.
  std::size_t lci_lanes = 0;
  /// Dedicated LCI progress servers (in addition to the host's own server
  /// thread, which always assists); 0 = none.
  std::size_t lci_servers = 0;
  /// One-sided direct-write sync (DESIGN.md §15): dense rounds put their
  /// pre-combined per-destination frame straight into the destination's
  /// registered region instead of streaming record batches. Auto/Forced
  /// behave identically here (dense rounds are explicitly known, no
  /// predictor needed); Off disables. Honors env LCR_DIRECT_WRITE.
  comm::DirectWriteMode direct_write = comm::DirectWriteMode::Auto;
};

struct GeminiStats {
  std::uint64_t rounds = 0;
  std::uint64_t sparse_rounds = 0;
  std::uint64_t dense_rounds = 0;
  /// Time until local signal production finished (compute, overlapped).
  double compute_s = 0.0;
  /// Remaining round time waiting on/processing remote streams.
  double comm_s = 0.0;
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  /// Dense frames that went out as one-sided direct puts (DESIGN.md §15).
  std::atomic<std::uint64_t> direct_sends{0};
  /// Gauges set once at construction: this host's lid-metadata footprint in
  /// the compressed representation vs. the seed vector/hash-map model, and
  /// the mirror count it amortizes over (DESIGN.md §17).
  std::atomic<std::uint64_t> graph_mem_bytes{0};
  std::atomic<std::uint64_t> graph_mem_bytes_uncompressed{0};
  std::atomic<std::uint64_t> graph_mirrors{0};
};

/// Directory pattern key for gemini direct-write regions: gemini rounds all
/// share one exchange pattern (signal records keyed by destination gid), so
/// a single well-known key per (target, source) pair suffices. Distinct from
/// abelian's per-phase-spec keys, which share the same cluster directory.
inline constexpr std::uint32_t kGeminiPatternKey = 0x47454D31u;  // "GEM1"

/// Internal comm shim; see file comment.
class GeminiComm {
 public:
  virtual ~GeminiComm() = default;
  virtual const char* name() const = 0;
  /// Thread-safe; false = resources exhausted, retry after receiving.
  virtual bool try_send(int dst, std::vector<std::byte>& payload) = 0;
  /// Buffer-lease path (see comm::Backend): producers serialize signal
  /// records straight into leased wire memory. Defaults funnel a heap
  /// buffer through try_send; the LCI shim leases pool packets (zero-copy).
  virtual comm::BufferLease acquire(int dst, std::size_t max_bytes);
  virtual bool commit(int dst, comm::BufferLease& lease, std::size_t bytes);
  virtual void abandon(comm::BufferLease& lease);
  /// Preferred chunk size for leased sends (0 = no preference); batches are
  /// capped to this so LCI chunks stay within one eager packet.
  virtual std::size_t preferred_chunk() const { return 0; }
  /// Thread-safe receive of any arrived chunk.
  virtual bool try_recv(comm::InMessage& out) = 0;
  /// Dedicated progress loop body (LCI server); MPI progresses inside calls.
  virtual void progress() = 0;

  /// Direct-write hooks (DESIGN.md §15). Defaults are inert: the THREAD_
  /// MULTIPLE MPI shim has no one-sided primitive (every thread owns its own
  /// sends, there is no funnel point to emulate a NIC at), so it always
  /// streams two-sided and these report unsupported. The LCI shim delegates
  /// to the wrapped backend's registered-region put path.
  virtual bool supports_direct_write() const { return false; }
  virtual comm::DirectRegion register_direct_region(int /*src*/,
                                                    std::byte* /*base*/,
                                                    std::size_t /*bytes*/,
                                                    std::uint32_t /*gen*/) {
    return comm::DirectRegion{};
  }
  virtual void release_direct_region(int /*src*/,
                                     const comm::DirectRegion& /*region*/) {}
  virtual comm::DirectPutStatus direct_put(int /*dst*/,
                                           const comm::DirectRegion& /*r*/,
                                           const void* /*payload*/,
                                           std::size_t /*bytes*/,
                                           std::uint32_t /*phase_id*/,
                                           std::uint32_t /*pattern_key*/) {
    return comm::DirectPutStatus::Unavailable;
  }
  virtual bool poll_direct(comm::DirectSignal& /*out*/) { return false; }
};

class GeminiHost {
 public:
  /// `g` must be a BlockedEdgeCut partition.
  GeminiHost(abelian::Cluster& cluster, const graph::DistGraph& g,
             GeminiConfig cfg);
  ~GeminiHost();

  GeminiHost(const GeminiHost&) = delete;
  GeminiHost& operator=(const GeminiHost&) = delete;

  GeminiStats& stats() noexcept { return stats_; }
  const graph::DistGraph& graph() const noexcept { return g_; }
  const char* comm_name() const { return comm_->name(); }

  /// Data-driven push apps (bfs / cc / sssp) using the Abelian app traits.
  template <typename Traits>
  std::vector<typename Traits::Label> run_push(graph::VertexId source,
                                               rt::RecoveryCtx* rec = nullptr);

  /// Topology-driven pagerank over master vertices.
  std::vector<double> run_pagerank(double damping = 0.85,
                                   std::uint32_t max_iterations = 100,
                                   double tolerance = 1e-7,
                                   rt::RecoveryCtx* rec = nullptr);

 private:
  template <typename T>
  void stream_round(
      const std::function<void(std::size_t tid,
                               const std::function<void(graph::VertexId,
                                                        const T&)>& emit)>&
          produce,
      const std::function<void(graph::VertexId, const T&)>& apply);

  template <typename T>
  bool drain_one_typed(
      const std::function<void(graph::VertexId, const T&)>& apply);

  /// Decodes one received chunk's signal records, applies them, and settles
  /// the chunk (release + note_chunk). Takes ownership of `m`.
  template <typename T>
  void apply_chunk_typed(
      comm::InMessage* m,
      const std::function<void(graph::VertexId, const T&)>& apply);

  /// `drain` returns whether it made progress, so blocked producers can
  /// back off (rt::Backoff) instead of burning a core on a busy loop.
  void send_with_backpressure(int dst, std::vector<std::byte>& payload,
                              const std::function<bool()>& drain);

  /// Dense-round direct-write fan-out (DESIGN.md §15): serializes one frame
  /// per remote peer from the touched/value scratch and puts it straight
  /// into the peer's registered region. Peers whose frame was put are marked
  /// in direct_skip_ so the streaming producers don't re-send their records;
  /// direct_sent_ feeds the tail's put count. Any failure (no region
  /// published, frame oversized, put unavailable) silently leaves the peer
  /// on the two-sided path. Called from the round driver before
  /// stream_round, single-threaded.
  template <typename T>
  void direct_put_dense(const rt::ConcurrentBitset& touched,
                        const std::function<T(std::size_t)>& value_of);

  /// Whether a cluster-wide failure is pending: round waits and back-pressure
  /// retries check this and unwind (never throw - the host-main driver
  /// raises the error at its next round boundary).
  bool aborting() const noexcept {
    return cluster_.membership().failure_pending();
  }

  struct RoundState {
    std::uint32_t round_id = 0;
    rt::Spinlock lock;
    std::vector<std::int32_t> total;  // chunks expected per peer (-1 unknown)
    std::vector<std::int32_t> got;
    // Direct-put ledger (DESIGN.md §15): the peer's tail announces how many
    // direct puts it issued this round (in base_pos); a peer is complete only
    // when both the chunk count and the direct count are satisfied. Compared
    // with >= because the put usually lands before the tail announces it.
    std::vector<std::int32_t> direct_expected;
    std::vector<std::int32_t> direct_got;
    std::vector<char> finished;  // guards double-decrement of peers_remaining
    std::size_t peers_remaining = 0;
    std::atomic<bool> complete{false};
    void arm(std::uint32_t id, int num_hosts);
    void note_chunk(int src, const comm::ChunkHeader& header);
    void note_direct(int src);

   private:
    void check_peer(std::size_t s);  // lock held
  };

  abelian::Cluster& cluster_;
  const graph::DistGraph& g_;
  GeminiConfig cfg_;
  std::unique_ptr<GeminiComm> comm_;
  std::unique_ptr<rt::ThreadTeam> team_;

  rt::AuxThread server_thread_;
  std::atomic<bool> stop_{false};

  RoundState round_;
  std::uint32_t round_counter_ = 0;
  rt::Spinlock stash_lock_;
  std::deque<comm::InMessage> stash_;  // next-round chunks

  /// Parallel-drain handoff: the thread that pops a chunk off the comm shim
  /// publishes it here so any compute thread can decode/apply it, instead of
  /// serializing decode behind the receiver (DESIGN.md §12). Entries are
  /// heap-owned; the applier deletes after settling.
  rt::MpmcQueue<comm::InMessage*> apply_queue_{1024};

  // Per-destination chunk counters for the current round.
  std::vector<std::unique_ptr<std::atomic<std::uint32_t>>> chunks_sent_;

  /// Receive-side direct-write region for one source peer: engine-owned
  /// buffer registered with the comm shim and published in the cluster
  /// directory under kGeminiPatternKey.
  struct DirectHome {
    std::unique_ptr<std::byte[]> buf;
    comm::DirectRegion region;
  };
  std::vector<DirectHome> direct_homes_;    // indexed by source peer
  std::vector<std::uint32_t> direct_sent_;  // per dst: puts issued this round
  std::vector<char> direct_skip_;           // per dst: records already put
  bool direct_enabled_ = false;

  GeminiStats stats_;
  telemetry::Registration stat_reg_;  // GeminiStats probes ("gemini.*")
};

// ---------------------------------------------------------------------------
// Template implementations
// ---------------------------------------------------------------------------

template <typename T>
void GeminiHost::apply_chunk_typed(
    comm::InMessage* m,
    const std::function<void(graph::VertexId, const T&)>& apply) {
  const comm::ChunkHeader header = m->header();
  const std::byte* p = m->payload();
  constexpr std::size_t rec = sizeof(graph::VertexId) + sizeof(T);
  if (telemetry::enabled() && header.trace_id != 0) {
    char hbuf[64];
    std::snprintf(hbuf, sizeof(hbuf), "{\"src\":%d,\"bytes\":%u}", m->src,
                  header.payload_bytes);
    telemetry::hop("decode", static_cast<std::uint32_t>(g_.host_id),
                   header.trace_id, header.trace_hop, hbuf);
  }
  for (std::size_t off = 0; off + rec <= header.payload_bytes; off += rec) {
    graph::VertexId gid;
    T value;
    std::memcpy(&gid, p + off, sizeof(gid));
    std::memcpy(&value, p + off + sizeof(gid), sizeof(T));
    // Gemini applies stay atomic (atomic_min/atomic_add in the app's slot
    // function): signal records arrive keyed by arbitrary unsorted gids, so
    // destination sharding would thrash a lock per record instead of
    // amortizing it like Abelian's sorted shared lists do.
    apply(gid, value);
  }
  if (telemetry::enabled() && header.trace_id != 0)
    telemetry::hop("apply", static_cast<std::uint32_t>(g_.host_id),
                   header.trace_id, header.trace_hop);
  if (m->release) m->release();
  round_.note_chunk(m->src, header);
  delete m;
}

template <typename T>
void GeminiHost::direct_put_dense(
    const rt::ConcurrentBitset& touched,
    const std::function<T(std::size_t)>& value_of) {
  if (!direct_enabled_) return;
  const int p = g_.num_hosts;
  const int me = g_.host_id;
  constexpr std::size_t rec = sizeof(graph::VertexId) + sizeof(T);
  // One pass over the touched scratch, binning records by owner. The frame
  // is a regular chunk (Raw records after a ChunkHeader) so the receive side
  // decodes it exactly like a streamed chunk, just in place.
  std::vector<std::vector<std::byte>> frames(static_cast<std::size_t>(p));
  touched.for_each([&](std::size_t lid) {
    const graph::VertexId gid =
        g_.local_to_global(static_cast<graph::VertexId>(lid));
    const int owner = g_.owner_of(gid);
    if (owner == me) return;
    auto& f = frames[static_cast<std::size_t>(owner)];
    if (f.empty()) f.resize(comm::kChunkHeaderBytes);
    const std::size_t off = f.size();
    f.resize(off + rec);
    const T value = value_of(lid);
    std::memcpy(f.data() + off, &gid, sizeof(gid));
    std::memcpy(f.data() + off + sizeof(gid), &value, sizeof(T));
  });
  for (int dst = 0; dst < p; ++dst) {
    auto& f = frames[static_cast<std::size_t>(dst)];
    if (dst == me || f.empty()) continue;
    comm::DirectRegion region;
    if (!cluster_.direct_directory().lookup(dst, me, kGeminiPatternKey,
                                            region) ||
        f.size() > region.capacity)
      continue;  // no region published (yet) or oversized: stream instead
    comm::ChunkHeader header;
    header.phase_id = round_counter_;
    header.payload_bytes =
        static_cast<std::uint32_t>(f.size() - comm::kChunkHeaderBytes);
    header.base_pos = 0;
    header.span = 0;
    header.chunk_idx = 0;
    header.num_chunks = 0;  // data chunk: the tail carries the totals
    header.format = static_cast<std::uint8_t>(comm::WireFormat::Raw);
    header.finalize();
    std::memcpy(f.data(), &header, sizeof(header));
    bool ok = false;
    rt::Backoff backoff;
    for (;;) {
      const comm::DirectPutStatus st = comm_->direct_put(
          dst, region, f.data(), f.size(), round_counter_, kGeminiPatternKey);
      if (st == comm::DirectPutStatus::Ok) {
        ok = true;
        break;
      }
      if (st == comm::DirectPutStatus::Unavailable || aborting()) break;
      comm_->progress();  // Retry: transient resource exhaustion
      backoff.pause();
    }
    if (!ok) continue;
    direct_sent_[static_cast<std::size_t>(dst)] = 1;
    direct_skip_[static_cast<std::size_t>(dst)] = 1;
    stats_.direct_sends.fetch_add(1, std::memory_order_relaxed);
    stats_.messages.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes.fetch_add(f.size(), std::memory_order_relaxed);
  }
}

template <typename T>
bool GeminiHost::drain_one_typed(
    const std::function<void(graph::VertexId, const T&)>& apply) {
  // Prefer published work: another thread already paid the recv cost.
  if (auto queued = apply_queue_.try_pop()) {
    apply_chunk_typed<T>(*queued, apply);
    return true;
  }

  // Direct-put signals (DESIGN.md §15): the payload already sits in our
  // registered region; decode/apply in place, zero-copy. The validation
  // ladder drops anything not addressed to the live registration for the
  // current round - a stale put is not in any live ledger, so dropping it
  // cannot deadlock round completion. Rounds are separated by the OOB
  // allreduce, so a peer can never be a round ahead of us here; phase
  // mismatches only arise from retransmissions of already-counted puts.
  comm::DirectSignal sig;
  while (comm_->poll_direct(sig)) {
    if (sig.pattern_key != kGeminiPatternKey) continue;
    const auto s = static_cast<std::size_t>(sig.src);
    if (s >= direct_homes_.size()) continue;
    const DirectHome& home = direct_homes_[s];
    if (!home.region.valid() || sig.generation != home.region.generation ||
        sig.phase_id != round_.round_id ||
        sig.bytes < comm::kChunkHeaderBytes ||
        sig.bytes > home.region.capacity)
      continue;
    comm::InMessage m;
    m.src = sig.src;
    m.data = home.buf.get();
    m.size = sig.bytes;
    const comm::ChunkHeader header = m.header();
    constexpr std::size_t rec = sizeof(graph::VertexId) + sizeof(T);
    if (header.phase_id == round_.round_id &&
        comm::kChunkHeaderBytes + header.payload_bytes == sig.bytes) {
      const std::byte* p = m.payload();
      for (std::size_t off = 0; off + rec <= header.payload_bytes;
           off += rec) {
        graph::VertexId gid;
        T value;
        std::memcpy(&gid, p + off, sizeof(gid));
        std::memcpy(&value, p + off + sizeof(gid), sizeof(T));
        apply(gid, value);
      }
    }
    // Generation and round matched: this is a live put, count it even if the
    // frame failed to parse (the ledger must balance or the round hangs).
    round_.note_direct(sig.src);
    return true;
  }

  comm::InMessage msg;
  bool have = false;
  {
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    if (!stash_.empty() &&
        stash_.front().header().phase_id == round_.round_id) {
      msg = std::move(stash_.front());
      stash_.pop_front();
      have = true;
    }
  }
  if (!have) have = comm_->try_recv(msg);
  if (!have) return false;

  if (msg.header().phase_id != round_.round_id) {
    // A peer raced ahead into the next round (it can be at most one ahead).
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    stash_.push_back(std::move(msg));
    return true;
  }
  // Hand the chunk to the shared apply queue so the decode/apply work spreads
  // across every draining thread; apply inline only when the queue is full
  // (applying is the very thing that makes room).
  auto* m = new comm::InMessage(std::move(msg));
  if (!apply_queue_.try_push(m)) apply_chunk_typed<T>(m, apply);
  return true;
}

template <typename T>
void GeminiHost::stream_round(
    const std::function<void(
        std::size_t tid,
        const std::function<void(graph::VertexId, const T&)>& emit)>& produce,
    const std::function<void(graph::VertexId, const T&)>& apply) {
  const int p = g_.num_hosts;
  const int me = g_.host_id;
  round_.arm(round_counter_, p);
  for (auto& c : chunks_sent_) c->store(0, std::memory_order_relaxed);

  constexpr std::size_t rec = sizeof(graph::VertexId) + sizeof(T);
  // Cap batches at the comm's preferred chunk so leased LCI chunks fit one
  // eager packet and stay zero-copy end to end.
  const std::size_t pref = comm_->preferred_chunk();
  std::size_t batch = std::max<std::size_t>(rec, cfg_.batch_bytes);
  if (pref > comm::kChunkHeaderBytes + rec)
    batch = std::min(batch, pref - comm::kChunkHeaderBytes);

  std::atomic<std::size_t> producers_left{team_->size()};
  std::atomic<std::uint64_t> produce_end_ns{0};
  const std::uint64_t bytes_before =
      stats_.bytes.load(std::memory_order_relaxed);
  const std::uint64_t round_start_ns = rt::now_ns();

  team_->run([&](std::size_t tid) {
    // Per-destination open lease: records are serialized directly into the
    // leased send buffer (header space reserved at the front), so shipping
    // writes the header in place and commits - no intermediate copy.
    struct Open {
      comm::BufferLease lease;
      std::size_t bytes = 0;  // payload bytes written past the header
    };
    std::vector<Open> open(static_cast<std::size_t>(p));
    auto drain = [&]() -> bool { return drain_one_typed<T>(apply); };
    auto ship = [&](int dst) {
      Open& o = open[static_cast<std::size_t>(dst)];
      if (o.bytes == 0) {
        if (o.lease) comm_->abandon(o.lease);
        return;
      }
      const std::uint32_t ord = chunks_sent_[static_cast<std::size_t>(dst)]
                                    ->fetch_add(1, std::memory_order_acq_rel);
      comm::ChunkHeader header;
      header.phase_id = round_.round_id;
      header.payload_bytes = static_cast<std::uint32_t>(o.bytes);
      header.chunk_idx = 0;   // scatter is order-free
      header.num_chunks = 0;  // streaming: total only known at the tail
      header.format = static_cast<std::uint8_t>(comm::WireFormat::Raw);
      // Causal-trace sampling: gemini chunks have no shared-list position,
      // so the per-destination chunk ordinal identifies the message. Must
      // precede finalize() (the self-check covers the trace fields).
      header.trace_id = telemetry::sample_trace_id(
          static_cast<std::uint32_t>(me), round_.round_id,
          (static_cast<std::uint32_t>(dst) << 16) | (ord & 0xFFFF));
      header.finalize();
      std::memcpy(o.lease.data, &header, sizeof(header));
      const std::size_t total = comm::kChunkHeaderBytes + o.bytes;
      o.bytes = 0;
      if (telemetry::enabled() && header.trace_id != 0) {
        char hbuf[64];
        std::snprintf(hbuf, sizeof(hbuf), "{\"dst\":%d,\"bytes\":%zu}", dst,
                      total);
        telemetry::hop("encode", static_cast<std::uint32_t>(me),
                       header.trace_id, 0, hbuf);
        telemetry::hop("commit", static_cast<std::uint32_t>(me),
                       header.trace_id, 0);
      }
      stats_.messages.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes.fetch_add(total, std::memory_order_relaxed);
      if (cfg_.tracker != nullptr) cfg_.tracker->on_alloc(total);
      rt::Backoff backoff;
      while (!comm_->commit(dst, o.lease, total)) {
        if (aborting()) {
          comm_->abandon(o.lease);
          if (cfg_.tracker != nullptr) cfg_.tracker->on_free(total);
          return;
        }
        // Relieve back pressure by consuming incoming records; only back off
        // when there was nothing to drain.
        if (drain())
          backoff.reset();
        else
          backoff.pause();
      }
    };
    auto emit = [&](graph::VertexId gid, const T& value) {
      const int owner = g_.owner_of(gid);
      if (owner == me) {
        apply(gid, value);
        return;
      }
      Open& o = open[static_cast<std::size_t>(owner)];
      for (;;) {
        if (!o.lease) {
          o.lease = comm_->acquire(owner, comm::kChunkHeaderBytes + batch);
          o.bytes = 0;
        }
        const std::size_t cap =
            std::min(o.lease.capacity, comm::kChunkHeaderBytes + batch);
        if (comm::kChunkHeaderBytes + o.bytes + rec <= cap) break;
        ship(owner);  // full: ship and re-acquire
      }
      std::byte* at = o.lease.data + comm::kChunkHeaderBytes + o.bytes;
      std::memcpy(at, &gid, sizeof(gid));
      std::memcpy(at + sizeof(gid), &value, sizeof(T));
      o.bytes += rec;
    };

    produce(tid, emit);
    for (int dst = 0; dst < p; ++dst)
      if (dst != me) ship(dst);
    if (producers_left.fetch_sub(1, std::memory_order_acq_rel) == 1)
      produce_end_ns.store(rt::now_ns(), std::memory_order_release);

    // Thread 0 emits the tail chunks once every producer finished, telling
    // each peer how many chunks to expect from us this round.
    if (tid == 0) {
      rt::Backoff wait_backoff;
      while (producers_left.load(std::memory_order_acquire) != 0) {
        if (drain())
          wait_backoff.reset();
        else
          wait_backoff.pause();
      }
      for (int dst = 0; dst < p; ++dst) {
        if (dst == me) continue;
        const std::uint32_t sent =
            chunks_sent_[static_cast<std::size_t>(dst)]->load(
                std::memory_order_acquire);
        std::vector<std::byte> tail(comm::kChunkHeaderBytes);
        comm::ChunkHeader header;
        header.phase_id = round_.round_id;
        header.chunk_idx = 0;
        header.num_chunks = static_cast<std::uint16_t>(sent + 1);  // + tail
        header.payload_bytes = 0;
        // Direct-put ledger: the tail reuses base_pos to announce how many
        // direct puts this host issued to dst this round (DESIGN.md §15).
        header.base_pos = direct_sent_[static_cast<std::size_t>(dst)];
        header.format = static_cast<std::uint8_t>(comm::WireFormat::Raw);
        header.finalize();
        std::memcpy(tail.data(), &header, sizeof(header));
        stats_.messages.fetch_add(1, std::memory_order_relaxed);
        stats_.bytes.fetch_add(tail.size(), std::memory_order_relaxed);
        send_with_backpressure(dst, tail, drain);
      }
    }

    rt::Backoff backoff;
    while (!round_.complete.load(std::memory_order_acquire)) {
      // A dead peer's chunks never arrive: unwind instead of spinning.
      if (aborting()) break;
      if (drain_one_typed<T>(apply))
        backoff.reset();
      else
        backoff.pause();
    }
  });

  // Direct-round scratch is consumed (tails sent, producers done): reset so
  // a following sparse round doesn't inherit stale skip/count state.
  direct_sent_.assign(direct_sent_.size(), 0);
  direct_skip_.assign(direct_skip_.size(), 0);

  const std::uint64_t round_end_ns = rt::now_ns();
  const std::uint64_t mid = produce_end_ns.load(std::memory_order_acquire);
  stats_.compute_s += static_cast<double>(mid - round_start_ns) * 1e-9;
  stats_.comm_s += static_cast<double>(round_end_ns - mid) * 1e-9;
  if (telemetry::enabled()) {
    // Manufactured after the fact so the spans match the compute_s/comm_s
    // attribution exactly (the produce/drain boundary is the last producer's
    // finish time, unknowable to a RAII scope).
    const auto host = static_cast<std::uint32_t>(me);
    telemetry::emit_complete("gemini", "produce", host, round_start_ns,
                             mid - round_start_ns);
    telemetry::emit_complete("gemini", "drain", host, mid,
                             round_end_ns - mid);
  }
  // Health-monitor report: one (duration, bytes) sample per host per round,
  // piggybacked on the round completion just synchronized on.
  cluster_.health().note_phase(
      static_cast<std::uint32_t>(me), round_.round_id,
      round_end_ns - round_start_ns,
      stats_.bytes.load(std::memory_order_relaxed) - bytes_before);

  ++round_counter_;
  stats_.rounds++;
}

template <typename Traits>
std::vector<typename Traits::Label> GeminiHost::run_push(
    graph::VertexId source, rt::RecoveryCtx* rec) {
  using Label = typename Traits::Label;
  const graph::VertexId mlo =
      g_.master_bounds[static_cast<std::size_t>(g_.host_id)];
  const std::size_t n_masters = g_.num_masters;
  const std::size_t n_local = g_.num_local;

  std::vector<Label> labels(n_masters);
  rt::ConcurrentBitset active(n_masters);
  rt::ConcurrentBitset frontier(n_masters);

  // Dense-mode scratch: per-destination combined candidates.
  std::vector<Label> combined(n_local, Traits::kInf);
  rt::ConcurrentBitset touched(n_local);

  for (std::size_t i = 0; i < n_masters; ++i) {
    const graph::VertexId gid = mlo + static_cast<graph::VertexId>(i);
    labels[i] = Traits::init_label(gid, source);
    if (Traits::init_active(gid, source) && g_.out_edges.degree(i) > 0)
      active.set(i);
  }

  std::function<void(graph::VertexId, const Label&)> apply =
      [&](graph::VertexId gid, const Label& value) {
        const std::size_t i = gid - mlo;
        if (value < labels[i] && apps::atomic_min(labels[i], value)) {
          if (g_.out_edges.degree(i) > 0) active.set(i);
        }
      };

  std::int64_t round = 0;
  std::int64_t resumed_at = -1;

  // Recovery: reload master labels + active set from the last stable
  // checkpoint and re-enter the round loop there (DESIGN.md §13).
  if (rec != nullptr && rec->resume && rec->resume_round >= 0) {
    std::vector<std::vector<std::uint8_t>> arrays;
    if (rec->store->load(rec->host, rec->resume_round, arrays) &&
        arrays.size() == 2 &&
        arrays[0].size() == n_masters * sizeof(Label)) {
      if (n_masters > 0)
        std::memcpy(labels.data(), arrays[0].data(), arrays[0].size());
      const auto* words =
          reinterpret_cast<const std::uint64_t*>(arrays[1].data());
      for (std::size_t wi = 0; wi < active.num_words(); ++wi)
        active.set_word(wi, words[wi]);
      round = rec->resume_round;
      resumed_at = round;
    }
  }

  for (;; ++round) {
    // Round boundary: fire scheduled kills / abort on pending failure, then
    // checkpoint every K rounds (labels + active set are quiescent here).
    cluster_.round_tick(g_.host_id, round);
    if (rec != nullptr && rec->interval > 0 && round % rec->interval == 0 &&
        round != resumed_at) {
      rec->store->save(rec->host, round,
                       {{labels.data(), n_masters * sizeof(Label)},
                        {static_cast<const void*>(active.words_data()),
                         active.num_words() * sizeof(std::uint64_t)}});
    }
    frontier.clear_all();
    active.for_each([&](std::size_t i) { frontier.set(i); });
    const std::size_t frontier_size = frontier.count_range(0, n_masters);
    active.clear_all();

    const bool dense =
        static_cast<double>(frontier_size) >
        cfg_.dense_threshold * static_cast<double>(n_masters);

    if (!dense) {
      // Sparse signal mode: one record per frontier out-edge.
      stats_.sparse_rounds++;
      std::atomic<std::size_t> cursor{0};
      stream_round<Label>(
          [&](std::size_t, const std::function<void(graph::VertexId,
                                                    const Label&)>& emit) {
            constexpr std::size_t kGrain = 256;
            for (;;) {
              const std::size_t lo =
                  cursor.fetch_add(kGrain, std::memory_order_relaxed);
              if (lo >= n_masters) break;
              const std::size_t hi = std::min(n_masters, lo + kGrain);
              frontier.for_each_in_range(lo, hi, [&](std::size_t i) {
                const Label src_label = labels[i];
                g_.out_edges.for_each_edge(
                    static_cast<graph::VertexId>(i),
                    [&](graph::VertexId dst_lid, graph::Weight w) {
                      const Label cand = Traits::relax(src_label, w);
                      if (cand == Traits::kInf) return;
                      emit(g_.local_to_global(dst_lid), cand);
                    });
              });
            }
          },
          apply);
    } else {
      // Dense mode: pre-combine all candidates per destination locally,
      // then signal each destination once (Gemini's aggregated slot path).
      stats_.dense_rounds++;
      rt::Timer combine_timer;
      {
        telemetry::Span compute_span("gemini", "compute",
                                     static_cast<std::uint32_t>(g_.host_id));
        team_->parallel_chunks(
            0, n_masters, [&](std::size_t lo, std::size_t hi, std::size_t) {
              frontier.for_each_in_range(lo, hi, [&](std::size_t i) {
                const Label src_label = labels[i];
                g_.out_edges.for_each_edge(
                    static_cast<graph::VertexId>(i),
                    [&](graph::VertexId dst_lid, graph::Weight w) {
                      const Label cand = Traits::relax(src_label, w);
                      if (cand == Traits::kInf) return;
                      if (cand < combined[dst_lid] &&
                          apps::atomic_min(combined[dst_lid], cand))
                        touched.set(dst_lid);
                    });
              });
            });
      }
      stats_.compute_s += combine_timer.elapsed_s();
      // Direct-write fan-out (DESIGN.md §15): ship each peer's combined
      // frame as one one-sided put; peers it reached are skipped by the
      // streaming producers below (direct_skip_), the rest stream as usual.
      direct_put_dense<Label>(
          touched, [&](std::size_t dst) { return combined[dst]; });
      std::atomic<std::size_t> cursor{0};
      stream_round<Label>(
          [&](std::size_t, const std::function<void(graph::VertexId,
                                                    const Label&)>& emit) {
            constexpr std::size_t kGrain = 512;
            for (;;) {
              const std::size_t lo =
                  cursor.fetch_add(kGrain, std::memory_order_relaxed);
              if (lo >= n_local) break;
              const std::size_t hi = std::min(n_local, lo + kGrain);
              touched.for_each_in_range(lo, hi, [&](std::size_t dst) {
                const graph::VertexId gid =
                    g_.local_to_global(static_cast<graph::VertexId>(dst));
                const auto owner = static_cast<std::size_t>(g_.owner_of(gid));
                if (direct_skip_[owner] != 0) return;  // already put
                emit(gid, combined[dst]);
              });
            }
          },
          apply);
      // Reset only the touched scratch entries.
      touched.for_each([&](std::size_t dst) { combined[dst] = Traits::kInf; });
      touched.clear_all();
    }

    const std::uint64_t global_active = cluster_.oob_allreduce_sum(
        static_cast<std::uint64_t>(active.count()));
    if (global_active == 0) break;
  }
  return labels;
}

}  // namespace lcr::gemini
