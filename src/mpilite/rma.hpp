// MPI-3 RMA subset: windows with generalized active-target synchronization.
//
// Implements what the paper's MPI-RMA communication layer needs (Section
// III-C): collectively created windows over preallocated receive buffers,
// MPI_Put into remote window memory, and PSCW-style synchronization
// (win_start / win_complete on the access side, win_post / win_wait on the
// exposure side) - "a generalized active target synchronization, which
// allows fine-grained synchronization" rather than the too-restrictive
// fence. A fence is provided as well for tests and comparisons.
//
// Progress: RMA wire events are handled by the owning Comm's progress
// engine, which the paper drives from a dedicated polling thread
// ("the dedicated communication thread continuously polls the network
// (MPI_iprobe) to ensure forward progress").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mpilite/comm.hpp"

namespace lcr::mpi {

class Window {
 public:
  /// Collective over `comm`: every rank contributes a local region of `size`
  /// bytes at `base` (its receive buffer). rkeys are exchanged internally.
  Window(Comm& comm, void* base, std::size_t size);
  ~Window();

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  std::uint64_t id() const noexcept { return id_; }
  void* base() noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }

  // --- Access side (origin) ---

  /// Begin an access epoch to `targets`. Blocks until every target has
  /// granted exposure via post() (consumes one grant per target).
  void start(const std::vector<int>& targets);

  /// One-sided write of `n` bytes into `target`'s window at `offset`.
  /// Must be inside a start/complete epoch including `target`.
  void put(const void* src, std::size_t n, int target, std::size_t offset);

  /// One-sided read of `n` bytes from `target`'s window at `offset` into
  /// `dst`. Implemented as in real RDMA-write-only transports: a GET_REQ
  /// control message answered by a put into a temporary exposed region.
  /// Blocking (progresses internally); must be inside an access epoch.
  void get(void* dst, std::size_t n, int target, std::size_t offset);

  /// End the access epoch: notify every target how many puts were issued.
  void complete();

  // --- Exposure side (target) ---

  /// Begin an exposure epoch for `sources`: grant each one access.
  void post(const std::vector<int>& sources);

  /// Nonblocking completion check for the exposure epoch.
  bool test_wait();

  /// Block until every source in the posted group has completed its access
  /// epoch (all puts arrived + sync received). Ends the exposure epoch.
  void wait();

  /// Collective fence: every rank flushes its puts and waits for everyone.
  /// Far more synchronization than PSCW - provided for the comparison the
  /// paper alludes to ("such synchronization is too restrictive").
  void fence();

  /// Wire-event dispatch, called by Comm::progress with the lock held.
  void on_wire_event(WireKind kind, const fabric::MsgMeta& meta);

  /// Serves a GET_REQ (called by Comm::progress with the lock held).
  void on_get_request(int origin, const void* payload);

 private:
  struct PerSource {
    std::atomic<std::uint64_t> puts_arrived{0};
    std::atomic<std::int64_t> sync_count{-1};   // -1 = not received
    std::atomic<std::uint64_t> post_grants{0};  // exposure grants from them
  };

  Comm& comm_;
  std::uint64_t id_;
  void* base_;
  std::size_t size_;
  fabric::RKey local_rkey_;
  std::vector<std::uint32_t> remote_rkeys_;  // indexed by rank

  std::vector<std::unique_ptr<PerSource>> per_source_;  // indexed by rank

  // Access-epoch state (single epoch-driving thread).
  std::vector<int> access_group_;
  std::vector<std::uint64_t> puts_sent_;  // indexed by rank
  bool in_access_epoch_ = false;

  // Exposure-epoch state.
  std::vector<int> exposure_group_;
  bool in_exposure_epoch_ = false;
};

}  // namespace lcr::mpi
