// Sequential matching-queue traversal - the structural cost of MPI matching.
//
// MPI's wildcard receives (MPI_ANY_SOURCE / MPI_ANY_TAG) and FIFO ordering
// force both the unexpected-message queue and the posted-receive queue to be
// scanned linearly from the front (paper ref [17]). Each element inspected
// additionally pays the personality's per-element cost, which is how vendor
// implementations differ.
#include "mpilite/comm.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::mpi {

std::list<Comm::UmqEntry>::iterator Comm::find_in_umq_locked(int src,
                                                             int tag) {
  std::uint64_t scanned = 0;
  auto it = umq_.begin();
  for (; it != umq_.end(); ++it) {
    ++scanned;
    if (personality_.match_cost_ns > 0)
      rt::spin_for_ns(personality_.match_cost_ns);
    if (match_filters(src, tag, it->src, it->tag)) break;
  }
  stats_.umq_scanned.fetch_add(scanned, std::memory_order_relaxed);
  return it;
}

Request Comm::match_prq_locked(int src, int tag) {
  std::uint64_t scanned = 0;
  for (auto it = prq_.begin(); it != prq_.end(); ++it) {
    ++scanned;
    if (personality_.match_cost_ns > 0)
      rt::spin_for_ns(personality_.match_cost_ns);
    if (match_filters((*it)->src_filter, (*it)->tag_filter, src, tag)) {
      Request req = *it;
      prq_.erase(it);
      stats_.prq_scanned.fetch_add(scanned, std::memory_order_relaxed);
      return req;
    }
  }
  stats_.prq_scanned.fetch_add(scanned, std::memory_order_relaxed);
  return nullptr;
}

}  // namespace lcr::mpi
