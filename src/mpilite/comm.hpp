// mpilite communicator: two-sided MPI semantics over the simulated fabric.
//
// Faithfully reproduces the MPI behaviours the paper measures against:
//
//  * Matching: posted receives (PRQ) and unexpected messages (UMQ) live in
//    sequential lists traversed linearly, "partly intrinsic to the design of
//    MPI which forces the traversal of sequential lists" (paper ref [17]).
//    Wildcard source/tag receives are supported, which is precisely what
//    prevents hashed matching.
//  * Ordering: per-(source, tag) FIFO matching order is guaranteed (the
//    fabric delivers per-link FIFO and the queues preserve arrival order).
//  * Eager/rendezvous: messages above the personality's eager limit use an
//    RTS/RTR/put/FIN handshake; eager messages that arrive unmatched are
//    copied into internal heap buffers (the unbounded internal buffering
//    whose exhaustion crashes real MPI; reproducible via
//    Personality::max_unexpected_bytes).
//  * No back pressure: isend never fails; when the fabric refuses an
//    injection the message is queued in an internal per-destination backlog
//    and flushed by the progress engine - exactly the "lack of back pressure
//    on producers" the paper describes in Section III-B.
//  * Progress: happens only inside mpilite calls (isend/irecv/iprobe/test),
//    i.e. "an expensive network poll" per MPI_TEST.
//  * THREAD_MULTIPLE: a single global lock serializes every call.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fabric/fabric.hpp"
#include "fabric/reliable.hpp"
#include "mpilite/personality.hpp"
#include "mpilite/types.hpp"
#include "runtime/mem_tracker.hpp"

namespace lcr::mpi {

class Window;

struct RequestImpl {
  enum class Kind : std::uint8_t { SendEager, SendRdv, Recv };
  Kind kind = Kind::SendEager;
  std::atomic<bool> complete{false};

  // Receive-side fields.
  void* buffer = nullptr;
  std::size_t capacity = 0;
  int src_filter = kAnySource;
  int tag_filter = kAnyTag;
  fabric::RKey rkey = fabric::kInvalidRKey;

  // Send-side fields (rendezvous keeps the user buffer pinned).
  const void* send_buffer = nullptr;
  std::size_t send_size = 0;

  Status status;  // filled at match/completion time
};

using Request = std::shared_ptr<RequestImpl>;

struct CommConfig {
  /// Internal pre-posted receive buffers (each MTU-sized).
  std::size_t rx_buffers = 128;
  /// Tracker for mpilite-internal buffering (unexpected copies + backlog).
  rt::MemTracker* internal_tracker = nullptr;
  /// How many threads will issue calls concurrently under THREAD_MULTIPLE.
  /// The per-call contention surcharge (Personality) is charged per *other*
  /// declared thread: the simulated hosts time-share one physical core, so
  /// thread contention that would arise on real many-core hosts is charged
  /// analytically and deterministically.
  std::size_t declared_concurrency = 1;
  /// Returns true when the cluster has a pending host failure. Blocking
  /// waits (Comm::wait, RMA epoch synchronization) poll it so a caller can
  /// unwind to recovery instead of wedging on a peer that died or already
  /// tore down its communicator. Null = never abort.
  std::function<bool()> abort_check;
};

struct CommStats {
  std::atomic<std::uint64_t> isends{0};
  std::atomic<std::uint64_t> irecvs{0};
  std::atomic<std::uint64_t> iprobes{0};
  std::atomic<std::uint64_t> tests{0};
  std::atomic<std::uint64_t> umq_scanned{0};  // elements inspected
  std::atomic<std::uint64_t> prq_scanned{0};
  std::atomic<std::uint64_t> unexpected_msgs{0};
  std::atomic<std::uint64_t> backlogged_sends{0};
};

class Comm {
 public:
  Comm(fabric::Fabric& fabric, int rank, Personality personality,
       ThreadLevel thread_level, CommConfig cfg = {});
  ~Comm();

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return size_; }
  const Personality& personality() const noexcept { return personality_; }
  ThreadLevel thread_level() const noexcept { return thread_level_; }
  CommStats& stats() noexcept { return stats_; }
  std::size_t eager_limit() const noexcept { return eager_limit_; }

  /// True when the cluster-level abort hook reports a pending host failure
  /// (see CommConfig::abort_check). Internal blocking waits bail out.
  bool aborting() const { return cfg_.abort_check && cfg_.abort_check(); }

  /// Nonblocking send. Never fails; may buffer internally (no back pressure).
  Request isend(const void* buf, std::size_t size, int dst, int tag);

  /// Nonblocking receive into `buf` (capacity bytes). Wildcards allowed.
  Request irecv(void* buf, std::size_t capacity, int src, int tag);

  /// Nonblocking probe: does a progress step, then searches the UMQ.
  bool iprobe(int src, int tag, Status* status_out);

  /// Progress + completion check.
  bool test(const Request& req);

  /// Spin until complete (calls progress).
  void wait(const Request& req);
  Status wait_status(const Request& req);

  /// Waits for every request in the span (MPI_Waitall).
  void wait_all(const std::vector<Request>& reqs);

  /// True iff every request completed (MPI_Testall); progresses once.
  bool test_all(const std::vector<Request>& reqs);

  /// Blocking convenience wrappers.
  void send(const void* buf, std::size_t size, int dst, int tag);
  Status recv(void* buf, std::size_t capacity, int src, int tag);

  /// Combined send+receive (MPI_Sendrecv): posts both, progresses to
  /// completion; safe against head-of-line deadlocks.
  Status sendrecv(const void* sbuf, std::size_t ssize, int dst, int stag,
                  void* rbuf, std::size_t rcapacity, int src, int rtag);

  /// Drive the progress engine once (drains backlog + CQ). Public so the
  /// dedicated communication thread can poll, mirroring MPI_Iprobe-driven
  /// progress in the paper's RMA layer.
  void progress();

  // --- RMA support (used by Window; see rma.hpp) ---
  void register_window(std::uint64_t id, Window* win);
  void deregister_window(std::uint64_t id);
  std::uint64_t next_window_id() { return window_id_counter_++; }
  fabric::Fabric& fabric() noexcept { return fabric_; }
  fabric::Endpoint& endpoint() noexcept { return endpoint_; }

  /// The reliability channel all wire traffic is routed through (passthrough
  /// on a reliable fabric). Window uses it directly for get replies.
  fabric::ReliableChannel& channel() noexcept { return channel_; }

  /// RMA control message (post/sync/get) with backlog fallback;
  /// thread-safe. `payload` may be nullptr when meta.size == 0.
  void rma_ctrl_send(int dst, fabric::MsgMeta meta,
                     const void* payload = nullptr);

  /// One attempt at an RMA put; returns false on soft failure (retry after
  /// progressing). Thread-safe.
  bool rma_try_put(int target, std::uint32_t rkey, std::size_t offset,
                   const void* src, std::size_t n, std::uint64_t win_id);

  /// One attempt at a direct-write put (DESIGN.md §15): a dynamic-segment
  /// RMA write outside any collective window epoch - the mpilite emulation
  /// of MPI_Win_create_dynamic + MPI_Rput. The raw PostResult is returned
  /// so callers can tell a transient soft failure (retry) from a dead
  /// registration (Invalid: fall back to two-sided). Thread-safe.
  fabric::PostResult direct_try_put(int target, std::uint64_t rkey,
                                    const void* src, std::size_t n,
                                    std::uint64_t imm, std::uint64_t imm2);

  /// Installs the handler invoked (under the comm lock, from whichever
  /// thread drives progress) when a DirectPut notification lands; the
  /// payload is already in the registered segment at that point. Install
  /// before any concurrent use; the slot itself is unsynchronized.
  void set_direct_handler(std::function<void(const fabric::MsgMeta&)> fn) {
    direct_handler_ = std::move(fn);
  }

 private:
  friend class Window;

  /// Send a wire packet, falling back to the internal backlog. Lock held.
  void post_or_backlog(int dst, const void* payload, fabric::MsgMeta meta);

  struct UmqEntry {
    int src;
    int tag;
    std::size_t size;
    bool is_rts;
    std::unique_ptr<std::byte[]> data;  // eager payload copy
    std::uint64_t send_handle = 0;      // RTS: sender's request
  };

  struct BacklogEntry {
    std::vector<std::byte> payload;
    fabric::MsgMeta meta;
  };

  // All of the below assume lock_ is held (Multiple) or single-threaded use
  // (Funneled).
  void progress_locked();
  void flush_backlog_locked();
  void handle_cqe_locked(const fabric::Cqe& cqe);
  void handle_eager_locked(const fabric::Cqe& cqe);
  void handle_rts_locked(const fabric::Cqe& cqe);
  void handle_rtr_locked(const fabric::Cqe& cqe);
  void issue_rtr_locked(int dst, std::uint64_t send_handle,
                        const Request& recv_req);
  bool match_filters(int src_filter, int tag_filter, int src, int tag) const {
    return (src_filter == kAnySource || src_filter == src) &&
           (tag_filter == kAnyTag || tag_filter == tag);
  }
  std::list<UmqEntry>::iterator find_in_umq_locked(int src, int tag);
  Request match_prq_locked(int src, int tag);
  void track_internal_alloc(std::size_t bytes);
  void track_internal_free(std::size_t bytes);

  class CallGuard;  // applies thread-level locking + per-call cost

  /// Channel tuning derived from the comm shape (hold window bounded well
  /// below the rx window so reordering cannot starve receive buffers).
  static fabric::ReliabilityConfig channel_config(const CommConfig& cfg);

  fabric::Fabric& fabric_;
  fabric::Endpoint& endpoint_;
  int rank_;
  int size_;
  Personality personality_;
  ThreadLevel thread_level_;
  CommConfig cfg_;
  std::size_t eager_limit_;
  fabric::ReliableChannel channel_;

  std::mutex lock_;  // global lock under ThreadLevel::Multiple

  // Internal receive buffers (slab + slot bookkeeping).
  std::unique_ptr<std::byte[]> rx_slab_;

  // Matching structures: sequential lists by design.
  std::list<UmqEntry> umq_;
  std::list<Request> prq_;

  // Per-destination send backlog (preserves per-link ordering).
  std::unordered_map<int, std::deque<BacklogEntry>> backlog_;
  std::size_t backlog_bytes_ = 0;

  // Requests pinned until completion (their raw pointers travel the wire).
  std::unordered_map<RequestImpl*, Request> pinned_;

  // Pending rendezvous puts that soft-failed (CQ full / throttled).
  struct PendingPut {
    int dst;
    fabric::RKey rkey;
    std::uint64_t send_handle;
    std::uint64_t recv_handle;
    std::size_t size;
  };
  std::deque<PendingPut> pending_puts_;

  // RMA windows by id.
  std::unordered_map<std::uint64_t, Window*> windows_;
  std::uint64_t window_id_counter_ = 1;

  std::size_t internal_bytes_ = 0;  // unexpected + backlog bytes

  CommStats stats_;
  telemetry::Registration stat_reg_;  // CommStats probes ("mpilite.*")
  std::function<void(const fabric::MsgMeta&)> direct_handler_;
};

}  // namespace lcr::mpi
