// Small collectives over mpilite two-sided messaging.
//
// Used for setup (window rkey exchange, engine metadata) and by tests. Tags
// live in a reserved control range so they never collide with data-plane
// tags (backends must not wildcard-probe the control range).
#pragma once

#include <cstdint>
#include <vector>

#include "mpilite/comm.hpp"

namespace lcr::mpi {

/// First tag reserved for mpilite-internal collectives.
inline constexpr int kCtrlTagBase = 0x40000000;

/// Dissemination barrier over the communicator.
void barrier(Comm& comm);

/// Gathers one POD value from every rank; result indexed by rank.
template <typename T>
std::vector<T> allgather(Comm& comm, const T& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<T> result(static_cast<std::size_t>(p));
  result[static_cast<std::size_t>(me)] = mine;
  // Simple all-to-all exchange; collectives are setup-path only.
  std::vector<Request> sends;
  sends.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    if (r != me)
      sends.push_back(comm.isend(&mine, sizeof(T), r, kCtrlTagBase + 16));
  for (int r = 0; r < p; ++r)
    if (r != me)
      comm.recv(&result[static_cast<std::size_t>(r)], sizeof(T), r,
                kCtrlTagBase + 16);
  for (auto& s : sends) comm.wait(s);
  return result;
}

/// Broadcast one POD value from `root` to every rank.
template <typename T>
T bcast(Comm& comm, T value, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int me = comm.rank();
  if (me == root) {
    std::vector<Request> sends;
    for (int r = 0; r < p; ++r)
      if (r != root)
        sends.push_back(comm.isend(&value, sizeof(T), r, kCtrlTagBase + 19));
    for (auto& s : sends) comm.wait(s);
    return value;
  }
  T result{};
  comm.recv(&result, sizeof(T), root, kCtrlTagBase + 19);
  return result;
}

/// Reduce one POD value to `root` with a binary op; other ranks get T{}.
template <typename T, typename Op>
T reduce(Comm& comm, T value, Op op, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int me = comm.rank();
  if (me == root) {
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      T other{};
      comm.recv(&other, sizeof(T), r, kCtrlTagBase + 20);
      value = op(value, other);
    }
    return value;
  }
  comm.send(&value, sizeof(T), root, kCtrlTagBase + 20);
  return T{};
}

/// All-reduce of one POD value with a binary op (gather-to-0 + broadcast).
template <typename T, typename Op>
T allreduce(Comm& comm, T value, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = comm.size();
  const int me = comm.rank();
  if (me == 0) {
    for (int r = 1; r < p; ++r) {
      T other{};
      comm.recv(&other, sizeof(T), r, kCtrlTagBase + 17);
      value = op(value, other);
    }
    for (int r = 1; r < p; ++r)
      comm.send(&value, sizeof(T), r, kCtrlTagBase + 18);
    return value;
  }
  comm.send(&value, sizeof(T), 0, kCtrlTagBase + 17);
  T result{};
  comm.recv(&result, sizeof(T), 0, kCtrlTagBase + 18);
  return result;
}

}  // namespace lcr::mpi
