// Common types for the mpilite baseline (an MPI subset over the fabric).
//
// mpilite exists so the paper's two baseline communication layers (MPI-Probe
// and MPI-RMA) can be reproduced without a vendor MPI: it implements the MPI
// *semantics* the paper identifies as expensive - strict per-(source, tag)
// ordering, wildcard receives matched against sequential queues, probe-then-
// receive, unbounded internal buffering of unexpected messages, and global
// serialization under MPI_THREAD_MULTIPLE.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lcr::mpi {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Matches MPI_THREAD_FUNNELED / MPI_THREAD_MULTIPLE. FUNNELED callers
/// promise all mpilite calls come from one thread; MULTIPLE takes a global
/// lock on every call (the documented performance cliff, paper refs [16],
/// [18], [22]).
enum class ThreadLevel : std::uint8_t { Funneled, Multiple };

/// Result of a matched or probed message, mirroring MPI_Status.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t size = 0;  // bytes (MPI_Get_count analogue)
};

/// The MPI standard does not require implementations to survive resource
/// exhaustion; "the program crashes when these happen" (paper Section III-D).
/// mpilite surfaces that behaviour as an exception so tests can observe it.
class FatalMpiError : public std::runtime_error {
 public:
  explicit FatalMpiError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Internal wire protocol message kinds (fabric MsgMeta::kind).
enum class WireKind : std::uint8_t {
  Eager = 32,    ///< short message, payload inline
  Rts = 33,      ///< rendezvous request {size, send handle}
  Rtr = 34,      ///< rendezvous reply {send handle, rkey, recv handle}
  Fin = 35,      ///< put-completion immediate for a rendezvous recv
  RmaPut = 36,   ///< RMA put notification (imm = window id)
  RmaSync = 37,  ///< RMA epoch sync {imm = #puts, imm2 = window id}
  RmaPost = 38,  ///< RMA exposure-epoch grant {imm2 = window id}
  RmaGet = 39,     ///< RMA get request {imm2 = window id, payload = GetWire}
  RmaGetDone = 40, ///< put-completion immediate answering an RMA get
  DirectPut = 41,  ///< direct-write put notification (DESIGN.md §15;
                   ///< imm/imm2 carry generation/phase/pattern/bytes)
};

}  // namespace lcr::mpi
