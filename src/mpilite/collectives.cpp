#include "mpilite/collectives.hpp"

namespace lcr::mpi {

void barrier(Comm& comm) {
  const int p = comm.size();
  const int me = comm.rank();
  char token = 0;
  // Dissemination barrier: log2(p) rounds of shifted exchanges.
  for (int round = 0, dist = 1; dist < p; ++round, dist <<= 1) {
    const int to = (me + dist) % p;
    const int from = (me - dist % p + p) % p;
    Request s = comm.isend(&token, sizeof(token), to, kCtrlTagBase + round);
    char in = 0;
    comm.recv(&in, sizeof(in), from, kCtrlTagBase + round);
    comm.wait(s);
  }
}

}  // namespace lcr::mpi
