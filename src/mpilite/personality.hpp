// MPI implementation "personalities".
//
// Section IV-B2 of the paper compares IntelMPI, MVAPICH2 and OpenMPI and
// finds "no clear winner between different MPI implementations" while LCI
// beats all of them. We cannot ship three vendor MPIs, so mpilite models the
// per-operation software costs that differentiate them as short calibrated
// busy-spins layered on top of the *structural* costs mpilite already pays
// for real (sequential matching queues, unexpected-message copies, global
// locking). Each personality makes a different trade-off - cheap matching
// but expensive probes, cheap probes but a heavier THREAD_MULTIPLE lock, and
// so on - reproducing the "no clear winner" observation. The substitution is
// documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

namespace lcr::mpi {

struct Personality {
  std::string name = "default";

  /// Base cost charged on entry of every nonblocking call (ns).
  std::uint64_t call_overhead_ns = 30;

  /// Cost per matching-queue element inspected during matching (ns).
  std::uint64_t match_cost_ns = 20;

  /// Extra base cost of an iprobe call on top of the matching scan (ns).
  std::uint64_t probe_cost_ns = 80;

  /// Cost of acquiring the global lock under THREAD_MULTIPLE (ns).
  std::uint64_t lock_cost_ns = 60;

  /// Extra per-call cost under THREAD_MULTIPLE *per concurrent caller*:
  /// cacheline bouncing and serialized hand-offs that deployed MPIs exhibit
  /// when several threads issue calls at once (the "substantial performance
  /// loss" of paper refs [16], [18], [22]). Charged dynamically as
  /// surcharge x (number of other threads inside or waiting on the library),
  /// so a lone polling thread (the RMA layer) pays nothing while many
  /// compute threads hammering the lock (Gemini) pay the documented
  /// contention. Capped at 4 concurrent others.
  std::uint64_t multiple_surcharge_ns = 400;

  /// Cost per RMA put (ns) and per epoch-synchronization call (ns).
  std::uint64_t rma_put_cost_ns = 60;
  std::uint64_t rma_sync_cost_ns = 300;

  /// Eager/rendezvous switchover (bytes).
  std::size_t eager_limit = 8 * 1024;

  /// Internal buffering cap for unexpected messages; exceeding it raises
  /// FatalMpiError, reproducing the crash/hang the paper hit with the naive
  /// layer. 0 = unlimited.
  std::size_t max_unexpected_bytes = 0;
};

/// Default personality used when no vendor is being modelled.
Personality default_personality();

/// IntelMPI-like: fast matching and good RMA, pricier probes.
Personality intelmpi_like();

/// MVAPICH2-like: cheap probes, slower matching scan, heavier RMA sync.
Personality mvapich_like();

/// OpenMPI-like: balanced but higher per-call overhead and lock cost.
Personality openmpi_like();

}  // namespace lcr::mpi
