#include "mpilite/comm.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mpilite/rma.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::mpi {

namespace {

struct RtsWire {
  std::uint64_t size;
  std::uint64_t send_handle;
};

struct RtrWire {
  std::uint64_t send_handle;
  std::uint64_t recv_handle;
  std::uint32_t rkey;
  std::uint64_t size;
};

}  // namespace

/// Applies thread-level locking and the personality's per-call base cost.
class Comm::CallGuard {
 public:
  explicit CallGuard(Comm& comm) : comm_(comm) {
    if (comm_.thread_level_ == ThreadLevel::Multiple) {
      comm_.lock_.lock();
      const std::uint64_t others = std::min<std::uint64_t>(
          comm_.cfg_.declared_concurrency > 0
              ? comm_.cfg_.declared_concurrency - 1
              : 0,
          4);
      rt::spin_for_ns(comm_.personality_.lock_cost_ns +
                      others * comm_.personality_.multiple_surcharge_ns);
      locked_ = true;
    }
    rt::spin_for_ns(comm_.personality_.call_overhead_ns);
  }
  ~CallGuard() {
    if (locked_) comm_.lock_.unlock();
  }
  CallGuard(const CallGuard&) = delete;

 private:
  Comm& comm_;
  bool locked_ = false;
};

fabric::ReliabilityConfig Comm::channel_config(const CommConfig& cfg) {
  fabric::ReliabilityConfig rc;
  // Budget a quarter of the receive window for out-of-order holds: enough
  // that a lossy window usually recovers with one gap-head retransmission,
  // while reordering can never pin most of the rx buffers.
  rc.max_held = std::max<std::size_t>(4, cfg.rx_buffers / 4);
  return rc;
}

Comm::Comm(fabric::Fabric& fabric, int rank, Personality personality,
           ThreadLevel thread_level, CommConfig cfg)
    : fabric_(fabric),
      endpoint_(fabric.endpoint(static_cast<fabric::Rank>(rank))),
      rank_(rank),
      size_(static_cast<int>(fabric.num_ranks())),
      personality_(std::move(personality)),
      thread_level_(thread_level),
      cfg_(cfg),
      eager_limit_(std::min(personality_.eager_limit, fabric.config().mtu)),
      channel_(fabric, static_cast<fabric::Rank>(rank), channel_config(cfg),
               "mpilite") {
  const std::size_t mtu = fabric.config().mtu;
  rx_slab_.reset(new std::byte[cfg_.rx_buffers * mtu]);
  for (std::size_t i = 0; i < cfg_.rx_buffers; ++i)
    endpoint_.post_rx({rx_slab_.get() + i * mtu, mtu, i});
  // Buffers the channel consumes internally (duplicates, corrupt payloads)
  // go straight back to the receive window.
  channel_.set_recycle([this, mtu](const fabric::Cqe& cqe) {
    endpoint_.post_rx(
        {rx_slab_.get() + cqe.rx_context * mtu, mtu, cqe.rx_context});
  });
  stat_reg_ = fabric.telemetry().register_probes({
      {"mpilite.isends", &stats_.isends},
      {"mpilite.irecvs", &stats_.irecvs},
      {"mpilite.iprobes", &stats_.iprobes},
      {"mpilite.tests", &stats_.tests},
      {"mpilite.umq_scanned", &stats_.umq_scanned},
      {"mpilite.prq_scanned", &stats_.prq_scanned},
      {"mpilite.unexpected_msgs", &stats_.unexpected_msgs},
      {"mpilite.backlogged_sends", &stats_.backlogged_sends},
  });
}

Comm::~Comm() {
  // Reclaim the receive buffers from the fabric: the slab dies with us.
  endpoint_.detach();
}

void Comm::track_internal_alloc(std::size_t bytes) {
  internal_bytes_ += bytes;
  if (cfg_.internal_tracker != nullptr) cfg_.internal_tracker->on_alloc(bytes);
  if (personality_.max_unexpected_bytes != 0 &&
      internal_bytes_ > personality_.max_unexpected_bytes)
    throw FatalMpiError(
        "mpilite: internal buffering exhausted (unexpected messages / send "
        "backlog) - the MPI standard does not require surviving this");
}

void Comm::track_internal_free(std::size_t bytes) {
  internal_bytes_ -= bytes;
  if (cfg_.internal_tracker != nullptr) cfg_.internal_tracker->on_free(bytes);
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Request Comm::isend(const void* buf, std::size_t size, int dst, int tag) {
  CallGuard guard(*this);
  stats_.isends.fetch_add(1, std::memory_order_relaxed);
  progress_locked();

  auto req = std::make_shared<RequestImpl>();
  if (size <= eager_limit_) {
    // Eager: the payload is copied (inline into the wire, or into the
    // backlog), so the request completes immediately.
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(WireKind::Eager);
    meta.tag = static_cast<std::uint32_t>(tag);
    meta.size = static_cast<std::uint32_t>(size);
    post_or_backlog(dst, buf, meta);
    req->kind = RequestImpl::Kind::SendEager;
    req->complete.store(true, std::memory_order_release);
    return req;
  }

  // Rendezvous: RTS handshake; user buffer pinned until the put completes.
  req->kind = RequestImpl::Kind::SendRdv;
  req->send_buffer = buf;
  req->send_size = size;
  pinned_.emplace(req.get(), req);
  RtsWire rts{static_cast<std::uint64_t>(size),
              reinterpret_cast<std::uint64_t>(req.get())};
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::Rts);
  meta.tag = static_cast<std::uint32_t>(tag);
  meta.size = sizeof(rts);
  post_or_backlog(dst, &rts, meta);
  return req;
}

Request Comm::irecv(void* buf, std::size_t capacity, int src, int tag) {
  CallGuard guard(*this);
  stats_.irecvs.fetch_add(1, std::memory_order_relaxed);
  progress_locked();

  auto req = std::make_shared<RequestImpl>();
  req->kind = RequestImpl::Kind::Recv;
  req->buffer = buf;
  req->capacity = capacity;
  req->src_filter = src;
  req->tag_filter = tag;
  pinned_.emplace(req.get(), req);

  auto it = find_in_umq_locked(src, tag);
  if (it != umq_.end()) {
    if (!it->is_rts) {
      assert(it->size <= capacity && "recv buffer too small");
      std::memcpy(buf, it->data.get(), it->size);
      req->status = Status{it->src, it->tag, it->size};
      req->complete.store(true, std::memory_order_release);
      pinned_.erase(req.get());
      track_internal_free(it->size);
    } else {
      req->status = Status{it->src, it->tag, it->size};
      issue_rtr_locked(it->src, it->send_handle, req);
    }
    umq_.erase(it);
    return req;
  }

  prq_.push_back(req);
  return req;
}

bool Comm::iprobe(int src, int tag, Status* status_out) {
  CallGuard guard(*this);
  stats_.iprobes.fetch_add(1, std::memory_order_relaxed);
  progress_locked();
  rt::spin_for_ns(personality_.probe_cost_ns);

  auto it = find_in_umq_locked(src, tag);
  if (it == umq_.end()) return false;
  if (status_out != nullptr) *status_out = Status{it->src, it->tag, it->size};
  return true;
}

bool Comm::test(const Request& req) {
  CallGuard guard(*this);
  stats_.tests.fetch_add(1, std::memory_order_relaxed);
  progress_locked();  // "a MPI_TEST leads to an expensive network poll"
  return req->complete.load(std::memory_order_acquire);
}

void Comm::wait(const Request& req) {
  rt::Backoff backoff;
  while (!test(req)) {
    // A dead peer never completes our request; unwind so the host thread
    // can reach the recovery rendezvous instead of wedging here.
    if (aborting()) return;
    backoff.pause();
  }
}

Status Comm::wait_status(const Request& req) {
  wait(req);
  return req->status;
}

void Comm::wait_all(const std::vector<Request>& reqs) {
  for (const Request& r : reqs) wait(r);
}

bool Comm::test_all(const std::vector<Request>& reqs) {
  {
    CallGuard guard(*this);
    progress_locked();
  }
  for (const Request& r : reqs)
    if (!r->complete.load(std::memory_order_acquire)) return false;
  return true;
}

void Comm::send(const void* buf, std::size_t size, int dst, int tag) {
  wait(isend(buf, size, dst, tag));
}

Status Comm::sendrecv(const void* sbuf, std::size_t ssize, int dst, int stag,
                      void* rbuf, std::size_t rcapacity, int src, int rtag) {
  Request s = isend(sbuf, ssize, dst, stag);
  Request r = irecv(rbuf, rcapacity, src, rtag);
  wait(r);
  wait(s);
  return r->status;
}

Status Comm::recv(void* buf, std::size_t capacity, int src, int tag) {
  return wait_status(irecv(buf, capacity, src, tag));
}

void Comm::progress() {
  // The progress pump is not an application-facing call: a dedicated
  // polling thread repeatedly re-acquiring its own (usually uncontended)
  // lock is cheap in deployed MPIs too, so only the raw lock is taken here
  // - no per-call overhead or contention surcharge.
  if (thread_level_ == ThreadLevel::Multiple) {
    std::lock_guard<std::mutex> guard(lock_);
    progress_locked();
  } else {
    progress_locked();
  }
}

// ---------------------------------------------------------------------------
// Progress engine (lock held)
// ---------------------------------------------------------------------------

void Comm::post_or_backlog(int dst, const void* payload,
                           fabric::MsgMeta meta) {
  auto& queue = backlog_[dst];
  if (queue.empty()) {
    const fabric::PostResult r =
        channel_.send(static_cast<fabric::Rank>(dst), payload, meta);
    if (r == fabric::PostResult::Ok) return;
  }
  // Copy into the backlog; flushed in order by progress. This is MPI's
  // missing back pressure: the producer never blocks, memory grows instead.
  BacklogEntry entry;
  entry.payload.resize(meta.size);
  if (meta.size > 0) std::memcpy(entry.payload.data(), payload, meta.size);
  entry.meta = meta;
  queue.push_back(std::move(entry));
  backlog_bytes_ += meta.size;
  stats_.backlogged_sends.fetch_add(1, std::memory_order_relaxed);
  track_internal_alloc(meta.size);
}

void Comm::flush_backlog_locked() {
  for (auto& [dst, queue] : backlog_) {
    while (!queue.empty()) {
      BacklogEntry& entry = queue.front();
      const fabric::PostResult r = channel_.send(
          static_cast<fabric::Rank>(dst), entry.payload.data(), entry.meta);
      if (r != fabric::PostResult::Ok) break;  // keep per-link order
      backlog_bytes_ -= entry.meta.size;
      track_internal_free(entry.meta.size);
      queue.pop_front();
    }
  }
}

void Comm::progress_locked() {
  flush_backlog_locked();

  // Retry rendezvous puts that soft-failed.
  std::size_t n = pending_puts_.size();
  while (n-- > 0) {
    PendingPut pp = pending_puts_.front();
    pending_puts_.pop_front();
    auto* sreq = reinterpret_cast<RequestImpl*>(pp.send_handle);
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(WireKind::Fin);
    meta.imm = pp.recv_handle;
    const fabric::PostResult r =
        channel_.put(static_cast<fabric::Rank>(pp.dst), pp.rkey, 0,
                     sreq->send_buffer, pp.size, /*notify=*/true, meta);
    if (r == fabric::PostResult::Ok) {
      sreq->complete.store(true, std::memory_order_release);
      pinned_.erase(sreq);
    } else {
      pending_puts_.push_back(pp);
    }
  }

  while (auto cqe = channel_.poll()) handle_cqe_locked(*cqe);
}

void Comm::handle_cqe_locked(const fabric::Cqe& cqe) {
  const auto kind = static_cast<WireKind>(cqe.meta.kind);
  switch (kind) {
    case WireKind::Eager:
      handle_eager_locked(cqe);
      break;
    case WireKind::Rts:
      handle_rts_locked(cqe);
      break;
    case WireKind::Rtr:
      handle_rtr_locked(cqe);
      break;
    case WireKind::Fin: {
      auto* rreq = reinterpret_cast<RequestImpl*>(cqe.meta.imm);
      if (rreq->rkey != fabric::kInvalidRKey) {
        endpoint_.deregister_memory(rreq->rkey);
        rreq->rkey = fabric::kInvalidRKey;
      }
      rreq->complete.store(true, std::memory_order_release);
      pinned_.erase(rreq);
      break;
    }
    case WireKind::RmaPut:
    case WireKind::RmaSync:
    case WireKind::RmaPost: {
      const std::uint64_t win_id =
          kind == WireKind::RmaPut ? cqe.meta.imm : cqe.meta.imm2;
      auto it = windows_.find(win_id);
      if (it != windows_.end()) it->second->on_wire_event(kind, cqe.meta);
      break;
    }
    case WireKind::RmaGet: {
      auto it = windows_.find(cqe.meta.imm2);
      if (it != windows_.end())
        it->second->on_get_request(static_cast<int>(cqe.meta.src),
                                   cqe.buffer);
      break;
    }
    case WireKind::RmaGetDone: {
      auto* flag = reinterpret_cast<std::atomic<bool>*>(cqe.meta.imm);
      flag->store(true, std::memory_order_release);
      break;
    }
    case WireKind::DirectPut:
      // Direct-write notification (DESIGN.md §15): the payload already sits
      // in the registered segment; surface the completion to the backend.
      if (direct_handler_) direct_handler_(cqe.meta);
      break;
  }

  // Recycle the internal receive buffer (Fin / RmaPut are imm-only).
  if (cqe.kind == fabric::Cqe::Kind::Recv) {
    const std::size_t mtu = fabric_.config().mtu;
    endpoint_.post_rx(
        {rx_slab_.get() + cqe.rx_context * mtu, mtu, cqe.rx_context});
  }
}

void Comm::handle_eager_locked(const fabric::Cqe& cqe) {
  const int src = static_cast<int>(cqe.meta.src);
  const int tag = static_cast<int>(cqe.meta.tag);
  Request req = match_prq_locked(src, tag);
  if (req) {
    assert(cqe.meta.size <= req->capacity && "recv buffer too small");
    std::memcpy(req->buffer, cqe.buffer, cqe.meta.size);
    req->status = Status{src, tag, cqe.meta.size};
    req->complete.store(true, std::memory_order_release);
    pinned_.erase(req.get());
    return;
  }
  // Unexpected: copy into internal heap buffer.
  stats_.unexpected_msgs.fetch_add(1, std::memory_order_relaxed);
  UmqEntry entry;
  entry.src = src;
  entry.tag = tag;
  entry.size = cqe.meta.size;
  entry.is_rts = false;
  entry.data.reset(new std::byte[cqe.meta.size]);
  std::memcpy(entry.data.get(), cqe.buffer, cqe.meta.size);
  track_internal_alloc(cqe.meta.size);
  umq_.push_back(std::move(entry));
}

void Comm::handle_rts_locked(const fabric::Cqe& cqe) {
  RtsWire rts;
  std::memcpy(&rts, cqe.buffer, sizeof(rts));
  const int src = static_cast<int>(cqe.meta.src);
  const int tag = static_cast<int>(cqe.meta.tag);

  Request req = match_prq_locked(src, tag);
  if (req) {
    req->status = Status{src, tag, static_cast<std::size_t>(rts.size)};
    issue_rtr_locked(src, rts.send_handle, req);
    return;
  }
  stats_.unexpected_msgs.fetch_add(1, std::memory_order_relaxed);
  UmqEntry entry;
  entry.src = src;
  entry.tag = tag;
  entry.size = static_cast<std::size_t>(rts.size);
  entry.is_rts = true;
  entry.send_handle = rts.send_handle;
  umq_.push_back(std::move(entry));
}

void Comm::issue_rtr_locked(int dst, std::uint64_t send_handle,
                            const Request& recv_req) {
  const std::size_t size = recv_req->status.size;
  assert(size <= recv_req->capacity && "recv buffer too small for rendezvous");
  recv_req->rkey = endpoint_.register_memory(recv_req->buffer, size);
  RtrWire rtr{send_handle, reinterpret_cast<std::uint64_t>(recv_req.get()),
              recv_req->rkey, static_cast<std::uint64_t>(size)};
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::Rtr);
  meta.size = sizeof(rtr);
  post_or_backlog(dst, &rtr, meta);
}

void Comm::handle_rtr_locked(const fabric::Cqe& cqe) {
  RtrWire rtr;
  std::memcpy(&rtr, cqe.buffer, sizeof(rtr));
  auto* sreq = reinterpret_cast<RequestImpl*>(rtr.send_handle);
  const int dst = static_cast<int>(cqe.meta.src);

  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::Fin);
  meta.imm = rtr.recv_handle;
  const fabric::PostResult r = channel_.put(
      static_cast<fabric::Rank>(dst), rtr.rkey, 0, sreq->send_buffer,
      static_cast<std::size_t>(rtr.size), /*notify=*/true, meta);
  if (r == fabric::PostResult::Ok) {
    sreq->complete.store(true, std::memory_order_release);
    pinned_.erase(sreq);
  } else {
    pending_puts_.push_back(PendingPut{dst, rtr.rkey, rtr.send_handle,
                                       rtr.recv_handle,
                                       static_cast<std::size_t>(rtr.size)});
  }
}

void Comm::rma_ctrl_send(int dst, fabric::MsgMeta meta, const void* payload) {
  CallGuard guard(*this);
  post_or_backlog(dst, payload, meta);
}

bool Comm::rma_try_put(int target, std::uint32_t rkey, std::size_t offset,
                       const void* src, std::size_t n, std::uint64_t win_id) {
  CallGuard guard(*this);
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::RmaPut);
  meta.imm = win_id;
  return channel_.put(static_cast<fabric::Rank>(target), rkey, offset, src, n,
                      /*notify=*/true, meta) == fabric::PostResult::Ok;
}

fabric::PostResult Comm::direct_try_put(int target, std::uint64_t rkey,
                                        const void* src, std::size_t n,
                                        std::uint64_t imm,
                                        std::uint64_t imm2) {
  CallGuard guard(*this);
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::DirectPut);
  meta.size = static_cast<std::uint32_t>(n);
  meta.imm = imm;
  meta.imm2 = imm2;
  return channel_.put(static_cast<fabric::Rank>(target),
                      static_cast<fabric::RKey>(rkey), /*offset=*/0, src, n,
                      /*notify=*/true, meta);
}

void Comm::register_window(std::uint64_t id, Window* win) {
  CallGuard guard(*this);
  windows_.emplace(id, win);
}

void Comm::deregister_window(std::uint64_t id) {
  CallGuard guard(*this);
  windows_.erase(id);
}

}  // namespace lcr::mpi
