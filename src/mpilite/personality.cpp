#include "mpilite/personality.hpp"

namespace lcr::mpi {

Personality default_personality() { return Personality{}; }

Personality intelmpi_like() {
  Personality p;
  p.name = "intelmpi";
  p.call_overhead_ns = 30;
  p.match_cost_ns = 14;     // optimized matching path
  p.probe_cost_ns = 140;    // probe walks a separate unexpected structure
  p.lock_cost_ns = 55;
  p.rma_put_cost_ns = 40;   // best RMA in the paper's Table IV
  p.rma_sync_cost_ns = 220;
  p.eager_limit = 8 * 1024;
  return p;
}

Personality mvapich_like() {
  Personality p;
  p.name = "mvapich";
  p.call_overhead_ns = 35;
  p.match_cost_ns = 28;     // slower queue scan
  p.probe_cost_ns = 70;     // cheap probe
  p.lock_cost_ns = 70;
  p.rma_put_cost_ns = 60;
  p.rma_sync_cost_ns = 420; // heavier PSCW
  p.eager_limit = 8 * 1024;
  return p;
}

Personality openmpi_like() {
  Personality p;
  p.name = "openmpi";
  p.call_overhead_ns = 55;  // component stack (PML/BTL) per-call cost
  p.match_cost_ns = 20;
  p.probe_cost_ns = 100;
  p.lock_cost_ns = 95;      // opal lock contention
  p.rma_put_cost_ns = 70;
  p.rma_sync_cost_ns = 330;
  p.eager_limit = 4 * 1024;
  return p;
}

}  // namespace lcr::mpi
