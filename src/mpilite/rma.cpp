#include "mpilite/rma.hpp"

#include <cassert>
#include <cstring>

#include "mpilite/collectives.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::mpi {

Window::Window(Comm& comm, void* base, std::size_t size)
    : comm_(comm),
      id_(comm.next_window_id()),
      base_(base),
      size_(size),
      local_rkey_(comm.endpoint().register_memory(base, size)),
      puts_sent_(static_cast<std::size_t>(comm.size()), 0) {
  per_source_.reserve(static_cast<std::size_t>(comm.size()));
  for (int r = 0; r < comm.size(); ++r)
    per_source_.emplace_back(new PerSource);
  comm_.register_window(id_, this);
  // Collective rkey exchange (MPI_Win_create is collective).
  remote_rkeys_ = allgather(comm_, static_cast<std::uint32_t>(local_rkey_));
}

Window::~Window() {
  comm_.deregister_window(id_);
  comm_.endpoint().deregister_memory(local_rkey_);
}

void Window::on_wire_event(WireKind kind, const fabric::MsgMeta& meta) {
  PerSource& src = *per_source_[meta.src];
  switch (kind) {
    case WireKind::RmaPut:
      src.puts_arrived.fetch_add(1, std::memory_order_release);
      break;
    case WireKind::RmaSync:
      src.sync_count.store(static_cast<std::int64_t>(meta.imm),
                           std::memory_order_release);
      break;
    case WireKind::RmaPost:
      src.post_grants.fetch_add(1, std::memory_order_release);
      break;
    default:
      break;
  }
}

void Window::start(const std::vector<int>& targets) {
  assert(!in_access_epoch_);
  rt::spin_for_ns(comm_.personality().rma_sync_cost_ns);
  // Generalized active-target: block until each target granted exposure.
  for (int t : targets) {
    PerSource& ps = *per_source_[static_cast<std::size_t>(t)];
    rt::Backoff backoff;
    while (ps.post_grants.load(std::memory_order_acquire) == 0) {
      // A killed target never grants exposure; leave the epoch half-open
      // (put/complete tolerate it) and let the caller unwind to recovery.
      if (comm_.aborting()) break;
      comm_.progress();
      backoff.pause();
    }
    if (ps.post_grants.load(std::memory_order_acquire) > 0)
      ps.post_grants.fetch_sub(1, std::memory_order_acq_rel);
  }
  access_group_ = targets;
  in_access_epoch_ = true;
}

void Window::put(const void* src, std::size_t n, int target,
                 std::size_t offset) {
  assert(in_access_epoch_);
  rt::spin_for_ns(comm_.personality().rma_put_cost_ns);
  rt::Backoff backoff;
  while (!comm_.rma_try_put(target, remote_rkeys_[static_cast<std::size_t>(
                                        target)],
                            offset, src, n, id_)) {
    if (comm_.aborting()) return;  // dropped put; the epoch is doomed anyway
    comm_.progress();
    backoff.pause();
  }
  ++puts_sent_[static_cast<std::size_t>(target)];
}

namespace {
/// Wire format of an RMA get request.
struct GetWire {
  std::uint64_t offset;
  std::uint64_t size;
  std::uint32_t rkey;    // origin's temporary landing region
  std::uint64_t handle;  // origin's completion flag
};
}  // namespace

void Window::get(void* dst, std::size_t n, int target, std::size_t offset) {
  assert(in_access_epoch_);
  rt::spin_for_ns(comm_.personality().rma_put_cost_ns);
  std::atomic<bool> done{false};
  const fabric::RKey temp_key = comm_.endpoint().register_memory(dst, n);
  GetWire wire{static_cast<std::uint64_t>(offset),
               static_cast<std::uint64_t>(n),
               static_cast<std::uint32_t>(temp_key),
               reinterpret_cast<std::uint64_t>(&done)};
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::RmaGet);
  meta.imm2 = id_;
  meta.size = sizeof(wire);
  comm_.rma_ctrl_send(target, meta, &wire);
  rt::Backoff backoff;
  while (!done.load(std::memory_order_acquire)) {
    if (comm_.aborting()) break;  // dst left unfilled; caller unwinds
    comm_.progress();
    backoff.pause();
  }
  comm_.endpoint().deregister_memory(temp_key);
}

void Window::on_get_request(int origin, const void* payload) {
  GetWire wire;
  std::memcpy(&wire, payload, sizeof(wire));
  assert(wire.offset + wire.size <= size_);
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(WireKind::RmaGetDone);
  meta.imm = wire.handle;
  rt::Backoff backoff;
  while (comm_.channel().put(static_cast<fabric::Rank>(origin), wire.rkey, 0,
                             static_cast<const char*>(base_) + wire.offset,
                             static_cast<std::size_t>(wire.size),
                             /*notify=*/true,
                             meta) != fabric::PostResult::Ok) {
    if (comm_.aborting()) return;
    backoff.pause();  // origin keeps draining its CQ while it spins in get()
  }
}

void Window::complete() {
  assert(in_access_epoch_);
  rt::spin_for_ns(comm_.personality().rma_sync_cost_ns);
  for (int t : access_group_) {
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(WireKind::RmaSync);
    meta.imm = puts_sent_[static_cast<std::size_t>(t)];
    meta.imm2 = id_;
    comm_.rma_ctrl_send(t, meta);
    puts_sent_[static_cast<std::size_t>(t)] = 0;
  }
  access_group_.clear();
  in_access_epoch_ = false;
}

void Window::post(const std::vector<int>& sources) {
  assert(!in_exposure_epoch_);
  rt::spin_for_ns(comm_.personality().rma_sync_cost_ns);
  for (int s : sources) {
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(WireKind::RmaPost);
    meta.imm2 = id_;
    comm_.rma_ctrl_send(s, meta);
  }
  exposure_group_ = sources;
  in_exposure_epoch_ = true;
}

bool Window::test_wait() {
  assert(in_exposure_epoch_);
  for (int s : exposure_group_) {
    PerSource& ps = *per_source_[static_cast<std::size_t>(s)];
    const std::int64_t sync = ps.sync_count.load(std::memory_order_acquire);
    if (sync < 0) return false;
    // Per-link FIFO guarantees puts precede their sync, so this holds; keep
    // the check as a structural invariant.
    if (ps.puts_arrived.load(std::memory_order_acquire) <
        static_cast<std::uint64_t>(sync))
      return false;
  }
  // Epoch complete: consume the counters.
  for (int s : exposure_group_) {
    PerSource& ps = *per_source_[static_cast<std::size_t>(s)];
    const std::int64_t sync = ps.sync_count.exchange(-1);
    ps.puts_arrived.fetch_sub(static_cast<std::uint64_t>(sync));
  }
  exposure_group_.clear();
  in_exposure_epoch_ = false;
  return true;
}

void Window::wait() {
  rt::spin_for_ns(comm_.personality().rma_sync_cost_ns);
  rt::Backoff backoff;
  while (!test_wait()) {
    if (comm_.aborting()) return;
    comm_.progress();
    backoff.pause();
  }
}

void Window::fence() {
  // Restrictive collective synchronization: flush puts to everyone, wait for
  // everyone's counts, then a full barrier.
  rt::spin_for_ns(comm_.personality().rma_sync_cost_ns);
  const int p = comm_.size();
  const int me = comm_.rank();
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(WireKind::RmaSync);
    meta.imm = puts_sent_[static_cast<std::size_t>(r)];
    meta.imm2 = id_;
    comm_.rma_ctrl_send(r, meta);
    puts_sent_[static_cast<std::size_t>(r)] = 0;
  }
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    PerSource& ps = *per_source_[static_cast<std::size_t>(r)];
    rt::Backoff backoff;
    for (;;) {
      const std::int64_t sync = ps.sync_count.load(std::memory_order_acquire);
      if (sync >= 0 && ps.puts_arrived.load(std::memory_order_acquire) >=
                           static_cast<std::uint64_t>(sync)) {
        ps.sync_count.store(-1);
        ps.puts_arrived.fetch_sub(static_cast<std::uint64_t>(sync));
        break;
      }
      if (comm_.aborting()) break;
      comm_.progress();
      backoff.pause();
    }
  }
  barrier(comm_);
  in_access_epoch_ = false;
}

}  // namespace lcr::mpi
