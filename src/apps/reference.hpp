// Sequential reference implementations used to validate the distributed
// engines (tests compare every (graph x partition x backend x hosts) run
// against these).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace lcr::apps {

/// BFS hop counts from `source` (UINT32_MAX = unreachable).
std::vector<std::uint32_t> reference_bfs(const graph::Csr& g,
                                         graph::VertexId source);

/// Dijkstra distances from `source` (UINT32_MAX = unreachable).
std::vector<std::uint32_t> reference_sssp(const graph::Csr& g,
                                          graph::VertexId source);

/// Connected-component labels (min vertex id per component) over the
/// undirected closure of g.
std::vector<std::uint32_t> reference_cc(const graph::Csr& g);

/// Label-propagation fixpoint (minimum fmix32-hashed label per component)
/// over the undirected closure of g; matches apps::run_labelprop.
std::vector<std::uint32_t> reference_labelprop(const graph::Csr& g);

/// PageRank with the same formula / damping / iteration scheme as the
/// distributed implementation.
std::vector<double> reference_pagerank(const graph::Csr& g,
                                       double damping = 0.85,
                                       std::uint32_t max_iterations = 100,
                                       double tolerance = 1e-7);

}  // namespace lcr::apps
