// Generic monotone pull driver.
//
// The paper's vertex-program model has two operator styles (Section II):
// push ("reads the active node's label and writes its neighbors' labels",
// see push_engine.hpp) and pull ("reads its neighbors' labels and writes
// the active node's label"). This driver implements the pull style: each
// round, every local proxy recomputes its label as the min over its local
// in-edges of relax(neighbor label); partial results on mirror proxies are
// min-reduced to the master and fresh values are broadcast back, according
// to the same partition-aware plan as the push driver (the policy decides
// which endpoints can be mirrors, not the operator direction).
//
// Pull is topology-driven here (every vertex with in-edges is re-evaluated
// each round); it converges to the same fixed point as the data-driven push
// driver, which the tests assert.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "abelian/engine.hpp"
#include "abelian/sync.hpp"
#include "apps/atomic_ops.hpp"
#include "runtime/timer.hpp"
#include "telemetry/trace.hpp"

namespace lcr::apps {

template <typename Traits>
std::vector<typename Traits::Label> run_pull(
    abelian::HostEngine& eng, graph::VertexId source,
    std::uint64_t max_rounds = std::numeric_limits<std::uint64_t>::max()) {
  using Label = typename Traits::Label;
  const graph::DistGraph& g = eng.graph();
  const std::size_t n = g.num_local;

  std::vector<Label> labels(n);
  rt::ConcurrentBitset dirty(n);

  for (std::size_t lid = 0; lid < n; ++lid)
    labels[lid] = Traits::init_label(
        g.local_to_global(static_cast<graph::VertexId>(lid)), source);

  const abelian::SyncPlan plan = abelian::plan_push_monotone(g.policy);
  std::uint64_t round = 0;
  for (; round < max_rounds; ++round) {
    telemetry::Span round_span("app", "round", g.host_id);
    // --- Pull computation: re-evaluate every proxy from local in-edges ---
    rt::Timer compute_timer;
    std::atomic<std::uint64_t> changed{0};
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      eng.team().parallel_chunks(
          0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
            for (std::size_t v = lo; v < hi; ++v) {
              Label best = labels[v];
              g.in_edges.for_each_edge(
                  static_cast<graph::VertexId>(v),
                  [&](graph::VertexId u, graph::Weight w) {
                    const Label cand = Traits::relax(labels[u], w);
                    if (cand < best) best = cand;
                  });
              if (best < labels[v]) {
                labels[v] = best;  // single writer per v in this loop
                dirty.set(v);
                changed.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
    }
    eng.stats().compute_s += compute_timer.elapsed_s();

    // --- Partition-aware sync, same plan as push ---
    if (plan.do_reduce) {
      eng.sync_reduce<Label>(
          labels.data(), dirty,
          [&](Label& current, Label incoming) {
            // Exclusive under the engine's shard lock (DESIGN.md §12).
            return plain_min(current, incoming);
          },
          [&](graph::VertexId lid) {
            dirty.set(lid);
            changed.fetch_add(1, std::memory_order_relaxed);
          });
    }
    if (plan.do_broadcast) {
      eng.sync_broadcast<Label>(labels.data(), dirty, [&](graph::VertexId) {
        changed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    dirty.clear_all();
    eng.stats().rounds++;

    const std::uint64_t global_changed =
        eng.cluster().oob_allreduce_sum(changed.load());
    if (global_changed == 0) break;
  }
  return labels;
}

}  // namespace lcr::apps
