#include "apps/sssp.hpp"

#include "apps/push_engine.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_sssp(abelian::HostEngine& eng,
                                    graph::VertexId source) {
  return run_push<SsspTraits>(eng, source);
}

}  // namespace lcr::apps
