#include "apps/labelprop.hpp"

#include "apps/push_engine.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_labelprop(abelian::HostEngine& eng,
                                         rt::RecoveryCtx* rec) {
  return run_push<LabelPropTraits>(
      eng, /*source=*/0, std::numeric_limits<std::uint64_t>::max(), rec);
}

}  // namespace lcr::apps
