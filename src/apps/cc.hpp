// Connected components via min-label propagation on Abelian.
//
// Defined on undirected graphs: callers should symmetrize the input
// (graph::symmetrize) before partitioning, as the benchmarks do.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "abelian/engine.hpp"
#include "runtime/checkpoint.hpp"

namespace lcr::apps {

struct CcTraits {
  using Label = std::uint32_t;
  static constexpr Label kInf = std::numeric_limits<Label>::max();
  static constexpr const char* kName = "cc";

  static Label init_label(graph::VertexId gid, graph::VertexId) {
    return gid;  // every vertex starts as its own component
  }
  static bool init_active(graph::VertexId, graph::VertexId) { return true; }
  static Label relax(Label src_label, graph::Weight) { return src_label; }
};

/// Distributed connected components; returns local component labels
/// (the minimum global vertex id in each component).
std::vector<std::uint32_t> run_cc(abelian::HostEngine& eng,
                                  rt::RecoveryCtx* rec = nullptr);

}  // namespace lcr::apps
