#include "apps/pagerank.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>

#include "abelian/sync.hpp"
#include "apps/atomic_ops.hpp"
#include "runtime/timer.hpp"
#include "telemetry/trace.hpp"

namespace lcr::apps {

std::vector<double> run_pagerank(abelian::HostEngine& eng,
                                 PagerankOptions opt, rt::RecoveryCtx* rec) {
  const graph::DistGraph& g = eng.graph();
  const std::size_t n_local = g.num_local;
  const double n_global = static_cast<double>(g.global_nodes);

  std::vector<double> rank(n_local, 1.0 / n_global);
  std::vector<double> accum(n_local, 0.0);
  rt::ConcurrentBitset dirty(n_local);
  rt::ConcurrentBitset rank_dirty(n_local);

  const abelian::SyncPlan plan = abelian::plan_accumulate(g.policy);

  std::uint32_t iter = 0;
  std::uint32_t resumed_at = std::numeric_limits<std::uint32_t>::max();

  // Recovery: the per-iteration transient state (accum, dirty sets) is
  // rebuilt every round, so the checkpoint is just the rank vector.
  if (rec != nullptr && rec->resume && rec->resume_round >= 0) {
    std::vector<std::vector<std::uint8_t>> arrays;
    if (rec->store->load(rec->host, rec->resume_round, arrays) &&
        arrays.size() == 1 && arrays[0].size() == n_local * sizeof(double)) {
      if (n_local > 0)
        std::memcpy(rank.data(), arrays[0].data(), arrays[0].size());
      iter = static_cast<std::uint32_t>(rec->resume_round);
      resumed_at = iter;
    }
  }

  for (; iter < opt.max_iterations; ++iter) {
    eng.cluster().round_tick(g.host_id, static_cast<std::int64_t>(iter));
    if (rec != nullptr && rec->interval > 0 &&
        iter % static_cast<std::uint32_t>(rec->interval) == 0 &&
        iter != resumed_at) {
      rec->store->save(rec->host, static_cast<std::int64_t>(iter),
                       {{rank.data(), n_local * sizeof(double)}});
    }
    telemetry::Span round_span("app", "round", g.host_id);
    // --- Computation: scatter contributions along local out-edges ---
    rt::Timer compute_timer;
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      eng.team().parallel_chunks(
          0, n_local, [&](std::size_t lo, std::size_t hi, std::size_t) {
            for (std::size_t lid = lo; lid < hi; ++lid) {
              const std::uint32_t outdeg = g.global_out_degree[lid];
              if (outdeg == 0 || g.out_edges.degree(lid) == 0) continue;
              const double contrib = rank[lid] / static_cast<double>(outdeg);
              g.out_edges.for_each_edge(
                  static_cast<graph::VertexId>(lid),
                  [&](graph::VertexId dst, graph::Weight) {
                    atomic_add(accum[dst], contrib);
                    dirty.set(dst);
                  });
            }
          });
    }
    eng.stats().compute_s += compute_timer.elapsed_s();

    // --- Reduce: Add dirty accumulator mirrors into masters (skipped when
    // the partition guarantees contributions land on masters, e.g. the
    // incoming edge-cut) ---
    if (plan.do_reduce) {
      eng.sync_reduce<double>(
          accum.data(), dirty,
          [&](double& current, double incoming) {
            // Exclusive under the engine's shard lock (DESIGN.md §12).
            plain_add(current, incoming);
            return true;
          },
          [](graph::VertexId) {});
    }

    // --- Recompute masters, measure convergence ---
    rt::Timer recompute_timer;
    double local_delta = 0.0;
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      rt::Spinlock delta_lock;
      eng.team().parallel_chunks(
          0, g.num_masters, [&](std::size_t lo, std::size_t hi, std::size_t) {
            double delta = 0.0;
            for (std::size_t lid = lo; lid < hi; ++lid) {
              const double next =
                  (1.0 - opt.damping) / n_global + opt.damping * accum[lid];
              delta += std::abs(next - rank[lid]);
              rank[lid] = next;
              rank_dirty.set(lid);
            }
            std::lock_guard<rt::Spinlock> guard(delta_lock);
            local_delta += delta;
          });
    }
    eng.stats().compute_s += recompute_timer.elapsed_s();

    // --- Broadcast new ranks to mirrors (vertex cuts only) ---
    if (plan.do_broadcast) {
      eng.sync_broadcast<double>(rank.data(), rank_dirty,
                                 [](graph::VertexId) {});
    }

    // --- Reset round state ---
    rt::Timer reset_timer;
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      eng.team().parallel_chunks(0, n_local,
                                 [&](std::size_t lo, std::size_t hi,
                                     std::size_t) {
                                   for (std::size_t lid = lo; lid < hi; ++lid)
                                     accum[lid] = 0.0;
                                 });
      dirty.clear_all();
      rank_dirty.clear_all();
    }
    eng.stats().compute_s += reset_timer.elapsed_s();
    eng.stats().rounds++;

    const double global_delta = eng.cluster().oob_allreduce_sum(local_delta);
    if (opt.tolerance > 0.0 && global_delta < opt.tolerance) break;
  }
  return rank;
}

}  // namespace lcr::apps
