// Atomic label-update helpers used by vertex operators and reduce combines.
//
// Labels live in plain arrays (cache-friendly AoS per the paper's layout
// discussion); updates go through atomic_ref-style CAS loops so concurrent
// pushes and scatters are safe.
#pragma once

#include <atomic>

namespace lcr::apps {

/// Atomically labels[addr] = min(labels[addr], value). Returns true if the
/// stored value decreased.
template <typename T>
bool atomic_min(T& target, T value) {
  std::atomic_ref<T> ref(target);
  T current = ref.load(std::memory_order_relaxed);
  while (value < current) {
    if (ref.compare_exchange_weak(current, value, std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomically target += value (CAS loop; works for double).
template <typename T>
void atomic_add(T& target, T value) {
  std::atomic_ref<T> ref(target);
  T current = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(current, current + value,
                                    std::memory_order_relaxed)) {
  }
}

// Plain (non-atomic) counterparts for contexts where the caller already
// guarantees exclusive access to the target - the engine's sharded apply
// path (DESIGN.md §12) holds a per-shard lock around reduce combines, so
// apps pass these and skip the CAS loop entirely.

/// target = min(target, value) under caller-provided exclusion. Returns true
/// if the stored value decreased.
template <typename T>
bool plain_min(T& target, T value) {
  if (value < target) {
    target = value;
    return true;
  }
  return false;
}

/// target += value under caller-provided exclusion.
template <typename T>
void plain_add(T& target, T value) {
  target += value;
}

}  // namespace lcr::apps
