// Breadth-first search (level labels) on the Abelian engine.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "abelian/engine.hpp"
#include "runtime/checkpoint.hpp"

namespace lcr::apps {

struct BfsTraits {
  using Label = std::uint32_t;
  static constexpr Label kInf = std::numeric_limits<Label>::max();
  static constexpr const char* kName = "bfs";

  static Label init_label(graph::VertexId gid, graph::VertexId source) {
    return gid == source ? 0 : kInf;
  }
  static bool init_active(graph::VertexId gid, graph::VertexId source) {
    return gid == source;
  }
  static Label relax(Label src_label, graph::Weight) {
    return src_label == kInf ? kInf : src_label + 1;
  }
};

/// Runs distributed BFS from `source`; returns this host's local labels
/// (hop counts; kInf = unreachable). eng.stats() carries timings.
std::vector<std::uint32_t> run_bfs(abelian::HostEngine& eng,
                                   graph::VertexId source,
                                   rt::RecoveryCtx* rec = nullptr);

}  // namespace lcr::apps
