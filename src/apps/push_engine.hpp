// Generic data-driven monotone push driver (bfs / cc / sssp).
//
// Implements the vertex-program model of paper Section II: some nodes start
// active; applying the push operator to an active node relaxes its
// out-neighbors' labels; labels are monotone under a min-combine, so the
// partition-aware sync (reduce, plus broadcast under vertex cuts) converges
// to the same fixed point as a sequential run. Computation terminates when
// all nodes are quiescent (global active count == 0).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "abelian/engine.hpp"
#include "abelian/sync.hpp"
#include "apps/atomic_ops.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/timer.hpp"
#include "telemetry/trace.hpp"

namespace lcr::apps {

/// Traits contract:
///   using Label = <integral label type>;
///   static constexpr Label kInf;
///   static Label init_label(VertexId gid, VertexId source);
///   static bool init_active(VertexId gid, VertexId source);
///   static Label relax(Label src_label, graph::Weight w);
template <typename Traits>
std::vector<typename Traits::Label> run_push(
    abelian::HostEngine& eng, graph::VertexId source,
    std::uint64_t max_rounds = std::numeric_limits<std::uint64_t>::max(),
    rt::RecoveryCtx* rec = nullptr) {
  using Label = typename Traits::Label;
  const graph::DistGraph& g = eng.graph();
  const std::size_t n = g.num_local;

  std::vector<Label> labels(n);
  rt::ConcurrentBitset active(n);
  rt::ConcurrentBitset frontier(n);
  rt::ConcurrentBitset dirty(n);

  // Activation is only useful where the vertex can push, i.e. it has local
  // out-edges (under edge cuts mirrors never have any).
  auto maybe_activate = [&](graph::VertexId lid) {
    if (g.out_edges.degree(lid) > 0) active.set(lid);
  };

  for (std::size_t lid = 0; lid < n; ++lid) {
    const graph::VertexId gid =
        g.local_to_global(static_cast<graph::VertexId>(lid));
    labels[lid] = Traits::init_label(gid, source);
    if (Traits::init_active(gid, source))
      maybe_activate(static_cast<graph::VertexId>(lid));
  }

  const abelian::SyncPlan plan = abelian::plan_push_monotone(g.policy);
  std::uint64_t round = 0;
  std::uint64_t resumed_at = std::numeric_limits<std::uint64_t>::max();

  // Recovery: reload labels + active set from the last stable checkpoint
  // and re-enter the sync loop at its round (DESIGN.md §13).
  if (rec != nullptr && rec->resume && rec->resume_round >= 0) {
    std::vector<std::vector<std::uint8_t>> arrays;
    if (rec->store->load(rec->host, rec->resume_round, arrays) &&
        arrays.size() == 2 && arrays[0].size() == n * sizeof(Label)) {
      if (n > 0) std::memcpy(labels.data(), arrays[0].data(), arrays[0].size());
      const auto* words =
          reinterpret_cast<const std::uint64_t*>(arrays[1].data());
      for (std::size_t wi = 0; wi < active.num_words(); ++wi)
        active.set_word(wi, words[wi]);
      round = static_cast<std::uint64_t>(rec->resume_round);
      resumed_at = round;
    }
  }

  for (; round < max_rounds; ++round) {
    // Round boundary: fire scheduled kills / abort on pending failure, then
    // checkpoint every K rounds (labels + active set; the arrays are
    // quiescent here, so the staging copy needs no locks).
    eng.cluster().round_tick(g.host_id, static_cast<std::int64_t>(round));
    if (rec != nullptr && rec->interval > 0 &&
        round % static_cast<std::uint64_t>(rec->interval) == 0 &&
        round != resumed_at) {
      static_assert(sizeof(std::atomic<std::uint64_t>) ==
                    sizeof(std::uint64_t));
      rec->store->save(
          rec->host, static_cast<std::int64_t>(round),
          {{labels.data(), n * sizeof(Label)},
           {static_cast<const void*>(active.words_data()),
            active.num_words() * sizeof(std::uint64_t)}});
    }
    telemetry::Span round_span("app", "round", g.host_id);
    // --- Computation phase (timed separately for the Fig-6 breakdown) ---
    rt::Timer compute_timer;
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      frontier.clear_all();
      active.for_each([&](std::size_t lid) { frontier.set(lid); });
      active.clear_all();

      eng.team().parallel_chunks(
          0, n,
          [&](std::size_t lo, std::size_t hi, std::size_t) {
            frontier.for_each_in_range(lo, hi, [&](std::size_t lid) {
              const Label src_label = labels[lid];
              eng.graph().out_edges.for_each_edge(
                  static_cast<graph::VertexId>(lid),
                  [&](graph::VertexId dst, graph::Weight w) {
                    const Label cand = Traits::relax(src_label, w);
                    if (cand < labels[dst] && atomic_min(labels[dst], cand)) {
                      dirty.set(dst);
                      maybe_activate(dst);
                    }
                  });
            });
          });
    }
    eng.stats().compute_s += compute_timer.elapsed_s();

    // --- Communication phase: partition-aware sync ---
    if (plan.do_reduce) {
      eng.sync_reduce<Label>(
          labels.data(), dirty,
          [&](Label& current, Label incoming) {
            // Exclusive under the engine's shard lock (DESIGN.md §12).
            return plain_min(current, incoming);
          },
          [&](graph::VertexId lid) {
            dirty.set(lid);
            maybe_activate(lid);
          });
    }
    if (plan.do_broadcast) {
      eng.sync_broadcast<Label>(
          labels.data(), dirty,
          [&](graph::VertexId lid) { maybe_activate(lid); });
    }
    dirty.clear_all();
    eng.stats().rounds++;

    // --- Termination: all nodes quiescent everywhere ---
    const std::uint64_t global_active =
        eng.cluster().oob_allreduce_sum(
            static_cast<std::uint64_t>(active.count()));
    if (global_active == 0) break;
  }
  return labels;
}

}  // namespace lcr::apps
