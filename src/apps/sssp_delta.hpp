// Delta-stepping SSSP on the Abelian engine.
//
// The data-driven Bellman-Ford driver (sssp.hpp) relaxes every active vertex
// each round, which wastes work on far-away vertices that will improve again
// later. Delta-stepping (Meyer & Sanders) processes vertices in distance
// buckets of width delta: only vertices whose tentative distance falls in
// the current bucket relax their edges; the bucket is settled to a fixed
// point before moving on. This is the priority-scheduling style the Galois
// systems (Abelian's family) use for sssp.
//
// Distributed realization: the bucket index advances globally (an OOB min
// allreduce picks the next non-empty bucket), and within a bucket, rounds of
// relax + partition-aware sync run until no host has an active vertex in the
// bucket.
#pragma once

#include <cstdint>
#include <vector>

#include "abelian/engine.hpp"

namespace lcr::apps {

struct DeltaSsspStats {
  std::uint64_t buckets = 0;      // bucket epochs processed
  std::uint64_t relaxations = 0;  // edge relaxations performed
};

/// Runs distributed delta-stepping SSSP from `source`; returns this host's
/// local distances. `delta` = bucket width (0 picks a heuristic from the
/// max edge weight).
std::vector<std::uint32_t> run_sssp_delta(abelian::HostEngine& eng,
                                          graph::VertexId source,
                                          std::uint32_t delta = 0,
                                          DeltaSsspStats* stats = nullptr);

}  // namespace lcr::apps
