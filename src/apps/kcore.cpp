#include "apps/kcore.hpp"

#include <deque>

#include "apps/atomic_ops.hpp"
#include "runtime/timer.hpp"
#include "telemetry/trace.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_kcore(abelian::HostEngine& eng,
                                     std::uint32_t k) {
  const graph::DistGraph& g = eng.graph();
  const std::size_t n = g.num_local;

  // deg is authoritative at masters; dead/newly_dead mark removals.
  std::vector<std::uint32_t> deg(g.global_out_degree.begin(),
                                 g.global_out_degree.end());
  std::vector<std::uint32_t> dead_flag(n, 0);
  std::vector<std::uint32_t> delta(n, 0);
  rt::ConcurrentBitset dead(n);
  rt::ConcurrentBitset newly_dead(n);
  rt::ConcurrentBitset dirty_delta(n);
  rt::ConcurrentBitset dirty_dead(n);

  for (;;) {
    telemetry::Span round_span("app", "round", g.host_id);
    // --- 1. Masters decide removals from their authoritative degree ---
    rt::Timer decide_timer;
    std::atomic<std::uint64_t> deaths{0};
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      eng.team().parallel_chunks(
          0, g.num_masters, [&](std::size_t lo, std::size_t hi, std::size_t) {
            for (std::size_t lid = lo; lid < hi; ++lid) {
              if (!dead.test(lid) && deg[lid] < k) {
                dead.set(lid);
                newly_dead.set(lid);
                dead_flag[lid] = 1;
                dirty_dead.set(lid);
                deaths.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
    }
    eng.stats().compute_s += decide_timer.elapsed_s();

    // Global fixed point: nobody died anywhere this round.
    const std::uint64_t total_deaths =
        eng.cluster().oob_allreduce_sum(deaths.load());
    if (total_deaths == 0) break;

    // --- 2. Broadcast removals so mirror proxies learn about them ---
    eng.sync_broadcast<std::uint32_t>(dead_flag.data(), dirty_dead,
                                      [&](graph::VertexId lid) {
                                        if (dead.set(lid)) newly_dead.set(lid);
                                      });
    dirty_dead.clear_all();

    // --- 3. Push decrements along the removed vertices' local out-edges ---
    rt::Timer push_timer;
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      eng.team().parallel_chunks(
          0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
            newly_dead.for_each_in_range(lo, hi, [&](std::size_t lid) {
              g.out_edges.for_each_edge(
                  static_cast<graph::VertexId>(lid),
                  [&](graph::VertexId dst, graph::Weight) {
                    if (dead.test(dst)) return;
                    atomic_add(delta[dst], std::uint32_t{1});
                    dirty_delta.set(dst);
                  });
            });
          });
      newly_dead.clear_all();
    }
    eng.stats().compute_s += push_timer.elapsed_s();

    // --- 4. Add-reduce decrement deltas from mirrors to masters ---
    eng.sync_reduce<std::uint32_t>(
        delta.data(), dirty_delta,
        [&](std::uint32_t& current, std::uint32_t incoming) {
          // Exclusive under the engine's shard lock (DESIGN.md §12).
          plain_add(current, incoming);
          return true;
        },
        [](graph::VertexId) {});

    // --- 5. Masters apply deltas; everyone resets round state ---
    rt::Timer apply_timer;
    {
      telemetry::Span compute_span("app", "compute", g.host_id);
      eng.team().parallel_chunks(
          0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
            for (std::size_t lid = lo; lid < hi; ++lid) {
              if (lid < g.num_masters) {
                const std::uint32_t d = delta[lid];
                deg[lid] = d >= deg[lid] ? 0 : deg[lid] - d;
              }
              delta[lid] = 0;
            }
          });
      dirty_delta.clear_all();
    }
    eng.stats().compute_s += apply_timer.elapsed_s();
    eng.stats().rounds++;
  }

  std::vector<std::uint32_t> alive(n);
  for (std::size_t lid = 0; lid < n; ++lid)
    alive[lid] = dead.test(lid) ? 0 : 1;
  return alive;
}

std::vector<std::uint32_t> reference_kcore(const graph::Csr& g,
                                           std::uint32_t k) {
  const graph::VertexId n = g.num_nodes();
  std::vector<std::uint32_t> deg(n);
  std::vector<std::uint32_t> alive(n, 1);
  std::deque<graph::VertexId> worklist;
  for (graph::VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(v));
    if (deg[v] < k) {
      alive[v] = 0;
      worklist.push_back(v);
    }
  }
  while (!worklist.empty()) {
    const graph::VertexId v = worklist.front();
    worklist.pop_front();
    for (graph::EdgeId e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      const graph::VertexId w = g.edge_target(e);
      if (!alive[w]) continue;
      if (--deg[w] < k) {
        alive[w] = 0;
        worklist.push_back(w);
      }
    }
  }
  return alive;
}

}  // namespace lcr::apps
