#include "apps/reference.hpp"

#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

namespace lcr::apps {

namespace {
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
}

std::vector<std::uint32_t> reference_bfs(const graph::Csr& g,
                                         graph::VertexId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kInf);
  std::deque<graph::VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const graph::VertexId u = queue.front();
    queue.pop_front();
    for (graph::EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const graph::VertexId v = g.edge_target(e);
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> reference_sssp(const graph::Csr& g,
                                          graph::VertexId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kInf);
  using Item = std::pair<std::uint64_t, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (graph::EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const graph::VertexId v = g.edge_target(e);
      const std::uint64_t nd = d + g.edge_weight(e);
      if (nd < dist[v]) {
        dist[v] = static_cast<std::uint32_t>(nd);
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> reference_cc(const graph::Csr& g) {
  // Union-find over the undirected closure, then canonicalize each root to
  // the minimum vertex id of its component (matching label propagation).
  const graph::VertexId n = g.num_nodes();
  std::vector<graph::VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<graph::VertexId(graph::VertexId)> find =
      [&](graph::VertexId x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
  for (graph::VertexId u = 0; u < n; ++u)
    for (graph::EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const graph::VertexId ru = find(u);
      const graph::VertexId rv = find(g.edge_target(e));
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  std::vector<std::uint32_t> label(n);
  for (graph::VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

std::vector<std::uint32_t> reference_labelprop(const graph::Csr& g) {
  // Min-propagation to fixpoint over hashed initial labels; the hash must
  // match LabelPropTraits::init_label exactly (fmix32 masked to 31 bits).
  auto fmix32 = [](std::uint32_t h) {
    h ^= h >> 16;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    h *= 0xc2b2ae35u;
    h ^= h >> 16;
    return h;
  };
  const graph::VertexId n = g.num_nodes();
  std::vector<std::uint32_t> label(n);
  for (graph::VertexId v = 0; v < n; ++v) label[v] = fmix32(v) & 0x7fffffffu;
  bool changed = true;
  while (changed) {
    changed = false;
    for (graph::VertexId u = 0; u < n; ++u)
      for (graph::EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
        const graph::VertexId v = g.edge_target(e);
        const std::uint32_t m = std::min(label[u], label[v]);
        if (label[u] != m || label[v] != m) {
          label[u] = m;
          label[v] = m;
          changed = true;
        }
      }
  }
  return label;
}

std::vector<double> reference_pagerank(const graph::Csr& g, double damping,
                                       std::uint32_t max_iterations,
                                       double tolerance) {
  const graph::VertexId n = g.num_nodes();
  const double n_d = static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / n_d);
  std::vector<double> accum(n, 0.0);
  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    std::fill(accum.begin(), accum.end(), 0.0);
    for (graph::VertexId u = 0; u < n; ++u) {
      const std::size_t deg = g.degree(u);
      if (deg == 0) continue;
      const double contrib = rank[u] / static_cast<double>(deg);
      for (graph::EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e)
        accum[g.edge_target(e)] += contrib;
    }
    double delta = 0.0;
    for (graph::VertexId v = 0; v < n; ++v) {
      const double next = (1.0 - damping) / n_d + damping * accum[v];
      delta += std::abs(next - rank[v]);
      rank[v] = next;
    }
    if (tolerance > 0.0 && delta < tolerance) break;
  }
  return rank;
}

}  // namespace lcr::apps
