#include "apps/bfs.hpp"

#include "apps/push_engine.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_bfs(abelian::HostEngine& eng,
                                   graph::VertexId source) {
  return run_push<BfsTraits>(eng, source);
}

}  // namespace lcr::apps
