#include "apps/bfs.hpp"

#include "apps/push_engine.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_bfs(abelian::HostEngine& eng,
                                   graph::VertexId source,
                                   rt::RecoveryCtx* rec) {
  return run_push<BfsTraits>(
      eng, source, std::numeric_limits<std::uint64_t>::max(), rec);
}

}  // namespace lcr::apps
