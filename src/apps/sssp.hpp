// Single-source shortest paths (data-driven Bellman-Ford) on Abelian.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "abelian/engine.hpp"
#include "runtime/checkpoint.hpp"

namespace lcr::apps {

struct SsspTraits {
  using Label = std::uint32_t;
  static constexpr Label kInf = std::numeric_limits<Label>::max();
  static constexpr const char* kName = "sssp";

  static Label init_label(graph::VertexId gid, graph::VertexId source) {
    return gid == source ? 0 : kInf;
  }
  static bool init_active(graph::VertexId gid, graph::VertexId source) {
    return gid == source;
  }
  static Label relax(Label src_label, graph::Weight w) {
    return src_label == kInf ? kInf : src_label + w;
  }
};

/// Distributed SSSP from `source` over edge weights; returns local distances.
std::vector<std::uint32_t> run_sssp(abelian::HostEngine& eng,
                                    graph::VertexId source,
                                    rt::RecoveryCtx* rec = nullptr);

}  // namespace lcr::apps
