// Label propagation on Abelian: min-propagation over hashed labels.
//
// Every vertex starts with a pseudo-random label (a murmur3-style hash of
// its global id) and repeatedly adopts the minimum label among itself and
// its neighbors. The fixpoint assigns each connected component the minimum
// hashed label it contains - semantically a connected-components variant,
// but with propagation order uncorrelated with vertex ids. That makes it a
// high-churn broadcast workload: labels keep improving for many rounds
// across the whole graph instead of radiating once from low ids, which is
// exactly the stress profile wanted for sync-phase and recovery testing.
//
// Defined on undirected graphs: callers should symmetrize the input
// (graph::symmetrize) before partitioning, as the benchmarks do.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "abelian/engine.hpp"
#include "runtime/checkpoint.hpp"

namespace lcr::apps {

/// 32-bit murmur3 finalizer: a bijective mixer, so distinct vertices get
/// distinct hashes before masking.
inline std::uint32_t fmix32(std::uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

struct LabelPropTraits {
  using Label = std::uint32_t;
  static constexpr Label kInf = std::numeric_limits<Label>::max();
  static constexpr const char* kName = "labelprop";

  static Label init_label(graph::VertexId gid, graph::VertexId) {
    // Mask to 31 bits so no hash collides with kInf.
    return fmix32(static_cast<std::uint32_t>(gid)) & 0x7fffffffu;
  }
  static bool init_active(graph::VertexId, graph::VertexId) { return true; }
  static Label relax(Label src_label, graph::Weight) { return src_label; }
};

/// Distributed label propagation; returns the local labels at fixpoint
/// (minimum hashed label per connected component).
std::vector<std::uint32_t> run_labelprop(abelian::HostEngine& eng,
                                         rt::RecoveryCtx* rec = nullptr);

}  // namespace lcr::apps
