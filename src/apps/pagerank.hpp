// PageRank on the Abelian engine (accumulate-reduce-recompute-broadcast).
//
// Topology-driven rounds: every local vertex with out-edges contributes
// rank/out_degree to its out-neighbors' accumulators (local atomic adds);
// dirty accumulator mirrors are Add-reduced to their masters; masters
// recompute rank = (1-d)/n + d * accum; under vertex cuts the new ranks are
// broadcast back to mirrors (partition-aware sync). This is the app with the
// most communication rounds, where the paper sees LCI's largest wins.
#pragma once

#include <cstdint>
#include <vector>

#include "abelian/engine.hpp"
#include "runtime/checkpoint.hpp"

namespace lcr::apps {

struct PagerankOptions {
  double damping = 0.85;
  /// Round cap; the paper runs "up to 100 iterations".
  std::uint32_t max_iterations = 100;
  /// Early-out when the global L1 rank delta falls below this (0 disables).
  double tolerance = 1e-7;
};

/// Runs distributed PageRank; returns this host's local rank values.
std::vector<double> run_pagerank(abelian::HostEngine& eng,
                                 PagerankOptions opt = {},
                                 rt::RecoveryCtx* rec = nullptr);

}  // namespace lcr::apps
