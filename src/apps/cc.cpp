#include "apps/cc.hpp"

#include "apps/push_engine.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_cc(abelian::HostEngine& eng) {
  return run_push<CcTraits>(eng, /*source=*/0);
}

}  // namespace lcr::apps
