#include "apps/cc.hpp"

#include "apps/push_engine.hpp"

namespace lcr::apps {

std::vector<std::uint32_t> run_cc(abelian::HostEngine& eng,
                                  rt::RecoveryCtx* rec) {
  return run_push<CcTraits>(
      eng, /*source=*/0, std::numeric_limits<std::uint64_t>::max(), rec);
}

}  // namespace lcr::apps
