// k-core decomposition on the Abelian engine.
//
// Iterative peeling: vertices with remaining degree < k are removed; each
// removal decrements its neighbors' degrees; repeat until a fixed point.
// Defined on undirected graphs (pass a symmetrized input).
//
// This app exercises a different synchronization mix than the monotone-min
// apps: per-round *delta* reduction (Add-combine of decrement counts from
// mirror proxies) plus a broadcast of removal decisions so mirror proxies
// push decrements along their locally-owned edges under vertex cuts.
#pragma once

#include <cstdint>
#include <vector>

#include "abelian/engine.hpp"

namespace lcr::apps {

/// Runs distributed k-core; returns, per local vertex, 1 if it survives in
/// the k-core and 0 otherwise. eng.stats() carries timings/rounds.
std::vector<std::uint32_t> run_kcore(abelian::HostEngine& eng,
                                     std::uint32_t k);

/// Sequential reference (peeling with a worklist).
std::vector<std::uint32_t> reference_kcore(const graph::Csr& g,
                                           std::uint32_t k);

}  // namespace lcr::apps
