#include "apps/sssp_delta.hpp"

#include <algorithm>
#include <limits>

#include "abelian/sync.hpp"
#include "apps/atomic_ops.hpp"
#include "apps/sssp.hpp"
#include "runtime/timer.hpp"
#include "telemetry/trace.hpp"

namespace lcr::apps {

namespace {
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
}

std::vector<std::uint32_t> run_sssp_delta(abelian::HostEngine& eng,
                                          graph::VertexId source,
                                          std::uint32_t delta,
                                          DeltaSsspStats* stats) {
  const graph::DistGraph& g = eng.graph();
  const std::size_t n = g.num_local;

  if (delta == 0) {
    // Heuristic: a few times the maximum local edge weight, agreed globally.
    std::uint32_t max_w = 1;
    for (graph::EdgeId e = 0; e < g.out_edges.num_edges(); ++e)
      max_w = std::max(max_w, g.out_edges.edge_weight(e));
    delta = static_cast<std::uint32_t>(
        eng.cluster().oob_allreduce_max(static_cast<double>(max_w)));
    delta = std::max<std::uint32_t>(1, delta);
  }

  std::vector<std::uint32_t> dist(n, kInf);
  rt::ConcurrentBitset active(n);
  rt::ConcurrentBitset frontier(n);
  rt::ConcurrentBitset dirty(n);

  auto maybe_activate = [&](graph::VertexId lid) {
    if (g.out_edges.degree(lid) > 0) active.set(lid);
  };

  for (std::size_t lid = 0; lid < n; ++lid) {
    if (g.local_to_global(static_cast<graph::VertexId>(lid)) == source) {
      dist[lid] = 0;
      maybe_activate(static_cast<graph::VertexId>(lid));
    }
  }

  const abelian::SyncPlan plan = abelian::plan_push_monotone(g.policy);
  std::atomic<std::uint64_t> relaxations{0};
  std::uint64_t buckets = 0;
  std::uint64_t bucket = 0;  // current bucket index

  for (;;) {
    // --- Settle the current bucket to a fixed point ---
    const std::uint64_t threshold =
        (bucket + 1) * static_cast<std::uint64_t>(delta);
    for (;;) {
      // Frontier = active vertices whose distance falls in the bucket.
      frontier.clear_all();
      std::uint64_t in_bucket = 0;
      active.for_each([&](std::size_t lid) {
        if (dist[lid] < threshold) {
          frontier.set(lid);
          active.reset(lid);
          ++in_bucket;
        }
      });
      const std::uint64_t global_in_bucket =
          eng.cluster().oob_allreduce_sum(in_bucket);
      if (global_in_bucket == 0) break;

      telemetry::Span round_span("app", "round", g.host_id);
      rt::Timer compute_timer;
      {
        telemetry::Span compute_span("app", "compute", g.host_id);
        eng.team().parallel_chunks(
            0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
              frontier.for_each_in_range(lo, hi, [&](std::size_t lid) {
                const std::uint32_t d = dist[lid];
                g.out_edges.for_each_edge(
                    static_cast<graph::VertexId>(lid),
                    [&](graph::VertexId dst, graph::Weight w) {
                      const std::uint32_t cand = d + w;
                      relaxations.fetch_add(1, std::memory_order_relaxed);
                      if (cand < dist[dst] && atomic_min(dist[dst], cand)) {
                        dirty.set(dst);
                        maybe_activate(dst);
                      }
                    });
              });
            });
      }
      eng.stats().compute_s += compute_timer.elapsed_s();

      if (plan.do_reduce) {
        eng.sync_reduce<std::uint32_t>(
            dist.data(), dirty,
            [&](std::uint32_t& current, std::uint32_t incoming) {
              // Exclusive under the engine's shard lock (DESIGN.md §12).
              return plain_min(current, incoming);
            },
            [&](graph::VertexId lid) {
              dirty.set(lid);
              maybe_activate(lid);
            });
      }
      if (plan.do_broadcast) {
        eng.sync_broadcast<std::uint32_t>(
            dist.data(), dirty,
            [&](graph::VertexId lid) { maybe_activate(lid); });
      }
      dirty.clear_all();
      eng.stats().rounds++;
    }
    ++buckets;

    // --- Advance to the next non-empty bucket, globally agreed ---
    std::uint64_t local_min = ~std::uint64_t{0};
    active.for_each([&](std::size_t lid) {
      local_min = std::min(local_min, static_cast<std::uint64_t>(dist[lid]));
    });
    const std::uint64_t global_min =
        eng.cluster().oob_allreduce_min(local_min);
    if (global_min == ~std::uint64_t{0}) break;  // no active vertex anywhere
    bucket = global_min / delta;
  }

  if (stats != nullptr) {
    stats->buckets = buckets;
    stats->relaxations = relaxations.load();
  }
  return dist;
}

}  // namespace lcr::apps
