// Fabric configuration: the "NIC personality" of the simulated network.
//
// The paper evaluates on two transports: Intel Omni-Path (psm2) on Stampede2
// and Mellanox Infiniband FDR (ibverbs RC) on Stampede1. We cannot drive real
// NICs here, so the fabric models the properties that matter to the runtimes
// built on top of it:
//   * an MTU / max eager payload,
//   * a bounded pool of pre-posted receive buffers per endpoint (a verbs RQ):
//     senders get a non-fatal Retry when the receiver has no buffers, which is
//     the back-pressure signal MPI lacks and LCI exploits (paper Section III),
//   * an injection-rate token bucket (packet injection limits "on many
//     networks", Section III-B),
//   * a wire latency + bandwidth model applied to delivery visibility.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace lcr::fabric {

/// Deterministic fault model for an unreliable fabric (UD/datagram-class
/// transports where the runtime owns reliability). Every fault decision is a
/// pure hash of (seed, src, dst, per-link operation index), so replaying the
/// same traffic with the same seed reproduces the same fault sequence -
/// independent of wall-clock timing.
struct FaultProfile {
  std::uint64_t seed = 0;

  /// Probability that an operation (eager packet or RDMA put) vanishes:
  /// the sender sees Ok, the receiver sees nothing.
  double drop_rate = 0.0;
  /// Probability that an eager packet / put notification is delivered twice.
  double dup_rate = 0.0;
  /// Probability that one payload byte is bit-flipped in flight.
  double corrupt_rate = 0.0;
  /// Probability that a delivery is swapped with the completion queued just
  /// before it (breaks per-link FIFO).
  double reorder_rate = 0.0;
  /// Probability that a delivery is held back by `delay`.
  double delay_rate = 0.0;
  std::chrono::nanoseconds delay{0};

  /// Optional link brownout: every operation on (brownout_src, brownout_dst)
  /// with per-link index in [brownout_start_op, brownout_start_op +
  /// brownout_ops) is dropped. brownout_ops == 0 disables it.
  std::uint32_t brownout_src = 0;
  std::uint32_t brownout_dst = 0;
  std::uint64_t brownout_start_op = 0;
  std::uint64_t brownout_ops = 0;

  /// Fail-stop host kill schedule. Host `kill_host` (-1 = disabled) dies
  /// either at its `kill_at_op`-th accepted data operation (1-based; 0
  /// disables the op trigger) or when its driver reports reaching round
  /// `kill_at_round` (-1 disables), whichever fires first. Exactly one kill
  /// fires per run; the victim's endpoint is torn down so peers observe
  /// PostResult::Down instead of silence, and a later revive() bumps the
  /// fabric epoch. Op triggers are deterministic per seed on a loss-free
  /// fabric; round triggers are deterministic always.
  std::int32_t kill_host = -1;
  std::uint64_t kill_at_op = 0;
  std::int64_t kill_at_round = -1;

  /// Straggler injection: host `slow_host` (-1 = disabled) busy-spins for
  /// `slow_round_ns` at the top of every round it drives. Models a host with
  /// degraded compute (thermal throttling, a noisy neighbour); the health
  /// monitor's straggler classifier exists to catch exactly this.
  std::int32_t slow_host = -1;
  std::uint64_t slow_round_ns = 0;

  bool enabled() const noexcept {
    return drop_rate > 0.0 || dup_rate > 0.0 || corrupt_rate > 0.0 ||
           reorder_rate > 0.0 || delay_rate > 0.0 || brownout_ops > 0;
  }

  bool kill_enabled() const noexcept {
    return kill_host >= 0 && (kill_at_op > 0 || kill_at_round >= 0);
  }
};

/// One-line summary for bench/test log headers, e.g.
/// "faults{seed=42 drop=5% dup=1% corrupt=0.5%}" or "faults{none}".
std::string to_string(const FaultProfile& fp);

struct FabricConfig {
  /// Human-readable name, e.g. "omnipath-knl".
  std::string name = "default";

  /// Maximum payload of a single eager packet (post_send). RDMA writes
  /// (post_put) are not limited by the MTU.
  std::size_t mtu = 16 * 1024;

  /// Number of receive buffers pre-posted per endpoint by default. Layers may
  /// post their own buffers instead (LCI posts its packet pool).
  std::size_t default_rx_buffers = 256;

  /// Completion-queue capacity per endpoint.
  std::size_t cq_capacity = 4096;

  /// Injection rate limit in packets per second (token bucket); 0 = unlimited.
  double injection_rate_pps = 0.0;

  /// Token-bucket burst size (max tokens).
  std::size_t injection_burst = 256;

  /// One-way wire latency added to delivery visibility.
  std::chrono::nanoseconds wire_latency{0};

  /// Link bandwidth in bytes per second; 0 = infinite. Adds size/bw to the
  /// delivery time of each packet / put notification.
  double bandwidth_Bps = 0.0;

  /// Per-operation software cost of the NIC driver doorbell, modelled as a
  /// short busy spin (ns). Identical for every runtime on this fabric.
  std::uint64_t doorbell_cost_ns = 0;

  /// Fault injection (drop / duplicate / corrupt / reorder / delay / link
  /// brownout). Disabled by default: the fabric behaves like verbs RC.
  FaultProfile fault;

  /// Run the reliability protocol even on a fault-free fabric (overhead
  /// measurement; see bench_reliability_overhead).
  bool force_reliable = false;

  /// True when the communication layers must run the end-to-end reliability
  /// protocol (sequence numbers, CRC, retransmit) on this fabric. A kill
  /// schedule forces it too: PostResult::Down is absorbed by the channel,
  /// which converts it into a suspected-dead membership report.
  bool reliable() const noexcept {
    return force_reliable || fault.enabled() || fault.kill_enabled();
  }
};

/// Omni-Path-on-KNL-like personality (Stampede2 analogue, Table III).
FabricConfig omnipath_knl_config();

/// Infiniband-FDR-on-SandyBridge-like personality (Stampede1 analogue).
FabricConfig infiniband_snb_config();

/// Zero-latency, unlimited fabric for unit tests.
FabricConfig test_config();

}  // namespace lcr::fabric
