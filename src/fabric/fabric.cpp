#include "fabric/fabric.hpp"

#include <cstring>

#include "runtime/cpu_relax.hpp"
#include "runtime/timer.hpp"

namespace lcr::fabric {

Fabric::Fabric(std::size_t num_ranks, FabricConfig config)
    : config_(std::move(config)) {
  endpoints_.reserve(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r)
    endpoints_.emplace_back(
        new Endpoint(static_cast<Rank>(r), &config_));
}

std::uint64_t Fabric::delivery_time_ns(std::size_t bytes) const {
  std::uint64_t t = rt::now_ns();
  t += static_cast<std::uint64_t>(config_.wire_latency.count());
  if (config_.bandwidth_Bps > 0.0)
    t += static_cast<std::uint64_t>(
        static_cast<double>(bytes) / config_.bandwidth_Bps * 1e9);
  return t;
}

PostResult Fabric::post_send(Rank src, Rank dst, const void* payload,
                             MsgMeta meta) {
  if (src >= endpoints_.size() || dst >= endpoints_.size())
    return PostResult::Invalid;
  if (meta.size > config_.mtu) return PostResult::TooLarge;

  Endpoint& sep = *endpoints_[src];
  Endpoint& dep = *endpoints_[dst];

  if (!sep.consume_injection_token()) {
    sep.stats().retries_throttled.fetch_add(1, std::memory_order_relaxed);
    return PostResult::Throttled;
  }

  RxSlot slot;
  if (!dep.take_rx_slot(slot)) {
    sep.stats().retries_no_rx.fetch_add(1, std::memory_order_relaxed);
    return PostResult::NoRxBuffer;
  }
  if (meta.size > slot.capacity) {
    dep.return_rx_slot(slot);
    return PostResult::TooLarge;
  }

  if (config_.doorbell_cost_ns > 0) rt::spin_for_ns(config_.doorbell_cost_ns);

  if (meta.size > 0) std::memcpy(slot.buffer, payload, meta.size);
  meta.src = src;

  Cqe cqe;
  cqe.kind = Cqe::Kind::Recv;
  cqe.meta = meta;
  cqe.buffer = slot.buffer;
  cqe.rx_context = slot.context;
  cqe.deliver_at_ns = delivery_time_ns(meta.size);

  if (!dep.push_cqe(cqe)) {
    dep.return_rx_slot(slot);
    sep.stats().retries_cq_full.fetch_add(1, std::memory_order_relaxed);
    return PostResult::CqFull;
  }

  sep.stats().sends.fetch_add(1, std::memory_order_relaxed);
  sep.stats().bytes_tx.fetch_add(meta.size, std::memory_order_relaxed);
  return PostResult::Ok;
}

PostResult Fabric::post_put(Rank src, Rank dst, RKey rkey, std::size_t offset,
                            const void* payload, std::size_t size, bool notify,
                            MsgMeta meta) {
  if (src >= endpoints_.size() || dst >= endpoints_.size())
    return PostResult::Invalid;

  Endpoint& sep = *endpoints_[src];
  Endpoint& dep = *endpoints_[dst];

  if (!sep.consume_injection_token()) {
    sep.stats().retries_throttled.fetch_add(1, std::memory_order_relaxed);
    return PostResult::Throttled;
  }

  void* target = nullptr;
  if (!dep.resolve_region(rkey, offset, size, &target))
    return PostResult::Invalid;

  if (config_.doorbell_cost_ns > 0) rt::spin_for_ns(config_.doorbell_cost_ns);

  if (size > 0) std::memcpy(target, payload, size);

  if (notify) {
    meta.src = src;
    meta.size = static_cast<std::uint32_t>(size);
    Cqe cqe;
    cqe.kind = Cqe::Kind::PutImm;
    cqe.meta = meta;
    cqe.deliver_at_ns = delivery_time_ns(size);
    // A put notification consumes no rx buffer, but the CQ is still bounded.
    // Retry from the caller would re-copy the data, which is harmless
    // (idempotent write), so surface CqFull softly as well.
    if (!dep.push_cqe(cqe)) {
      sep.stats().retries_cq_full.fetch_add(1, std::memory_order_relaxed);
      return PostResult::CqFull;
    }
  }

  sep.stats().puts.fetch_add(1, std::memory_order_relaxed);
  sep.stats().bytes_tx.fetch_add(size, std::memory_order_relaxed);
  return PostResult::Ok;
}

}  // namespace lcr::fabric
