#include "fabric/fabric.hpp"

#include <cstdio>
#include <cstring>

#include "runtime/cpu_relax.hpp"
#include "runtime/rng.hpp"
#include "runtime/timer.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"

namespace lcr::fabric {

Fabric::Fabric(std::size_t num_ranks, FabricConfig config)
    : config_(std::move(config)) {
  endpoints_.reserve(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r)
    endpoints_.emplace_back(
        new Endpoint(static_cast<Rank>(r), &config_));
  if (config_.fault.enabled())
    link_ops_.reset(
        new std::atomic<std::uint64_t>[num_ranks * num_ranks]());
  alive_.reset(new std::atomic<bool>[num_ranks]);
  for (std::size_t r = 0; r < num_ranks; ++r)
    alive_[r].store(true, std::memory_order_relaxed);
  if (config_.fault.kill_enabled())
    host_ops_.reset(new std::atomic<std::uint64_t>[num_ranks]());
  for (auto& ep : endpoints_) ep->fabric_epoch_ = &epoch_;
  msg_bytes_hist_ = &telemetry_.histogram("fabric.msg_bytes");
  stat_regs_.reserve(num_ranks);
  for (auto& ep : endpoints_)
    stat_regs_.push_back(
        telemetry_.register_probes(endpoint_stat_probes(ep->stats())));
}

void Fabric::kill_now(Rank victim) {
  if (victim >= endpoints_.size()) return;
  if (!alive_[victim].exchange(false, std::memory_order_acq_rel))
    return;  // already dead
  killed_at_op_.store(data_ops(victim), std::memory_order_relaxed);
  // Tear down the victim's endpoint: rx buffers, pending completions and
  // memory registrations vanish with the host, so in-flight deliveries are
  // lost exactly like a machine losing power.
  endpoints_[victim]->detach();
  endpoints_[victim]->stats().host_kills.fetch_add(1,
                                                   std::memory_order_relaxed);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"host\":%u,\"epoch\":%u,\"op\":%llu}",
                victim, epoch_.load(std::memory_order_relaxed),
                static_cast<unsigned long long>(killed_at_op()));
  if (telemetry::enabled())
    telemetry::instant("fault", "host_kill", victim, buf);
  telemetry::flight_record(victim, "fault.host_kill", buf);
  if (kill_observer_) kill_observer_(victim);
}

void Fabric::revive(Rank host) {
  if (host >= endpoints_.size()) return;
  if (alive_[host].exchange(true, std::memory_order_acq_rel))
    return;  // was not dead
  // New incarnation: everything stamped with the old epoch is fenced at
  // poll_cq, so no packet from before the kill can reach the new layers.
  const std::uint32_t e =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"host\":%u,\"epoch\":%u}", host, e);
  if (telemetry::enabled())
    telemetry::instant("fault", "host_revive", host, buf);
  telemetry::flight_record(host, "fault.host_revive", buf);
}

void Fabric::note_round(Rank host, std::int64_t round) {
  const FaultProfile& fp = config_.fault;
  if (!fp.kill_enabled() || fp.kill_at_round < 0) return;
  if (static_cast<std::int32_t>(host) != fp.kill_host) return;
  if (round < fp.kill_at_round) return;
  if (kill_fired_.exchange(true, std::memory_order_acq_rel)) return;
  kill_now(host);
}

std::uint64_t Fabric::next_link_op(Rank src, Rank dst) {
  return link_ops_[src * endpoints_.size() + dst].fetch_add(
      1, std::memory_order_relaxed);
}

Fabric::FaultRoll Fabric::roll_faults(Rank src, Rank dst, std::uint64_t index,
                                      std::size_t payload_size) const {
  FaultRoll roll;
  const FaultProfile& fp = config_.fault;

  if (fp.brownout_ops > 0 && src == fp.brownout_src &&
      dst == fp.brownout_dst && index >= fp.brownout_start_op &&
      index < fp.brownout_start_op + fp.brownout_ops) {
    roll.drop = true;
    return roll;
  }

  // One splitmix64 stream per (seed, link, index): decisions are a pure
  // function of the operation's identity, never of wall-clock timing.
  std::uint64_t state = fp.seed;
  state ^= rt::hash64((static_cast<std::uint64_t>(src) << 32) | dst);
  state ^= rt::hash64(index * 0x9e3779b97f4a7c15ULL);
  auto draw = [&state]() {
    return static_cast<double>(rt::splitmix64(state) >> 11) * 0x1.0p-53;
  };

  if (fp.drop_rate > 0.0 && draw() < fp.drop_rate) {
    roll.drop = true;
    return roll;  // a dropped packet has no other observable faults
  }
  if (fp.dup_rate > 0.0 && draw() < fp.dup_rate) roll.dup = true;
  if (fp.corrupt_rate > 0.0 && draw() < fp.corrupt_rate &&
      payload_size > 0) {
    roll.corrupt = true;
    roll.corrupt_byte =
        static_cast<std::size_t>(rt::splitmix64(state) % payload_size);
  }
  if (fp.reorder_rate > 0.0 && draw() < fp.reorder_rate) roll.reorder = true;
  if (fp.delay_rate > 0.0 && draw() < fp.delay_rate)
    roll.delay_ns = static_cast<std::uint64_t>(fp.delay.count());
  return roll;
}

std::uint64_t Fabric::delivery_time_ns(std::size_t bytes) const {
  std::uint64_t t = rt::now_ns();
  t += static_cast<std::uint64_t>(config_.wire_latency.count());
  if (config_.bandwidth_Bps > 0.0)
    t += static_cast<std::uint64_t>(
        static_cast<double>(bytes) / config_.bandwidth_Bps * 1e9);
  return t;
}

PostResult Fabric::post_send(Rank src, Rank dst, const void* payload,
                             MsgMeta meta) {
  if (src >= endpoints_.size() || dst >= endpoints_.size())
    return PostResult::Invalid;
  if (meta.size > config_.mtu) return PostResult::TooLarge;

  // Fail-stop semantics: posts from a dead host vanish into its detached
  // NIC; posts to a dead host report delivery failure instead of silence.
  if (!alive_[src].load(std::memory_order_acquire)) return PostResult::Ok;
  if (!alive_[dst].load(std::memory_order_acquire)) return PostResult::Down;

  Endpoint& sep = *endpoints_[src];
  Endpoint& dep = *endpoints_[dst];

  if (!sep.consume_injection_token()) {
    sep.stats().retries_throttled.fetch_add(1, std::memory_order_relaxed);
    return PostResult::Throttled;
  }

  FaultRoll roll;
  if (link_ops_)
    roll = roll_faults(src, dst, next_link_op(src, dst), meta.size);
  if (roll.drop) {
    // Vanishes in flight: the sender sees a normal local completion.
    sep.stats().faults_dropped.fetch_add(1, std::memory_order_relaxed);
    sep.stats().sends.fetch_add(1, std::memory_order_relaxed);
    sep.stats().bytes_tx.fetch_add(meta.size, std::memory_order_relaxed);
    if (telemetry::enabled() && meta.trace_id != 0) {
      char hbuf[48];
      std::snprintf(hbuf, sizeof(hbuf), "{\"dst\":%u,\"seq\":%u}", dst,
                    meta.seq);
      // From the sender's view the post succeeded; the wire ate it. Record
      // both so stitched flows read post -> drop per attempt.
      telemetry::hop("post", src, meta.trace_id, meta.trace_hop, hbuf);
      telemetry::hop("drop", src, meta.trace_id, meta.trace_hop, hbuf);
    }
    return PostResult::Ok;
  }

  // Header-only control packets (reliability acks/probes) bypass the rx
  // window so acknowledgements can land even when it is exhausted.
  const bool ctrl = (meta.rel & kRelCtrl) != 0;
  if (ctrl && meta.size != 0) return PostResult::Invalid;

  RxSlot slot;
  if (!ctrl) {
    if (!dep.take_rx_slot(slot)) {
      sep.stats().retries_no_rx.fetch_add(1, std::memory_order_relaxed);
      return PostResult::NoRxBuffer;
    }
    if (meta.size > slot.capacity) {
      dep.return_rx_slot(slot);
      return PostResult::TooLarge;
    }
  }

  // Kill-at-op trigger: counts the victim's accepted data operations only
  // (control traffic retransmits on timing-dependent schedules, data posts
  // are deterministic per round on a loss-free fabric).
  if (host_ops_ && !ctrl) {
    const std::uint64_t op =
        host_ops_[src].fetch_add(1, std::memory_order_relaxed) + 1;
    const FaultProfile& fp = config_.fault;
    if (static_cast<std::int32_t>(src) == fp.kill_host &&
        fp.kill_at_op > 0 && op == fp.kill_at_op &&
        !kill_fired_.exchange(true, std::memory_order_acq_rel)) {
      dep.return_rx_slot(slot);
      kill_now(src);
      return PostResult::Ok;  // the operation dies with the host
    }
  }

  if (config_.doorbell_cost_ns > 0) rt::spin_for_ns(config_.doorbell_cost_ns);

  if (meta.size > 0) std::memcpy(slot.buffer, payload, meta.size);
  if (roll.corrupt && meta.size > 0) {
    static_cast<unsigned char*>(slot.buffer)[roll.corrupt_byte] ^= 0x10;
    sep.stats().faults_corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  meta.src = src;

  Cqe cqe;
  cqe.kind = Cqe::Kind::Recv;
  cqe.meta = meta;
  cqe.buffer = ctrl ? nullptr : slot.buffer;
  cqe.rx_context = ctrl ? kCtrlRxContext : slot.context;
  cqe.deliver_at_ns = delivery_time_ns(meta.size) + roll.delay_ns;
  cqe.epoch = epoch_.load(std::memory_order_relaxed);

  if (!dep.push_cqe(cqe, roll.reorder)) {
    if (!ctrl) dep.return_rx_slot(slot);
    sep.stats().retries_cq_full.fetch_add(1, std::memory_order_relaxed);
    return PostResult::CqFull;
  }
  if (roll.delay_ns > 0)
    sep.stats().faults_delayed.fetch_add(1, std::memory_order_relaxed);
  if (roll.reorder)
    sep.stats().faults_reordered.fetch_add(1, std::memory_order_relaxed);

  if (roll.dup) {
    // Second delivery of the same wire bytes; best effort - a duplicate
    // that finds no buffer/CQ space is just a drop of the duplicate.
    Cqe dup_cqe = cqe;
    RxSlot dup_slot;
    bool deliver = true;
    if (!ctrl) {
      if (!dep.take_rx_slot(dup_slot)) {
        deliver = false;
      } else if (meta.size > dup_slot.capacity) {
        dep.return_rx_slot(dup_slot);
        deliver = false;
      } else {
        if (meta.size > 0)
          std::memcpy(dup_slot.buffer, slot.buffer, meta.size);
        dup_cqe.buffer = dup_slot.buffer;
        dup_cqe.rx_context = dup_slot.context;
      }
    }
    if (deliver) {
      if (dep.push_cqe(dup_cqe))
        sep.stats().faults_duplicated.fetch_add(1, std::memory_order_relaxed);
      else if (!ctrl)
        dep.return_rx_slot(dup_slot);
    }
  }

  sep.stats().sends.fetch_add(1, std::memory_order_relaxed);
  sep.stats().bytes_tx.fetch_add(meta.size, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    msg_bytes_hist_->record(meta.size);
    if (meta.trace_id != 0) {
      char hbuf[64];
      std::snprintf(hbuf, sizeof(hbuf), "{\"dst\":%u,\"seq\":%u,\"bytes\":%u}",
                    dst, meta.seq, meta.size);
      telemetry::hop("post", src, meta.trace_id, meta.trace_hop, hbuf);
    }
  }
  return PostResult::Ok;
}

PostResult Fabric::post_put(Rank src, Rank dst, RKey rkey, std::size_t offset,
                            const void* payload, std::size_t size, bool notify,
                            MsgMeta meta) {
  if (src >= endpoints_.size() || dst >= endpoints_.size())
    return PostResult::Invalid;

  if (!alive_[src].load(std::memory_order_acquire)) return PostResult::Ok;
  if (!alive_[dst].load(std::memory_order_acquire)) return PostResult::Down;

  Endpoint& sep = *endpoints_[src];
  Endpoint& dep = *endpoints_[dst];

  if (!sep.consume_injection_token()) {
    sep.stats().retries_throttled.fetch_add(1, std::memory_order_relaxed);
    return PostResult::Throttled;
  }

  void* target = nullptr;
  if (!dep.resolve_region(rkey, offset, size, &target))
    return PostResult::Invalid;

  FaultRoll roll;
  if (link_ops_) roll = roll_faults(src, dst, next_link_op(src, dst), size);
  if (roll.drop) {
    // The whole RDMA operation vanishes: no data is written, no completion
    // is delivered, the sender sees a normal local completion.
    sep.stats().faults_dropped.fetch_add(1, std::memory_order_relaxed);
    sep.stats().puts.fetch_add(1, std::memory_order_relaxed);
    sep.stats().bytes_tx.fetch_add(size, std::memory_order_relaxed);
    if (telemetry::enabled() && meta.trace_id != 0) {
      char hbuf[48];
      std::snprintf(hbuf, sizeof(hbuf), "{\"dst\":%u,\"seq\":%u}", dst,
                    meta.seq);
      // Sender-visible success first, then the loss (see post_send).
      telemetry::hop("post", src, meta.trace_id, meta.trace_hop, hbuf);
      telemetry::hop("drop", src, meta.trace_id, meta.trace_hop, hbuf);
    }
    return PostResult::Ok;
  }

  if (host_ops_ && !(meta.rel & kRelCtrl)) {
    const std::uint64_t op =
        host_ops_[src].fetch_add(1, std::memory_order_relaxed) + 1;
    const FaultProfile& fp = config_.fault;
    if (static_cast<std::int32_t>(src) == fp.kill_host &&
        fp.kill_at_op > 0 && op == fp.kill_at_op &&
        !kill_fired_.exchange(true, std::memory_order_acq_rel)) {
      kill_now(src);
      return PostResult::Ok;  // no bytes written: the host died mid-post
    }
  }

  if (config_.doorbell_cost_ns > 0) rt::spin_for_ns(config_.doorbell_cost_ns);

  if (size > 0) std::memcpy(target, payload, size);
  if (roll.corrupt && size > 0) {
    static_cast<unsigned char*>(target)[roll.corrupt_byte] ^= 0x10;
    sep.stats().faults_corrupted.fetch_add(1, std::memory_order_relaxed);
  }

  if (notify) {
    meta.src = src;
    meta.size = static_cast<std::uint32_t>(size);
    Cqe cqe;
    cqe.kind = Cqe::Kind::PutImm;
    cqe.meta = meta;
    cqe.buffer = target;  // lets the reliability layer checksum landed data
    cqe.deliver_at_ns = delivery_time_ns(size) + roll.delay_ns;
    cqe.epoch = epoch_.load(std::memory_order_relaxed);
    // A put notification consumes no rx buffer, but the CQ is still bounded.
    // Retry from the caller would re-copy the data, which is harmless
    // (idempotent write), so surface CqFull softly as well.
    if (!dep.push_cqe(cqe, roll.reorder)) {
      sep.stats().retries_cq_full.fetch_add(1, std::memory_order_relaxed);
      return PostResult::CqFull;
    }
    if (roll.delay_ns > 0)
      sep.stats().faults_delayed.fetch_add(1, std::memory_order_relaxed);
    if (roll.reorder)
      sep.stats().faults_reordered.fetch_add(1, std::memory_order_relaxed);
    if (roll.dup && dep.push_cqe(cqe))
      sep.stats().faults_duplicated.fetch_add(1, std::memory_order_relaxed);
  }

  sep.stats().puts.fetch_add(1, std::memory_order_relaxed);
  sep.stats().bytes_tx.fetch_add(size, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    msg_bytes_hist_->record(size);
    if (meta.trace_id != 0) {
      char hbuf[64];
      std::snprintf(hbuf, sizeof(hbuf), "{\"dst\":%u,\"seq\":%u,\"bytes\":%zu}",
                    dst, meta.seq, size);
      telemetry::hop("post", src, meta.trace_id, meta.trace_hop, hbuf);
    }
  }
  return PostResult::Ok;
}

}  // namespace lcr::fabric
