#include "fabric/reliable.hpp"

#include <cstdio>
#include <cstring>
#include <mutex>

// Layering note: the reliability channel never interprets payload bytes -
// with one read-only exception. comm/message.hpp is a dependency-free,
// header-only description of the engine framing, and peeking its ChunkHeader
// here is how a sampled message's trace context crosses from the engine wire
// format into the fabric-level MsgMeta without every backend re-implementing
// the stamp (DESIGN.md §14).
#include "comm/message.hpp"
#include "runtime/crc32.hpp"
#include "runtime/timer.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"

namespace lcr::fabric {

namespace {

/// Sequence comparison tolerant of 32-bit wraparound.
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// CRC-32 over the header fields that identify an operation plus its
/// payload. Excludes `src` (stamped by the fabric after posting), `rel` and
/// `ack` (both mutate per transmission attempt), and `crc` itself.
std::uint32_t meta_crc(const MsgMeta& m, const void* payload) {
  std::uint32_t c = rt::crc32_init();
  c = rt::crc32_update(c, &m.kind, sizeof(m.kind));
  c = rt::crc32_update(c, &m.tag, sizeof(m.tag));
  c = rt::crc32_update(c, &m.size, sizeof(m.size));
  c = rt::crc32_update(c, &m.imm, sizeof(m.imm));
  c = rt::crc32_update(c, &m.imm2, sizeof(m.imm2));
  c = rt::crc32_update(c, &m.seq, sizeof(m.seq));
  if (m.size > 0 && payload != nullptr)
    c = rt::crc32_update(c, payload, m.size);
  return rt::crc32_final(c);
}

/// Best-effort lift of the causal-trace context out of an outgoing payload's
/// engine framing header into the fabric-level MsgMeta, where every
/// downstream stage (fabric post/drop, retransmit, delivery) can see it
/// without touching payload bytes again. The ChunkHeader's Fletcher
/// self-check plus field constraints make a false positive on non-engine
/// payloads (control tails, raw records) negligible; anything that fails the
/// peek simply travels unstamped. MPI-probe aggregates length-prefix each
/// framed record, so the first record is also tried at a 4-byte offset
/// (later records of an aggregate are untraced - documented best-effort).
void stamp_trace(MsgMeta& meta, const void* payload, std::size_t size) {
  if (meta.trace_id != 0) return;  // already stamped upstream
  if (payload == nullptr || !telemetry::enabled() ||
      telemetry::trace_sample_every() == 0)
    return;
  const auto* bytes = static_cast<const std::byte*>(payload);
  comm::ChunkHeader h;
  if (size >= comm::kChunkHeaderBytes) {
    std::memcpy(&h, bytes, sizeof(h));
    if (h.valid() && h.trace_id != 0) {
      meta.trace_id = h.trace_id;
      meta.trace_hop = h.trace_hop;
      return;
    }
  }
  if (size >= sizeof(std::uint32_t) + comm::kChunkHeaderBytes) {
    std::uint32_t rec = 0;
    std::memcpy(&rec, bytes, sizeof(rec));
    if (rec >= comm::kChunkHeaderBytes && rec <= size - sizeof(rec)) {
      std::memcpy(&h, bytes + sizeof(rec), sizeof(h));
      if (h.valid() && h.trace_id != 0) {
        meta.trace_id = h.trace_id;
        meta.trace_hop = h.trace_hop;
      }
    }
  }
}

}  // namespace

ReliableChannel::ReliableChannel(Fabric& fabric, Rank rank,
                                 ReliabilityConfig cfg, const char* owner)
    : fabric_(fabric),
      endpoint_(fabric.endpoint(rank)),
      rank_(rank),
      cfg_(cfg),
      owner_(owner),
      active_(fabric.config().reliable()),
      tx_links_(fabric.num_ranks()),
      rx_links_(fabric.num_ranks()) {
  // Keep sender window and receiver reorder window coherent: any packet
  // posted more than reorder_window ahead of the cumulative ack is refused
  // on arrival, so a larger ring only manufactures guaranteed retransmits.
  if (cfg_.ring_capacity > cfg_.reorder_window)
    cfg_.ring_capacity = cfg_.reorder_window;
  if (cfg_.max_held >= cfg_.reorder_window)
    cfg_.max_held = cfg_.reorder_window - 1;
  if (active_) {
    held_hist_ = &fabric.telemetry().histogram("rel.held_occupancy");
    rtx_gap_hist_ = &fabric.telemetry().histogram("rel.retransmit_gap_ns");
  }
}

std::uint64_t ReliableChannel::proto_now() {
  if (cfg_.tick_clock)
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  return rt::now_ns();
}

std::uint64_t ReliableChannel::rto_for(std::uint32_t attempts) const {
  const std::uint32_t shift = attempts < 16 ? attempts : 16;
  const std::uint64_t rto = cfg_.rto_ns << shift;
  return rto < cfg_.rto_max_ns ? rto : cfg_.rto_max_ns;
}

void ReliableChannel::stamp_ack(Rank dst, MsgMeta& meta) {
  // Lock-free piggyback on the data fast path: a slightly stale cumulative
  // ack is still a valid cumulative ack, and the standalone ack path owns
  // nack / ack_dirty flushing. The unsynchronized counter reset can lose a
  // concurrent increment; worst case the next cumulative ack rides the
  // rto/4 timer and the peer retransmits once - benign, never incorrect.
  RxLink& rx = rx_links_[dst];
  meta.rel |= kRelAck;
  meta.ack = rx.expected.load(std::memory_order_relaxed);
  if (rx.delivered_since_ack.load(std::memory_order_relaxed) != 0)
    rx.delivered_since_ack.store(0, std::memory_order_relaxed);
}

PostResult ReliableChannel::post_entry(Rank dst, TxEntry& e) {
  stamp_ack(dst, e.meta);
  if (e.is_put)
    return fabric_.post_put(rank_, dst, e.rkey, e.offset,
                            e.payload.empty() ? nullptr : e.payload.data(),
                            e.meta.size, /*notify=*/true, e.meta);
  return fabric_.post_send(rank_, dst,
                           e.payload.empty() ? nullptr : e.payload.data(),
                           e.meta);
}

PostResult ReliableChannel::send(Rank dst, const void* payload, MsgMeta meta) {
  stamp_trace(meta, payload, meta.size);
  if (!active_) return fabric_.post_send(rank_, dst, payload, meta);
  if (dst >= tx_links_.size()) return PostResult::Invalid;
  if (meta.size > fabric_.config().mtu) return PostResult::TooLarge;

  TxLink& tx = tx_links_[dst];
  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      std::lock_guard<rt::Spinlock> guard(tx.lock);
      // Dead peer: swallow the operation. The membership layer has already
      // been told; recovery discards all protocol state on both sides.
      if (tx.down) return PostResult::Ok;
      if (tx.ring.size() < cfg_.ring_capacity) {
        TxEntry e;
        e.seq = tx.next_seq;
        e.meta = meta;
        e.meta.rel |= kRelSeq;
        e.meta.seq = e.seq;
        e.meta.crc = meta_crc(e.meta, payload);
        if (meta.size > 0) {
          if (!tx.spares.empty()) {
            e.payload = std::move(tx.spares.back());
            tx.spares.pop_back();
          }
          const auto* p = static_cast<const std::byte*>(payload);
          e.payload.assign(p, p + meta.size);
        }
        const std::uint64_t now =
            cfg_.tick_clock ? tick_.load(std::memory_order_relaxed)
                            : rt::now_ns();
        e.last_tx = now;
        e.last_data_tx = now;
        const PostResult r = post_entry(dst, e);
        if (r == PostResult::TooLarge || r == PostResult::Invalid) return r;
        if (r == PostResult::Down) {
          note_down(dst, tx);
          return PostResult::Ok;
        }
        e.posted_ok = (r == PostResult::Ok);
        tx.next_seq++;
        tx.ring.push_back(std::move(e));
        tx.inflight.store(tx.ring.size(), std::memory_order_relaxed);
        inflight_.fetch_add(1, std::memory_order_relaxed);
        endpoint_.stats().rel_data_tx.fetch_add(1, std::memory_order_relaxed);
        note_progress(now);
        return PostResult::Ok;
      }
    }
    // Ring full: reap acks once, then retry; never surfaces data (pump
    // stages those for poll), so this is safe from blocked send paths.
    if (attempt == 0) pump();
  }
  return PostResult::RetransmitFull;
}

PostResult ReliableChannel::put(Rank dst, RKey rkey, std::size_t offset,
                                const void* payload, std::size_t size,
                                bool notify, MsgMeta meta) {
  stamp_trace(meta, payload, size);
  if (!active_)
    return fabric_.post_put(rank_, dst, rkey, offset, payload, size, notify,
                            meta);
  if (dst >= tx_links_.size()) return PostResult::Invalid;

  TxLink& tx = tx_links_[dst];
  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      std::lock_guard<rt::Spinlock> guard(tx.lock);
      if (tx.down) return PostResult::Ok;
      if (tx.ring.size() < cfg_.ring_capacity) {
        TxEntry e;
        e.seq = tx.next_seq;
        e.is_put = true;
        e.rkey = rkey;
        e.offset = offset;
        e.meta = meta;
        e.meta.size = static_cast<std::uint32_t>(size);
        e.meta.rel |= kRelSeq;
        if (!notify) e.meta.rel |= kRelBare;
        e.meta.seq = e.seq;
        e.meta.crc = meta_crc(e.meta, payload);
        if (size > 0) {
          if (!tx.spares.empty()) {
            e.payload = std::move(tx.spares.back());
            tx.spares.pop_back();
          }
          const auto* p = static_cast<const std::byte*>(payload);
          e.payload.assign(p, p + size);
        }
        const std::uint64_t now =
            cfg_.tick_clock ? tick_.load(std::memory_order_relaxed)
                            : rt::now_ns();
        e.last_tx = now;
        e.last_data_tx = now;
        const PostResult r = post_entry(dst, e);
        if (r == PostResult::TooLarge || r == PostResult::Invalid) return r;
        if (r == PostResult::Down) {
          note_down(dst, tx);
          return PostResult::Ok;
        }
        e.posted_ok = (r == PostResult::Ok);
        tx.next_seq++;
        tx.ring.push_back(std::move(e));
        tx.inflight.store(tx.ring.size(), std::memory_order_relaxed);
        inflight_.fetch_add(1, std::memory_order_relaxed);
        endpoint_.stats().rel_data_tx.fetch_add(1, std::memory_order_relaxed);
        note_progress(now);
        return PostResult::Ok;
      }
    }
    if (attempt == 0) pump();
  }
  return PostResult::RetransmitFull;
}

void ReliableChannel::recycle(const Cqe& cqe) {
  if (cqe.kind == Cqe::Kind::Recv && recycle_) recycle_(cqe);
}

void ReliableChannel::handle_ack(Rank peer, std::uint32_t ack,
                                 std::uint32_t nack_plus1) {
  TxLink& tx = tx_links_[peer];
  std::lock_guard<rt::Spinlock> guard(tx.lock);
  endpoint_.stats().rel_acks_rx.fetch_add(1, std::memory_order_relaxed);
  bool advanced = false;
  while (!tx.ring.empty() && seq_lt(tx.ring.front().seq, ack)) {
    TxEntry& front = tx.ring.front();
    if (front.payload.capacity() > 0 && tx.spares.size() < 64)
      tx.spares.push_back(std::move(front.payload));
    tx.ring.pop_front();
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    advanced = true;
  }
  if (advanced)
    tx.inflight.store(tx.ring.size(), std::memory_order_relaxed);
  if (seq_lt(tx.acked, ack)) tx.acked = ack;
  const std::uint64_t now = cfg_.tick_clock
                                ? tick_.load(std::memory_order_relaxed)
                                : rt::now_ns();
  if (advanced) note_progress(now);

  if (nack_plus1 != 0) {
    // Explicit retransmit request: the receiver confirmed this sequence
    // number did not arrive, so a full re-send/re-put is safe.
    const std::uint32_t want = nack_plus1 - 1;
    for (TxEntry& e : tx.ring) {
      if (e.seq != want) continue;
      // First nack for a never-retransmitted entry is always genuine - act
      // on it immediately. After that, rate-limit: several receiver-side
      // events can nack the same gap head before the re-send lands, and a
      // probe answered by this nack must not suppress the re-send it asked
      // for (hence the guard runs on last *data* transmission).
      if (e.attempts == 0 || now - e.last_data_tx >= cfg_.rto_ns / 4) {
        if (telemetry::enabled() && now > e.last_data_tx)
          rtx_gap_hist_->record(now - e.last_data_tx);
        if (e.meta.trace_id != 0) {
          e.meta.trace_hop = static_cast<std::uint8_t>(
              e.attempts < 0xFF ? e.attempts + 1 : 0xFF);
          if (telemetry::enabled()) {
            char hbuf[64];
            std::snprintf(hbuf, sizeof(hbuf),
                          "{\"peer\":%u,\"seq\":%u,\"cause\":\"nack\"}", peer,
                          e.seq);
            telemetry::hop("retransmit", rank_, e.meta.trace_id,
                           e.attempts + 1, hbuf);
          }
        }
        const PostResult r = post_entry(peer, e);
        if (r == PostResult::Down) {
          note_down(peer, tx);
          return;
        }
        if (r == PostResult::Ok) e.posted_ok = true;
        e.last_tx = now;
        e.last_data_tx = now;
        e.attempts++;
        endpoint_.stats().rel_retransmits.fetch_add(
            1, std::memory_order_relaxed);
      }
      break;
    }
  }
}

void ReliableChannel::handle_probe(Rank peer, std::uint32_t seq) {
  RxLink& rx = rx_links_[peer];
  std::lock_guard<rt::Spinlock> guard(rx.lock);
  const std::uint32_t expected = rx.expected.load(std::memory_order_relaxed);
  if (seq_lt(seq, expected) || rx.held.count(seq) != 0) {
    // Delivered (or buffered): the cumulative ack answers the probe; for a
    // held seq the nack below additionally requests the gap head.
    if (rx.held.count(seq) != 0) rx.nack_seq_plus1 = expected + 1;
  } else {
    // Lost: ask for it (go-back-N from the gap head).
    rx.nack_seq_plus1 = expected + 1;
  }
  rx.ack_dirty.store(true, std::memory_order_relaxed);
}

void ReliableChannel::handle_data(Cqe& cqe) {
  const MsgMeta& m = cqe.meta;
  RxLink& rx = rx_links_[m.src];
  std::lock_guard<rt::Spinlock> guard(rx.lock);

  const std::uint32_t seq = m.seq;
  const std::uint32_t expected = rx.expected.load(std::memory_order_relaxed);
  if (seq_lt(seq, expected) || rx.held.count(seq) != 0) {
    // Duplicate (retransmission of something already delivered, or a
    // fault-injected duplicate delivery).
    endpoint_.stats().rel_dup_dropped.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled() && m.trace_id != 0) {
      char hbuf[48];
      std::snprintf(hbuf, sizeof(hbuf), "{\"src\":%u,\"seq\":%u}", m.src, seq);
      telemetry::hop("dup", rank_, m.trace_id, m.trace_hop, hbuf);
    }
    rx.ack_dirty.store(true, std::memory_order_relaxed);
    recycle(cqe);
    return;
  }

  // Integrity check before anything is surfaced. For puts this checksums
  // the landed bytes in the registered target region.
  if (meta_crc(m, cqe.buffer) != m.crc) {
    endpoint_.stats().rel_crc_dropped.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled() && m.trace_id != 0) {
      char hbuf[64];
      std::snprintf(hbuf, sizeof(hbuf),
                    "{\"src\":%u,\"seq\":%u,\"cause\":\"crc\"}", m.src, seq);
      telemetry::hop("nack", rank_, m.trace_id, m.trace_hop, hbuf);
    }
    rx.nack_seq_plus1 = seq + 1;  // confirmed damaged: request a re-send
    rx.ack_dirty.store(true, std::memory_order_relaxed);
    recycle(cqe);
    return;
  }

  auto deliver = [&](Cqe& ready) {
    rx.expected.fetch_add(1, std::memory_order_relaxed);
    rx.delivered_since_ack.fetch_add(1, std::memory_order_relaxed);
    endpoint_.stats().rel_delivered.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled() && ready.meta.trace_id != 0) {
      char hbuf[48];
      std::snprintf(hbuf, sizeof(hbuf), "{\"src\":%u,\"seq\":%u}",
                    ready.meta.src, ready.meta.seq);
      telemetry::hop("deliver", rank_, ready.meta.trace_id,
                     ready.meta.trace_hop, hbuf);
    }
    if (ready.meta.rel & kRelBare) {
      // Transport-internal put notification: acked but never surfaced.
      recycle(ready);
    } else {
      std::lock_guard<rt::Spinlock> rguard(ready_lock_);
      ready_.push_back(ready);
      ready_count_.fetch_add(1, std::memory_order_release);
    }
  };

  if (seq == expected) {
    deliver(cqe);
    // Drain any held completions the gap was blocking.
    for (auto it = rx.held.find(rx.expected.load(std::memory_order_relaxed));
         it != rx.held.end();
         it = rx.held.find(rx.expected.load(std::memory_order_relaxed))) {
      Cqe held = it->second;
      rx.held.erase(it);
      deliver(held);
    }
    // Packets still held past the drain mean the next gap head was also
    // lost: chain the retransmit request now instead of letting recovery
    // serialize on one sender RTO per gap.
    if (!rx.held.empty()) {
      rx.nack_seq_plus1 = rx.expected.load(std::memory_order_relaxed) + 1;
      rx.ack_dirty.store(true, std::memory_order_relaxed);
    }
    const std::uint64_t now = cfg_.tick_clock
                                  ? tick_.load(std::memory_order_relaxed)
                                  : rt::now_ns();
    note_progress(now);
    return;
  }

  // Out of order: hold a bounded number; drop the rest (the sender's
  // go-back-N retransmission covers them). The bound keeps held packets
  // from pinning the whole receive window while the gap is in flight.
  if (rx.held.size() < cfg_.max_held && seq - expected < cfg_.reorder_window) {
    rx.held.emplace(seq, cqe);
    endpoint_.stats().rel_ooo_held.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) held_hist_->record(rx.held.size());
  } else {
    endpoint_.stats().rel_ooo_dropped.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled() && m.trace_id != 0) {
      char hbuf[48];
      std::snprintf(hbuf, sizeof(hbuf), "{\"src\":%u,\"seq\":%u}", m.src, seq);
      telemetry::hop("ooo_drop", rank_, m.trace_id, m.trace_hop, hbuf);
    }
    recycle(cqe);
  }
  rx.nack_seq_plus1 = expected + 1;  // request the gap head
  rx.ack_dirty.store(true, std::memory_order_relaxed);
}

void ReliableChannel::service_tx(std::uint64_t now) {
  if (inflight_.load(std::memory_order_relaxed) == 0) return;
  for (Rank dst = 0; dst < tx_links_.size(); ++dst) {
    TxLink& tx = tx_links_[dst];
    if (tx.inflight.load(std::memory_order_relaxed) == 0) continue;
    std::lock_guard<rt::Spinlock> guard(tx.lock);
    if (tx.ring.empty()) continue;

    // First-chance flush of entries whose initial post was refused
    // (NoRxBuffer / Throttled / CqFull); keep posting order.
    bool down = false;
    for (TxEntry& e : tx.ring) {
      if (e.posted_ok) continue;
      const PostResult r = post_entry(dst, e);
      if (r == PostResult::Down) {
        down = true;
        break;
      }
      if (r != PostResult::Ok) break;
      e.posted_ok = true;
      e.last_tx = now;
      e.last_data_tx = now;
    }
    if (down) {
      note_down(dst, tx);
      continue;
    }

    // Timeout-driven recovery on the oldest unacked operation. Eager sends
    // are re-sent directly; puts are probed first, because re-writing a
    // region whose original delivery merely lost its ack could clobber
    // data the receiver has already consumed.
    TxEntry& front = tx.ring.front();
    if (!front.posted_ok) continue;
    if (now - front.last_tx < rto_for(front.attempts)) continue;
    if (front.is_put) {
      MsgMeta probe;
      probe.kind = front.meta.kind;
      probe.rel = kRelCtrl | kRelProbe;
      probe.seq = front.seq;
      if (telemetry::enabled() && front.meta.trace_id != 0) {
        char hbuf[48];
        std::snprintf(hbuf, sizeof(hbuf), "{\"peer\":%u,\"seq\":%u}", dst,
                      front.seq);
        telemetry::hop("probe", rank_, front.meta.trace_id,
                       front.attempts + 1, hbuf);
      }
      if (fabric_.post_send(rank_, dst, nullptr, probe) == PostResult::Down) {
        note_down(dst, tx);
        continue;
      }
      endpoint_.stats().rel_probes_tx.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (telemetry::enabled() && now > front.last_data_tx)
        rtx_gap_hist_->record(now - front.last_data_tx);
      if (front.meta.trace_id != 0) {
        front.meta.trace_hop = static_cast<std::uint8_t>(
            front.attempts < 0xFF ? front.attempts + 1 : 0xFF);
        if (telemetry::enabled()) {
          char hbuf[64];
          std::snprintf(hbuf, sizeof(hbuf),
                        "{\"peer\":%u,\"seq\":%u,\"cause\":\"rto\"}", dst,
                        front.seq);
          telemetry::hop("retransmit", rank_, front.meta.trace_id,
                         front.attempts + 1, hbuf);
        }
      }
      const PostResult r = post_entry(dst, front);
      if (r == PostResult::Down) {
        note_down(dst, tx);
        continue;
      }
      if (r == PostResult::Ok) front.posted_ok = true;
      front.last_data_tx = now;
      endpoint_.stats().rel_retransmits.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
    front.last_tx = now;
    front.attempts++;
    if (cfg_.suspect_after_attempts > 0 && !tx.suspected &&
        front.attempts >= cfg_.suspect_after_attempts)
      note_suspect(dst, tx, front.attempts);
  }
}

void ReliableChannel::note_suspect(Rank dst, TxLink& tx,
                                   std::uint32_t attempts) {
  tx.suspected = true;
  endpoint_.stats().rel_suspected_dead.fetch_add(1, std::memory_order_relaxed);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"owner\":\"%s\",\"peer\":%u,\"attempts\":%u}", owner_, dst,
                attempts);
  if (telemetry::enabled()) telemetry::instant("rel", "suspect_dead", rank_, buf);
  telemetry::flight_record(rank_, "rel.suspect_dead", buf);
  fabric_.report_suspected_dead(rank_, dst);
}

void ReliableChannel::note_down(Rank dst, TxLink& tx) {
  if (tx.down) return;
  tx.down = true;
  const std::size_t dropped = tx.ring.size();
  for (TxEntry& e : tx.ring)
    if (e.payload.capacity() > 0 && tx.spares.size() < 64)
      tx.spares.push_back(std::move(e.payload));
  tx.ring.clear();
  tx.inflight.store(0, std::memory_order_relaxed);
  if (dropped > 0) inflight_.fetch_sub(dropped, std::memory_order_relaxed);
  if (!tx.suspected) {
    tx.suspected = true;
    endpoint_.stats().rel_suspected_dead.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"owner\":\"%s\",\"peer\":%u,\"dropped\":%zu}", owner_, dst,
                dropped);
  if (telemetry::enabled()) telemetry::instant("rel", "peer_down", rank_, buf);
  telemetry::flight_record(rank_, "rel.peer_down", buf);
  fabric_.report_suspected_dead(rank_, dst);
}

void ReliableChannel::send_ack(Rank peer, RxLink& rx) {
  MsgMeta meta;
  meta.rel = kRelCtrl | kRelAck;
  meta.ack = rx.expected.load(std::memory_order_relaxed);
  meta.imm = rx.nack_seq_plus1;
  const PostResult r = fabric_.post_send(rank_, peer, nullptr, meta);
  if (r == PostResult::Ok)
    endpoint_.stats().rel_acks_tx.fetch_add(1, std::memory_order_relaxed);
  // A dead peer needs no acknowledgements: clear the flags so the flush
  // loop does not spin on a link that will only be rebuilt after recovery.
  if (r == PostResult::Ok || r == PostResult::Down) {
    rx.delivered_since_ack.store(0, std::memory_order_relaxed);
    rx.ack_dirty.store(false, std::memory_order_relaxed);
    rx.nack_seq_plus1 = 0;
  }
}

void ReliableChannel::flush_acks(std::uint64_t now) {
  for (Rank peer = 0; peer < rx_links_.size(); ++peer) {
    RxLink& rx = rx_links_[peer];
    // Lock-free peek: quiet links (the common case) cost two relaxed loads.
    // A transition racing past the peek is flushed on the next pump.
    if (!rx.ack_dirty.load(std::memory_order_relaxed) &&
        rx.delivered_since_ack.load(std::memory_order_relaxed) == 0)
      continue;
    std::lock_guard<rt::Spinlock> guard(rx.lock);
    const std::uint32_t delivered =
        rx.delivered_since_ack.load(std::memory_order_relaxed);
    const bool due =
        rx.ack_dirty.load(std::memory_order_relaxed) ||
        delivered >= cfg_.ack_every ||
        (delivered > 0 && now - rx.last_ack_tx >= cfg_.rto_ns / 4);
    if (!due) continue;
    send_ack(peer, rx);
    rx.last_ack_tx = now;
  }
}

void ReliableChannel::pump() {
  if (!active_) return;
  // Wall-clock reads are deferred until some timer actually needs one; the
  // tick clock must still advance exactly once per pump for replay tests.
  std::uint64_t now = cfg_.tick_clock ? proto_now() : 0;

  while (auto cqe = endpoint_.poll_cq()) {
    const MsgMeta& m = cqe->meta;
    if (m.rel & kRelAck)
      handle_ack(m.src, m.ack, (m.rel & kRelCtrl) ? m.imm : 0);
    if (m.rel & kRelProbe) {
      handle_probe(m.src, m.seq);
      continue;
    }
    if (m.rel & kRelCtrl) continue;  // standalone ack: fully consumed
    if (m.rel & kRelSeq) {
      handle_data(*cqe);
    } else {
      // Unsequenced traffic on an active channel (e.g. a layer that posted
      // before reliability was wired): pass through untouched.
      std::lock_guard<rt::Spinlock> guard(ready_lock_);
      ready_.push_back(*cqe);
      ready_count_.fetch_add(1, std::memory_order_release);
    }
  }

  const bool tx_work = inflight_.load(std::memory_order_relaxed) != 0;
  bool ack_work = false;
  for (const RxLink& rx : rx_links_) {
    if (rx.ack_dirty.load(std::memory_order_relaxed) ||
        rx.delivered_since_ack.load(std::memory_order_relaxed) != 0) {
      ack_work = true;
      break;
    }
  }
  if (!tx_work && !ack_work) return;
  if (now == 0) now = rt::now_ns();

  service_tx(now);
  flush_acks(now);

  if (cfg_.watchdog_quiet_ns > 0) {
    const std::uint64_t last = last_progress_.load(std::memory_order_relaxed);
    if (now > last && now - last >= cfg_.watchdog_quiet_ns &&
        has_inflight()) {
      std::uint64_t dumped = last_dump_.load(std::memory_order_relaxed);
      if ((dumped == 0 || now - dumped >= cfg_.watchdog_quiet_ns) &&
          last_dump_.compare_exchange_strong(dumped, now,
                                             std::memory_order_relaxed)) {
        endpoint_.stats().rel_stall_dumps.fetch_add(
            1, std::memory_order_relaxed);
        dump_state("progress stall");
        // A stall is exactly the anomaly the flight recorder exists for:
        // snapshot the context and dump the ring while the evidence is hot.
        char fbuf[96];
        std::snprintf(fbuf, sizeof(fbuf),
                      "{\"owner\":\"%s\",\"quiet_ns\":%llu,\"inflight\":%zu}",
                      owner_,
                      static_cast<unsigned long long>(now - last),
                      inflight_.load(std::memory_order_relaxed));
        telemetry::flight_record(rank_, "rel.stall", fbuf);
        telemetry::flight_dump("rel_stall");
      }
    }
  }
}

std::optional<Cqe> ReliableChannel::poll() {
  if (!active_) return endpoint_.poll_cq();
  // Drain staged completions before pumping again: callers poll in a loop,
  // so the protocol still gets pumped on every empty poll, which is all
  // forward progress needs.
  if (ready_count_.load(std::memory_order_acquire) == 0) {
    pump();
    if (ready_count_.load(std::memory_order_acquire) == 0) return std::nullopt;
  }
  std::lock_guard<rt::Spinlock> guard(ready_lock_);
  if (ready_.empty()) return std::nullopt;
  Cqe out = ready_.front();
  ready_.pop_front();
  ready_count_.fetch_sub(1, std::memory_order_relaxed);
  return out;
}

bool ReliableChannel::has_inflight() const {
  return inflight_.load(std::memory_order_relaxed) != 0;
}

void ReliableChannel::dump_state(const char* reason) const {
  // Per-link state goes to stderr for humans and, when tracing is live, into
  // the trace as instant events so a stall is inspectable post-mortem next
  // to the spans it interrupted.
  const bool traced = telemetry::enabled();
  char buf[256];
  if (traced) {
    std::snprintf(buf, sizeof(buf), "{\"owner\":\"%s\",\"reason\":\"%s\"}",
                  owner_, reason);
    telemetry::instant("rel", "stall_dump", rank_, buf);
  }
  std::fprintf(stderr,
               "[reliable:%s rank=%u] %s - per-link protocol state:\n",
               owner_, rank_, reason);
  for (Rank dst = 0; dst < tx_links_.size(); ++dst) {
    const TxLink& tx = tx_links_[dst];
    std::lock_guard<rt::Spinlock> guard(tx.lock);
    if (tx.ring.empty() && tx.next_seq == 0) continue;
    const TxEntry* front = tx.ring.empty() ? nullptr : &tx.ring.front();
    // Watchdog triage: "slow" = making (or awaiting) progress, "suspect" =
    // bounded retransmission exhausted, "dead" = the fabric reported Down.
    const char* peer_state =
        tx.down ? "dead" : (tx.suspected ? "suspect" : "slow");
    std::fprintf(
        stderr,
        "  tx->%u: peer=%s in_flight=%zu next_seq=%u acked=%u front_seq=%d "
        "attempts=%u posted=%d put=%d\n",
        dst, peer_state, tx.ring.size(), tx.next_seq, tx.acked,
        front ? static_cast<int>(front->seq) : -1,
        front ? front->attempts : 0, front ? front->posted_ok : 0,
        front ? front->is_put : 0);
    if (traced) {
      std::snprintf(
          buf, sizeof(buf),
          "{\"peer\":%u,\"state\":\"%s\",\"in_flight\":%zu,\"next_seq\":%u,"
          "\"acked\":%u,\"front_seq\":%d,\"attempts\":%u,\"posted\":%d,"
          "\"put\":%d}",
          dst, peer_state, tx.ring.size(), tx.next_seq, tx.acked,
          front ? static_cast<int>(front->seq) : -1,
          front ? front->attempts : 0, front ? front->posted_ok : 0,
          front ? front->is_put : 0);
      telemetry::instant("rel", "stall_link_tx", rank_, buf);
    }
  }
  for (Rank src = 0; src < rx_links_.size(); ++src) {
    const RxLink& rx = rx_links_[src];
    std::lock_guard<rt::Spinlock> guard(rx.lock);
    const std::uint32_t expected =
        rx.expected.load(std::memory_order_relaxed);
    if (expected == 0 && rx.held.empty()) continue;
    std::fprintf(stderr,
                 "  rx<-%u: expected=%u held=%zu unacked_deliveries=%u "
                 "nack_pending=%u\n",
                 src, expected, rx.held.size(),
                 rx.delivered_since_ack.load(std::memory_order_relaxed),
                 rx.nack_seq_plus1);
    if (traced) {
      std::snprintf(
          buf, sizeof(buf),
          "{\"peer\":%u,\"expected\":%u,\"held\":%zu,"
          "\"unacked_deliveries\":%u,\"nack_pending\":%u}",
          src, expected, rx.held.size(),
          rx.delivered_since_ack.load(std::memory_order_relaxed),
          rx.nack_seq_plus1);
      telemetry::instant("rel", "stall_link_rx", rank_, buf);
    }
  }
}

}  // namespace lcr::fabric
