// The simulated network fabric connecting all host endpoints.
//
// Semantics (modelled on reliable-connection verbs / psm2):
//   * post_send: eager transfer of <= MTU bytes into a receive buffer the
//     target pre-posted. Completes locally at return (buffered-at-target).
//     Fails softly (PostResult) on missing rx buffers, throttling, or a full
//     target CQ - the caller must retry; nothing is lost.
//   * post_put: RDMA write of arbitrary size directly into a registered
//     region on the target; optionally delivers a PutImm completion (like
//     IBV_WR_RDMA_WRITE_WITH_IMM). Data is visible at the target no later
//     than the notification.
//   * per-link ordering: completions from one sender appear at the target CQ
//     in posting order (RC ordering), because posts synchronize on the
//     target's CQ lock in program order.
//   * optional unreliability: when FabricConfig::fault is enabled the fabric
//     behaves like a UD/datagram-class transport - operations may be
//     dropped, duplicated, delayed, reordered, or bit-flipped, decided
//     deterministically from (seed, link, per-link op index). Layers above
//     must then run the reliability protocol in fabric/reliable.hpp.
//
// The fabric itself is runtime-agnostic: LCI, mpilite two-sided and mpilite
// RMA all drive exactly these three verbs, so measured differences between
// them come from their own software stacks, not from the transport.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fabric/endpoint.hpp"
#include "telemetry/metrics.hpp"

namespace lcr::fabric {

class Fabric {
 public:
  /// Creates a fabric with `num_ranks` endpoints sharing one configuration.
  Fabric(std::size_t num_ranks, FabricConfig config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::size_t num_ranks() const noexcept { return endpoints_.size(); }
  const FabricConfig& config() const noexcept { return config_; }

  Endpoint& endpoint(Rank r) { return *endpoints_.at(r); }

  /// The metrics registry for everything riding on this fabric: endpoint
  /// stats register as probes at construction, and the layers above
  /// (reliability channel, LCI queue, mpilite comm, engines) add their own
  /// probes / histograms / profiler counters. The bench runner aggregates
  /// per-run totals by iterating a snapshot of this registry.
  telemetry::Registry& telemetry() noexcept { return telemetry_; }

  /// Eager send of `meta.size` bytes at `payload` to rank `dst`. `meta.src`
  /// is filled in from `src`. Payload may be nullptr iff meta.size == 0
  /// (header-only control packets).
  PostResult post_send(Rank src, Rank dst, const void* payload, MsgMeta meta);

  /// RDMA write: copy `size` bytes into (rkey, offset) at `dst`. If `notify`
  /// is true, a PutImm completion with `meta` is delivered to dst after the
  /// data is in place.
  PostResult post_put(Rank src, Rank dst, RKey rkey, std::size_t offset,
                      const void* payload, std::size_t size, bool notify,
                      MsgMeta meta);

  // --- Fail-stop host-kill layer (FaultProfile::kill_*). ---

  bool is_alive(Rank r) const noexcept {
    return r < endpoints_.size() &&
           alive_[r].load(std::memory_order_acquire);
  }

  /// Kill `victim` now: its endpoint is detached (rx buffers, CQ and memory
  /// registrations dropped), posts from it are black-holed and posts to it
  /// return Down. Also the hook the scheduled kill triggers call into.
  void kill_now(Rank victim);

  /// Re-admit a previously killed host under a new fabric epoch. Completions
  /// stamped with the old epoch are fenced at every endpoint's poll_cq.
  void revive(Rank host);

  /// Current fabric epoch; bumped by revive().
  std::uint32_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Drivers report BSP round boundaries so a round-triggered kill fires
  /// deterministically when the victim reaches round `kill_at_round`.
  void note_round(Rank host, std::int64_t round);

  /// Accepted data operations posted by `host` (kill-schedule op counter;
  /// 0 when no kill schedule is configured).
  std::uint64_t data_ops(Rank host) const noexcept {
    return host_ops_ ? host_ops_[host].load(std::memory_order_relaxed) : 0;
  }

  /// Op count the scheduled kill fired at (diagnostics / determinism tests).
  std::uint64_t killed_at_op() const noexcept {
    return killed_at_op_.load(std::memory_order_relaxed);
  }

  /// Observer invoked (from the thread that triggered the kill) when a host
  /// dies. The membership layer registers here for ground-truth kills.
  void set_kill_observer(std::function<void(Rank)> fn) {
    kill_observer_ = std::move(fn);
  }

  /// Observer invoked when a reliability channel gives up on a peer after
  /// bounded retransmission or observes Down ("suspected dead").
  void set_suspect_observer(std::function<void(Rank, Rank)> fn) {
    suspect_observer_ = std::move(fn);
  }

  /// Called by ReliableChannel: `reporter` suspects `peer` is dead.
  void report_suspected_dead(Rank reporter, Rank peer) {
    if (suspect_observer_) suspect_observer_(reporter, peer);
  }

 private:
  std::uint64_t delivery_time_ns(std::size_t bytes) const;

  /// Which faults fire for one wire operation (see FaultProfile).
  struct FaultRoll {
    bool drop = false;
    bool dup = false;
    bool corrupt = false;
    bool reorder = false;
    std::uint64_t delay_ns = 0;
    std::size_t corrupt_byte = 0;  // payload byte to bit-flip
  };

  /// Deterministic fault decision for the `index`-th operation on link
  /// (src, dst): a pure hash of (seed, src, dst, index), independent of
  /// timing. Returns an all-false roll when fault injection is disabled.
  FaultRoll roll_faults(Rank src, Rank dst, std::uint64_t index,
                        std::size_t payload_size) const;

  /// Post-increment the per-link operation counter.
  std::uint64_t next_link_op(Rank src, Rank dst);

  FabricConfig config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Per-(src,dst) operation counters driving deterministic fault rolls;
  /// row-major [src * num_ranks + dst]. Only allocated when faults are on.
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_ops_;

  /// Liveness flag per host (fail-stop kill layer).
  std::unique_ptr<std::atomic<bool>[]> alive_;
  /// Accepted data operations per source host (kill-at-op trigger); only
  /// allocated when a kill schedule is configured.
  std::unique_ptr<std::atomic<std::uint64_t>[]> host_ops_;
  std::atomic<bool> kill_fired_{false};   // scheduled kill fires exactly once
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint64_t> killed_at_op_{0};
  std::function<void(Rank)> kill_observer_;
  std::function<void(Rank, Rank)> suspect_observer_;

  telemetry::Registry telemetry_;
  telemetry::Histogram* msg_bytes_hist_ = nullptr;  // wire message sizes
  std::vector<telemetry::Registration> stat_regs_;  // endpoint stat probes
};

}  // namespace lcr::fabric
