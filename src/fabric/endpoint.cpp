#include "fabric/endpoint.hpp"

#include <algorithm>
#include <mutex>

#include "runtime/timer.hpp"

namespace lcr::fabric {

Endpoint::Endpoint(Rank rank, const FabricConfig* config)
    : rank_(rank), config_(config) {
  tokens_ = static_cast<double>(config_->injection_burst);
  last_refill_ns_ = rt::now_ns();
}

void Endpoint::post_rx(const RxSlot& slot) {
  std::lock_guard<rt::Spinlock> guard(rx_lock_);
  rx_slots_.push_back(slot);
}

std::size_t Endpoint::rx_available() const {
  std::lock_guard<rt::Spinlock> guard(rx_lock_);
  return rx_slots_.size();
}

bool Endpoint::take_rx_slot(RxSlot& out) {
  std::lock_guard<rt::Spinlock> guard(rx_lock_);
  if (rx_slots_.empty()) return false;
  out = rx_slots_.front();
  rx_slots_.pop_front();
  return true;
}

void Endpoint::return_rx_slot(const RxSlot& slot) {
  std::lock_guard<rt::Spinlock> guard(rx_lock_);
  rx_slots_.push_front(slot);
}

bool Endpoint::push_cqe(const Cqe& cqe, bool reorder) {
  std::lock_guard<rt::Spinlock> guard(cq_lock_);
  if (cq_.size() >= config_->cq_capacity) return false;
  cq_.push_back(cqe);
  if (reorder && cq_.size() >= 2)
    std::swap(cq_[cq_.size() - 1], cq_[cq_.size() - 2]);
  return true;
}

std::optional<Cqe> Endpoint::poll_cq() {
  stats_.cq_polls.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<rt::Spinlock> guard(cq_lock_);
  while (!cq_.empty()) {
    const Cqe& head = cq_.front();
    if (fabric_epoch_ != nullptr &&
        head.epoch != fabric_epoch_->load(std::memory_order_relaxed)) {
      // Stale incarnation: the packet was posted before a revive bumped the
      // epoch. Its rx buffer (if any) belonged to the previous layer's pool,
      // so it is dropped rather than returned to the receive queue.
      stats_.epoch_fenced.fetch_add(1, std::memory_order_relaxed);
      cq_.pop_front();
      continue;
    }
    if (head.deliver_at_ns > rt::now_ns()) return std::nullopt;  // in flight
    Cqe out = head;
    cq_.pop_front();
    if (out.kind == Cqe::Kind::Recv)
      stats_.bytes_rx.fetch_add(out.meta.size, std::memory_order_relaxed);
    return out;
  }
  return std::nullopt;
}

RKey Endpoint::register_memory(void* base, std::size_t size) {
  std::lock_guard<rt::Spinlock> guard(mr_lock_);
  // Monotonic rkeys: never reuse a key, even across detach(). A stale
  // operation addressed to a deregistered key must fail Invalid rather than
  // alias whatever region a recycled slot would now describe.
  const RKey key = next_rkey_++;
  regions_.emplace(key, MemoryRegion{base, size, true});
  return key;
}

void Endpoint::detach() {
  {
    std::lock_guard<rt::Spinlock> guard(rx_lock_);
    rx_slots_.clear();
  }
  {
    std::lock_guard<rt::Spinlock> guard(cq_lock_);
    cq_.clear();
  }
  {
    std::lock_guard<rt::Spinlock> guard(mr_lock_);
    regions_.clear();
  }
}

void Endpoint::deregister_memory(RKey key) {
  std::lock_guard<rt::Spinlock> guard(mr_lock_);
  regions_.erase(key);
}

bool Endpoint::resolve_region(RKey key, std::size_t offset, std::size_t len,
                              void** out_ptr) {
  std::lock_guard<rt::Spinlock> guard(mr_lock_);
  auto it = regions_.find(key);
  if (it == regions_.end()) return false;
  const MemoryRegion& mr = it->second;
  if (offset + len > mr.size) return false;
  *out_ptr = static_cast<char*>(mr.base) + offset;
  return true;
}

std::vector<telemetry::Probe> endpoint_stat_probes(EndpointStats& s) {
  return {
      {"fabric.sends", &s.sends},
      {"fabric.puts", &s.puts},
      {"fabric.bytes_tx", &s.bytes_tx},
      {"fabric.bytes_rx", &s.bytes_rx},
      {"fabric.retries_no_rx", &s.retries_no_rx},
      {"fabric.retries_throttled", &s.retries_throttled},
      {"fabric.retries_cq_full", &s.retries_cq_full},
      {"fabric.cq_polls", &s.cq_polls},
      {"fault.dropped", &s.faults_dropped},
      {"fault.duplicated", &s.faults_duplicated},
      {"fault.corrupted", &s.faults_corrupted},
      {"fault.delayed", &s.faults_delayed},
      {"fault.reordered", &s.faults_reordered},
      {"rel.data_tx", &s.rel_data_tx},
      {"rel.retransmits", &s.rel_retransmits},
      {"rel.probes_tx", &s.rel_probes_tx},
      {"rel.acks_tx", &s.rel_acks_tx},
      {"rel.acks_rx", &s.rel_acks_rx},
      {"rel.delivered", &s.rel_delivered},
      {"rel.dup_dropped", &s.rel_dup_dropped},
      {"rel.crc_dropped", &s.rel_crc_dropped},
      {"rel.ooo_held", &s.rel_ooo_held},
      {"rel.ooo_dropped", &s.rel_ooo_dropped},
      {"rel.stall_dumps", &s.rel_stall_dumps},
      {"fault.host_kills", &s.host_kills},
      {"rel.epoch_fenced", &s.epoch_fenced},
      {"rel.suspected_dead", &s.rel_suspected_dead},
  };
}

bool Endpoint::consume_injection_token() {
  if (config_->injection_rate_pps <= 0.0) return true;
  std::lock_guard<rt::Spinlock> guard(tb_lock_);
  const std::uint64_t now = rt::now_ns();
  const double elapsed_s =
      static_cast<double>(now - last_refill_ns_) * 1e-9;
  tokens_ = std::min(tokens_ + elapsed_s * config_->injection_rate_pps,
                     static_cast<double>(config_->injection_burst));
  last_refill_ns_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

}  // namespace lcr::fabric
