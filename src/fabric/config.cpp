#include "fabric/config.hpp"

namespace lcr::fabric {

FabricConfig omnipath_knl_config() {
  FabricConfig cfg;
  cfg.name = "omnipath-knl";
  cfg.mtu = 16 * 1024;
  cfg.default_rx_buffers = 512;
  cfg.cq_capacity = 8192;
  cfg.injection_rate_pps = 0.0;  // not the bottleneck at our scale
  cfg.wire_latency = std::chrono::nanoseconds(900);   // ~1us class fabric
  cfg.bandwidth_Bps = 12.5e9;                         // 100 Gb/s
  cfg.doorbell_cost_ns = 60;                          // psm2 tag-matching NIC
  return cfg;
}

FabricConfig infiniband_snb_config() {
  FabricConfig cfg;
  cfg.name = "infiniband-fdr-snb";
  cfg.mtu = 8 * 1024;
  cfg.default_rx_buffers = 256;
  cfg.cq_capacity = 4096;
  cfg.injection_rate_pps = 0.0;
  cfg.wire_latency = std::chrono::nanoseconds(1300);  // older fabric
  cfg.bandwidth_Bps = 6.8e9;                          // FDR ~54.5 Gb/s
  cfg.doorbell_cost_ns = 90;                          // verbs RC post path
  return cfg;
}

FabricConfig test_config() {
  FabricConfig cfg;
  cfg.name = "test";
  cfg.mtu = 4 * 1024;
  cfg.default_rx_buffers = 64;
  cfg.cq_capacity = 1024;
  return cfg;
}

}  // namespace lcr::fabric
