#include "fabric/config.hpp"

#include <cstdio>

namespace lcr::fabric {

std::string to_string(const FaultProfile& fp) {
  if (!fp.enabled() && !fp.kill_enabled()) return "faults{none}";
  char buf[320];
  int n = std::snprintf(buf, sizeof(buf), "faults{seed=%llu",
                        static_cast<unsigned long long>(fp.seed));
  auto append_rate = [&](const char* name, double rate) {
    if (rate > 0.0 && n < static_cast<int>(sizeof(buf)))
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         " %s=%g%%", name, rate * 100.0);
  };
  append_rate("drop", fp.drop_rate);
  append_rate("dup", fp.dup_rate);
  append_rate("corrupt", fp.corrupt_rate);
  append_rate("reorder", fp.reorder_rate);
  append_rate("delay", fp.delay_rate);
  if (fp.delay_rate > 0.0 && n < static_cast<int>(sizeof(buf)))
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " delay_ns=%lld",
                       static_cast<long long>(fp.delay.count()));
  if (fp.brownout_ops > 0 && n < static_cast<int>(sizeof(buf)))
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " brownout=%u->%u@%llu+%llu", fp.brownout_src,
                       fp.brownout_dst,
                       static_cast<unsigned long long>(fp.brownout_start_op),
                       static_cast<unsigned long long>(fp.brownout_ops));
  if (fp.kill_enabled() && n < static_cast<int>(sizeof(buf))) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " kill=%d", fp.kill_host);
    if (fp.kill_at_op > 0 && n < static_cast<int>(sizeof(buf)))
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         "@op%llu",
                         static_cast<unsigned long long>(fp.kill_at_op));
    if (fp.kill_at_round >= 0 && n < static_cast<int>(sizeof(buf)))
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         "@round%lld", static_cast<long long>(fp.kill_at_round));
  }
  if (n < static_cast<int>(sizeof(buf)))
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n), "}");
  return buf;
}

FabricConfig omnipath_knl_config() {
  FabricConfig cfg;
  cfg.name = "omnipath-knl";
  cfg.mtu = 16 * 1024;
  cfg.default_rx_buffers = 512;
  cfg.cq_capacity = 8192;
  cfg.injection_rate_pps = 0.0;  // not the bottleneck at our scale
  cfg.wire_latency = std::chrono::nanoseconds(900);   // ~1us class fabric
  cfg.bandwidth_Bps = 12.5e9;                         // 100 Gb/s
  cfg.doorbell_cost_ns = 60;                          // psm2 tag-matching NIC
  return cfg;
}

FabricConfig infiniband_snb_config() {
  FabricConfig cfg;
  cfg.name = "infiniband-fdr-snb";
  cfg.mtu = 8 * 1024;
  cfg.default_rx_buffers = 256;
  cfg.cq_capacity = 4096;
  cfg.injection_rate_pps = 0.0;
  cfg.wire_latency = std::chrono::nanoseconds(1300);  // older fabric
  cfg.bandwidth_Bps = 6.8e9;                          // FDR ~54.5 Gb/s
  cfg.doorbell_cost_ns = 90;                          // verbs RC post path
  return cfg;
}

FabricConfig test_config() {
  FabricConfig cfg;
  cfg.name = "test";
  cfg.mtu = 4 * 1024;
  cfg.default_rx_buffers = 64;
  cfg.cq_capacity = 1024;
  return cfg;
}

}  // namespace lcr::fabric
