// A fabric endpoint: one simulated NIC port owned by one host.
//
// Holds (a) the pool of pre-posted receive buffers (a verbs receive queue),
// (b) the completion queue, (c) the registered-memory table for RDMA, and
// (d) the sender-side injection token bucket.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fabric/config.hpp"
#include "fabric/packet.hpp"
#include "runtime/spinlock.hpp"
#include "telemetry/metrics.hpp"

namespace lcr::fabric {

/// A pre-posted receive buffer handed to the fabric by the layer above.
struct RxSlot {
  void* buffer = nullptr;
  std::size_t capacity = 0;
  std::uint64_t context = 0;  // opaque to the fabric; returned in the Cqe
};

/// A registered memory region; `rkey` indexes the endpoint's region table.
struct MemoryRegion {
  void* base = nullptr;
  std::size_t size = 0;
  bool valid = false;
};

/// Fabric-level statistics for one endpoint. The fault_* counters are
/// incremented by the fabric on the *sending* endpoint when the fault
/// injector fires; the rel_* counters are incremented by the reliability
/// layer (fabric/reliable.hpp), which parks them here because the endpoint
/// outlives the communication layer that owns the channel.
struct EndpointStats {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> retries_no_rx{0};
  std::atomic<std::uint64_t> retries_throttled{0};
  std::atomic<std::uint64_t> retries_cq_full{0};
  std::atomic<std::uint64_t> cq_polls{0};

  // Fault injector (sender side).
  std::atomic<std::uint64_t> faults_dropped{0};
  std::atomic<std::uint64_t> faults_duplicated{0};
  std::atomic<std::uint64_t> faults_corrupted{0};
  std::atomic<std::uint64_t> faults_delayed{0};
  std::atomic<std::uint64_t> faults_reordered{0};

  // Reliability protocol (channel on this endpoint).
  std::atomic<std::uint64_t> rel_data_tx{0};       // sequenced sends + puts
  std::atomic<std::uint64_t> rel_retransmits{0};   // timeout/nack re-sends
  std::atomic<std::uint64_t> rel_probes_tx{0};     // put probes sent
  std::atomic<std::uint64_t> rel_acks_tx{0};       // standalone acks sent
  std::atomic<std::uint64_t> rel_acks_rx{0};       // acks processed
  std::atomic<std::uint64_t> rel_delivered{0};     // in-order deliveries
  std::atomic<std::uint64_t> rel_dup_dropped{0};   // dedup window hits
  std::atomic<std::uint64_t> rel_crc_dropped{0};   // corrupt payloads refused
  std::atomic<std::uint64_t> rel_ooo_held{0};      // held for reordering
  std::atomic<std::uint64_t> rel_ooo_dropped{0};   // beyond the hold window
  std::atomic<std::uint64_t> rel_stall_dumps{0};   // watchdog firings

  // Fail-stop fault model (fabric kill layer + reliability detector).
  std::atomic<std::uint64_t> host_kills{0};        // this host was killed
  std::atomic<std::uint64_t> epoch_fenced{0};      // stale-epoch CQEs dropped
  std::atomic<std::uint64_t> rel_suspected_dead{0};  // peers declared suspect
};

/// Telemetry probe set for one EndpointStats: every field under its
/// canonical registry name ("fabric.*" / "fault.*" / "rel.*"). Registered by
/// the owning Fabric so per-host stats aggregate into cluster totals.
std::vector<telemetry::Probe> endpoint_stat_probes(EndpointStats& s);

class Fabric;

class Endpoint {
 public:
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  Rank rank() const noexcept { return rank_; }
  const FabricConfig& config() const noexcept { return *config_; }

  /// Pre-post a receive buffer. Buffers are consumed in FIFO order by
  /// incoming eager packets; ownership stays with the caller, which gets the
  /// buffer back via the Cqe.
  void post_rx(const RxSlot& slot);

  /// Number of currently available (unconsumed) receive buffers.
  std::size_t rx_available() const;

  /// Register `size` bytes at `base` for remote access; returns the rkey a
  /// peer must use in post_put. Rkeys are monotonic and never reused, so a
  /// stale operation aimed at a deregistered region (e.g. a retransmitted
  /// put whose original delivery already completed) resolves to Invalid
  /// instead of silently landing in whatever region recycled the slot.
  RKey register_memory(void* base, std::size_t size);

  /// Invalidate an rkey.
  void deregister_memory(RKey key);

  /// Detach the owning communication layer: drops all pre-posted receive
  /// buffers, pending completions and registered regions. Called by layer
  /// destructors so a later layer on the same endpoint (e.g. the next run
  /// on a persistent fabric) never receives into freed memory. Subsequent
  /// sends to this endpoint soft-fail with NoRxBuffer until the next layer
  /// posts buffers.
  void detach();

  /// Poll the completion queue. Returns the next visible completion, or
  /// nullopt if none is ready (empty, or head still "in flight" under the
  /// wire-latency model).
  std::optional<Cqe> poll_cq();

  EndpointStats& stats() noexcept { return stats_; }

 private:
  friend class Fabric;
  Endpoint(Rank rank, const FabricConfig* config);

  // --- Called by Fabric on behalf of remote senders. ---
  bool take_rx_slot(RxSlot& out);
  void return_rx_slot(const RxSlot& slot);  // undo after a later failure
  /// Append a completion. With `reorder` set (fault injector) the new entry
  /// is swapped with the previous tail, breaking per-link FIFO on purpose.
  bool push_cqe(const Cqe& cqe, bool reorder = false);
  bool resolve_region(RKey key, std::size_t offset, std::size_t len,
                      void** out_ptr);
  bool consume_injection_token();

  Rank rank_;
  const FabricConfig* config_;
  /// Current fabric epoch (owned by the Fabric). poll_cq drops completions
  /// stamped with an older epoch: they were posted before a killed host was
  /// revived and must never reach the new incarnation's layers.
  const std::atomic<std::uint32_t>* fabric_epoch_ = nullptr;

  mutable rt::Spinlock rx_lock_;
  std::deque<RxSlot> rx_slots_;

  mutable rt::Spinlock cq_lock_;
  std::deque<Cqe> cq_;

  mutable rt::Spinlock mr_lock_;
  std::unordered_map<RKey, MemoryRegion> regions_;  // live registrations only
  RKey next_rkey_ = 0;  // monotonic, never reset (survives detach)

  // Token bucket (guarded by tb_lock_).
  mutable rt::Spinlock tb_lock_;
  double tokens_ = 0.0;
  std::uint64_t last_refill_ns_ = 0;

  EndpointStats stats_;
};

}  // namespace lcr::fabric
