// A fabric endpoint: one simulated NIC port owned by one host.
//
// Holds (a) the pool of pre-posted receive buffers (a verbs receive queue),
// (b) the completion queue, (c) the registered-memory table for RDMA, and
// (d) the sender-side injection token bucket.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "fabric/config.hpp"
#include "fabric/packet.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::fabric {

/// A pre-posted receive buffer handed to the fabric by the layer above.
struct RxSlot {
  void* buffer = nullptr;
  std::size_t capacity = 0;
  std::uint64_t context = 0;  // opaque to the fabric; returned in the Cqe
};

/// A registered memory region; `rkey` indexes the endpoint's region table.
struct MemoryRegion {
  void* base = nullptr;
  std::size_t size = 0;
  bool valid = false;
};

/// Fabric-level statistics for one endpoint.
struct EndpointStats {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> retries_no_rx{0};
  std::atomic<std::uint64_t> retries_throttled{0};
  std::atomic<std::uint64_t> retries_cq_full{0};
  std::atomic<std::uint64_t> cq_polls{0};
};

class Fabric;

class Endpoint {
 public:
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  Rank rank() const noexcept { return rank_; }
  const FabricConfig& config() const noexcept { return *config_; }

  /// Pre-post a receive buffer. Buffers are consumed in FIFO order by
  /// incoming eager packets; ownership stays with the caller, which gets the
  /// buffer back via the Cqe.
  void post_rx(const RxSlot& slot);

  /// Number of currently available (unconsumed) receive buffers.
  std::size_t rx_available() const;

  /// Register `size` bytes at `base` for remote access; returns the rkey a
  /// peer must use in post_put.
  RKey register_memory(void* base, std::size_t size);

  /// Invalidate an rkey.
  void deregister_memory(RKey key);

  /// Detach the owning communication layer: drops all pre-posted receive
  /// buffers, pending completions and registered regions. Called by layer
  /// destructors so a later layer on the same endpoint (e.g. the next run
  /// on a persistent fabric) never receives into freed memory. Subsequent
  /// sends to this endpoint soft-fail with NoRxBuffer until the next layer
  /// posts buffers.
  void detach();

  /// Poll the completion queue. Returns the next visible completion, or
  /// nullopt if none is ready (empty, or head still "in flight" under the
  /// wire-latency model).
  std::optional<Cqe> poll_cq();

  EndpointStats& stats() noexcept { return stats_; }

 private:
  friend class Fabric;
  Endpoint(Rank rank, const FabricConfig* config);

  // --- Called by Fabric on behalf of remote senders. ---
  bool take_rx_slot(RxSlot& out);
  void return_rx_slot(const RxSlot& slot);  // undo after a later failure
  bool push_cqe(const Cqe& cqe);
  bool resolve_region(RKey key, std::size_t offset, std::size_t len,
                      void** out_ptr);
  bool consume_injection_token();

  Rank rank_;
  const FabricConfig* config_;

  mutable rt::Spinlock rx_lock_;
  std::deque<RxSlot> rx_slots_;

  mutable rt::Spinlock cq_lock_;
  std::deque<Cqe> cq_;

  mutable rt::Spinlock mr_lock_;
  std::vector<MemoryRegion> regions_;

  // Token bucket (guarded by tb_lock_).
  mutable rt::Spinlock tb_lock_;
  double tokens_ = 0.0;
  std::uint64_t last_refill_ns_ = 0;

  EndpointStats stats_;
};

}  // namespace lcr::fabric
