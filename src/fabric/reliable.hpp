// End-to-end reliability over an unreliable fabric.
//
// When FabricConfig::fault is enabled (or force_reliable is set) the fabric
// behaves like a UD/datagram-class transport: operations can be dropped,
// duplicated, delayed, reordered, or bit-flipped. ReliableChannel restores
// exactly-once, per-link-FIFO delivery on top of it:
//
//   * every data operation (eager send or RDMA put) carries a per-link
//     monotonic sequence number and a CRC-32 over its header + payload,
//   * the sender keeps a bounded retransmit ring of unacked operations and
//     re-sends on timeout with capped exponential backoff,
//   * the receiver acknowledges cumulatively (piggybacked on data packets
//     and on header-only control packets that bypass the rx window), holds
//     a small out-of-order window, refuses corrupt payloads, and drops
//     duplicates,
//   * lost RDMA puts are recovered probe-first: the sender asks "did seq N
//     arrive?" and only re-puts after an explicit NACK, so a late original
//     delivery can never be clobbered by a retransmission. Monotonic rkeys
//     (Endpoint::register_memory) make any residual stale re-put resolve
//     Invalid instead of landing in recycled memory.
//
// A progress-stall watchdog dumps per-link in-flight/retransmit/ack state to
// stderr after a configurable quiet period instead of hanging silently.
//
// On a reliable fabric the channel is a passthrough: one branch per call,
// no sequencing, no payload copies.
//
// Concurrency: safe for one application thread plus one progress thread per
// endpoint (the LCI worker/server split). State is per-link spinlocked.
//
// Assumption (documented in DESIGN.md): concurrently in-flight puts on one
// link target disjoint registered regions. All three runtimes satisfy this -
// rendezvous landing buffers are per-request, RMA epochs separate rounds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fabric/fabric.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::fabric {

struct ReliabilityConfig {
  /// Max unacked operations per destination link; send()/put() return
  /// RetransmitFull beyond this (back pressure). Clamped to reorder_window
  /// at construction: a sender that outruns the receiver's reorder window
  /// only manufactures guaranteed-dropped packets it must retransmit.
  std::size_t ring_capacity = 64;
  /// How far ahead of the cumulative ack a received seq may run before the
  /// receiver refuses it (go-back-N recovers the gap).
  std::uint32_t reorder_window = 64;
  /// Out-of-order completions buffered per source link (each pins one rx
  /// buffer until the gap fills). With max_held >= reorder_window - 1 every
  /// in-flight packet behind a gap is held, so one gap-head retransmission
  /// recovers the whole window; smaller values trade rx buffers for serial
  /// go-back-N recovery. Clamped to reorder_window - 1 at construction.
  std::size_t max_held = 63;
  /// Initial retransmit timeout; doubles per attempt up to rto_max_ns.
  /// Sized for the simulated fabric, where delivery is a same-process
  /// enqueue: tens of microseconds covers even a heavily backlogged pump.
  std::uint64_t rto_ns = 50 * 1000;
  std::uint64_t rto_max_ns = 20 * 1000 * 1000;
  /// Deliveries between forced cumulative acks (piggybacking happens
  /// opportunistically on every reverse data packet regardless).
  std::uint32_t ack_every = 8;
  /// Progress-stall watchdog: with unacked operations outstanding and no
  /// forward progress for this long, dump per-link protocol state to
  /// stderr. 0 disables.
  std::uint64_t watchdog_quiet_ns = 500ull * 1000 * 1000;
  /// Promote a stalled link from "slow peer" to "suspected dead peer" after
  /// this many retransmit attempts on its oldest unacked operation; the
  /// suspicion is reported to Fabric::report_suspected_dead (and from there
  /// to the membership layer). 0 disables the detector. Retransmission
  /// continues regardless - membership decides what a suspicion means.
  std::uint32_t suspect_after_attempts = 10;
  /// Deterministic protocol clock for single-threaded replay tests: time
  /// advances by one tick per pump() instead of reading the wall clock, and
  /// every *_ns field above is interpreted in ticks.
  bool tick_clock = false;
};

class ReliableChannel {
 public:
  /// `owner` names the channel in watchdog dumps (e.g. "lci", "mpilite").
  ReliableChannel(Fabric& fabric, Rank rank, ReliabilityConfig cfg = {},
                  const char* owner = "chan");

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// False => the fabric is reliable and every call passes straight through.
  bool active() const noexcept { return active_; }

  /// Hook invoked when the channel consumes a Recv completion internally
  /// (duplicate, corrupt, or overflow packet): the owner must recycle the
  /// rx buffer back to the endpoint. Unset = the buffer is leaked from the
  /// receive window, so owners must always set it in active mode.
  void set_recycle(std::function<void(const Cqe&)> fn) {
    recycle_ = std::move(fn);
  }

  /// Reliable eager send. Active mode: the payload is copied into the
  /// retransmit ring and Ok is returned (completion semantics are unchanged
  /// for callers - buffered-at-target becomes buffered-in-ring). Returns
  /// RetransmitFull when the link's ring is full after one internal pump;
  /// hard failures (TooLarge / Invalid) are returned without enqueueing.
  PostResult send(Rank dst, const void* payload, MsgMeta meta);

  /// Reliable RDMA put. Always posts with a fabric-level notification so
  /// delivery can be sequenced and acked; if `notify` is false the
  /// notification is consumed channel-internally (RelFlag::kRelBare).
  PostResult put(Rank dst, RKey rkey, std::size_t offset, const void* payload,
                 std::size_t size, bool notify, MsgMeta meta);

  /// Drain one application-visible completion: pumps the protocol, then
  /// returns the next in-order data completion, if any.
  std::optional<Cqe> poll();

  /// Drive the protocol without consuming data completions: processes
  /// acks/probes, retransmits on timeout, flushes pending acks, checks the
  /// watchdog. Data completions are staged for a later poll(). Safe to call
  /// from a send path that is blocked on back pressure.
  void pump();

  /// True when any link has unacked operations in flight.
  bool has_inflight() const;

  /// Write per-link protocol state to stderr (the watchdog calls this; also
  /// useful from failure handlers in tests).
  void dump_state(const char* reason) const;

  const ReliabilityConfig& config() const noexcept { return cfg_; }

 private:
  struct TxEntry {
    std::uint32_t seq = 0;
    bool is_put = false;
    bool posted_ok = false;  // at least one fabric post was accepted
    MsgMeta meta;            // rel/seq/crc filled; ack stamped per attempt
    std::vector<std::byte> payload;
    RKey rkey = kInvalidRKey;  // puts
    std::size_t offset = 0;    // puts
    std::uint64_t last_tx = 0;       // last attempt (data or probe): RTO base
    std::uint64_t last_data_tx = 0;  // last data (re)post: nack-storm guard
    std::uint32_t attempts = 0;
  };

  struct TxLink {
    mutable rt::Spinlock lock;
    std::uint32_t next_seq = 0;
    std::uint32_t acked = 0;       // all seq < acked are delivered
    std::deque<TxEntry> ring;      // unacked, in seq order
    /// ring.size() mirrored atomically so service_tx can skip idle links
    /// without taking the lock.
    std::atomic<std::size_t> inflight{0};
    /// Retired payload buffers, reused to keep the steady-state send path
    /// free of heap allocation.
    std::vector<std::vector<std::byte>> spares;
    /// Watchdog escalation: the link's oldest unacked operation exceeded
    /// suspect_after_attempts retransmissions (reported once).
    bool suspected = false;
    /// The fabric returned Down for this destination (fail-stop kill). The
    /// ring was discarded and subsequent traffic is swallowed: recovery
    /// rebuilds the whole channel under a new epoch.
    bool down = false;
  };

  struct RxLink {
    mutable rt::Spinlock lock;
    // Next in-order seq. Atomic so stamp_ack can piggyback the cumulative
    // ack without the lock; all writes still happen under `lock`.
    std::atomic<std::uint32_t> expected{0};
    std::map<std::uint32_t, Cqe> held;  // out-of-order completions
    // Atomic so flush_acks can peek "nothing to do" without the lock; all
    // writes still happen under `lock`.
    std::atomic<std::uint32_t> delivered_since_ack{0};
    std::atomic<bool> ack_dirty{false};  // duplicate/probe seen: ack soon
    std::uint32_t nack_seq_plus1 = 0;  // pending retransmit request (0=none)
    std::uint64_t last_ack_tx = 0;
  };

  std::uint64_t proto_now();
  std::uint64_t rto_for(std::uint32_t attempts) const;
  void stamp_ack(Rank dst, MsgMeta& meta);
  PostResult post_entry(Rank dst, TxEntry& e);
  void handle_ack(Rank peer, std::uint32_t ack, std::uint32_t nack_plus1);
  void handle_probe(Rank peer, std::uint32_t seq);
  void handle_data(Cqe& cqe);
  void service_tx(std::uint64_t now);
  /// Fail-stop teardown of one destination link (tx.lock must be held):
  /// discards the retransmit ring and reports the peer suspected dead.
  void note_down(Rank dst, TxLink& tx);
  /// Watchdog escalation to "suspected dead" (tx.lock must be held).
  void note_suspect(Rank dst, TxLink& tx, std::uint32_t attempts);
  void flush_acks(std::uint64_t now);
  void send_ack(Rank peer, RxLink& rx);
  void recycle(const Cqe& cqe);
  void note_progress(std::uint64_t now) {
    last_progress_.store(now, std::memory_order_relaxed);
  }

  Fabric& fabric_;
  Endpoint& endpoint_;
  Rank rank_;
  ReliabilityConfig cfg_;
  const char* owner_;
  bool active_;

  // Telemetry (owned by the fabric's registry; null when inactive).
  telemetry::Histogram* held_hist_ = nullptr;     // rx hold-buffer occupancy
  telemetry::Histogram* rtx_gap_hist_ = nullptr;  // ns between (re)post and
                                                  // the retransmit it forced

  std::vector<TxLink> tx_links_;  // indexed by destination rank
  std::vector<RxLink> rx_links_;  // indexed by source rank

  mutable rt::Spinlock ready_lock_;
  std::deque<Cqe> ready_;  // in-order data completions awaiting poll()
  std::atomic<std::size_t> ready_count_{0};   // lock-free empty check
  std::atomic<std::size_t> inflight_{0};      // total unacked, all links

  std::function<void(const Cqe&)> recycle_;

  std::atomic<std::uint64_t> tick_{0};            // tick_clock time source
  std::atomic<std::uint64_t> last_progress_{0};
  std::atomic<std::uint64_t> last_dump_{0};
};

}  // namespace lcr::fabric
