// Wire-level metadata and completion records for the simulated fabric.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lcr::fabric {

/// Rank of a host on the fabric.
using Rank = std::uint32_t;

/// Remote-access key identifying a registered memory region on an endpoint.
using RKey = std::uint32_t;

inline constexpr RKey kInvalidRKey = ~0U;

/// Flags in MsgMeta::rel describing how the reliability layer
/// (fabric/reliable.hpp) should treat a packet. The fabric only inspects
/// kRelCtrl; everything else is peer-to-peer protocol state.
enum RelFlag : std::uint8_t {
  /// Packet carries a valid per-link sequence number + CRC and must pass
  /// through the receiver's ordering/dedup window.
  kRelSeq = 1u << 0,
  /// `ack` carries a valid cumulative acknowledgement (piggybacked or
  /// standalone).
  kRelAck = 1u << 1,
  /// Transport-internal put notification: the sender's channel requested a
  /// completion so it can sequence/ack the put, but the application asked
  /// for notify=false - the receiving channel consumes it silently.
  kRelBare = 1u << 2,
  /// Retransmit probe: "did sequence number `seq` arrive?" The receiver
  /// answers with an ack (delivered) or a nack (lost, please re-put).
  kRelProbe = 1u << 3,
  /// Header-only control packet (ack/probe). The fabric delivers it without
  /// consuming a pre-posted receive buffer - the analogue of the header-only
  /// credit/ack messages real NICs exchange below the receive queue - so
  /// acknowledgements can always land even when the rx window is exhausted.
  kRelCtrl = 1u << 4,
};

/// Metadata carried with every eager packet and with put-notifications.
/// `kind` is interpreted by the layer above (LCI packet types, mpilite
/// protocol messages); the fabric never looks at it. The `seq`/`ack`/`crc`/
/// `rel` fields belong to the optional reliability layer and stay zero on a
/// reliable fabric.
struct MsgMeta {
  Rank src = 0;
  std::uint8_t kind = 0;
  std::uint8_t rel = 0;     // RelFlag bits (reliability layer)
  std::uint32_t tag = 0;
  std::uint32_t size = 0;   // payload bytes
  std::uint64_t imm = 0;    // immediate word 1 (request handles, counts, ...)
  std::uint64_t imm2 = 0;   // immediate word 2 (addresses, rkeys, ...)
  std::uint32_t seq = 0;    // per-link sequence number (kRelSeq / kRelProbe)
  std::uint32_t ack = 0;    // cumulative ack: all seq < ack delivered
  std::uint32_t crc = 0;    // CRC-32 over header fields + payload (kRelSeq)
  /// Causal-trace context (telemetry): copied out of the framed payload's
  /// ChunkHeader by the reliability channel so the fabric and the protocol
  /// can record lifecycle hops without parsing payloads. 0 = unsampled.
  /// Excluded from the reliability CRC, like `ack`: `trace_hop` counts
  /// transmission attempts and mutates per (re)post.
  std::uint32_t trace_id = 0;
  std::uint8_t trace_hop = 0;
};

/// Result of posting an operation to the fabric.
enum class PostResult : std::uint8_t {
  Ok = 0,
  /// Receiver has no pre-posted receive buffer (RNR in verbs terms).
  /// Non-fatal: retry later. This is the back-pressure signal.
  NoRxBuffer,
  /// Sender is out of injection tokens; retry later.
  Throttled,
  /// Receiver completion queue is full; retry later.
  CqFull,
  /// Payload larger than the MTU (caller bug for post_send).
  TooLarge,
  /// Bad rank / rkey / bounds (caller bug).
  Invalid,
  /// Reliability layer: the per-link retransmit ring is full of unacked
  /// operations. Non-fatal back pressure - progress the channel and retry.
  RetransmitFull,
  /// The destination host is dead (fail-stop kill): its endpoint was torn
  /// down and nothing will be delivered until the host is revived under a
  /// new epoch. Peers observe delivery failure instead of silence.
  Down,
};

inline const char* to_string(PostResult r) {
  switch (r) {
    case PostResult::Ok: return "Ok";
    case PostResult::NoRxBuffer: return "NoRxBuffer";
    case PostResult::Throttled: return "Throttled";
    case PostResult::CqFull: return "CqFull";
    case PostResult::TooLarge: return "TooLarge";
    case PostResult::Invalid: return "Invalid";
    case PostResult::RetransmitFull: return "RetransmitFull";
    case PostResult::Down: return "Down";
  }
  return "?";
}

/// Completion-queue entry delivered to the receiving endpoint.
struct Cqe {
  enum class Kind : std::uint8_t {
    Recv,    ///< An eager packet landed in `buffer` (a pre-posted rx buffer).
    PutImm,  ///< An RDMA write completed remotely; meta.imm carries the
             ///< immediate; no rx buffer is consumed.
  };
  Kind kind = Kind::Recv;
  MsgMeta meta;
  /// Recv: the pre-posted rx buffer holding the payload. PutImm: the landed
  /// region inside the registered target (so the reliability layer can
  /// checksum what actually arrived); nullptr for header-only control
  /// packets (RelFlag::kRelCtrl), which consume no rx buffer.
  void* buffer = nullptr;
  std::uint64_t rx_context = 0;    // the context the buffer was posted with
  std::uint64_t deliver_at_ns = 0; // visibility time (wire latency model)
  /// Fabric epoch at posting time. The epoch advances when a killed host is
  /// revived; Endpoint::poll_cq fences entries stamped with a stale epoch so
  /// packets from a previous incarnation never reach the new one.
  std::uint32_t epoch = 0;
};

/// rx_context value for header-only control packets (no rx buffer attached).
inline constexpr std::uint64_t kCtrlRxContext = ~0ull;

}  // namespace lcr::fabric
