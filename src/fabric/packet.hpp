// Wire-level metadata and completion records for the simulated fabric.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lcr::fabric {

/// Rank of a host on the fabric.
using Rank = std::uint32_t;

/// Remote-access key identifying a registered memory region on an endpoint.
using RKey = std::uint32_t;

inline constexpr RKey kInvalidRKey = ~0U;

/// Metadata carried with every eager packet and with put-notifications.
/// `kind` is interpreted by the layer above (LCI packet types, mpilite
/// protocol messages); the fabric never looks at it.
struct MsgMeta {
  Rank src = 0;
  std::uint8_t kind = 0;
  std::uint32_t tag = 0;
  std::uint32_t size = 0;   // payload bytes
  std::uint64_t imm = 0;    // immediate word 1 (request handles, counts, ...)
  std::uint64_t imm2 = 0;   // immediate word 2 (addresses, rkeys, ...)
};

/// Result of posting an operation to the fabric.
enum class PostResult : std::uint8_t {
  Ok = 0,
  /// Receiver has no pre-posted receive buffer (RNR in verbs terms).
  /// Non-fatal: retry later. This is the back-pressure signal.
  NoRxBuffer,
  /// Sender is out of injection tokens; retry later.
  Throttled,
  /// Receiver completion queue is full; retry later.
  CqFull,
  /// Payload larger than the MTU (caller bug for post_send).
  TooLarge,
  /// Bad rank / rkey / bounds (caller bug).
  Invalid,
};

inline const char* to_string(PostResult r) {
  switch (r) {
    case PostResult::Ok: return "Ok";
    case PostResult::NoRxBuffer: return "NoRxBuffer";
    case PostResult::Throttled: return "Throttled";
    case PostResult::CqFull: return "CqFull";
    case PostResult::TooLarge: return "TooLarge";
    case PostResult::Invalid: return "Invalid";
  }
  return "?";
}

/// Completion-queue entry delivered to the receiving endpoint.
struct Cqe {
  enum class Kind : std::uint8_t {
    Recv,    ///< An eager packet landed in `buffer` (a pre-posted rx buffer).
    PutImm,  ///< An RDMA write completed remotely; meta.imm carries the
             ///< immediate; no rx buffer is consumed.
  };
  Kind kind = Kind::Recv;
  MsgMeta meta;
  void* buffer = nullptr;          // valid for Kind::Recv
  std::uint64_t rx_context = 0;    // the context the buffer was posted with
  std::uint64_t deliver_at_ns = 0; // visibility time (wire latency model)
};

}  // namespace lcr::fabric
