#include "abelian/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/cpu_relax.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace lcr::abelian {

namespace {
/// LCI default: one injection lane per compute thread (the paper's model -
/// every compute thread injects; see DESIGN.md §10). Explicit settings win.
EngineConfig with_lane_defaults(EngineConfig cfg) {
  if (cfg.backend == comm::BackendKind::Lci &&
      cfg.backend_options.lci_lanes == 0)
    cfg.backend_options.lci_lanes = cfg.compute_threads;
  cfg.direct_write = comm::resolve_direct_write(cfg.direct_write);
  return cfg;
}
}  // namespace

HostEngine::HostEngine(Cluster& cluster, const graph::DistGraph& graph,
                       EngineConfig cfg)
    : cluster_(cluster),
      graph_(graph),
      cfg_(with_lane_defaults(std::move(cfg))),
      backend_(comm::make_backend(
          cfg_.backend, cluster.fabric(), graph.host_id,
          [&] {
            // Blocking backend synchronization (MPI-RMA epochs) must unwind
            // when a host dies, or survivors wedge waiting on the victim.
            auto opt = cfg_.backend_options;
            opt.abort_check = [&m = cluster.membership()] {
              return m.failure_pending();
            };
            return opt;
          }())),
      team_(std::make_unique<rt::ThreadTeam>(cfg.compute_threads)),
      send_queue_(1024),
      recv_queue_(cfg.recv_queue_capacity),
      apply_queue_(4096),
      shard_locks_(graph.num_local) {
  apply_workers_ = cfg_.apply_workers == 0 ? team_->size()
                                           : cfg_.apply_workers;
  apply_workers_ = std::min(std::max<std::size_t>(apply_workers_, 1),
                            team_->size());
  stats_.apply_threads.store(apply_workers_, std::memory_order_relaxed);
  stats_.graph_mem_bytes.store(graph.mem_bytes(), std::memory_order_relaxed);
  stats_.graph_mem_bytes_uncompressed.store(graph.mem_bytes_uncompressed(),
                                            std::memory_order_relaxed);
  stats_.graph_mirrors.store(graph.num_local - graph.num_masters,
                             std::memory_order_relaxed);
  stat_reg_ = cluster.fabric().telemetry().register_probes({
      {"abelian.messages_sent", &stats_.messages_sent},
      {"abelian.bytes_sent", &stats_.bytes_sent},
      {"sync.gather_ns", &stats_.gather_ns},
      {"sync.bytes_saved", &stats_.bytes_saved},
      {"sync.fmt_sparse", &stats_.fmt_sparse},
      {"sync.fmt_varint", &stats_.fmt_varint},
      {"sync.fmt_dense", &stats_.fmt_dense},
      {"sync.decode_rejects", &stats_.decode_rejects},
      {"sync.apply_ns", &stats_.apply_ns},
      {"sync.apply_threads", &stats_.apply_threads},
      {"sync.shard_contended", &stats_.shard_contended},
      {"sync.stash_peak", &stats_.stash_peak},
      {"sync.stash_drops", &stats_.stash_drops},
      {"sync.direct_sends", &stats_.direct_sends},
      {"sync.direct_bytes", &stats_.direct_bytes},
      {"sync.direct_ns", &stats_.direct_ns},
      {"sync.direct_stale", &stats_.direct_stale},
      {"sync.direct_fallbacks", &stats_.direct_fallbacks},
      {"graph.mem_bytes", &stats_.graph_mem_bytes},
      {"graph.mem_bytes_uncompressed", &stats_.graph_mem_bytes_uncompressed},
      {"graph.mirrors", &stats_.graph_mirrors},
  });
  comm_thread_ = rt::AuxThread([this] { comm_thread_loop(); });
}

HostEngine::~HostEngine() {
  stop_.store(true, std::memory_order_release);
  if (comm_thread_.joinable()) comm_thread_.join();
  // Drop anything still queued (teardown only; release() recycles backend
  // resources which are about to be destroyed anyway). The apply queue is
  // provably empty after every completed phase - each enqueued slice ran
  // before its chunk was noted - but an aborted phase (host failure) leaves
  // unfinished slices behind.
  while (auto s = apply_queue_.try_pop()) abort_slice(*s);
  while (auto m = recv_queue_.try_pop()) delete *m;
  while (auto w = send_queue_.try_pop()) delete *w;
  // Future-phase messages still stashed hold live backend resources (e.g.
  // LCI receive requests); release them before the backend goes away.
  for (auto& [phase, queue] : stash_)
    for (auto& msg : queue)
      if (msg.release) msg.release();
  stash_.clear();
  // Direct-write teardown: retract the published descriptors first (origins
  // immediately revert to two-sided on the lookup miss), then drop the
  // registrations; an in-flight put at the old token resolves invalid at
  // the fabric because tokens are never reused.
  for (auto& [key, home] : direct_homes_) {
    const int src = static_cast<int>(key & 0xFFFFFFFFull);
    const auto pattern_key = static_cast<std::uint32_t>(key >> 32);
    cluster_.direct_directory().retract(graph_.host_id, src, pattern_key,
                                        home.region.generation);
    backend_->release_direct_region(src, home.region);
    if (cfg_.backend_options.tracker != nullptr)
      cfg_.backend_options.tracker->on_free(home.region.capacity);
  }
  // The backend must quiesce before the region buffers are freed: a
  // retransmitted put already materialized in the endpoint's CQ still
  // references region memory until the backend's final pump, and backend_
  // is declared before direct_homes_ so default member order would free
  // the buffers first.
  backend_.reset();
  direct_homes_.clear();
}

// ---------------------------------------------------------------------------
// Phase completion tracking
// ---------------------------------------------------------------------------

void HostEngine::PhaseState::arm(std::uint32_t id, int num_hosts,
                                 const std::vector<int>& recv_from) {
  std::lock_guard<rt::Spinlock> guard(lock);
  phase_id = id;
  total.assign(static_cast<std::size_t>(num_hosts), -1);
  got.assign(static_cast<std::size_t>(num_hosts), 0);
  direct_expected.assign(static_cast<std::size_t>(num_hosts), 0);
  direct_got.assign(static_cast<std::size_t>(num_hosts), 0);
  finished.assign(static_cast<std::size_t>(num_hosts), 0);
  peers_remaining = recv_from.size();
  complete.store(peers_remaining == 0, std::memory_order_release);
}

void HostEngine::PhaseState::note_chunk(int src,
                                        const comm::ChunkHeader& header) {
  std::lock_guard<rt::Spinlock> guard(lock);
  const auto s = static_cast<std::size_t>(src);
  // Data chunks stream in with num_chunks == 0; the tail (or a lone
  // single-chunk message) announces the total. Order-independent: the tail
  // may arrive before its data chunks.
  if (header.num_chunks != 0) {
    total[s] = static_cast<std::int32_t>(header.num_chunks);
    // Header-only tails reuse base_pos as the peer's direct-put count
    // (data chunks need the field as a record offset, tails never do).
    if (header.payload_bytes == 0)
      direct_expected[s] = static_cast<std::int32_t>(header.base_pos);
  }
  ++got[s];
  check_peer(s);
}

void HostEngine::PhaseState::note_direct(int src) {
  std::lock_guard<rt::Spinlock> guard(lock);
  const auto s = static_cast<std::size_t>(src);
  ++direct_got[s];
  check_peer(s);
}

void HostEngine::PhaseState::check_peer(std::size_t s) {
  // total stays -1 until the tail lands, which also fixes the direct
  // ledger; a direct put often beats its tail, so direct_got may run ahead
  // of direct_expected and is compared with >=.
  if (finished[s] != 0 || total[s] < 0 || got[s] != total[s] ||
      direct_got[s] < direct_expected[s])
    return;
  finished[s] = 1;
  assert(peers_remaining > 0);
  if (--peers_remaining == 0)
    complete.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Communication thread
// ---------------------------------------------------------------------------

void HostEngine::post_cmd(Cmd cmd, const comm::PhaseSpec* spec) {
  if (backend_->thread_safe_recv()) {
    // LCI: phase hooks are trivial and thread-safe; run them inline.
    switch (cmd) {
      case Cmd::BeginPhase: backend_->begin_phase(*spec); break;
      case Cmd::Flush: backend_->flush(); break;
      case Cmd::EndPhase: backend_->end_phase(); break;
      case Cmd::None: break;
    }
    return;
  }
  const std::uint64_t before = cmd_acks_.load(std::memory_order_acquire);
  cmd_spec_ = spec;
  cmd_.store(cmd, std::memory_order_release);
  rt::Backoff backoff;
  while (cmd_acks_.load(std::memory_order_acquire) == before)
    backoff.pause();
}

void HostEngine::comm_thread_loop() {
  rt::Backoff backoff;
  telemetry::ProgressProfiler profiler(cluster_.fabric().telemetry(),
                                       "abelian.comm_thread");
  std::deque<comm::InMessage*> holding;  // messages awaiting queue space
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = false;

    const Cmd cmd = cmd_.load(std::memory_order_acquire);
    if (cmd != Cmd::None) {
      switch (cmd) {
        case Cmd::BeginPhase: backend_->begin_phase(*cmd_spec_); break;
        case Cmd::Flush: backend_->flush(); break;
        case Cmd::EndPhase: backend_->end_phase(); break;
        case Cmd::None: break;
      }
      cmd_.store(Cmd::None, std::memory_order_relaxed);
      cmd_acks_.fetch_add(1, std::memory_order_release);
      did_work = true;
    }

    if (!backend_->thread_safe_send()) {
      // Pump queued sends into the backend (MPI layers never push back).
      while (auto work = send_queue_.try_pop()) {
        SendWork* sw = *work;
        rt::Backoff send_backoff;
        if (sw->direct) {
          // Pre-checked on the compute thread: the put can only soft-fail.
          for (;;) {
            const auto st = backend_->direct_put(
                sw->dst, sw->region, sw->payload.data(), sw->payload.size(),
                sw->phase_id, sw->pattern_key);
            if (st != comm::DirectPutStatus::Retry || aborting()) {
              // Unavailable is unreachable for the soft-fail-free
              // emulations that take this path; tallied, not resent.
              if (st == comm::DirectPutStatus::Unavailable)
                stats_.direct_fallbacks.fetch_add(1,
                                                  std::memory_order_relaxed);
              break;
            }
            backend_->progress();
            send_backoff.pause();
          }
        } else {
          while (!backend_->try_send(sw->dst, sw->payload)) {
            if (aborting()) break;  // abandon the send, phase is unwinding
            backend_->progress();
            send_backoff.pause();
          }
        }
        delete sw;
        sends_pending_.fetch_sub(1, std::memory_order_release);
        did_work = true;
      }
    }
    if (!backend_->thread_safe_recv()) {
      // Drain arrived messages into the engine receive queue.
      while (!holding.empty() && recv_queue_.try_push(holding.front()))
        holding.pop_front();
      if (holding.empty()) {
        comm::InMessage msg;
        while (backend_->try_recv(msg)) {
          auto* m = new comm::InMessage(std::move(msg));
          if (!recv_queue_.try_push(m)) {
            holding.push_back(m);
            break;
          }
          did_work = true;
        }
      }
    }

    backend_->progress();
    profiler.note(did_work);
    if (did_work)
      backoff.reset();
    else
      backoff.pause();
  }
  for (comm::InMessage* m : holding) delete m;  // teardown
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void HostEngine::dispatch_chunk(int dst, comm::BufferLease& lease,
                                std::size_t total_bytes,
                                const ScatterFn& scatter, bool can_apply) {
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(total_bytes, std::memory_order_relaxed);
  if (telemetry::enabled() && total_bytes >= comm::kChunkHeaderBytes) {
    comm::ChunkHeader h;
    std::memcpy(&h, lease.data, sizeof(h));
    if (h.trace_id != 0) {
      char hbuf[48];
      std::snprintf(hbuf, sizeof(hbuf), "{\"dst\":%d,\"bytes\":%zu}", dst,
                    total_bytes);
      telemetry::hop("commit", static_cast<std::uint32_t>(graph_.host_id),
                     h.trace_id, 0, hbuf);
    }
  }
  if (cfg_.backend_options.tracker != nullptr)
    cfg_.backend_options.tracker->on_alloc(total_bytes);
  if (backend_->thread_safe_send()) {
    rt::Backoff backoff;
    while (!backend_->commit(dst, lease, total_bytes)) {
      if (aborting()) {
        backend_->abandon(lease);
        return;
      }
      // Back pressure: relieve it by receiving/scattering, then retry; the
      // lease (and its serialized payload) stays intact across retries.
      if (!drain_one(scatter, can_apply)) backoff.pause();
    }
    return;
  }
  // Non-thread-safe send: the lease is engine-built heap memory (acquire is
  // never called off the comm thread); hand it to the comm thread.
  if (lease.heap.size() != total_bytes) lease.heap.resize(total_bytes);
  auto* sw = new SendWork{};
  sw->dst = dst;
  sw->payload = std::move(lease.heap);
  lease = comm::BufferLease{};
  sends_pending_.fetch_add(1, std::memory_order_acq_rel);
  rt::Backoff backoff;
  while (!send_queue_.try_push(sw)) {
    if (aborting()) {
      delete sw;
      sends_pending_.fetch_sub(1, std::memory_order_release);
      return;
    }
    if (!drain_one(scatter, can_apply)) backoff.pause();
  }
}

void HostEngine::send_tail(int dst, std::uint32_t data_chunks,
                           std::uint32_t direct_count,
                           const ScatterFn& scatter, bool can_apply) {
  assert(data_chunks + 1 <= 0xFFFF);
  comm::ChunkHeader header;
  header.phase_id = phase_state_.phase_id;
  header.payload_bytes = 0;
  // Tails carry no records, so base_pos is free for the direct-write
  // ledger: how many direct puts the receiver must count from us before
  // this phase's stream is complete (DESIGN.md §15).
  header.base_pos = direct_count;
  header.chunk_idx = static_cast<std::uint16_t>(data_chunks & 0xFFFF);
  header.num_chunks = static_cast<std::uint16_t>(data_chunks + 1);
  header.format = static_cast<std::uint8_t>(comm::WireFormat::Raw);
  header.finalize();

  comm::BufferLease lease;
  if (backend_->thread_safe_send()) {
    lease = backend_->acquire(dst, comm::kChunkHeaderBytes);
  } else {
    lease.heap.resize(comm::kChunkHeaderBytes);
    lease.data = lease.heap.data();
    lease.capacity = lease.heap.size();
  }
  std::memcpy(lease.data, &header, sizeof(header));
  dispatch_chunk(dst, lease, comm::kChunkHeaderBytes, scatter, can_apply);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

bool HostEngine::next_message(comm::InMessage& out) {
  {
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    auto it = stash_.find(phase_state_.phase_id);
    if (it != stash_.end() && !it->second.empty()) {
      out = std::move(it->second.front());
      it->second.pop_front();
      --stash_count_;
      if (it->second.empty()) stash_.erase(it);
      return true;
    }
  }
  if (backend_->thread_safe_recv()) return backend_->try_recv(out);
  if (auto m = recv_queue_.try_pop()) {
    out = std::move(**m);
    delete *m;
    return true;
  }
  return false;
}

void HostEngine::stash_message(comm::InMessage&& msg,
                               const comm::ChunkHeader& header) {
  // phase_id is monotone per engine, so a simple forward-window compare
  // separates a peer legitimately racing ahead from a stale or fuzzed id.
  const std::uint32_t current = phase_state_.phase_id;
  if (header.phase_id > current &&
      header.phase_id - current <= kStashPhaseWindow) {
    // Copy out of transport memory before stashing. A stashed message stays
    // parked until this engine advances to its phase, and holding the
    // transport lease that long pins an rx packet: a straggler whose whole
    // receive window fills with raced-ahead next-phase chunks can then
    // never land the tail that completes its *current* phase - a cross-host
    // deadlock (the sender spins on a throttled link, the receiver waits
    // for the sender). Copying frees the rx packet immediately; only
    // chunks from peers running ahead pay for it.
    auto buf = std::make_shared<std::vector<std::byte>>(msg.data,
                                                        msg.data + msg.size);
    comm::InMessage copy;
    copy.src = msg.src;
    copy.data = buf->data();
    copy.size = msg.size;
    copy.release = [buf] {};  // buffer lives until the stash entry dies
    if (msg.release) {
      msg.release();
      msg.release = nullptr;
    }
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    if (stash_count_ < cfg_.stash_cap) {
      stash_[header.phase_id].push_back(std::move(copy));
      ++stash_count_;
      if (stash_count_ > stats_.stash_peak.load(std::memory_order_relaxed))
        stats_.stash_peak.store(stash_count_, std::memory_order_relaxed);
      return;
    }
    // Stash at capacity: the transport lease is already released; count the
    // drop and fall through without touching msg.release again.
    stats_.stash_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Stale phase or beyond the window: drop. release() recycles the
  // transport resources, which is all the "nack" the reliable fabric
  // needs - delivery already completed at that layer.
  stats_.stash_drops.fetch_add(1, std::memory_order_relaxed);
  if (msg.release) msg.release();
}

void HostEngine::purge_stale_stash() {
  std::lock_guard<rt::Spinlock> guard(stash_lock_);
  auto it = stash_.begin();
  while (it != stash_.end() && it->first < phase_state_.phase_id) {
    for (comm::InMessage& m : it->second) {
      stats_.stash_drops.fetch_add(1, std::memory_order_relaxed);
      if (m.release) m.release();
      --stash_count_;
    }
    it = stash_.erase(it);
  }
  if (!pending_direct_.empty()) {
    auto out = pending_direct_.begin();
    for (const comm::DirectSignal& sig : pending_direct_) {
      if (sig.phase_id >= phase_state_.phase_id)
        *out++ = sig;
      else
        stats_.direct_stale.fetch_add(1, std::memory_order_relaxed);
    }
    pending_direct_.erase(out, pending_direct_.end());
    pending_direct_count_.store(pending_direct_.size(),
                                std::memory_order_release);
  }
}

void HostEngine::run_slice(const ApplySlice& slice) {
  ApplyJob* job = slice.job;
  if (telemetry::enabled() && job->header.trace_id != 0) {
    char hbuf[64];
    std::snprintf(hbuf, sizeof(hbuf),
                  "{\"src\":%d,\"rec_lo\":%u,\"rec_hi\":%u}", job->msg.src,
                  slice.rec_lo, slice.rec_hi);
    telemetry::hop("apply", static_cast<std::uint32_t>(graph_.host_id),
                   job->header.trace_id, job->header.trace_hop, hbuf);
  }
  {
    telemetry::Span apply_span("abelian", "apply", graph_.host_id);
    const auto t0 = std::chrono::steady_clock::now();
    if (!(*job->scatter)(job->msg.src, job->header, job->msg.payload(),
                         slice.rec_lo, slice.rec_hi))
      job->rejected.store(true, std::memory_order_relaxed);
    stats_.apply_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
  }
  if (job->slices_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last slice settles the chunk exactly once: one reject count however
    // many slices failed, one release, then the completion accounting (the
    // apply-before-note_chunk order is what makes phase completion imply
    // an empty apply queue).
    if (job->rejected.load(std::memory_order_relaxed))
      stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    if (job->msg.release) job->msg.release();
    if (job->is_direct)
      phase_state_.note_direct(job->msg.src);
    else
      phase_state_.note_chunk(job->msg.src, job->header);
    delete job;
  }
}

bool HostEngine::aborting() const noexcept {
  return cluster_.membership().failure_pending();
}

void HostEngine::abort_slice(const ApplySlice& slice) {
  ApplyJob* job = slice.job;
  if (job != nullptr &&
      job->slices_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (job->msg.release) job->msg.release();
    delete job;
  }
}

void HostEngine::push_slice(const ApplySlice& slice, bool can_apply) {
  rt::Backoff backoff;
  while (!apply_queue_.try_push(slice)) {
    if (aborting()) {
      abort_slice(slice);
      return;
    }
    // Queue full. An apply worker makes room by running a slice itself
    // (never its own job's - slices_left is pre-charged, so the job cannot
    // settle before every slice is pushed); a pump-only thread waits for
    // the workers to catch up.
    if (can_apply) {
      if (auto s = apply_queue_.try_pop()) {
        run_slice(*s);
        backoff.reset();
        continue;
      }
    }
    backoff.pause();
  }
}

void HostEngine::enqueue_apply(comm::InMessage&& msg,
                               const comm::ChunkHeader& header,
                               const ScatterFn& scatter, bool can_apply,
                               bool is_direct) {
  std::uint32_t nslices = 1;
  std::uint32_t records = 0;
  if (apply_workers_ > 1 && cfg_.apply_slice_records > 0) {
    const auto info = comm::chunk_slice_info(header, phase_value_bytes_);
    if (info.sliceable && info.records >= 2 * cfg_.apply_slice_records) {
      records = info.records;
      const std::uint32_t want =
          (records + cfg_.apply_slice_records - 1) / cfg_.apply_slice_records;
      nslices = std::min(want, static_cast<std::uint32_t>(apply_workers_));
    }
  }
  auto* job = new ApplyJob;
  job->msg = std::move(msg);
  job->header = header;
  job->scatter = &scatter;
  job->is_direct = is_direct;
  job->slices_left.store(nslices, std::memory_order_relaxed);
  if (nslices == 1) {
    push_slice(ApplySlice{job, 0, kAllChunkRecords}, can_apply);
    return;
  }
  const std::uint32_t per = (records + nslices - 1) / nslices;
  for (std::uint32_t i = 0; i < nslices; ++i)
    push_slice(ApplySlice{job, i * per, std::min(records, (i + 1) * per)},
               can_apply);
}

bool HostEngine::poll_direct_signal(comm::DirectSignal& out) {
  if (pending_direct_count_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    const std::uint32_t current = phase_state_.phase_id;
    for (auto it = pending_direct_.begin(); it != pending_direct_.end();
         ++it) {
      if (it->phase_id == current) {
        out = *it;
        pending_direct_.erase(it);
        pending_direct_count_.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
  }
  return backend_->poll_direct(out);
}

void HostEngine::handle_direct_signal(const comm::DirectSignal& sig,
                                      const ScatterFn& scatter,
                                      bool can_apply) {
  const std::uint32_t current = phase_state_.phase_id;
  if (sig.phase_id != current) {
    // A put for a later phase landed early. Its region is a different
    // (pattern, src) slot than anything the current phase reads, so the
    // payload sits untouched; stash just the notification.
    if (sig.phase_id > current &&
        sig.phase_id - current <= kStashPhaseWindow) {
      std::lock_guard<rt::Spinlock> guard(stash_lock_);
      if (pending_direct_.size() < cfg_.stash_cap) {
        pending_direct_.push_back(sig);
        pending_direct_count_.fetch_add(1, std::memory_order_release);
        return;
      }
    }
    stats_.direct_stale.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Validation ladder for a current-phase signal: the pattern must match
  // the phase, the generation must match OUR live registration (a put that
  // raced a recovery epoch fails here), and the claimed size must fit the
  // region. Stale signals are dropped WITHOUT being counted - they belong
  // to no current tail ledger, so dropping them cannot stall completion.
  const auto it = direct_homes_.find(direct_key(sig.pattern_key, sig.src));
  if (sig.pattern_key != phase_pattern_key_ || it == direct_homes_.end() ||
      it->second.region.generation != sig.generation ||
      sig.bytes < comm::kChunkHeaderBytes ||
      sig.bytes > it->second.region.capacity) {
    stats_.direct_stale.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  comm::InMessage msg;
  msg.src = sig.src;
  msg.data = it->second.buf.get();
  msg.size = sig.bytes;
  // No release: the payload lives in the engine-owned region and the apply
  // pipeline scatters straight from it (zero copy).
  const comm::ChunkHeader header = msg.header();
  if (!header.valid() || header.phase_id != sig.phase_id ||
      comm::kChunkHeaderBytes + header.payload_bytes != sig.bytes) {
    // Generation-valid but unparsable: the put itself is genuine (the
    // sender's tail expects it), so it is counted and only its content
    // rejected.
    stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    phase_state_.note_direct(sig.src);
    return;
  }
  enqueue_apply(std::move(msg), header, scatter, can_apply,
                /*is_direct=*/true);
}

bool HostEngine::drain_one(const ScatterFn& scatter, bool can_apply) {
  if (can_apply) {
    if (auto s = apply_queue_.try_pop()) {
      run_slice(*s);
      return true;
    }
  }
  comm::DirectSignal sig;
  if (poll_direct_signal(sig)) {
    handle_direct_signal(sig, scatter, can_apply);
    return true;
  }
  comm::InMessage msg;
  if (!next_message(msg)) return false;
  if (msg.size < comm::kChunkHeaderBytes) {
    stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    if (msg.release) msg.release();
    return true;
  }
  const comm::ChunkHeader header = msg.header();
  if (!header.valid() || msg.payload_size() < header.payload_bytes) {
    // Garbage frame (fuzzed tag, truncated payload): drop without counting
    // it toward phase completion - a real peer chunk never fails valid().
    stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    if (msg.release) msg.release();
    return true;
  }
  if (header.phase_id != phase_state_.phase_id) {
    // A peer already raced ahead into a later phase; keep for later
    // (bounded) or drop a stale/fuzzed id.
    stash_message(std::move(msg), header);
    return true;
  }
  if (header.payload_bytes == 0) {
    // Tail or clean single-chunk message: nothing to apply.
    if (msg.release) msg.release();
    phase_state_.note_chunk(msg.src, header);
    return true;
  }
  if (telemetry::enabled() && header.trace_id != 0) {
    char hbuf[64];
    std::snprintf(hbuf, sizeof(hbuf),
                  "{\"src\":%d,\"base_pos\":%u,\"bytes\":%u}", msg.src,
                  header.base_pos, header.payload_bytes);
    telemetry::hop("decode", static_cast<std::uint32_t>(graph_.host_id),
                   header.trace_id, header.trace_hop, hbuf);
  }
  enqueue_apply(std::move(msg), header, scatter, can_apply);
  return true;
}

// ---------------------------------------------------------------------------
// Direct-write path (DESIGN.md §15)
// ---------------------------------------------------------------------------

void HostEngine::ensure_direct_homes(const comm::PhaseSpec& spec,
                                     std::size_t rec_bytes,
                                     const graph::CompressedPlan& recv_plan) {
  for (const int src : spec.recv_from) {
    const std::uint64_t key = direct_key(spec.pattern_key, src);
    if (direct_homes_.count(key) != 0) continue;
    const std::size_t span = recv_plan.size(src);
    // Sized so the whole list fits in ANY wire format: worst-case sparse
    // records plus the dense bitmap (Forced mode direct-puts sparse rounds).
    const std::size_t cap =
        comm::kChunkHeaderBytes + span * rec_bytes + (span + 7) / 8;
    DirectHome home;
    home.buf.reset(new std::byte[cap]);
    const std::uint32_t gen = cluster_.direct_directory().next_generation();
    home.region =
        backend_->register_direct_region(src, home.buf.get(), cap, gen);
    if (!home.region.valid()) continue;
    if (cfg_.backend_options.tracker != nullptr)
      cfg_.backend_options.tracker->on_alloc(cap);
    cluster_.direct_directory().publish(graph_.host_id, src, spec.pattern_key,
                                        home.region);
    direct_homes_.emplace(key, std::move(home));
  }
}

bool HostEngine::try_direct_put(int dst, const comm::DirectRegion& region,
                                comm::BufferLease& lease, std::size_t bytes,
                                std::uint32_t phase_id,
                                std::uint32_t pattern_key,
                                const ScatterFn& scatter, bool can_apply) {
  if (backend_->thread_safe_send()) {
    rt::Backoff backoff;
    for (;;) {
      const auto st = backend_->direct_put(dst, region, lease.data, bytes,
                                           phase_id, pattern_key);
      if (st == comm::DirectPutStatus::Ok) return true;
      if (st == comm::DirectPutStatus::Unavailable || aborting())
        return false;
      // Transient exhaustion: relieve it by scattering, then retry.
      if (!drain_one(scatter, can_apply)) backoff.pause();
    }
  }
  // FUNNELED backend: route the put through the comm thread. Only taken
  // when the put cannot hard-fail (capacity was pre-checked against the
  // region and the emulation never soft-fails), so queued == sent and the
  // direct count announced in the tail stays truthful.
  auto* sw = new SendWork;
  sw->dst = dst;
  sw->direct = true;
  sw->region = region;
  sw->phase_id = phase_id;
  sw->pattern_key = pattern_key;
  if (lease.heap.size() != bytes) lease.heap.resize(bytes);
  sw->payload = std::move(lease.heap);
  lease = comm::BufferLease{};
  sends_pending_.fetch_add(1, std::memory_order_acq_rel);
  rt::Backoff backoff;
  while (!send_queue_.try_push(sw)) {
    if (aborting()) {
      delete sw;
      sends_pending_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    if (!drain_one(scatter, can_apply)) backoff.pause();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Phase driver
// ---------------------------------------------------------------------------

void HostEngine::execute_phase(std::uint32_t pattern, std::size_t rec_bytes,
                               const graph::CompressedPlan& send_plan,
                               const graph::CompressedPlan& recv_plan,
                               const GatherFn& gather,
                               const ScatterFn& scatter) {
  // The span and the timer cover the same interval: summed sync_phase span
  // time per host must agree with stats_.comm_s (bench_fig6 asserts this).
  telemetry::Span phase_span("abelian", "sync_phase", graph_.host_id);
  rt::Timer phase_timer;
  const int p = graph_.num_hosts;
  const int me = graph_.host_id;

  comm::PhaseSpec spec;
  spec.phase_id = phase_counter_++;
  spec.pattern_key =
      (pattern << 16) | static_cast<std::uint32_t>(rec_bytes & 0xFFFF);
  spec.max_send_bytes.assign(static_cast<std::size_t>(p), 0);
  spec.max_recv_bytes.assign(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto rs = static_cast<std::size_t>(r);
    if (!send_plan.empty(r)) {
      spec.send_to.push_back(r);
      spec.max_send_bytes[rs] =
          comm::kChunkHeaderBytes + send_plan.size(r) * rec_bytes;
    }
    if (!recv_plan.empty(r)) {
      spec.recv_from.push_back(r);
      spec.max_recv_bytes[rs] =
          comm::kChunkHeaderBytes + recv_plan.size(r) * rec_bytes;
    }
  }

  const std::uint64_t bytes_before =
      stats_.bytes_sent.load(std::memory_order_relaxed);
  phase_state_.arm(spec.phase_id, p, spec.recv_from);
  // Record layout for the apply-slice splitter (records are [u32 pos][T]).
  phase_value_bytes_ =
      rec_bytes > sizeof(std::uint32_t) ? rec_bytes - sizeof(std::uint32_t)
                                        : 0;
  phase_pattern_key_ = spec.pattern_key;
  const bool direct_capable =
      cfg_.direct_write != comm::DirectWriteMode::Off &&
      backend_->supports_direct_write();
  if (direct_capable) ensure_direct_homes(spec, rec_bytes, recv_plan);
  stats_.apply_threads.store(apply_workers_, std::memory_order_relaxed);
  purge_stale_stash();
  post_cmd(Cmd::BeginPhase, &spec);

  // Work decomposition: each peer's shared list is split into ranges that
  // fit one chunk even at worst-case (all-dirty sparse) encoding; the dense
  // and varint encodings are never larger, so every range fits its lease.
  // RMA (chunk_bytes() == 0) keeps exactly one whole-list message per peer:
  // its windows hold one put per peer per phase.
  const std::size_t chunk_cap = backend_->chunk_bytes();
  const bool single_chunk = chunk_cap == 0;
  const std::size_t payload_cap = chunk_cap > comm::kChunkHeaderBytes
                                      ? chunk_cap - comm::kChunkHeaderBytes
                                      : 1024;
  const std::size_t span_cap =
      std::max<std::size_t>(1, payload_cap / std::max<std::size_t>(
                                                 rec_bytes, 1));

  const std::size_t num_peers = spec.send_to.size();

  // Direct-write plan: per peer, resolve the published region and decide
  // the transport up front. Auto mode predicts density from the previous
  // stream to the same (pattern, peer); a mispredict only changes the
  // transport (the direct frame carries whatever format the encoder
  // picks), never correctness.
  struct DirectPlan {
    comm::DirectRegion region;
    bool use = false;
    char* prior = nullptr;  // density-predictor slot for this peer
  };
  std::vector<DirectPlan> direct_plan(num_peers);
  if (direct_capable) {
    const bool forced = cfg_.direct_write == comm::DirectWriteMode::Forced;
    for (std::size_t i = 0; i < num_peers; ++i) {
      const int dst = spec.send_to[i];
      char& prior = dense_prior_.emplace(direct_key(spec.pattern_key, dst),
                                         char{0})
                        .first->second;
      direct_plan[i].prior = &prior;
      if (!forced && prior == 0) continue;  // Auto: predicted sparse
      comm::DirectRegion region;
      if (!cluster_.direct_directory().lookup(dst, me, spec.pattern_key,
                                              region))
        continue;  // not published yet: this round stays two-sided
      direct_plan[i].region = region;
      direct_plan[i].use = true;
    }
  }

  std::vector<std::size_t> range_offset(num_peers + 1, 0);
  for (std::size_t i = 0; i < num_peers; ++i) {
    const std::size_t list_size = send_plan.size(spec.send_to[i]);
    const std::size_t ranges =
        (single_chunk || direct_plan[i].use)
            ? 1
            : std::max<std::size_t>(1,
                                    (list_size + span_cap - 1) / span_cap);
    range_offset[i + 1] = range_offset[i] + ranges;
  }
  const std::size_t total_ranges = range_offset[num_peers];

  struct PeerProgress {
    std::atomic<std::uint32_t> ranges_left{0};
    std::atomic<std::uint32_t> chunks_sent{0};
    std::atomic<std::uint32_t> directs_sent{0};
    std::atomic<std::uint32_t> dense_chunks{0};
  };
  std::vector<PeerProgress> peer_progress(num_peers);
  for (std::size_t i = 0; i < num_peers; ++i)
    peer_progress[i].ranges_left.store(
        static_cast<std::uint32_t>(range_offset[i + 1] - range_offset[i]),
        std::memory_order_relaxed);

  std::atomic<std::size_t> next_item{0};
  std::atomic<std::size_t> work_left{total_ranges};
  const bool inline_send = backend_->thread_safe_send();

  // Format bookkeeping shared by the two-sided, direct and fallback paths.
  const auto note_format = [&](std::size_t pi, const comm::EncodedChunk& e) {
    switch (e.format) {
      case comm::WireFormat::Varint:
        stats_.fmt_varint.fetch_add(1, std::memory_order_relaxed);
        break;
      case comm::WireFormat::Dense:
        stats_.fmt_dense.fetch_add(1, std::memory_order_relaxed);
        peer_progress[pi].dense_chunks.fetch_add(1,
                                                 std::memory_order_relaxed);
        break;
      default:
        stats_.fmt_sparse.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    const std::size_t sparse_worst = e.records * rec_bytes;
    if (e.bytes < sparse_worst)
      stats_.bytes_saved.fetch_add(sparse_worst - e.bytes,
                                   std::memory_order_relaxed);
  };

  team_->run([&](std::size_t tid) {
    // Threads below the apply-worker count run received-chunk applies
    // whenever they touch the receive side; the rest only pump messages
    // (apply_workers == 1 reproduces the serial apply path exactly).
    const bool can_apply = tid < apply_workers_;
    // Stage 1: range-parallel gather. Each range is encoded directly into
    // an independent leased send buffer (records are position-indexed and
    // order-free), so serialization scales with the compute team instead of
    // pinning one thread.
    for (;;) {
      const std::size_t r = next_item.fetch_add(1, std::memory_order_relaxed);
      if (r >= total_ranges) break;
      std::size_t pi = 0;
      while (r >= range_offset[pi + 1]) ++pi;
      const int dst = spec.send_to[pi];
      const bool direct_this = direct_plan[pi].use;
      const std::size_t list_size = send_plan.size(dst);
      const auto lo = static_cast<std::uint32_t>(
          (single_chunk || direct_this) ? 0
                                        : (r - range_offset[pi]) * span_cap);
      const auto hi = static_cast<std::uint32_t>(
          (single_chunk || direct_this)
              ? list_size
              : std::min<std::size_t>(list_size, lo + span_cap));

      comm::BufferLease lease;
      const ReserveFn reserve = [&](std::size_t need) -> std::byte* {
        const std::size_t total = comm::kChunkHeaderBytes + need;
        if (inline_send && !direct_this) {
          lease = backend_->acquire(dst, total);
        } else {
          // Never call into a non-thread-safe backend from compute threads
          // (and direct frames are staged on the heap: direct_put snapshots
          // the payload, so no backend buffer is involved); build the heap
          // buffer here.
          lease.heap.resize(total);
          lease.data = lease.heap.data();
          lease.capacity = total;
        }
        return lease.data + comm::kChunkHeaderBytes;
      };

      comm::EncodedChunk enc;
      {
        telemetry::Span gather_span("abelian", "gather", me);
        const auto t0 = std::chrono::steady_clock::now();
        enc = gather(dst, lo, hi, reserve);
        auto& bucket = direct_this ? stats_.direct_ns : stats_.gather_ns;
        bucket.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
      }

      PeerProgress& pp = peer_progress[pi];
      if (direct_this) {
        // Direct-write transport: the whole-list frame mirrors into the
        // peer's registered region with one put; completion travels as a
        // counted signal, and the tail announces the count.
        if (enc.records > 0) {
          comm::ChunkHeader header;
          header.phase_id = spec.phase_id;
          header.payload_bytes = static_cast<std::uint32_t>(enc.bytes);
          header.base_pos = 0;
          header.span = hi;
          header.chunk_idx = 0;
          header.num_chunks = 0;  // accounted via note_direct, not the tail
          header.format = static_cast<std::uint8_t>(enc.format);
          if (enc.format == comm::WireFormat::Dense && enc.all_set)
            header.flags |= comm::kFlagDenseFull;
          header.trace_id = telemetry::sample_trace_id(
              static_cast<std::uint32_t>(me), spec.phase_id, 0,
              static_cast<std::uint32_t>(dst));
          header.finalize();
          std::memcpy(lease.data, &header, sizeof(header));
          const std::size_t total = comm::kChunkHeaderBytes + enc.bytes;
          bool sent_direct = false;
          if (total <= direct_plan[pi].region.capacity) {
            telemetry::Span put_span("abelian", "direct_put", me);
            const auto t0 = std::chrono::steady_clock::now();
            sent_direct =
                try_direct_put(dst, direct_plan[pi].region, lease, total,
                               spec.phase_id, spec.pattern_key, scatter,
                               can_apply);
            stats_.direct_ns.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()),
                std::memory_order_relaxed);
          }
          if (sent_direct) {
            pp.directs_sent.store(1, std::memory_order_release);
            stats_.direct_sends.fetch_add(1, std::memory_order_relaxed);
            stats_.direct_bytes.fetch_add(total, std::memory_order_relaxed);
            stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
            stats_.bytes_sent.fetch_add(total, std::memory_order_relaxed);
            note_format(pi, enc);
          } else if (!aborting()) {
            // Two-sided fallback (stale rkey after a revive, oversized
            // frame). The receiver's ledger is untouched: everything below
            // is counted by note_chunk and the tail.
            stats_.direct_fallbacks.fetch_add(1, std::memory_order_relaxed);
            if (single_chunk) {
              header.num_chunks = 1;
              header.finalize();
              std::memcpy(lease.data, &header, sizeof(header));
              telemetry::Span send_span("abelian", "send", me);
              dispatch_chunk(dst, lease, total, scatter, can_apply);
              pp.chunks_sent.fetch_add(1, std::memory_order_release);
              note_format(pi, enc);
            } else {
              // Streaming backend: the whole-list staging may exceed the
              // chunk cap, so re-gather in chunk-sized ranges through the
              // regular two-sided path (rare - a revive window).
              lease = comm::BufferLease{};
              for (std::size_t flo = 0; flo < list_size; flo += span_cap) {
                const auto sub_lo = static_cast<std::uint32_t>(flo);
                const auto sub_hi = static_cast<std::uint32_t>(
                    std::min<std::size_t>(list_size, flo + span_cap));
                comm::BufferLease sub;
                const ReserveFn sub_reserve =
                    [&](std::size_t need) -> std::byte* {
                  const std::size_t t = comm::kChunkHeaderBytes + need;
                  if (inline_send) {
                    sub = backend_->acquire(dst, t);
                  } else {
                    sub.heap.resize(t);
                    sub.data = sub.heap.data();
                    sub.capacity = t;
                  }
                  return sub.data + comm::kChunkHeaderBytes;
                };
                comm::EncodedChunk senc;
                {
                  const auto t0 = std::chrono::steady_clock::now();
                  senc = gather(dst, sub_lo, sub_hi, sub_reserve);
                  stats_.gather_ns.fetch_add(
                      static_cast<std::uint64_t>(
                          std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()),
                      std::memory_order_relaxed);
                }
                if (senc.records == 0) {
                  if (sub) {
                    if (inline_send)
                      backend_->abandon(sub);
                    else
                      sub = comm::BufferLease{};
                  }
                  continue;
                }
                comm::ChunkHeader sh;
                sh.phase_id = spec.phase_id;
                sh.payload_bytes = static_cast<std::uint32_t>(senc.bytes);
                sh.base_pos = sub_lo;
                sh.span = sub_hi - sub_lo;
                sh.chunk_idx = static_cast<std::uint16_t>(
                    pp.chunks_sent.load(std::memory_order_relaxed) & 0xFFFF);
                sh.num_chunks = 0;
                sh.format = static_cast<std::uint8_t>(senc.format);
                if (senc.format == comm::WireFormat::Dense && senc.all_set)
                  sh.flags |= comm::kFlagDenseFull;
                sh.trace_id = telemetry::sample_trace_id(
                    static_cast<std::uint32_t>(me), spec.phase_id, sub_lo,
                    static_cast<std::uint32_t>(dst));
                sh.finalize();
                std::memcpy(sub.data, &sh, sizeof(sh));
                telemetry::Span send_span("abelian", "send", me);
                dispatch_chunk(dst, sub, comm::kChunkHeaderBytes + senc.bytes,
                               scatter, can_apply);
                pp.chunks_sent.fetch_add(1, std::memory_order_release);
                note_format(pi, senc);
              }
            }
          }
        }
        if (lease) {
          if (lease.pooled)
            backend_->abandon(lease);
          else
            lease = comm::BufferLease{};  // heap staging, simply dropped
        }
      } else if (enc.records > 0 || single_chunk) {
        comm::ChunkHeader header;
        header.phase_id = spec.phase_id;
        header.payload_bytes = static_cast<std::uint32_t>(enc.bytes);
        header.base_pos = lo;
        header.span = hi - lo;
        header.chunk_idx =
            static_cast<std::uint16_t>((r - range_offset[pi]) & 0xFFFF);
        header.num_chunks = single_chunk ? 1 : 0;
        header.format = static_cast<std::uint8_t>(enc.format);
        if (enc.format == comm::WireFormat::Dense && enc.all_set)
          header.flags |= comm::kFlagDenseFull;
        // Causal-trace sampling decision: deterministic in (host, phase,
        // range, dst), so a seeded re-run samples the same messages. The
        // destination salt keeps chunks that cover the same range for two
        // peers on distinct trace ids. Must precede finalize() - the
        // self-check covers the trace fields.
        header.trace_id = telemetry::sample_trace_id(
            static_cast<std::uint32_t>(me), spec.phase_id, lo,
            static_cast<std::uint32_t>(dst));
        header.finalize();
        if (telemetry::enabled() && header.trace_id != 0) {
          char hbuf[80];
          std::snprintf(hbuf, sizeof(hbuf),
                        "{\"dst\":%d,\"base_pos\":%u,\"bytes\":%u}", dst, lo,
                        header.payload_bytes);
          telemetry::hop("encode", static_cast<std::uint32_t>(me),
                         header.trace_id, 0, hbuf);
        }
        if (!lease) reserve(0);  // clean single-chunk message: header only
        std::memcpy(lease.data, &header, sizeof(header));
        {
          telemetry::Span send_span("abelian", "send", me);
          dispatch_chunk(dst, lease, comm::kChunkHeaderBytes + enc.bytes,
                         scatter, can_apply);
        }
        pp.chunks_sent.fetch_add(1, std::memory_order_release);
        note_format(pi, enc);
      } else if (lease) {
        if (inline_send)
          backend_->abandon(lease);
        else
          lease = comm::BufferLease{};
      }

      if (pp.ranges_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last range for this peer: every chunks_sent increment happened
        // before its release decrement, so the acquire load sees the total.
        const std::uint32_t directs =
            pp.directs_sent.load(std::memory_order_acquire);
        if (!single_chunk) {
          send_tail(dst, pp.chunks_sent.load(std::memory_order_acquire),
                    directs, scatter, can_apply);
        } else if (direct_this &&
                   pp.chunks_sent.load(std::memory_order_acquire) == 0) {
          // Single-message backend on the direct path: the peer still
          // expects its one window message - send the tail as that message
          // so it carries the direct count (0 when nothing was dirty).
          send_tail(dst, 0, directs, scatter, can_apply);
        }
        // Commit the density predictor for the next round to this peer.
        if (direct_plan[pi].prior != nullptr)
          *direct_plan[pi].prior =
              pp.dense_chunks.load(std::memory_order_relaxed) != 0 ? 1 : 0;
      }
      work_left.fetch_sub(1, std::memory_order_acq_rel);
    }

    // Thread 0 flushes once every send of the phase has been handed over.
    if (tid == 0) {
      telemetry::Span flush_span("abelian", "flush", me);
      rt::Backoff backoff;
      while (work_left.load(std::memory_order_acquire) != 0 ||
             sends_pending_.load(std::memory_order_acquire) != 0) {
        if (aborting()) break;
        if (!drain_one(scatter, can_apply)) backoff.pause();
      }
      post_cmd(Cmd::Flush, nullptr);
    }

    // Stage 2: every thread turns into a receive-side worker until the
    // phase completes - apply workers pop decode/apply slices off the work
    // queue (and pump when it is empty); the rest keep the transport
    // drained and feed the queue.
    telemetry::Span recv_span("abelian", "recv", me);
    rt::Backoff backoff;
    while (!phase_state_.complete.load(std::memory_order_acquire)) {
      // A dead peer's chunks never arrive: unwind instead of spinning. The
      // host-main driver raises the failure at its next round boundary.
      if (aborting()) break;
      if (drain_one(scatter, can_apply))
        backoff.reset();
      else
        backoff.pause();
    }
  });

  post_cmd(Cmd::EndPhase, nullptr);
  const double phase_s = phase_timer.elapsed_s();
  stats_.comm_s += phase_s;
  stats_.phases++;
  // Health-monitor report: one sample per host per phase, piggybacked on
  // the phase completion the engine just synchronized on.
  cluster_.health().note_phase(
      static_cast<std::uint32_t>(me), spec.phase_id,
      static_cast<std::uint64_t>(phase_s * 1e9),
      stats_.bytes_sent.load(std::memory_order_relaxed) - bytes_before);
}

}  // namespace lcr::abelian
