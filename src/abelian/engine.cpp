#include "abelian/engine.hpp"

#include <cassert>
#include <cstring>
#include <mutex>

#include "runtime/cpu_relax.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace lcr::abelian {

namespace {
/// LCI default: one injection lane per compute thread (the paper's model -
/// every compute thread injects; see DESIGN.md §10). Explicit settings win.
EngineConfig with_lane_defaults(EngineConfig cfg) {
  if (cfg.backend == comm::BackendKind::Lci &&
      cfg.backend_options.lci_lanes == 0)
    cfg.backend_options.lci_lanes = cfg.compute_threads;
  return cfg;
}
}  // namespace

HostEngine::HostEngine(Cluster& cluster, const graph::DistGraph& graph,
                       EngineConfig cfg)
    : cluster_(cluster),
      graph_(graph),
      cfg_(with_lane_defaults(std::move(cfg))),
      backend_(comm::make_backend(cfg_.backend, cluster.fabric(),
                                  graph.host_id, cfg_.backend_options)),
      team_(std::make_unique<rt::ThreadTeam>(cfg.compute_threads)),
      send_queue_(1024),
      recv_queue_(cfg.recv_queue_capacity) {
  stat_reg_ = cluster.fabric().telemetry().register_probes({
      {"abelian.messages_sent", &stats_.messages_sent},
      {"abelian.bytes_sent", &stats_.bytes_sent},
  });
  comm_thread_ = std::thread([this] { comm_thread_loop(); });
}

HostEngine::~HostEngine() {
  stop_.store(true, std::memory_order_release);
  if (comm_thread_.joinable()) comm_thread_.join();
  // Drop anything still queued (teardown only; release() recycles backend
  // resources which are about to be destroyed anyway).
  while (auto m = recv_queue_.try_pop()) delete *m;
  while (auto w = send_queue_.try_pop()) delete *w;
}

// ---------------------------------------------------------------------------
// Phase completion tracking
// ---------------------------------------------------------------------------

void HostEngine::PhaseState::arm(std::uint32_t id, int num_hosts,
                                 const std::vector<int>& recv_from) {
  std::lock_guard<rt::Spinlock> guard(lock);
  phase_id = id;
  total.assign(static_cast<std::size_t>(num_hosts), -1);
  got.assign(static_cast<std::size_t>(num_hosts), 0);
  peers_remaining = recv_from.size();
  complete.store(peers_remaining == 0, std::memory_order_release);
}

void HostEngine::PhaseState::note_chunk(int src,
                                        const comm::ChunkHeader& header) {
  std::lock_guard<rt::Spinlock> guard(lock);
  const auto s = static_cast<std::size_t>(src);
  if (total[s] < 0) total[s] = static_cast<std::int32_t>(header.num_chunks);
  if (++got[s] == total[s]) {
    assert(peers_remaining > 0);
    if (--peers_remaining == 0)
      complete.store(true, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Communication thread
// ---------------------------------------------------------------------------

void HostEngine::post_cmd(Cmd cmd, const comm::PhaseSpec* spec) {
  if (backend_->thread_safe_recv()) {
    // LCI: phase hooks are trivial and thread-safe; run them inline.
    switch (cmd) {
      case Cmd::BeginPhase: backend_->begin_phase(*spec); break;
      case Cmd::Flush: backend_->flush(); break;
      case Cmd::EndPhase: backend_->end_phase(); break;
      case Cmd::None: break;
    }
    return;
  }
  const std::uint64_t before = cmd_acks_.load(std::memory_order_acquire);
  cmd_spec_ = spec;
  cmd_.store(cmd, std::memory_order_release);
  rt::Backoff backoff;
  while (cmd_acks_.load(std::memory_order_acquire) == before)
    backoff.pause();
}

void HostEngine::comm_thread_loop() {
  rt::Backoff backoff;
  telemetry::ProgressProfiler profiler(cluster_.fabric().telemetry(),
                                       "abelian.comm_thread");
  std::deque<comm::InMessage*> holding;  // messages awaiting queue space
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = false;

    const Cmd cmd = cmd_.load(std::memory_order_acquire);
    if (cmd != Cmd::None) {
      switch (cmd) {
        case Cmd::BeginPhase: backend_->begin_phase(*cmd_spec_); break;
        case Cmd::Flush: backend_->flush(); break;
        case Cmd::EndPhase: backend_->end_phase(); break;
        case Cmd::None: break;
      }
      cmd_.store(Cmd::None, std::memory_order_relaxed);
      cmd_acks_.fetch_add(1, std::memory_order_release);
      did_work = true;
    }

    if (!backend_->thread_safe_send()) {
      // Pump queued sends into the backend (MPI layers never push back).
      while (auto work = send_queue_.try_pop()) {
        SendWork* sw = *work;
        rt::Backoff send_backoff;
        while (!backend_->try_send(sw->dst, sw->payload)) {
          backend_->progress();
          send_backoff.pause();
        }
        delete sw;
        sends_pending_.fetch_sub(1, std::memory_order_release);
        did_work = true;
      }
    }
    if (!backend_->thread_safe_recv()) {
      // Drain arrived messages into the engine receive queue.
      while (!holding.empty() && recv_queue_.try_push(holding.front()))
        holding.pop_front();
      if (holding.empty()) {
        comm::InMessage msg;
        while (backend_->try_recv(msg)) {
          auto* m = new comm::InMessage(std::move(msg));
          if (!recv_queue_.try_push(m)) {
            holding.push_back(m);
            break;
          }
          did_work = true;
        }
      }
    }

    backend_->progress();
    profiler.note(did_work);
    if (did_work)
      backoff.reset();
    else
      backoff.pause();
  }
  for (comm::InMessage* m : holding) delete m;  // teardown
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void HostEngine::submit_send(int dst, std::vector<std::byte> payload,
                             const ScatterFn& scatter) {
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  if (cfg_.backend_options.tracker != nullptr)
    cfg_.backend_options.tracker->on_alloc(payload.size());
  if (backend_->thread_safe_send()) {
    rt::Backoff backoff;
    while (!backend_->try_send(dst, payload)) {
      // Back pressure: relieve it by receiving/scattering, then retry.
      if (!drain_one(scatter)) backoff.pause();
    }
    return;
  }
  auto* sw = new SendWork{dst, std::move(payload)};
  sends_pending_.fetch_add(1, std::memory_order_acq_rel);
  rt::Backoff backoff;
  while (!send_queue_.try_push(sw)) {
    if (!drain_one(scatter)) backoff.pause();
  }
}

void HostEngine::send_chunks(int dst, std::vector<std::byte>&& records,
                             std::size_t chunk_cap, std::size_t rec_bytes,
                             const ScatterFn& scatter) {
  std::size_t slice =
      chunk_cap == 0 ? records.size()
                     : (chunk_cap > comm::kChunkHeaderBytes
                            ? chunk_cap - comm::kChunkHeaderBytes
                            : 1024);
  // Never split a record across chunks: scatter parses each chunk
  // independently.
  if (rec_bytes > 0 && slice >= rec_bytes) slice -= slice % rec_bytes;
  std::size_t num_chunks = 1;
  if (!records.empty() && slice > 0)
    num_chunks = (records.size() + slice - 1) / slice;
  assert(num_chunks <= 0xFFFF);

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = c * slice;
    const std::size_t hi =
        records.empty() ? 0 : std::min(records.size(), lo + slice);
    const std::size_t n = hi > lo ? hi - lo : 0;
    std::vector<std::byte> chunk(comm::kChunkHeaderBytes + n);
    comm::ChunkHeader header;
    header.phase_id = phase_state_.phase_id;
    header.chunk_idx = static_cast<std::uint16_t>(c);
    header.num_chunks = static_cast<std::uint16_t>(num_chunks);
    header.payload_bytes = static_cast<std::uint32_t>(n);
    std::memcpy(chunk.data(), &header, sizeof(header));
    if (n > 0)
      std::memcpy(chunk.data() + comm::kChunkHeaderBytes, records.data() + lo,
                  n);
    submit_send(dst, std::move(chunk), scatter);
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

bool HostEngine::next_message(comm::InMessage& out) {
  {
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    auto it = stash_.find(phase_state_.phase_id);
    if (it != stash_.end() && !it->second.empty()) {
      out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      return true;
    }
  }
  if (backend_->thread_safe_recv()) return backend_->try_recv(out);
  if (auto m = recv_queue_.try_pop()) {
    out = std::move(**m);
    delete *m;
    return true;
  }
  return false;
}

bool HostEngine::drain_one(const ScatterFn& scatter) {
  comm::InMessage msg;
  if (!next_message(msg)) return false;
  const comm::ChunkHeader header = msg.header();
  if (header.phase_id != phase_state_.phase_id) {
    // A peer already raced ahead into a later phase; keep for later.
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    stash_[header.phase_id].push_back(std::move(msg));
    return true;
  }
  if (header.payload_bytes > 0) {
    telemetry::Span apply_span("abelian", "apply", graph_.host_id);
    scatter(msg.src, msg.payload(), header.payload_bytes);
  }
  if (msg.release) msg.release();
  phase_state_.note_chunk(msg.src, header);
  return true;
}

// ---------------------------------------------------------------------------
// Phase driver
// ---------------------------------------------------------------------------

void HostEngine::execute_phase(
    std::uint32_t pattern, std::size_t rec_bytes,
    const std::vector<std::vector<graph::VertexId>>& send_lists,
    const std::vector<std::vector<graph::VertexId>>& recv_lists,
    const GatherFn& gather, const ScatterFn& scatter) {
  // The span and the timer cover the same interval: summed sync_phase span
  // time per host must agree with stats_.comm_s (bench_fig6 asserts this).
  telemetry::Span phase_span("abelian", "sync_phase", graph_.host_id);
  rt::Timer phase_timer;
  const int p = graph_.num_hosts;
  const int me = graph_.host_id;

  comm::PhaseSpec spec;
  spec.phase_id = phase_counter_++;
  spec.pattern_key =
      (pattern << 16) | static_cast<std::uint32_t>(rec_bytes & 0xFFFF);
  spec.max_send_bytes.assign(static_cast<std::size_t>(p), 0);
  spec.max_recv_bytes.assign(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto rs = static_cast<std::size_t>(r);
    if (!send_lists[rs].empty()) {
      spec.send_to.push_back(r);
      spec.max_send_bytes[rs] =
          comm::kChunkHeaderBytes + send_lists[rs].size() * rec_bytes;
    }
    if (!recv_lists[rs].empty()) {
      spec.recv_from.push_back(r);
      spec.max_recv_bytes[rs] =
          comm::kChunkHeaderBytes + recv_lists[rs].size() * rec_bytes;
    }
  }

  phase_state_.arm(spec.phase_id, p, spec.recv_from);
  post_cmd(Cmd::BeginPhase, &spec);

  const std::size_t chunk_cap = backend_->chunk_bytes();
  std::atomic<std::size_t> next_peer{0};
  std::atomic<std::size_t> gathers_left{spec.send_to.size()};

  team_->run([&](std::size_t tid) {
    // Stage 1: parallel gathers, one peer at a time per thread. The GatherFn
    // serializes records directly, so the gather span covers serialization.
    for (;;) {
      const std::size_t i =
          next_peer.fetch_add(1, std::memory_order_relaxed);
      if (i >= spec.send_to.size()) break;
      const int dst = spec.send_to[i];
      std::vector<std::byte> records;
      records.reserve(1024);
      {
        telemetry::Span gather_span("abelian", "gather", me);
        gather(dst, records);
      }
      {
        telemetry::Span send_span("abelian", "send", me);
        send_chunks(dst, std::move(records), chunk_cap, rec_bytes, scatter);
      }
      gathers_left.fetch_sub(1, std::memory_order_acq_rel);
    }

    // Thread 0 flushes once every send of the phase has been handed over.
    if (tid == 0) {
      telemetry::Span flush_span("abelian", "flush", me);
      rt::Backoff backoff;
      while (gathers_left.load(std::memory_order_acquire) != 0 ||
             sends_pending_.load(std::memory_order_acquire) != 0) {
        if (!drain_one(scatter)) backoff.pause();
      }
      post_cmd(Cmd::Flush, nullptr);
    }

    // Stage 2: scatter incoming messages until the phase completes.
    telemetry::Span recv_span("abelian", "recv", me);
    rt::Backoff backoff;
    while (!phase_state_.complete.load(std::memory_order_acquire)) {
      if (drain_one(scatter))
        backoff.reset();
      else
        backoff.pause();
    }
  });

  post_cmd(Cmd::EndPhase, nullptr);
  stats_.comm_s += phase_timer.elapsed_s();
  stats_.phases++;
}

}  // namespace lcr::abelian
