#include "abelian/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <mutex>

#include "runtime/cpu_relax.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace lcr::abelian {

namespace {
/// LCI default: one injection lane per compute thread (the paper's model -
/// every compute thread injects; see DESIGN.md §10). Explicit settings win.
EngineConfig with_lane_defaults(EngineConfig cfg) {
  if (cfg.backend == comm::BackendKind::Lci &&
      cfg.backend_options.lci_lanes == 0)
    cfg.backend_options.lci_lanes = cfg.compute_threads;
  return cfg;
}
}  // namespace

HostEngine::HostEngine(Cluster& cluster, const graph::DistGraph& graph,
                       EngineConfig cfg)
    : cluster_(cluster),
      graph_(graph),
      cfg_(with_lane_defaults(std::move(cfg))),
      backend_(comm::make_backend(cfg_.backend, cluster.fabric(),
                                  graph.host_id, cfg_.backend_options)),
      team_(std::make_unique<rt::ThreadTeam>(cfg.compute_threads)),
      send_queue_(1024),
      recv_queue_(cfg.recv_queue_capacity) {
  stat_reg_ = cluster.fabric().telemetry().register_probes({
      {"abelian.messages_sent", &stats_.messages_sent},
      {"abelian.bytes_sent", &stats_.bytes_sent},
      {"sync.gather_ns", &stats_.gather_ns},
      {"sync.bytes_saved", &stats_.bytes_saved},
      {"sync.fmt_sparse", &stats_.fmt_sparse},
      {"sync.fmt_varint", &stats_.fmt_varint},
      {"sync.fmt_dense", &stats_.fmt_dense},
      {"sync.decode_rejects", &stats_.decode_rejects},
  });
  comm_thread_ = std::thread([this] { comm_thread_loop(); });
}

HostEngine::~HostEngine() {
  stop_.store(true, std::memory_order_release);
  if (comm_thread_.joinable()) comm_thread_.join();
  // Drop anything still queued (teardown only; release() recycles backend
  // resources which are about to be destroyed anyway).
  while (auto m = recv_queue_.try_pop()) delete *m;
  while (auto w = send_queue_.try_pop()) delete *w;
}

// ---------------------------------------------------------------------------
// Phase completion tracking
// ---------------------------------------------------------------------------

void HostEngine::PhaseState::arm(std::uint32_t id, int num_hosts,
                                 const std::vector<int>& recv_from) {
  std::lock_guard<rt::Spinlock> guard(lock);
  phase_id = id;
  total.assign(static_cast<std::size_t>(num_hosts), -1);
  got.assign(static_cast<std::size_t>(num_hosts), 0);
  peers_remaining = recv_from.size();
  complete.store(peers_remaining == 0, std::memory_order_release);
}

void HostEngine::PhaseState::note_chunk(int src,
                                        const comm::ChunkHeader& header) {
  std::lock_guard<rt::Spinlock> guard(lock);
  const auto s = static_cast<std::size_t>(src);
  // Data chunks stream in with num_chunks == 0; the tail (or a lone
  // single-chunk message) announces the total. Order-independent: the tail
  // may arrive before its data chunks.
  if (header.num_chunks != 0)
    total[s] = static_cast<std::int32_t>(header.num_chunks);
  ++got[s];
  if (total[s] >= 0 && got[s] == total[s]) {
    assert(peers_remaining > 0);
    if (--peers_remaining == 0)
      complete.store(true, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Communication thread
// ---------------------------------------------------------------------------

void HostEngine::post_cmd(Cmd cmd, const comm::PhaseSpec* spec) {
  if (backend_->thread_safe_recv()) {
    // LCI: phase hooks are trivial and thread-safe; run them inline.
    switch (cmd) {
      case Cmd::BeginPhase: backend_->begin_phase(*spec); break;
      case Cmd::Flush: backend_->flush(); break;
      case Cmd::EndPhase: backend_->end_phase(); break;
      case Cmd::None: break;
    }
    return;
  }
  const std::uint64_t before = cmd_acks_.load(std::memory_order_acquire);
  cmd_spec_ = spec;
  cmd_.store(cmd, std::memory_order_release);
  rt::Backoff backoff;
  while (cmd_acks_.load(std::memory_order_acquire) == before)
    backoff.pause();
}

void HostEngine::comm_thread_loop() {
  rt::Backoff backoff;
  telemetry::ProgressProfiler profiler(cluster_.fabric().telemetry(),
                                       "abelian.comm_thread");
  std::deque<comm::InMessage*> holding;  // messages awaiting queue space
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = false;

    const Cmd cmd = cmd_.load(std::memory_order_acquire);
    if (cmd != Cmd::None) {
      switch (cmd) {
        case Cmd::BeginPhase: backend_->begin_phase(*cmd_spec_); break;
        case Cmd::Flush: backend_->flush(); break;
        case Cmd::EndPhase: backend_->end_phase(); break;
        case Cmd::None: break;
      }
      cmd_.store(Cmd::None, std::memory_order_relaxed);
      cmd_acks_.fetch_add(1, std::memory_order_release);
      did_work = true;
    }

    if (!backend_->thread_safe_send()) {
      // Pump queued sends into the backend (MPI layers never push back).
      while (auto work = send_queue_.try_pop()) {
        SendWork* sw = *work;
        rt::Backoff send_backoff;
        while (!backend_->try_send(sw->dst, sw->payload)) {
          backend_->progress();
          send_backoff.pause();
        }
        delete sw;
        sends_pending_.fetch_sub(1, std::memory_order_release);
        did_work = true;
      }
    }
    if (!backend_->thread_safe_recv()) {
      // Drain arrived messages into the engine receive queue.
      while (!holding.empty() && recv_queue_.try_push(holding.front()))
        holding.pop_front();
      if (holding.empty()) {
        comm::InMessage msg;
        while (backend_->try_recv(msg)) {
          auto* m = new comm::InMessage(std::move(msg));
          if (!recv_queue_.try_push(m)) {
            holding.push_back(m);
            break;
          }
          did_work = true;
        }
      }
    }

    backend_->progress();
    profiler.note(did_work);
    if (did_work)
      backoff.reset();
    else
      backoff.pause();
  }
  for (comm::InMessage* m : holding) delete m;  // teardown
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void HostEngine::dispatch_chunk(int dst, comm::BufferLease& lease,
                                std::size_t total_bytes,
                                const ScatterFn& scatter) {
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(total_bytes, std::memory_order_relaxed);
  if (cfg_.backend_options.tracker != nullptr)
    cfg_.backend_options.tracker->on_alloc(total_bytes);
  if (backend_->thread_safe_send()) {
    rt::Backoff backoff;
    while (!backend_->commit(dst, lease, total_bytes)) {
      // Back pressure: relieve it by receiving/scattering, then retry; the
      // lease (and its serialized payload) stays intact across retries.
      if (!drain_one(scatter)) backoff.pause();
    }
    return;
  }
  // Non-thread-safe send: the lease is engine-built heap memory (acquire is
  // never called off the comm thread); hand it to the comm thread.
  if (lease.heap.size() != total_bytes) lease.heap.resize(total_bytes);
  auto* sw = new SendWork{dst, std::move(lease.heap)};
  lease = comm::BufferLease{};
  sends_pending_.fetch_add(1, std::memory_order_acq_rel);
  rt::Backoff backoff;
  while (!send_queue_.try_push(sw)) {
    if (!drain_one(scatter)) backoff.pause();
  }
}

void HostEngine::send_tail(int dst, std::uint32_t data_chunks,
                           const ScatterFn& scatter) {
  assert(data_chunks + 1 <= 0xFFFF);
  comm::ChunkHeader header;
  header.phase_id = phase_state_.phase_id;
  header.payload_bytes = 0;
  header.chunk_idx = static_cast<std::uint16_t>(data_chunks & 0xFFFF);
  header.num_chunks = static_cast<std::uint16_t>(data_chunks + 1);
  header.format = static_cast<std::uint8_t>(comm::WireFormat::Raw);
  header.finalize();

  comm::BufferLease lease;
  if (backend_->thread_safe_send()) {
    lease = backend_->acquire(dst, comm::kChunkHeaderBytes);
  } else {
    lease.heap.resize(comm::kChunkHeaderBytes);
    lease.data = lease.heap.data();
    lease.capacity = lease.heap.size();
  }
  std::memcpy(lease.data, &header, sizeof(header));
  dispatch_chunk(dst, lease, comm::kChunkHeaderBytes, scatter);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

bool HostEngine::next_message(comm::InMessage& out) {
  {
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    auto it = stash_.find(phase_state_.phase_id);
    if (it != stash_.end() && !it->second.empty()) {
      out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      return true;
    }
  }
  if (backend_->thread_safe_recv()) return backend_->try_recv(out);
  if (auto m = recv_queue_.try_pop()) {
    out = std::move(**m);
    delete *m;
    return true;
  }
  return false;
}

bool HostEngine::drain_one(const ScatterFn& scatter) {
  comm::InMessage msg;
  if (!next_message(msg)) return false;
  if (msg.size < comm::kChunkHeaderBytes) {
    stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    if (msg.release) msg.release();
    return true;
  }
  const comm::ChunkHeader header = msg.header();
  if (!header.valid() || msg.payload_size() < header.payload_bytes) {
    // Garbage frame (fuzzed tag, truncated payload): drop without counting
    // it toward phase completion - a real peer chunk never fails valid().
    stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
    if (msg.release) msg.release();
    return true;
  }
  if (header.phase_id != phase_state_.phase_id) {
    // A peer already raced ahead into a later phase; keep for later.
    std::lock_guard<rt::Spinlock> guard(stash_lock_);
    stash_[header.phase_id].push_back(std::move(msg));
    return true;
  }
  if (header.payload_bytes > 0) {
    telemetry::Span apply_span("abelian", "apply", graph_.host_id);
    if (!scatter(msg.src, header, msg.payload()))
      stats_.decode_rejects.fetch_add(1, std::memory_order_relaxed);
  }
  if (msg.release) msg.release();
  phase_state_.note_chunk(msg.src, header);
  return true;
}

// ---------------------------------------------------------------------------
// Phase driver
// ---------------------------------------------------------------------------

void HostEngine::execute_phase(
    std::uint32_t pattern, std::size_t rec_bytes,
    const std::vector<std::vector<graph::VertexId>>& send_lists,
    const std::vector<std::vector<graph::VertexId>>& recv_lists,
    const GatherFn& gather, const ScatterFn& scatter) {
  // The span and the timer cover the same interval: summed sync_phase span
  // time per host must agree with stats_.comm_s (bench_fig6 asserts this).
  telemetry::Span phase_span("abelian", "sync_phase", graph_.host_id);
  rt::Timer phase_timer;
  const int p = graph_.num_hosts;
  const int me = graph_.host_id;

  comm::PhaseSpec spec;
  spec.phase_id = phase_counter_++;
  spec.pattern_key =
      (pattern << 16) | static_cast<std::uint32_t>(rec_bytes & 0xFFFF);
  spec.max_send_bytes.assign(static_cast<std::size_t>(p), 0);
  spec.max_recv_bytes.assign(static_cast<std::size_t>(p), 0);
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto rs = static_cast<std::size_t>(r);
    if (!send_lists[rs].empty()) {
      spec.send_to.push_back(r);
      spec.max_send_bytes[rs] =
          comm::kChunkHeaderBytes + send_lists[rs].size() * rec_bytes;
    }
    if (!recv_lists[rs].empty()) {
      spec.recv_from.push_back(r);
      spec.max_recv_bytes[rs] =
          comm::kChunkHeaderBytes + recv_lists[rs].size() * rec_bytes;
    }
  }

  phase_state_.arm(spec.phase_id, p, spec.recv_from);
  post_cmd(Cmd::BeginPhase, &spec);

  // Work decomposition: each peer's shared list is split into ranges that
  // fit one chunk even at worst-case (all-dirty sparse) encoding; the dense
  // and varint encodings are never larger, so every range fits its lease.
  // RMA (chunk_bytes() == 0) keeps exactly one whole-list message per peer:
  // its windows hold one put per peer per phase.
  const std::size_t chunk_cap = backend_->chunk_bytes();
  const bool single_chunk = chunk_cap == 0;
  const std::size_t payload_cap = chunk_cap > comm::kChunkHeaderBytes
                                      ? chunk_cap - comm::kChunkHeaderBytes
                                      : 1024;
  const std::size_t span_cap =
      std::max<std::size_t>(1, payload_cap / std::max<std::size_t>(
                                                 rec_bytes, 1));

  const std::size_t num_peers = spec.send_to.size();
  std::vector<std::size_t> range_offset(num_peers + 1, 0);
  for (std::size_t i = 0; i < num_peers; ++i) {
    const std::size_t list_size =
        send_lists[static_cast<std::size_t>(spec.send_to[i])].size();
    const std::size_t ranges =
        single_chunk ? 1
                     : std::max<std::size_t>(
                           1, (list_size + span_cap - 1) / span_cap);
    range_offset[i + 1] = range_offset[i] + ranges;
  }
  const std::size_t total_ranges = range_offset[num_peers];

  struct PeerProgress {
    std::atomic<std::uint32_t> ranges_left{0};
    std::atomic<std::uint32_t> chunks_sent{0};
  };
  std::vector<PeerProgress> peer_progress(num_peers);
  for (std::size_t i = 0; i < num_peers; ++i)
    peer_progress[i].ranges_left.store(
        static_cast<std::uint32_t>(range_offset[i + 1] - range_offset[i]),
        std::memory_order_relaxed);

  std::atomic<std::size_t> next_item{0};
  std::atomic<std::size_t> work_left{total_ranges};
  const bool direct_send = backend_->thread_safe_send();

  team_->run([&](std::size_t tid) {
    // Stage 1: range-parallel gather. Each range is encoded directly into
    // an independent leased send buffer (records are position-indexed and
    // order-free), so serialization scales with the compute team instead of
    // pinning one thread.
    for (;;) {
      const std::size_t r = next_item.fetch_add(1, std::memory_order_relaxed);
      if (r >= total_ranges) break;
      std::size_t pi = 0;
      while (r >= range_offset[pi + 1]) ++pi;
      const int dst = spec.send_to[pi];
      const std::size_t list_size =
          send_lists[static_cast<std::size_t>(dst)].size();
      const auto lo = static_cast<std::uint32_t>(
          single_chunk ? 0 : (r - range_offset[pi]) * span_cap);
      const auto hi = static_cast<std::uint32_t>(
          single_chunk ? list_size
                       : std::min<std::size_t>(list_size, lo + span_cap));

      comm::BufferLease lease;
      const ReserveFn reserve = [&](std::size_t need) -> std::byte* {
        const std::size_t total = comm::kChunkHeaderBytes + need;
        if (direct_send) {
          lease = backend_->acquire(dst, total);
        } else {
          // Never call into a non-thread-safe backend from compute threads;
          // build the heap buffer here and queue it to the comm thread.
          lease.heap.resize(total);
          lease.data = lease.heap.data();
          lease.capacity = total;
        }
        return lease.data + comm::kChunkHeaderBytes;
      };

      comm::EncodedChunk enc;
      {
        telemetry::Span gather_span("abelian", "gather", me);
        const auto t0 = std::chrono::steady_clock::now();
        enc = gather(dst, lo, hi, reserve);
        stats_.gather_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
      }

      PeerProgress& pp = peer_progress[pi];
      if (enc.records > 0 || single_chunk) {
        comm::ChunkHeader header;
        header.phase_id = spec.phase_id;
        header.payload_bytes = static_cast<std::uint32_t>(enc.bytes);
        header.base_pos = lo;
        header.span = hi - lo;
        header.chunk_idx =
            static_cast<std::uint16_t>((r - range_offset[pi]) & 0xFFFF);
        header.num_chunks = single_chunk ? 1 : 0;
        header.format = static_cast<std::uint8_t>(enc.format);
        if (enc.format == comm::WireFormat::Dense && enc.all_set)
          header.flags |= comm::kFlagDenseFull;
        header.finalize();
        if (!lease) reserve(0);  // clean single-chunk message: header only
        std::memcpy(lease.data, &header, sizeof(header));
        {
          telemetry::Span send_span("abelian", "send", me);
          dispatch_chunk(dst, lease, comm::kChunkHeaderBytes + enc.bytes,
                         scatter);
        }
        pp.chunks_sent.fetch_add(1, std::memory_order_release);
        switch (enc.format) {
          case comm::WireFormat::Varint:
            stats_.fmt_varint.fetch_add(1, std::memory_order_relaxed);
            break;
          case comm::WireFormat::Dense:
            stats_.fmt_dense.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            stats_.fmt_sparse.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        const std::size_t sparse_worst = enc.records * rec_bytes;
        if (enc.bytes < sparse_worst)
          stats_.bytes_saved.fetch_add(sparse_worst - enc.bytes,
                                       std::memory_order_relaxed);
      } else if (lease) {
        if (direct_send)
          backend_->abandon(lease);
        else
          lease = comm::BufferLease{};
      }

      if (!single_chunk &&
          pp.ranges_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last range for this peer: every chunks_sent increment happened
        // before its release decrement, so the acquire load sees the total.
        send_tail(dst, pp.chunks_sent.load(std::memory_order_acquire),
                  scatter);
      }
      work_left.fetch_sub(1, std::memory_order_acq_rel);
    }

    // Thread 0 flushes once every send of the phase has been handed over.
    if (tid == 0) {
      telemetry::Span flush_span("abelian", "flush", me);
      rt::Backoff backoff;
      while (work_left.load(std::memory_order_acquire) != 0 ||
             sends_pending_.load(std::memory_order_acquire) != 0) {
        if (!drain_one(scatter)) backoff.pause();
      }
      post_cmd(Cmd::Flush, nullptr);
    }

    // Stage 2: scatter incoming messages until the phase completes.
    telemetry::Span recv_span("abelian", "recv", me);
    rt::Backoff backoff;
    while (!phase_state_.complete.load(std::memory_order_acquire)) {
      if (drain_one(scatter))
        backoff.reset();
      else
        backoff.pause();
    }
  });

  post_cmd(Cmd::EndPhase, nullptr);
  stats_.comm_s += phase_timer.elapsed_s();
  stats_.phases++;
}

}  // namespace lcr::abelian
