#include "abelian/cluster.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

namespace lcr::abelian {

Cluster::Cluster(int num_hosts, fabric::FabricConfig config)
    : num_hosts_(num_hosts),
      fabric_(static_cast<std::size_t>(num_hosts), std::move(config)),
      barrier_(static_cast<std::size_t>(num_hosts)) {}

void Cluster::run(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_hosts_));
  std::exception_ptr first_error;
  rt::Spinlock error_lock;
  for (int h = 0; h < num_hosts_; ++h) {
    threads.emplace_back([&, h] {
      try {
        fn(h);
      } catch (...) {
        std::lock_guard<rt::Spinlock> guard(error_lock);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t Cluster::oob_allreduce_sum(std::uint64_t value) {
  acc_u64_.fetch_add(value, std::memory_order_acq_rel);
  barrier_.arrive_and_wait();
  const std::uint64_t result = acc_u64_.load(std::memory_order_acquire);
  barrier_.arrive_and_wait();
  acc_u64_.store(0, std::memory_order_relaxed);  // idempotent across hosts
  barrier_.arrive_and_wait();
  return result;
}

double Cluster::oob_allreduce_sum(double value) {
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ += value;
  }
  barrier_.arrive_and_wait();
  double result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_double_;
  }
  barrier_.arrive_and_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = 0.0;
  }
  barrier_.arrive_and_wait();
  return result;
}

std::uint64_t Cluster::oob_allreduce_min(std::uint64_t value) {
  // min(x) == ~max(~x); reuse the u64 sum slot as a max via CAS.
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_u64_min_ = std::min(acc_u64_min_, value);
  }
  barrier_.arrive_and_wait();
  std::uint64_t result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_u64_min_;
  }
  barrier_.arrive_and_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_u64_min_ = ~std::uint64_t{0};
  }
  barrier_.arrive_and_wait();
  return result;
}

double Cluster::oob_allreduce_max(double value) {
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = std::max(acc_double_, value);
  }
  barrier_.arrive_and_wait();
  double result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_double_;
  }
  barrier_.arrive_and_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = 0.0;
  }
  barrier_.arrive_and_wait();
  return result;
}

}  // namespace lcr::abelian
