#include "abelian/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "runtime/cpu_relax.hpp"
#include "telemetry/flight_recorder.hpp"

namespace lcr::abelian {

Cluster::Cluster(int num_hosts, fabric::FabricConfig config)
    : num_hosts_(num_hosts),
      fabric_(static_cast<std::size_t>(num_hosts), std::move(config)),
      barrier_(static_cast<std::size_t>(num_hosts)),
      membership_(static_cast<std::size_t>(num_hosts)),
      checkpoints_(static_cast<std::size_t>(num_hosts)),
      health_(static_cast<std::size_t>(num_hosts), &fabric_.telemetry()) {
  // Ground-truth kill reports flow fabric -> membership (with the kill
  // logged into the deterministic recovery trace); watchdog suspicions flow
  // reliability channel -> fabric -> membership (state only, never logged).
  fabric_.set_kill_observer([this](fabric::Rank victim) {
    membership_.report_kill(static_cast<int>(victim));
    membership_.log_event({comm::RecoveryEvent::Kind::Kill,
                           static_cast<int>(victim), -1, fabric_.epoch()});
  });
  fabric_.set_suspect_observer([this](fabric::Rank reporter,
                                      fabric::Rank peer) {
    membership_.report_suspect(static_cast<int>(reporter),
                               static_cast<int>(peer));
  });
  rt::CheckpointStats& cs = checkpoints_.stats();
  ckpt_reg_ = fabric_.telemetry().register_probes({
      {"ckpt.saves", &cs.saves},
      {"ckpt.bytes", &cs.bytes},
      {"ckpt.stage_ns", &cs.stage_ns},
      {"ckpt.seal_ns", &cs.seal_ns},
      {"ckpt.restores", &cs.restores},
  });
  member_reg_ = fabric_.telemetry().register_probes({
      {"member.kills", &membership_.kills_counter()},
      {"member.recoveries", &membership_.recoveries_counter()},
      {"member.suspects", &membership_.suspects_counter()},
      {"member.readmits", &membership_.readmits_counter()},
  });
}

void Cluster::run(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_hosts_));
  std::exception_ptr first_error;
  rt::Spinlock error_lock;
  for (int h = 0; h < num_hosts_; ++h) {
    threads.emplace_back([&, h] {
      try {
        fn(h);
      } catch (...) {
        std::lock_guard<rt::Spinlock> guard(error_lock);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Cluster::throw_failure() const {
  // Surface which peer died when membership knows; -1 = detector-only.
  for (int h = 0; h < num_hosts_; ++h)
    if (membership_.state(static_cast<std::size_t>(h)) ==
        comm::PeerState::Dead)
      throw comm::PeerFailedError(h);
  throw comm::PeerFailedError(-1);
}

void Cluster::oob_wait() {
  if (membership_.failure_pending()) throw_failure();
  if (!barrier_.arrive_and_wait_abortable(
          [this] { return membership_.failure_pending(); }))
    throw_failure();
}

void Cluster::round_tick(int host, std::int64_t round) {
  // Straggler injection: the slow host burns compute time at the top of each
  // round, entering every sync phase last (what the health monitor's
  // straggler classifier is built to flag).
  const fabric::FaultProfile& fp = fabric_.config().fault;
  if (fp.slow_round_ns > 0 && host == fp.slow_host)
    rt::spin_for_ns(fp.slow_round_ns);
  fabric_.note_round(static_cast<fabric::Rank>(host), round);
  if (!fabric_.is_alive(static_cast<fabric::Rank>(host)))
    throw comm::HostKilledError(host);
  if (membership_.failure_pending()) throw_failure();
}

std::int64_t Cluster::recover(int self) {
  membership_.recovery_barrier(static_cast<std::size_t>(self), [this] {
    const std::int64_t rollback = checkpoints_.stable_round();
    rollback_round_.store(rollback, std::memory_order_release);
    membership_.log_event({comm::RecoveryEvent::Kind::Rollback, -1, rollback,
                           fabric_.epoch()});
    {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"round\":%lld,\"epoch\":%u}",
                    static_cast<long long>(rollback), fabric_.epoch());
      telemetry::flight_record(0, "recovery.rollback", buf);
      telemetry::flight_dump("rollback");
    }
    for (int h = 0; h < num_hosts_; ++h) {
      const auto r = static_cast<fabric::Rank>(h);
      if (!fabric_.is_alive(r)) {
        fabric_.revive(r);
        membership_.mark_alive(static_cast<std::size_t>(h));
        membership_.log_event({comm::RecoveryEvent::Kind::Readmit, h, -1,
                               fabric_.epoch()});
      } else if (membership_.state(static_cast<std::size_t>(h)) !=
                 comm::PeerState::Alive) {
        // Stale watchdog suspicion of a survivor: cleared by recovery.
        membership_.mark_alive(static_cast<std::size_t>(h));
      }
    }
    // The OOB plane may be torn mid-collective: restore the barrier and
    // the allreduce scratch to their initial states.
    barrier_.reset();
    acc_u64_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<rt::Spinlock> guard(acc_lock_);
      acc_double_ = 0.0;
      acc_u64_min_ = ~std::uint64_t{0};
    }
    membership_.clear_failure();
  });
  return rollback_round_.load(std::memory_order_acquire);
}

std::uint64_t Cluster::oob_allreduce_sum(std::uint64_t value) {
  acc_u64_.fetch_add(value, std::memory_order_acq_rel);
  oob_wait();
  const std::uint64_t result = acc_u64_.load(std::memory_order_acquire);
  oob_wait();
  acc_u64_.store(0, std::memory_order_relaxed);  // idempotent across hosts
  oob_wait();
  return result;
}

double Cluster::oob_allreduce_sum(double value) {
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ += value;
  }
  oob_wait();
  double result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_double_;
  }
  oob_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = 0.0;
  }
  oob_wait();
  return result;
}

double Cluster::oob_allreduce_max(double value) {
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = std::max(acc_double_, value);
  }
  oob_wait();
  double result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_double_;
  }
  oob_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = 0.0;
  }
  oob_wait();
  return result;
}

std::uint64_t Cluster::oob_allreduce_min(std::uint64_t value) {
  // min(x) == ~max(~x); reuse the u64 sum slot as a max via CAS.
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_u64_min_ = std::min(acc_u64_min_, value);
  }
  oob_wait();
  std::uint64_t result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_u64_min_;
  }
  oob_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_u64_min_ = ~std::uint64_t{0};
  }
  oob_wait();
  return result;
}

}  // namespace lcr::abelian
