#include "abelian/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "runtime/cpu_relax.hpp"
#include "runtime/ult.hpp"
#include "telemetry/flight_recorder.hpp"

namespace lcr::abelian {

namespace {
/// Host identity for the OS-thread scheduling path; the ULT path carries it
/// on the fiber instead (ult::current_host()).
thread_local int tl_cluster_host = -1;
}  // namespace

ClusterOptions ClusterOptions::from_env() {
  ClusterOptions opts;
  if (const char* env = std::getenv("LCR_HOST_SCHED")) {
    if (std::strcmp(env, "ult") == 0) opts.host_sched = HostSched::kUlt;
    else if (std::strcmp(env, "os") == 0) opts.host_sched = HostSched::kOsThreads;
  }
  if (const char* env = std::getenv("LCR_OOB_COLL")) {
    if (std::strcmp(env, "flat") == 0) opts.oob_coll = OobColl::kFlat;
    else if (std::strcmp(env, "tree") == 0) opts.oob_coll = OobColl::kTree;
  }
  if (const char* env = std::getenv("LCR_ULT_WORKERS"))
    opts.ult_workers = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  return opts;
}

Cluster::Cluster(int num_hosts, fabric::FabricConfig config,
                 ClusterOptions options)
    : num_hosts_(num_hosts),
      options_(options),
      fabric_(static_cast<std::size_t>(num_hosts), std::move(config)),
      barrier_(static_cast<std::size_t>(num_hosts)),
      tree_barrier_(static_cast<std::size_t>(num_hosts)),
      tree_u64_(static_cast<std::size_t>(num_hosts)),
      tree_double_(static_cast<std::size_t>(num_hosts)),
      membership_(static_cast<std::size_t>(num_hosts)),
      checkpoints_(static_cast<std::size_t>(num_hosts)),
      health_(static_cast<std::size_t>(num_hosts), &fabric_.telemetry()) {
  // Ground-truth kill reports flow fabric -> membership (with the kill
  // logged into the deterministic recovery trace); watchdog suspicions flow
  // reliability channel -> fabric -> membership (state only, never logged).
  fabric_.set_kill_observer([this](fabric::Rank victim) {
    membership_.report_kill(static_cast<int>(victim));
    membership_.log_event({comm::RecoveryEvent::Kind::Kill,
                           static_cast<int>(victim), -1, fabric_.epoch()});
  });
  fabric_.set_suspect_observer([this](fabric::Rank reporter,
                                      fabric::Rank peer) {
    membership_.report_suspect(static_cast<int>(reporter),
                               static_cast<int>(peer));
  });
  rt::CheckpointStats& cs = checkpoints_.stats();
  ckpt_reg_ = fabric_.telemetry().register_probes({
      {"ckpt.saves", &cs.saves},
      {"ckpt.bytes", &cs.bytes},
      {"ckpt.stage_ns", &cs.stage_ns},
      {"ckpt.seal_ns", &cs.seal_ns},
      {"ckpt.restores", &cs.restores},
  });
  member_reg_ = fabric_.telemetry().register_probes({
      {"member.kills", &membership_.kills_counter()},
      {"member.recoveries", &membership_.recoveries_counter()},
      {"member.suspects", &membership_.suspects_counter()},
      {"member.readmits", &membership_.readmits_counter()},
  });
}

void Cluster::run(const std::function<void(int)>& fn) {
  if (options_.host_sched == ClusterOptions::HostSched::kUlt) {
    run_ult(fn);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_hosts_));
  std::exception_ptr first_error;
  rt::Spinlock error_lock;
  for (int h = 0; h < num_hosts_; ++h) {
    threads.emplace_back([&, h] {
      tl_cluster_host = h;
      try {
        fn(h);
      } catch (...) {
        std::lock_guard<rt::Spinlock> guard(error_lock);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Cluster::run_ult(const std::function<void(int)>& fn) {
  ult::SchedulerConfig cfg;
  cfg.workers = options_.ult_workers;
  cfg.workers_hint = static_cast<std::size_t>(num_hosts_);
  ult::Scheduler sched(cfg);
  std::exception_ptr first_error;
  rt::Spinlock error_lock;
  for (int h = 0; h < num_hosts_; ++h) {
    sched.spawn(
        [&, h] {
          try {
            fn(h);
          } catch (...) {
            std::lock_guard<rt::Spinlock> guard(error_lock);
            if (!first_error) first_error = std::current_exception();
          }
        },
        /*host=*/h);
  }
  sched.run();
  // Registry-owned counters survive the run (unlike engine probes), so the
  // post-run snapshot in the bench runner sees them; CI's host-scale smoke
  // gates on their presence.
  const ult::SchedStats stats = sched.stats();
  telemetry::Registry& reg = fabric_.telemetry();
  reg.counter("sched.spawns").add(stats.spawns);
  reg.counter("sched.switches").add(stats.switches);
  reg.counter("sched.yields").add(stats.yields);
  reg.counter("sched.yields_fast").add(stats.yields_fast);
  reg.counter("sched.steals").add(stats.steals);
  reg.counter("sched.parks").add(stats.parks);
  reg.counter("sched.notifies").add(stats.notifies);
  reg.counter("sched.workers").add(sched.workers());
  if (first_error) std::rethrow_exception(first_error);
}

int Cluster::self_host() const noexcept {
  const int fiber_host = ult::current_host();
  return fiber_host >= 0 ? fiber_host : tl_cluster_host;
}

void Cluster::throw_failure() const {
  // Surface which peer died when membership knows; -1 = detector-only.
  for (int h = 0; h < num_hosts_; ++h)
    if (membership_.state(static_cast<std::size_t>(h)) ==
        comm::PeerState::Dead)
      throw comm::PeerFailedError(h);
  throw comm::PeerFailedError(-1);
}

void Cluster::oob_wait() {
  if (membership_.failure_pending()) throw_failure();
  if (options_.oob_coll == ClusterOptions::OobColl::kTree) {
    const int self = self_host();
    assert(self >= 0 && "OOB collectives are host-main only (inside run())");
    if (!tree_barrier_.arrive_and_wait_abortable(
            static_cast<std::size_t>(self),
            [this] { return abort_pending(); }))
      throw_failure();
    return;
  }
  if (!barrier_.arrive_and_wait_abortable(
          [this] { return membership_.failure_pending(); }))
    throw_failure();
}

void Cluster::round_tick(int host, std::int64_t round) {
  // Straggler injection: the slow host burns compute time at the top of each
  // round, entering every sync phase last (what the health monitor's
  // straggler classifier is built to flag).
  const fabric::FaultProfile& fp = fabric_.config().fault;
  if (fp.slow_round_ns > 0 && host == fp.slow_host)
    rt::spin_for_ns(fp.slow_round_ns);
  fabric_.note_round(static_cast<fabric::Rank>(host), round);
  if (!fabric_.is_alive(static_cast<fabric::Rank>(host)))
    throw comm::HostKilledError(host);
  if (membership_.failure_pending()) throw_failure();
}

std::int64_t Cluster::recover(int self) {
  membership_.recovery_barrier(static_cast<std::size_t>(self), [this] {
    const std::int64_t rollback = checkpoints_.stable_round();
    rollback_round_.store(rollback, std::memory_order_release);
    membership_.log_event({comm::RecoveryEvent::Kind::Rollback, -1, rollback,
                           fabric_.epoch()});
    {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"round\":%lld,\"epoch\":%u}",
                    static_cast<long long>(rollback), fabric_.epoch());
      telemetry::flight_record(0, "recovery.rollback", buf);
      telemetry::flight_dump("rollback");
    }
    for (int h = 0; h < num_hosts_; ++h) {
      const auto r = static_cast<fabric::Rank>(h);
      if (!fabric_.is_alive(r)) {
        fabric_.revive(r);
        membership_.mark_alive(static_cast<std::size_t>(h));
        membership_.log_event({comm::RecoveryEvent::Kind::Readmit, h, -1,
                               fabric_.epoch()});
      } else if (membership_.state(static_cast<std::size_t>(h)) !=
                 comm::PeerState::Alive) {
        // Stale watchdog suspicion of a survivor: cleared by recovery.
        membership_.mark_alive(static_cast<std::size_t>(h));
      }
    }
    // The OOB plane may be torn mid-collective: restore the barriers (flat
    // and tree), the combining trees and the allreduce scratch to their
    // initial states. Every participant is quiescent inside this
    // rendezvous, the one place tree resets are legal.
    barrier_.reset();
    tree_barrier_.reset();
    tree_u64_.reset();
    tree_double_.reset();
    acc_u64_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<rt::Spinlock> guard(acc_lock_);
      acc_double_ = 0.0;
      acc_u64_min_ = ~std::uint64_t{0};
    }
    membership_.clear_failure();
  });
  return rollback_round_.load(std::memory_order_acquire);
}

// Tree allreduces: one up-wave + one down-wave instead of the flat path's
// three full barrier rounds around shared scratch. Each combine runs in the
// tree's deterministic child order, so double-sum results are bitwise
// reproducible across runs of the same host count (the flat spinlocked
// accumulation orders by arrival).

std::uint64_t Cluster::oob_allreduce_sum(std::uint64_t value) {
  if (options_.oob_coll == ClusterOptions::OobColl::kTree) {
    if (membership_.failure_pending()) throw_failure();
    const int self = self_host();
    assert(self >= 0 && "OOB collectives are host-main only (inside run())");
    std::uint64_t out = 0;
    if (!tree_u64_.run(
            static_cast<std::size_t>(self), value,
            [](std::uint64_t a, std::uint64_t b) { return a + b; },
            [this] { return abort_pending(); }, &out))
      throw_failure();
    return out;
  }
  acc_u64_.fetch_add(value, std::memory_order_acq_rel);
  oob_wait();
  const std::uint64_t result = acc_u64_.load(std::memory_order_acquire);
  oob_wait();
  acc_u64_.store(0, std::memory_order_relaxed);  // idempotent across hosts
  oob_wait();
  return result;
}

double Cluster::oob_allreduce_sum(double value) {
  if (options_.oob_coll == ClusterOptions::OobColl::kTree) {
    if (membership_.failure_pending()) throw_failure();
    const int self = self_host();
    assert(self >= 0 && "OOB collectives are host-main only (inside run())");
    double out = 0.0;
    if (!tree_double_.run(
            static_cast<std::size_t>(self), value,
            [](double a, double b) { return a + b; },
            [this] { return abort_pending(); }, &out))
      throw_failure();
    return out;
  }
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ += value;
  }
  oob_wait();
  double result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_double_;
  }
  oob_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = 0.0;
  }
  oob_wait();
  return result;
}

double Cluster::oob_allreduce_max(double value) {
  if (options_.oob_coll == ClusterOptions::OobColl::kTree) {
    if (membership_.failure_pending()) throw_failure();
    const int self = self_host();
    assert(self >= 0 && "OOB collectives are host-main only (inside run())");
    double out = 0.0;
    if (!tree_double_.run(
            static_cast<std::size_t>(self), value,
            [](double a, double b) { return std::max(a, b); },
            [this] { return abort_pending(); }, &out))
      throw_failure();
    return out;
  }
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = std::max(acc_double_, value);
  }
  oob_wait();
  double result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_double_;
  }
  oob_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_double_ = 0.0;
  }
  oob_wait();
  return result;
}

std::uint64_t Cluster::oob_allreduce_min(std::uint64_t value) {
  if (options_.oob_coll == ClusterOptions::OobColl::kTree) {
    if (membership_.failure_pending()) throw_failure();
    const int self = self_host();
    assert(self >= 0 && "OOB collectives are host-main only (inside run())");
    std::uint64_t out = 0;
    if (!tree_u64_.run(
            static_cast<std::size_t>(self), value,
            [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); },
            [this] { return abort_pending(); }, &out))
      throw_failure();
    return out;
  }
  // min(x) == ~max(~x); reuse the u64 sum slot as a max via CAS.
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_u64_min_ = std::min(acc_u64_min_, value);
  }
  oob_wait();
  std::uint64_t result;
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    result = acc_u64_min_;
  }
  oob_wait();
  {
    std::lock_guard<rt::Spinlock> guard(acc_lock_);
    acc_u64_min_ = ~std::uint64_t{0};
  }
  oob_wait();
  return result;
}

}  // namespace lcr::abelian
