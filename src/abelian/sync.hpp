// Partition-aware synchronization planning.
//
// "The Abelian runtime is partition-aware. It minimizes the communication
// volume by choosing reduce, broadcast, or both, based on the partitioning
// policy" (paper Section II). The plan depends on where an operator writes
// and where proxies that will be *read* next round live:
//
//  * Push operators write destination proxies. Under an edge cut (blocked /
//    outgoing), all out-edges of a vertex live with its master, so pushes
//    originate only at masters and only a reduce is required for monotone
//    (idempotent-combine) labels. Under a vertex cut, out-edges of a vertex
//    are spread across hosts, so mirrors push too and need fresh values: the
//    reduce must be followed by a broadcast.
//  * Accumulate-reduce patterns (pagerank) additionally always broadcast the
//    recomputed master value when mirrors read it next round (vertex cut).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "graph/dist_graph.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::abelian {

/// Destination-lid shard granularity for the parallel apply path: workers
/// applying received reduce records lock labels in blocks of
/// 2^kApplyShardShift local ids (DESIGN.md §12). Shared lists are sorted by
/// global id, so consecutive records of a chunk nearly always stay in one
/// shard and the lock is amortized over hundreds of records.
inline constexpr unsigned kApplyShardShift = 9;

/// Striped TTAS spinlocks guarding label shards during concurrent reduce
/// application. A Guard holds at most one shard at a time (release-before-
/// acquire), so workers can never deadlock regardless of record order, and
/// while a shard is held the holder has exclusive write access to every
/// label in it - combines run as plain loads/stores (apps::plain_min /
/// plain_add), not CAS loops.
class ShardLocks {
 public:
  explicit ShardLocks(std::size_t num_items)
      : count_((num_items >> kApplyShardShift) + 1),
        locks_(std::make_unique<Lock[]>(count_)) {}

  ShardLocks(const ShardLocks&) = delete;
  ShardLocks& operator=(const ShardLocks&) = delete;

  /// RAII cursor over shards. enter() is a no-op while the wanted shard is
  /// already held - the common case for position-sorted records.
  class Guard {
   public:
    Guard(ShardLocks& locks, std::atomic<std::uint64_t>* contended) noexcept
        : locks_(locks), contended_(contended) {}
    ~Guard() { release(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    void enter(std::size_t shard) {
      if (shard == held_) return;
      release();
      locks_.acquire(shard, contended_);
      held_ = shard;
    }

    void release() noexcept {
      if (held_ == kNone) return;
      locks_.locks_[held_].flag.store(0, std::memory_order_release);
      held_ = kNone;
    }

   private:
    static constexpr std::size_t kNone = ~std::size_t{0};
    ShardLocks& locks_;
    std::atomic<std::uint64_t>* contended_;
    std::size_t held_ = kNone;
  };

 private:
  struct alignas(64) Lock {
    std::atomic<std::uint8_t> flag{0};
  };

  void acquire(std::size_t shard, std::atomic<std::uint64_t>* contended) {
    Lock& l = locks_[shard % count_];
    if (l.flag.exchange(1, std::memory_order_acquire) == 0) return;
    if (contended != nullptr)
      contended->fetch_add(1, std::memory_order_relaxed);
    rt::Backoff backoff;
    for (;;) {
      while (l.flag.load(std::memory_order_relaxed) != 0) backoff.pause();
      if (l.flag.exchange(1, std::memory_order_acquire) == 0) return;
    }
  }

  std::size_t count_;
  std::unique_ptr<Lock[]> locks_;
};

/// Which sync phases a round needs.
struct SyncPlan {
  bool do_reduce = true;
  bool do_broadcast = false;
};

/// Plan for a push-style data-driven operator (bfs / cc / sssp) whose reduce
/// combine is idempotent and monotone (min).
SyncPlan plan_push_monotone(graph::PartitionPolicy policy);

/// Plan for an accumulate-then-recompute pattern (pagerank): contributions
/// are Add-reduced to the master, which recomputes and must broadcast when
/// any host reads mirror copies of the value next round.
SyncPlan plan_accumulate(graph::PartitionPolicy policy);

}  // namespace lcr::abelian
