// Partition-aware synchronization planning.
//
// "The Abelian runtime is partition-aware. It minimizes the communication
// volume by choosing reduce, broadcast, or both, based on the partitioning
// policy" (paper Section II). The plan depends on where an operator writes
// and where proxies that will be *read* next round live:
//
//  * Push operators write destination proxies. Under an edge cut (blocked /
//    outgoing), all out-edges of a vertex live with its master, so pushes
//    originate only at masters and only a reduce is required for monotone
//    (idempotent-combine) labels. Under a vertex cut, out-edges of a vertex
//    are spread across hosts, so mirrors push too and need fresh values: the
//    reduce must be followed by a broadcast.
//  * Accumulate-reduce patterns (pagerank) additionally always broadcast the
//    recomputed master value when mirrors read it next round (vertex cut).
#pragma once

#include "graph/dist_graph.hpp"

namespace lcr::abelian {

/// Which sync phases a round needs.
struct SyncPlan {
  bool do_reduce = true;
  bool do_broadcast = false;
};

/// Plan for a push-style data-driven operator (bfs / cc / sssp) whose reduce
/// combine is idempotent and monotone (min).
SyncPlan plan_push_monotone(graph::PartitionPolicy policy);

/// Plan for an accumulate-then-recompute pattern (pagerank): contributions
/// are Add-reduced to the master, which recomputes and must broadcast when
/// any host reads mirror copies of the value next round.
SyncPlan plan_accumulate(graph::PartitionPolicy policy);

}  // namespace lcr::abelian
