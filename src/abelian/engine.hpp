// The Abelian host engine: the gather-communicate-scatter runtime of Fig. 2.
//
// Per host there is one dedicated communication thread and a team of compute
// threads. A BSP communication phase runs as:
//
//   1. compute threads gather per-peer dirty records into buffers in
//      parallel and enqueue them to the network,
//   2. once its gathers are done each compute thread switches to scattering
//      messages received from other hosts, in arbitrary arrival order,
//   3. the dedicated communication thread interleaves sending and receiving
//      the whole time; no blocking operations are used.
//
// Thread discipline per backend (see comm/backend.hpp):
//   * LCI (thread_safe): compute threads call try_send / try_recv directly;
//     the communication thread is exactly the LCI server (Algorithm 3).
//   * MPI-Probe (FUNNELED) / MPI-RMA: every backend call is executed by the
//     communication thread; compute threads talk to it through a
//     multi-producer send queue and a concurrent receive queue, and phase
//     transitions travel through a command mailbox.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "abelian/cluster.hpp"
#include "abelian/sync.hpp"
#include "comm/backend.hpp"
#include "comm/serializer.hpp"
#include "graph/dist_graph.hpp"
#include "runtime/aux_thread.hpp"
#include "runtime/bitset.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "telemetry/metrics.hpp"

namespace lcr::abelian {

/// How many phases ahead of the current one a received chunk may be and
/// still be stashed. Legitimate skew is tiny - every app round ends in an
/// OOB collective and runs at most a reduce + a broadcast phase, so a peer
/// can race at most a couple of phases ahead; anything further is a fuzzed
/// or corrupted phase id and is dropped instead of stashed.
inline constexpr std::uint32_t kStashPhaseWindow = 8;

struct EngineConfig {
  comm::BackendKind backend = comm::BackendKind::Lci;
  comm::BackendOptions backend_options;
  std::size_t compute_threads = 2;
  std::size_t recv_queue_capacity = 8192;
  /// Compute threads that run received-chunk applies during a sync phase
  /// (DESIGN.md §12). 0 = all of them; 1 reproduces the serial apply path.
  /// Clamped to [1, compute_threads].
  std::size_t apply_workers = 0;
  /// Record granularity for splitting one chunk into parallel apply slices
  /// (random-access wire formats only). A chunk is sliced once it holds at
  /// least twice this many records.
  std::uint32_t apply_slice_records = 4096;
  /// Bound on stashed out-of-order (future-phase) messages; beyond it new
  /// arrivals are dropped and counted (sync.stash_drops).
  std::size_t stash_cap = 8192;
  /// One-sided direct-write policy (DESIGN.md §15). Resolved against the
  /// LCR_DIRECT_WRITE environment override at engine construction.
  comm::DirectWriteMode direct_write = comm::DirectWriteMode::Auto;
};

struct EngineStats {
  std::uint64_t phases = 0;
  std::uint64_t rounds = 0;
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  /// Wall nanoseconds spent serializing (gather/encode), summed over the
  /// compute threads - the Fig-6 "serialization" share.
  std::atomic<std::uint64_t> gather_ns{0};
  /// Wire bytes avoided by adaptive formats vs worst-case sparse records.
  std::atomic<std::uint64_t> bytes_saved{0};
  /// Format-choice counters (chunks shipped per encoding).
  std::atomic<std::uint64_t> fmt_sparse{0};
  std::atomic<std::uint64_t> fmt_varint{0};
  std::atomic<std::uint64_t> fmt_dense{0};
  /// Malformed chunks dropped by the unified scatter (fuzzed/garbage frames).
  /// A chunk rejected mid-decode by any of its apply slices counts once.
  std::atomic<std::uint64_t> decode_rejects{0};
  /// Wall nanoseconds spent decoding/applying received chunks, summed over
  /// the apply workers - the Fig-6 "apply" share.
  std::atomic<std::uint64_t> apply_ns{0};
  /// Gauge: apply workers active in the most recent phase.
  std::atomic<std::uint64_t> apply_threads{0};
  /// Contended shard-lock acquires on the parallel apply path.
  std::atomic<std::uint64_t> shard_contended{0};
  /// Gauge: most future-phase messages ever stashed at once.
  std::atomic<std::uint64_t> stash_peak{0};
  /// Future-phase messages dropped: stash at capacity, phase id beyond the
  /// stash window, or stale (behind the current phase).
  std::atomic<std::uint64_t> stash_drops{0};
  /// Direct-write puts shipped (one per (peer, round) on the direct path).
  std::atomic<std::uint64_t> direct_sends{0};
  std::atomic<std::uint64_t> direct_bytes{0};
  /// Wall nanoseconds of the direct path's in-place encode + put, summed
  /// over the compute threads. Deliberately separate from gather_ns: the
  /// direct path builds the payload once in the memory the put mirrors, so
  /// the Fig-6 serialization share genuinely excludes it.
  std::atomic<std::uint64_t> direct_ns{0};
  /// Direct signals dropped as stale: old generation (a put that raced a
  /// recovery epoch), wrong pattern, or a phase id outside the window.
  std::atomic<std::uint64_t> direct_stale{0};
  /// Direct attempts that reverted to the two-sided path (stale rkey after
  /// a revive, payload exceeding the region, no region published yet).
  std::atomic<std::uint64_t> direct_fallbacks{0};
  /// Non-overlapped communication time: wall time of sync phases (Fig 6).
  double comm_s = 0.0;
  /// Computation time, accumulated by the app drivers (Fig 6).
  double compute_s = 0.0;
  /// Gauges set once at construction from the host's DistGraph: compressed
  /// lid-metadata bytes, the seed-representation equivalent, and the mirror
  /// count (DESIGN.md §17). Summed by the registry across hosts.
  std::atomic<std::uint64_t> graph_mem_bytes{0};
  std::atomic<std::uint64_t> graph_mem_bytes_uncompressed{0};
  std::atomic<std::uint64_t> graph_mirrors{0};
};

class HostEngine {
 public:
  HostEngine(Cluster& cluster, const graph::DistGraph& graph,
             EngineConfig cfg);
  ~HostEngine();

  HostEngine(const HostEngine&) = delete;
  HostEngine& operator=(const HostEngine&) = delete;

  int host_id() const noexcept { return graph_.host_id; }
  const graph::DistGraph& graph() const noexcept { return graph_; }
  Cluster& cluster() noexcept { return cluster_; }
  rt::ThreadTeam& team() noexcept { return *team_; }
  comm::Backend& backend() noexcept { return *backend_; }
  EngineStats& stats() noexcept { return stats_; }

  /// Hands out payload memory for one chunk: reserve(bytes) returns where
  /// the encoder writes (a leased backend buffer, past the chunk header).
  using ReserveFn = std::function<std::byte*(std::size_t)>;
  /// Encodes the dirty entries of shared-list range [lo, hi) for `peer`
  /// directly into memory from `reserve`; returns what was encoded. Called
  /// concurrently from compute threads on disjoint ranges.
  using GatherFn = std::function<comm::EncodedChunk(
      int peer, std::uint32_t lo, std::uint32_t hi, const ReserveFn& reserve)>;
  /// Sentinel rec_hi: apply every record of the chunk (unsliced).
  static constexpr std::uint32_t kAllChunkRecords = 0xFFFFFFFFu;
  /// Applies record slice [rec_lo, rec_hi) of one received chunk from
  /// `peer`; false = malformed payload. rec_hi == kAllChunkRecords means
  /// "through the end" (always the case for formats that cannot be sliced).
  /// Must be thread-safe across messages and across disjoint slices of the
  /// same message - the apply workers decode and apply concurrently.
  using ScatterFn = std::function<bool(
      int peer, const comm::ChunkHeader& header, const std::byte* payload,
      std::uint32_t rec_lo, std::uint32_t rec_hi)>;

  /// Runs one full communication phase: the shared list of every peer with
  /// a non-empty `send_plan` entry is split into ranges gathered in
  /// parallel by the compute team straight into leased send buffers, then
  /// receive+scatter until one message stream from every peer with a
  /// non-empty `recv_plan` entry completed. `pattern` (0 = reduce,
  /// 1 = broadcast) and `rec_bytes` key the RMA window sets; max message
  /// sizes derive from the plan sizes (all-nodes-active upper bound).
  void execute_phase(std::uint32_t pattern, std::size_t rec_bytes,
                     const graph::CompressedPlan& send_plan,
                     const graph::CompressedPlan& recv_plan,
                     const GatherFn& gather, const ScatterFn& scatter);

  // ---- Partition-aware sync wrappers (used by app drivers) ----

  /// Reduce: ship dirty mirror labels to their masters and combine there.
  /// combine(T& current, T incoming) -> bool (true if current changed);
  /// on_update(master_lid) fires when a master's value changed. The engine
  /// holds the destination lid's shard lock around each combine (DESIGN.md
  /// §12), so combines run exclusively and plain stores (apps::plain_min /
  /// plain_add) suffice; atomic combiners remain correct, just slower.
  template <typename T, typename Combine, typename OnUpdate>
  void sync_reduce(T* labels, const rt::ConcurrentBitset& dirty,
                   Combine&& combine, OnUpdate&& on_update) {
    execute_phase(
        0, comm::record_bytes<T>(), graph_.mirror_to_master,
        graph_.master_to_mirror,
        [&](int peer, std::uint32_t lo, std::uint32_t hi,
            const ReserveFn& reserve) {
          return comm::encode_dirty_range<T>(
              graph_.mirror_to_master.span(peer), dirty, labels, lo, hi,
              reserve);
        },
        [&](int peer, const comm::ChunkHeader& header,
            const std::byte* payload, std::uint32_t rec_lo,
            std::uint32_t rec_hi) {
          const graph::PlanSpan shared = graph_.master_to_mirror.span(peer);
          comm::DecodeCursor cur;
          if (!comm::seek_record<T>(header, shared.size(), rec_lo, cur))
            return false;
          // Slice-private plan cursor: record positions stream strictly
          // increasing within a slice, so each plan chunk decodes once.
          graph::PlanCursor plan(shared);
          // The same master may receive from several peers concurrently
          // (and slices of different chunks interleave): exclusion comes
          // from the destination-lid shard lock, amortized by the shared
          // list's sort order.
          ShardLocks::Guard guard(shard_locks_, &stats_.shard_contended);
          const auto status = comm::decode_chunk_resume<T>(
              header, payload, shared.size(), cur,
              static_cast<std::size_t>(rec_hi - rec_lo),
              [&](std::uint32_t pos, const T& value) {
                const graph::VertexId lid = plan.at(pos);
                guard.enter(static_cast<std::size_t>(lid) >>
                            kApplyShardShift);
                if (combine(labels[lid], value)) on_update(lid);
              });
          return status != comm::DecodeStatus::Error;
        });
  }

  /// Broadcast: ship dirty master labels to every host holding a mirror.
  /// on_set(mirror_lid) fires after the mirror label was overwritten. No
  /// shard lock here: every local mirror has exactly one master host and
  /// chunk ranges partition the shared list, so each lid has one writer
  /// even under the parallel apply pipeline.
  template <typename T, typename OnSet>
  void sync_broadcast(T* labels, const rt::ConcurrentBitset& dirty,
                      OnSet&& on_set) {
    execute_phase(
        1, comm::record_bytes<T>(), graph_.master_to_mirror,
        graph_.mirror_to_master,
        [&](int peer, std::uint32_t lo, std::uint32_t hi,
            const ReserveFn& reserve) {
          return comm::encode_dirty_range<T>(
              graph_.master_to_mirror.span(peer), dirty, labels, lo, hi,
              reserve);
        },
        [&](int peer, const comm::ChunkHeader& header,
            const std::byte* payload, std::uint32_t rec_lo,
            std::uint32_t rec_hi) {
          const graph::PlanSpan shared = graph_.mirror_to_master.span(peer);
          comm::DecodeCursor cur;
          if (!comm::seek_record<T>(header, shared.size(), rec_lo, cur))
            return false;
          graph::PlanCursor plan(shared);
          const auto status = comm::decode_chunk_resume<T>(
              header, payload, shared.size(), cur,
              static_cast<std::size_t>(rec_hi - rec_lo),
              [&](std::uint32_t pos, const T& value) {
                const graph::VertexId lid = plan.at(pos);
                labels[lid] = value;  // single writer
                on_set(lid);
              });
          return status != comm::DecodeStatus::Error;
        });
  }

 private:
  /// Tracks completion of the receive side of one phase. Streaming
  /// protocol: data chunks carry num_chunks == 0; one tail per peer carries
  /// the total (data chunks + itself). Chunks may arrive in any order -
  /// multi-lane LCI reorders freely - so the tail can land before its data.
  /// Single-message backends (RMA) send num_chunks == 1, no tail.
  struct PhaseState {
    std::uint32_t phase_id = 0;
    rt::Spinlock lock;
    std::vector<std::int32_t> total;  // expected chunks per rank; -1 unknown
    std::vector<std::int32_t> got;
    /// Direct-write ledger (DESIGN.md §15): the tail's base_pos announces
    /// how many direct puts the peer issued this phase; landed puts are
    /// counted by note_direct. A peer completes when both ledgers balance.
    std::vector<std::int32_t> direct_expected;
    std::vector<std::int32_t> direct_got;
    std::vector<char> finished;  // peer already counted toward completion
    std::size_t peers_remaining = 0;
    std::atomic<bool> complete{false};

    void arm(std::uint32_t id, int num_hosts,
             const std::vector<int>& recv_from);
    void note_chunk(int src, const comm::ChunkHeader& header);
    /// Counts one landed direct put from `src` (its apply already ran).
    void note_direct(int src);

   private:
    void check_peer(std::size_t s);  // callers hold `lock`
  };

  struct SendWork {
    int dst = -1;
    std::vector<std::byte> payload;
    /// Direct-put work item (FUNNELED backends): the comm thread issues
    /// direct_put(payload) instead of try_send. Only queued when the put
    /// cannot hard-fail (capacity pre-checked against the region), so the
    /// direct count the compute thread put in the tail stays truthful.
    bool direct = false;
    comm::DirectRegion region;
    std::uint32_t phase_id = 0;
    std::uint32_t pattern_key = 0;
  };

  enum class Cmd : std::uint8_t { None, BeginPhase, Flush, EndPhase };

  /// One received data chunk in flight through the apply pipeline. Owns the
  /// message; the last slice to finish settles the chunk (reject accounting,
  /// release, note_chunk) exactly once.
  struct ApplyJob {
    comm::InMessage msg;
    comm::ChunkHeader header;
    const ScatterFn* scatter = nullptr;
    std::atomic<std::uint32_t> slices_left{0};
    std::atomic<bool> rejected{false};
    /// Payload lives in a registered direct-write region (zero copy, no
    /// release); settling notes note_direct instead of note_chunk.
    bool is_direct = false;
  };

  /// Work-queue element: decode/apply records [rec_lo, rec_hi) of job's
  /// chunk (kAllChunkRecords = through the end).
  struct ApplySlice {
    ApplyJob* job = nullptr;
    std::uint32_t rec_lo = 0;
    std::uint32_t rec_hi = kAllChunkRecords;
  };

  void comm_thread_loop();
  void post_cmd(Cmd cmd, const comm::PhaseSpec* spec);
  /// Ships one framed chunk held in `lease` (header at offset 0): commits
  /// leased buffers directly for thread-safe backends, or hands the heap
  /// buffer to the comm thread's send queue. Relieves back pressure by
  /// scattering while it waits.
  void dispatch_chunk(int dst, comm::BufferLease& lease,
                      std::size_t total_bytes, const ScatterFn& scatter,
                      bool can_apply);
  /// Sends the streaming tail for `dst`: a header-only chunk whose
  /// num_chunks carries the per-peer total (data chunks + itself) and whose
  /// base_pos carries the peer's direct-put count (tails have no records,
  /// so the field is free for the direct-write ledger).
  void send_tail(int dst, std::uint32_t data_chunks,
                 std::uint32_t direct_count, const ScatterFn& scatter,
                 bool can_apply);
  /// Registers (once per pattern_key) and publishes the per-source direct-
  /// write landing regions for this phase's receive peers.
  void ensure_direct_homes(const comm::PhaseSpec& spec, std::size_t rec_bytes,
                           const graph::CompressedPlan& recv_plan);
  /// Ships one framed whole-list payload as a direct put: retries soft
  /// failures (scattering meanwhile), or queues to the comm thread on
  /// FUNNELED backends. False = the put cannot succeed and the caller must
  /// revert to the two-sided path for this (peer, round).
  bool try_direct_put(int dst, const comm::DirectRegion& region,
                      comm::BufferLease& lease, std::size_t bytes,
                      std::uint32_t phase_id, std::uint32_t pattern_key,
                      const ScatterFn& scatter, bool can_apply);
  /// Pops the next direct signal: a stashed one matching the current phase
  /// first, else whatever the backend has queued.
  bool poll_direct_signal(comm::DirectSignal& out);
  /// Validates one direct signal (phase / pattern / generation / bounds)
  /// and turns a genuine one into a zero-copy apply job over its region.
  void handle_direct_signal(const comm::DirectSignal& sig,
                            const ScatterFn& scatter, bool can_apply);
  /// Makes receive-side progress: an apply worker (can_apply) prefers
  /// running one queued apply slice; otherwise pumps one message off the
  /// transport - validating, stashing, or splitting it into apply slices.
  /// Returns whether any work was done.
  bool drain_one(const ScatterFn& scatter, bool can_apply);
  bool next_message(comm::InMessage& out);
  /// Splits one current-phase data chunk into apply slices on the work
  /// queue (sliced only for random-access formats past the configured
  /// record threshold).
  void enqueue_apply(comm::InMessage&& msg, const comm::ChunkHeader& header,
                     const ScatterFn& scatter, bool can_apply,
                     bool is_direct = false);
  void push_slice(const ApplySlice& slice, bool can_apply);
  /// Decodes and applies one slice; the last slice of a job settles it.
  void run_slice(const ApplySlice& slice);
  /// Whether a cluster-wide failure is pending: every potentially-unbounded
  /// engine wait checks this so worker threads unwind instead of spinning on
  /// a dead peer (they never throw; the host-main driver raises the error).
  bool aborting() const noexcept;
  /// Settles a slice without running it (abort paths): decrements the job's
  /// slice count and, on the last slice, releases the message and deletes
  /// the job - no note_chunk, the phase is being abandoned.
  void abort_slice(const ApplySlice& slice);
  /// Stashes a future-phase message (bounded; beyond the cap or the phase
  /// window it is dropped and counted) or drops a stale one.
  void stash_message(comm::InMessage&& msg, const comm::ChunkHeader& header);
  /// Drops stashed messages for phases the engine has already moved past.
  void purge_stale_stash();

  Cluster& cluster_;
  const graph::DistGraph& graph_;
  EngineConfig cfg_;
  std::unique_ptr<comm::Backend> backend_;
  std::unique_ptr<rt::ThreadTeam> team_;

  // Communication thread.
  rt::AuxThread comm_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<Cmd> cmd_{Cmd::None};
  const comm::PhaseSpec* cmd_spec_ = nullptr;
  std::atomic<std::uint64_t> cmd_acks_{0};

  // Routing queues for non-thread-safe backends.
  rt::MpmcQueue<SendWork*> send_queue_;
  std::atomic<std::size_t> sends_pending_{0};
  rt::MpmcQueue<comm::InMessage*> recv_queue_;

  // Messages that arrived for a future phase (bounded by cfg_.stash_cap).
  rt::Spinlock stash_lock_;
  std::map<std::uint32_t, std::deque<comm::InMessage>> stash_;
  std::size_t stash_count_ = 0;  // guarded by stash_lock_

  // --- Direct-write state (DESIGN.md §15) ---
  static std::uint64_t direct_key(std::uint32_t pattern_key,
                                  int peer) noexcept {
    return (static_cast<std::uint64_t>(pattern_key) << 32) |
           static_cast<std::uint32_t>(peer);
  }
  /// Receiver-side landing regions, one per (pattern_key, src), registered
  /// on first use and kept until teardown. Mutated only by the host-main
  /// thread between phases; read by apply/pump threads during one.
  struct DirectHome {
    std::unique_ptr<std::byte[]> buf;
    comm::DirectRegion region;
  };
  std::map<std::uint64_t, DirectHome> direct_homes_;
  /// Sender-side density predictor per (pattern_key, dst): did the last
  /// stream to this peer produce a dense chunk? Auto mode goes direct when
  /// it did - density evolves slowly across rounds, and a mispredict only
  /// costs transport choice, never correctness (the direct frame carries
  /// whatever format the encoder picked). Entries are created by the
  /// host-main thread at phase entry; each slot is written by exactly one
  /// compute thread per phase (the one running the peer's last range).
  std::map<std::uint64_t, char> dense_prior_;
  std::uint32_t phase_pattern_key_ = 0;  // written between phases only
  // Direct signals that arrived for a future phase (bounded by stash_cap).
  std::vector<comm::DirectSignal> pending_direct_;  // guarded by stash_lock_
  std::atomic<std::size_t> pending_direct_count_{0};

  // Parallel apply pipeline (DESIGN.md §12).
  rt::MpmcQueue<ApplySlice> apply_queue_;
  ShardLocks shard_locks_;
  std::size_t apply_workers_ = 1;     // effective count, clamped to the team
  std::size_t phase_value_bytes_ = 0; // sizeof(T) for the phase in flight

  PhaseState phase_state_;
  std::uint32_t phase_counter_ = 0;

  EngineStats stats_;
  telemetry::Registration stat_reg_;  // EngineStats probes ("abelian.*")
};

}  // namespace lcr::abelian
