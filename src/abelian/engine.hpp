// The Abelian host engine: the gather-communicate-scatter runtime of Fig. 2.
//
// Per host there is one dedicated communication thread and a team of compute
// threads. A BSP communication phase runs as:
//
//   1. compute threads gather per-peer dirty records into buffers in
//      parallel and enqueue them to the network,
//   2. once its gathers are done each compute thread switches to scattering
//      messages received from other hosts, in arbitrary arrival order,
//   3. the dedicated communication thread interleaves sending and receiving
//      the whole time; no blocking operations are used.
//
// Thread discipline per backend (see comm/backend.hpp):
//   * LCI (thread_safe): compute threads call try_send / try_recv directly;
//     the communication thread is exactly the LCI server (Algorithm 3).
//   * MPI-Probe (FUNNELED) / MPI-RMA: every backend call is executed by the
//     communication thread; compute threads talk to it through a
//     multi-producer send queue and a concurrent receive queue, and phase
//     transitions travel through a command mailbox.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "abelian/cluster.hpp"
#include "comm/backend.hpp"
#include "comm/serializer.hpp"
#include "graph/dist_graph.hpp"
#include "runtime/bitset.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "telemetry/metrics.hpp"

namespace lcr::abelian {

struct EngineConfig {
  comm::BackendKind backend = comm::BackendKind::Lci;
  comm::BackendOptions backend_options;
  std::size_t compute_threads = 2;
  std::size_t recv_queue_capacity = 8192;
};

struct EngineStats {
  std::uint64_t phases = 0;
  std::uint64_t rounds = 0;
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  /// Wall nanoseconds spent serializing (gather/encode), summed over the
  /// compute threads - the Fig-6 "serialization" share.
  std::atomic<std::uint64_t> gather_ns{0};
  /// Wire bytes avoided by adaptive formats vs worst-case sparse records.
  std::atomic<std::uint64_t> bytes_saved{0};
  /// Format-choice counters (chunks shipped per encoding).
  std::atomic<std::uint64_t> fmt_sparse{0};
  std::atomic<std::uint64_t> fmt_varint{0};
  std::atomic<std::uint64_t> fmt_dense{0};
  /// Malformed chunks dropped by the unified scatter (fuzzed/garbage frames).
  std::atomic<std::uint64_t> decode_rejects{0};
  /// Non-overlapped communication time: wall time of sync phases (Fig 6).
  double comm_s = 0.0;
  /// Computation time, accumulated by the app drivers (Fig 6).
  double compute_s = 0.0;
};

class HostEngine {
 public:
  HostEngine(Cluster& cluster, const graph::DistGraph& graph,
             EngineConfig cfg);
  ~HostEngine();

  HostEngine(const HostEngine&) = delete;
  HostEngine& operator=(const HostEngine&) = delete;

  int host_id() const noexcept { return graph_.host_id; }
  const graph::DistGraph& graph() const noexcept { return graph_; }
  Cluster& cluster() noexcept { return cluster_; }
  rt::ThreadTeam& team() noexcept { return *team_; }
  comm::Backend& backend() noexcept { return *backend_; }
  EngineStats& stats() noexcept { return stats_; }

  /// Hands out payload memory for one chunk: reserve(bytes) returns where
  /// the encoder writes (a leased backend buffer, past the chunk header).
  using ReserveFn = std::function<std::byte*(std::size_t)>;
  /// Encodes the dirty entries of shared-list range [lo, hi) for `peer`
  /// directly into memory from `reserve`; returns what was encoded. Called
  /// concurrently from compute threads on disjoint ranges.
  using GatherFn = std::function<comm::EncodedChunk(
      int peer, std::uint32_t lo, std::uint32_t hi, const ReserveFn& reserve)>;
  /// Applies one received chunk from `peer`; false = malformed payload.
  /// Must be thread-safe across messages (different messages may scatter
  /// concurrently).
  using ScatterFn = std::function<bool(
      int peer, const comm::ChunkHeader& header, const std::byte* payload)>;

  /// Runs one full communication phase: the shared list of every peer with
  /// a non-empty `send_lists` entry is split into ranges gathered in
  /// parallel by the compute team straight into leased send buffers, then
  /// receive+scatter until one message stream from every peer with a
  /// non-empty `recv_lists` entry completed. `pattern` (0 = reduce,
  /// 1 = broadcast) and `rec_bytes` key the RMA window sets; max message
  /// sizes derive from the list sizes (all-nodes-active upper bound).
  void execute_phase(
      std::uint32_t pattern, std::size_t rec_bytes,
      const std::vector<std::vector<graph::VertexId>>& send_lists,
      const std::vector<std::vector<graph::VertexId>>& recv_lists,
      const GatherFn& gather, const ScatterFn& scatter);

  // ---- Partition-aware sync wrappers (used by app drivers) ----

  /// Reduce: ship dirty mirror labels to their masters and combine there.
  /// combine(T& current, T incoming) -> bool (true if current changed);
  /// on_update(master_lid) fires when a master's value changed. Must be safe
  /// under concurrent invocation for different messages (use atomic ops).
  template <typename T, typename Combine, typename OnUpdate>
  void sync_reduce(T* labels, const rt::ConcurrentBitset& dirty,
                   Combine&& combine, OnUpdate&& on_update) {
    execute_phase(
        0, comm::record_bytes<T>(), graph_.mirror_to_master,
        graph_.master_to_mirror,
        [&](int peer, std::uint32_t lo, std::uint32_t hi,
            const ReserveFn& reserve) {
          return comm::encode_dirty_range<T>(
              graph_.mirror_to_master[static_cast<std::size_t>(peer)], dirty,
              labels, lo, hi, reserve);
        },
        [&](int peer, const comm::ChunkHeader& header,
            const std::byte* payload) {
          const auto& shared =
              graph_.master_to_mirror[static_cast<std::size_t>(peer)];
          return comm::decode_chunk<T>(
              header, payload, shared.size(),
              [&](std::uint32_t pos, const T& value) {
                const graph::VertexId lid = shared[pos];
                if (combine(labels[lid], value)) on_update(lid);
              });
        });
  }

  /// Broadcast: ship dirty master labels to every host holding a mirror.
  /// on_set(mirror_lid) fires after the mirror label was overwritten.
  template <typename T, typename OnSet>
  void sync_broadcast(T* labels, const rt::ConcurrentBitset& dirty,
                      OnSet&& on_set) {
    execute_phase(
        1, comm::record_bytes<T>(), graph_.master_to_mirror,
        graph_.mirror_to_master,
        [&](int peer, std::uint32_t lo, std::uint32_t hi,
            const ReserveFn& reserve) {
          return comm::encode_dirty_range<T>(
              graph_.master_to_mirror[static_cast<std::size_t>(peer)], dirty,
              labels, lo, hi, reserve);
        },
        [&](int peer, const comm::ChunkHeader& header,
            const std::byte* payload) {
          const auto& shared =
              graph_.mirror_to_master[static_cast<std::size_t>(peer)];
          return comm::decode_chunk<T>(header, payload, shared.size(),
                                       [&](std::uint32_t pos, const T& value) {
                                         const graph::VertexId lid =
                                             shared[pos];
                                         labels[lid] = value;  // single writer
                                         on_set(lid);
                                       });
        });
  }

 private:
  /// Tracks completion of the receive side of one phase. Streaming
  /// protocol: data chunks carry num_chunks == 0; one tail per peer carries
  /// the total (data chunks + itself). Chunks may arrive in any order -
  /// multi-lane LCI reorders freely - so the tail can land before its data.
  /// Single-message backends (RMA) send num_chunks == 1, no tail.
  struct PhaseState {
    std::uint32_t phase_id = 0;
    rt::Spinlock lock;
    std::vector<std::int32_t> total;  // expected chunks per rank; -1 unknown
    std::vector<std::int32_t> got;
    std::size_t peers_remaining = 0;
    std::atomic<bool> complete{false};

    void arm(std::uint32_t id, int num_hosts,
             const std::vector<int>& recv_from);
    void note_chunk(int src, const comm::ChunkHeader& header);
  };

  struct SendWork {
    int dst = -1;
    std::vector<std::byte> payload;
  };

  enum class Cmd : std::uint8_t { None, BeginPhase, Flush, EndPhase };

  void comm_thread_loop();
  void post_cmd(Cmd cmd, const comm::PhaseSpec* spec);
  /// Ships one framed chunk held in `lease` (header at offset 0): commits
  /// leased buffers directly for thread-safe backends, or hands the heap
  /// buffer to the comm thread's send queue. Relieves back pressure by
  /// scattering while it waits.
  void dispatch_chunk(int dst, comm::BufferLease& lease,
                      std::size_t total_bytes, const ScatterFn& scatter);
  /// Sends the streaming tail for `dst`: a header-only chunk whose
  /// num_chunks carries the per-peer total (data chunks + itself).
  void send_tail(int dst, std::uint32_t data_chunks, const ScatterFn& scatter);
  /// Receives and processes at most one message; returns whether one was
  /// handled (scattered or stashed).
  bool drain_one(const ScatterFn& scatter);
  bool next_message(comm::InMessage& out);

  Cluster& cluster_;
  const graph::DistGraph& graph_;
  EngineConfig cfg_;
  std::unique_ptr<comm::Backend> backend_;
  std::unique_ptr<rt::ThreadTeam> team_;

  // Communication thread.
  std::thread comm_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<Cmd> cmd_{Cmd::None};
  const comm::PhaseSpec* cmd_spec_ = nullptr;
  std::atomic<std::uint64_t> cmd_acks_{0};

  // Routing queues for non-thread-safe backends.
  rt::MpmcQueue<SendWork*> send_queue_;
  std::atomic<std::size_t> sends_pending_{0};
  rt::MpmcQueue<comm::InMessage*> recv_queue_;

  // Messages that arrived for a future phase.
  rt::Spinlock stash_lock_;
  std::map<std::uint32_t, std::deque<comm::InMessage>> stash_;

  PhaseState phase_state_;
  std::uint32_t phase_counter_ = 0;

  EngineStats stats_;
  telemetry::Registration stat_reg_;  // EngineStats probes ("abelian.*")
};

}  // namespace lcr::abelian
