// Simulated cluster harness: N hosts as threads over one fabric.
//
// Each "host" of the paper's cluster is an OS thread group (one host-main
// thread that may spawn compute threads and a communication thread). Hosts
// share nothing except (a) the fabric - the network - and (b) a tiny
// out-of-band control plane (barrier + allreduce) standing in for the job
// launcher / PMI layer that real clusters also have. The OOB plane is used
// only for BSP round control (termination detection), identically for every
// backend, so it never contributes to the measured differences between
// communication layers (see DESIGN.md).
//
// The cluster also owns the failure-handling pieces of DESIGN.md §13: the
// membership layer (fed by the fabric's kill observer and the reliability
// watchdog), the cluster-wide checkpoint store, and the recovery rendezvous
// that re-admits a killed host under a new fabric epoch. All OOB collectives
// are abortable: when a failure is pending they throw instead of deadlocking
// on the dead participant.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "comm/direct.hpp"
#include "comm/membership.hpp"
#include "fabric/fabric.hpp"
#include "runtime/barrier.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/collective.hpp"
#include "runtime/spinlock.hpp"
#include "telemetry/health.hpp"

namespace lcr::abelian {

/// How the cluster schedules its simulated hosts and runs the OOB plane
/// (DESIGN.md §16). Defaults come from the environment so every existing
/// test/bench entry point picks them up without plumbing:
///   LCR_HOST_SCHED = os (default) | ult
///   LCR_OOB_COLL   = tree (default) | flat
struct ClusterOptions {
  enum class HostSched {
    kOsThreads,  ///< one OS thread per host (the original path)
    kUlt,        ///< hosts are cooperative fibers over a small worker pool
  };
  enum class OobColl {
    kFlat,  ///< centralized sense barrier + 3-barrier scratch allreduce
    kTree,  ///< k-ary combining tree, O(log N) waves per op
  };

  HostSched host_sched = HostSched::kOsThreads;
  OobColl oob_coll = OobColl::kTree;
  /// ULT worker (OS thread) count; 0 = min(hardware threads, num_hosts).
  std::size_t ult_workers = 0;

  /// Reads LCR_HOST_SCHED / LCR_OOB_COLL; unset or unknown values keep the
  /// defaults above.
  static ClusterOptions from_env();
};

class Cluster {
 public:
  Cluster(int num_hosts, fabric::FabricConfig config,
          ClusterOptions options = ClusterOptions::from_env());

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_hosts() const noexcept { return num_hosts_; }
  fabric::Fabric& fabric() noexcept { return fabric_; }
  comm::Membership& membership() noexcept { return membership_; }
  rt::CheckpointStore& checkpoints() noexcept { return checkpoints_; }

  /// Cluster health monitor (DESIGN.md §14): engines report one
  /// (duration, bytes) sample per host per sync phase; the bench runner
  /// pulls diagnose()/write_json() after the run.
  telemetry::HealthMonitor& health() noexcept { return health_; }

  /// Direct-write region directory (DESIGN.md §15): the stand-in for the
  /// PMI rkey exchange through which receivers publish registered regions
  /// and senders resolve them. Also the cluster-wide generation source -
  /// generations are unique across hosts AND recovery epochs, so a put
  /// built against a pre-failure registration can never validate against
  /// a post-revive region that reuses the same buffer.
  comm::DirectDirectory& direct_directory() noexcept { return directory_; }

  const ClusterOptions& options() const noexcept { return options_; }

  /// Runs fn(host_id) once per host and joins them all. Under
  /// HostSched::kOsThreads each host is an OS thread; under kUlt the hosts
  /// are fibers multiplexed over min(hardware threads, N) workers, and the
  /// scheduler's sched.* statistics are flushed into the fabric telemetry
  /// registry when the run completes. Any exception thrown by a host is
  /// rethrown (first one wins).
  void run(const std::function<void(int)>& fn);

  // --- Out-of-band control plane (host-main threads only) ---
  // All collectives abort with PeerFailedError when a failure is pending.

  void oob_barrier() { oob_wait(); }

  /// Sum-allreduce over all hosts. Collective: every host-main must call.
  std::uint64_t oob_allreduce_sum(std::uint64_t value);
  double oob_allreduce_sum(double value);

  /// Max-allreduce over all hosts.
  double oob_allreduce_max(double value);

  /// Min-allreduce over all hosts (u64).
  std::uint64_t oob_allreduce_min(std::uint64_t value);

  // --- Failure handling (DESIGN.md §13) ---

  /// Driver hook at each BSP round boundary: fires scheduled round kills
  /// deterministically and aborts the caller when this host is dead
  /// (HostKilledError) or a peer failure is pending (PeerFailedError).
  void round_tick(int host, std::int64_t round);

  /// Cluster-wide recovery rendezvous: every host thread calls this after
  /// unwinding its engine. The leader (host 0) revives dead hosts under a
  /// new fabric epoch, clears stale suspicions, resets the torn OOB plane
  /// and logs the deterministic Rollback/Readmit trace. Returns the
  /// cluster-wide rollback round (-1 = restart from scratch).
  std::int64_t recover(int self);

 private:
  /// Abortable barrier arrival; throws PeerFailedError on pending failure.
  void oob_wait();
  void run_ult(const std::function<void(int)>& fn);
  /// The caller's simulated-host id inside run() (fiber host tag under ULT,
  /// a thread_local set by the OS-thread wrapper otherwise); -1 outside.
  int self_host() const noexcept;
  /// True when a failure is pending (abort predicate for tree waves).
  bool abort_pending() const { return membership_.failure_pending(); }
  [[noreturn]] void throw_failure() const;

  int num_hosts_;
  ClusterOptions options_;
  fabric::Fabric fabric_;
  rt::SenseBarrier barrier_;
  rt::TreeBarrier tree_barrier_;
  rt::TreeAllreduce<std::uint64_t> tree_u64_;
  rt::TreeAllreduce<double> tree_double_;
  comm::Membership membership_;
  rt::CheckpointStore checkpoints_;
  telemetry::HealthMonitor health_;
  comm::DirectDirectory directory_;
  telemetry::Registration ckpt_reg_;
  telemetry::Registration member_reg_;
  std::atomic<std::int64_t> rollback_round_{-1};

  // Allreduce scratch (host 0 resets between uses; barriers sequence it).
  std::atomic<std::uint64_t> acc_u64_{0};
  rt::Spinlock acc_lock_;
  double acc_double_ = 0.0;
  std::uint64_t acc_u64_min_ = ~std::uint64_t{0};
};

}  // namespace lcr::abelian
