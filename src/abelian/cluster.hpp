// Simulated cluster harness: N hosts as threads over one fabric.
//
// Each "host" of the paper's cluster is an OS thread group (one host-main
// thread that may spawn compute threads and a communication thread). Hosts
// share nothing except (a) the fabric - the network - and (b) a tiny
// out-of-band control plane (barrier + allreduce) standing in for the job
// launcher / PMI layer that real clusters also have. The OOB plane is used
// only for BSP round control (termination detection), identically for every
// backend, so it never contributes to the measured differences between
// communication layers (see DESIGN.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "fabric/fabric.hpp"
#include "runtime/barrier.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::abelian {

class Cluster {
 public:
  Cluster(int num_hosts, fabric::FabricConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_hosts() const noexcept { return num_hosts_; }
  fabric::Fabric& fabric() noexcept { return fabric_; }

  /// Runs fn(host_id) on one thread per host and joins them all. Any
  /// exception thrown by a host is rethrown (first one wins).
  void run(const std::function<void(int)>& fn);

  // --- Out-of-band control plane (host-main threads only) ---

  void oob_barrier() { barrier_.arrive_and_wait(); }

  /// Sum-allreduce over all hosts. Collective: every host-main must call.
  std::uint64_t oob_allreduce_sum(std::uint64_t value);
  double oob_allreduce_sum(double value);

  /// Max-allreduce over all hosts.
  double oob_allreduce_max(double value);

  /// Min-allreduce over all hosts (u64).
  std::uint64_t oob_allreduce_min(std::uint64_t value);

 private:
  int num_hosts_;
  fabric::Fabric fabric_;
  rt::SenseBarrier barrier_;

  // Allreduce scratch (host 0 resets between uses; barriers sequence it).
  std::atomic<std::uint64_t> acc_u64_{0};
  rt::Spinlock acc_lock_;
  double acc_double_ = 0.0;
  std::uint64_t acc_u64_min_ = ~std::uint64_t{0};
};

}  // namespace lcr::abelian
