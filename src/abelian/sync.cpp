#include "abelian/sync.hpp"

namespace lcr::abelian {

SyncPlan plan_push_monotone(graph::PartitionPolicy policy) {
  SyncPlan plan;
  switch (policy) {
    case graph::PartitionPolicy::BlockedEdgeCut:
    case graph::PartitionPolicy::OutgoingEdgeCut:
      // Pushes originate at masters (all out-edges live with the master)
      // and may write mirrors: reduce only.
      plan.do_reduce = true;
      plan.do_broadcast = false;
      break;
    case graph::PartitionPolicy::IncomingEdgeCut:
      // Pushes always write masters (all in-edges live with the master),
      // but originate at possibly-stale mirrors: broadcast only.
      plan.do_reduce = false;
      plan.do_broadcast = true;
      break;
    case graph::PartitionPolicy::CartesianVertexCut:
      // Both endpoints may be mirrors: reduce then broadcast.
      plan.do_reduce = true;
      plan.do_broadcast = true;
      break;
  }
  return plan;
}

SyncPlan plan_accumulate(graph::PartitionPolicy policy) {
  // Same partition-awareness as the monotone plan: where contributions land
  // (reduce) and where the recomputed value is read (broadcast) are
  // determined by which endpoints can be mirrors.
  return plan_push_monotone(policy);
}

}  // namespace lcr::abelian
