// The LCI Queue interface (paper Section III-D, Algorithms 1-3).
//
// Queue is the interface LCI exposes to Abelian-style irregular communication:
//   * send_enq  - Algorithm 1: allocate a packet; eager-copy-and-send for
//     small messages (request completes immediately), RTS handshake for large
//     ones (request completes when the server has lc_put the data). Returns
//     false - a *non-fatal* failure - when resources are exhausted; the
//     caller retries later. This is the back-pressure mechanism MPI lacks.
//   * recv_deq  - Algorithm 2: dequeue the next arrived packet (any source,
//     any tag - the *first-packet policy*; there is no tag matching and no
//     ordering enforcement). EGR packets complete immediately with a
//     zero-copy view into the packet; RTS packets allocate the target buffer,
//     answer with an RTR, and complete when the RDMA notification arrives.
//   * progress  - Algorithm 3: the communication server's step. Executes the
//     per-packet-type callbacks: queue EGR/RTS for recv_deq, serve RTR by
//     issuing the lc_put, retire requests on RDMA notifications.
//
// Injection lanes (multi-server scaling): with QueueConfig::lanes > 0,
// send_enq no longer posts to the fabric at the call site. It stages the
// fully-formed wire operation (packet + metadata) into a per-thread SPSC
// ring; progress servers drain the rings and do the actual posting. Senders
// then touch no shared fabric state at all - the endpoint locks are paid
// only by the (few) servers, which is what lets injection throughput scale
// with compute-thread count. The trade: eager requests complete when a
// server posts them, not at send_enq return. lanes == 0 keeps the legacy
// inline path and its complete-at-return eager semantics.
//
// Thread-safety: send_enq and recv_deq may be called concurrently from many
// threads (the packet pool and queue Q are concurrent); progress /
// progress_shard may be called concurrently from several server threads -
// lanes are claimed with a consumer try-lock and the pending-put retry queue
// is sharded by peer rank, each shard under its own lock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "lci/device.hpp"
#include "lci/request.hpp"
#include "runtime/mem_tracker.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/spinlock.hpp"
#include "runtime/spsc_ring.hpp"

namespace lcr::lci {

struct QueueConfig {
  DeviceConfig device;
  /// Tracker for rendezvous receive-buffer allocations (Fig 5 accounting).
  rt::MemTracker* tracker = nullptr;
  /// Number of SPSC injection lanes. 0 = legacy inline injection (send_enq
  /// posts at the call site; eager sends complete at return). > 0 = deferred
  /// injection: sender threads stage into lanes, progress servers post.
  /// Size to the expected number of concurrently-injecting threads.
  std::size_t lanes = 0;
  /// Capacity of each injection lane ring (ops; each op pins a tx packet).
  std::size_t lane_depth = 256;
};

struct QueueStats {
  std::atomic<std::uint64_t> eager_sends{0};
  std::atomic<std::uint64_t> rdv_sends{0};
  std::atomic<std::uint64_t> send_retries{0};  // pool exhausted / fabric soft-fail
  std::atomic<std::uint64_t> recvs{0};
  std::atomic<std::uint64_t> progress_events{0};
  std::atomic<std::uint64_t> lane_posts{0};   // ops staged into lanes
  std::atomic<std::uint64_t> lane_steals{0};  // lanes drained by a non-home server
  std::atomic<std::uint64_t> lane_full{0};    // send_enq rejected: lane ring full
  std::atomic<std::uint64_t> lease_sends{0};  // zero-copy leased-packet sends
};

class Queue {
 public:
  Queue(fabric::Fabric& fabric, fabric::Rank rank, QueueConfig cfg);
  ~Queue();

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  fabric::Rank rank() const noexcept { return device_.rank(); }
  std::size_t eager_limit() const noexcept { return device_.eager_limit(); }
  Device& device() noexcept { return device_; }
  QueueStats& stats() noexcept { return stats_; }
  std::size_t num_lanes() const noexcept { return lanes_.size(); }

  /// Algorithm 1. Returns false when resources are exhausted (retry later).
  /// `req` must stay alive and un-moved until req.done(). In lane mode the
  /// payload is staged (eager) or latched (rendezvous) before return, so the
  /// caller's `buf` may be reused once req.done(); with lanes == 0 eager
  /// requests are already done() at return.
  bool send_enq(const void* buf, std::size_t size, fabric::Rank dst,
                std::uint32_t tag, Request& req);

  /// Zero-copy send path: lease a tx packet so the caller serializes the
  /// wire payload directly into registered pool memory (no send-side
  /// memcpy). The lease respects a free-packet floor so long-held leases
  /// cannot starve RTS/RTR control traffic. nullptr = retry later.
  Packet* lease_tx_packet();

  /// Returns an unsent leased packet to the pool.
  void return_tx_packet(Packet* p) { device_.tx_free(p); }

  /// Sends the first `size` bytes of a leased packet's slab (size must be
  /// <= eager_limit()). Mirrors the eager half of send_enq minus the copy.
  /// On soft failure returns false and - unlike send_enq - the packet STAYS
  /// LEASED with its contents intact, so the caller retries the commit
  /// without re-serializing. On success the packet returns to the pool and
  /// `req` completes with the usual lane-mode/inline semantics.
  bool send_leased(Packet* p, std::size_t size, fabric::Rank dst,
                   std::uint32_t tag, Request& req);

  /// Algorithm 2. Returns false when no packet is pending. On true, `req`
  /// describes the incoming message; data at req.buffer is valid (EGR) or
  /// will be valid once req.done() (rendezvous). Call release(req) after
  /// consuming the data.
  bool recv_deq(Request& req);

  /// Releases receive-side resources: recycles the pool packet back to the
  /// NIC receive window, or frees a rendezvous buffer.
  void release(Request& req);

  /// Algorithm 3, one step. Returns true if any work was done (an event
  /// processed, a lane op posted, or a pending put retried successfully).
  bool progress() { return progress_shard(0, 1); }

  /// One step of server `server_id` of `num_servers`: retries its share of
  /// pending puts (peer-rank shards), drains its home lanes
  /// (lane % num_servers == server_id), processes one fabric event, and -
  /// only when all of that came up empty - steals one backlogged lane from
  /// another server. Safe to call concurrently from several threads.
  bool progress_shard(std::size_t server_id, std::size_t num_servers);

  /// Drain everything currently deliverable.
  void progress_all() {
    while (progress()) {
    }
  }

  /// Convenience blocking helpers for tests and examples. They internally
  /// call progress(), so they must not be mixed with a concurrent server
  /// thread unless `spin_only` semantics are acceptable.
  void send_blocking(const void* buf, std::size_t size, fabric::Rank dst,
                     std::uint32_t tag);
  void recv_blocking(Request& req);

  /// Installs the handler for one-sided SIGNAL notifications (direct-write
  /// puts, DESIGN.md §15): by the time it fires the put's payload has fully
  /// landed in the registered region, and the handler receives the
  /// notification metadata (immediates carry generation/phase/bytes). It
  /// runs on whichever thread drives progress, so it must be cheap and must
  /// not call back into this Queue. Install before any concurrent progress
  /// driver (server group / compute threads) starts; the slot is not
  /// synchronized against in-flight dispatch.
  void set_signal_handler(std::function<void(const fabric::MsgMeta&)> fn) {
    signal_handler_ = std::move(fn);
  }

 private:
  /// A staged wire operation: everything a server needs to post it.
  struct TxOp {
    Packet* packet = nullptr;
    fabric::MsgMeta meta{};
    fabric::Rank dst = 0;
    Request* req = nullptr;
    bool rdv = false;
  };

  /// One injection lane. The ring is SPSC; the producer lock serializes
  /// threads that hash to the same lane (uncontended when lanes >= threads),
  /// the consumer try-lock arbitrates the home server vs. stealers. The
  /// one-slot `stalled` op preserves per-lane FIFO across fabric soft
  /// failures (guarded by the consumer lock).
  struct Lane {
    explicit Lane(std::size_t depth) : ring(depth) {}
    rt::SpscRing<TxOp> ring;
    rt::Spinlock producer;
    rt::Spinlock consumer;
    std::atomic<std::size_t> depth{0};  // ring entries + stalled slot
    TxOp stalled{};
    bool has_stalled = false;
  };

  struct PendingPut {
    fabric::Rank peer;
    RtrPayload rtr;
  };
  /// Soft-failed lc_puts, sharded by peer rank so servers retry disjoint
  /// shares without contending on one lock.
  struct PutShard {
    rt::Spinlock lock;
    std::deque<PendingPut> puts;
  };

  /// An RTR control reply whose lc_send soft-failed (reverse link
  /// throttled). recv_deq runs on engine threads, and an engine thread that
  /// spins on the reverse link stops draining its own receive side - at
  /// scale that wedges the whole cluster (A's link to B is full because B is
  /// stuck sending to A). So the reply is staged here by value and the
  /// progress servers retry it; the receive request stays Pending and
  /// completes on the RDMA notification as usual.
  struct PendingRtr {
    fabric::Rank peer;
    std::uint32_t tag;
    RtrPayload rtr;
  };
  struct RtrShard {
    rt::Spinlock lock;
    std::deque<PendingRtr> rtrs;
  };

  bool send_lane(const void* buf, std::size_t size, fabric::Rank dst,
                 std::uint32_t tag, Request& req);
  std::size_t lane_index() const;
  /// Posts one staged op. True = posted (packet freed, request advanced);
  /// false = fabric soft failure, op untouched for a later retry.
  bool post_op(TxOp& op);
  bool drain_lane(Lane& lane, std::size_t burst);
  void serve_rtr(const RtrPayload& rtr, fabric::Rank peer);
  bool retry_pending_puts(std::size_t server_id, std::size_t num_servers);
  bool retry_pending_rtrs(std::size_t server_id, std::size_t num_servers);
  bool dispatch_one_event();

  Device device_;
  rt::MpmcQueue<Packet*> incoming_;  // the global concurrent queue Q
  rt::MemTracker* tracker_;
  QueueStats stats_;
  telemetry::Histogram* recv_q_depth_ = nullptr;  // Q occupancy at enqueue
  telemetry::Histogram* lane_depth_ = nullptr;    // lane occupancy at enqueue
  telemetry::Registration stat_reg_;  // QueueStats probes ("lci.*")

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<PutShard>> put_shards_;
  std::vector<std::unique_ptr<RtrShard>> rtr_shards_;
  std::function<void(const fabric::MsgMeta&)> signal_handler_;
};

}  // namespace lcr::lci
