// The LCI Queue interface (paper Section III-D, Algorithms 1-3).
//
// Queue is the interface LCI exposes to Abelian-style irregular communication:
//   * send_enq  - Algorithm 1: allocate a packet; eager-copy-and-send for
//     small messages (request completes immediately), RTS handshake for large
//     ones (request completes when the server has lc_put the data). Returns
//     false - a *non-fatal* failure - when resources are exhausted; the
//     caller retries later. This is the back-pressure mechanism MPI lacks.
//   * recv_deq  - Algorithm 2: dequeue the next arrived packet (any source,
//     any tag - the *first-packet policy*; there is no tag matching and no
//     ordering enforcement). EGR packets complete immediately with a
//     zero-copy view into the packet; RTS packets allocate the target buffer,
//     answer with an RTR, and complete when the RDMA notification arrives.
//   * progress  - Algorithm 3: the communication server's step. Executes the
//     per-packet-type callbacks: queue EGR/RTS for recv_deq, serve RTR by
//     issuing the lc_put, retire requests on RDMA notifications.
//
// Thread-safety: send_enq and recv_deq may be called concurrently from many
// threads (the packet pool and queue Q are concurrent); progress is intended
// for a single communication-server thread (it drains the NIC).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "lci/device.hpp"
#include "lci/request.hpp"
#include "runtime/mem_tracker.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::lci {

struct QueueConfig {
  DeviceConfig device;
  /// Tracker for rendezvous receive-buffer allocations (Fig 5 accounting).
  rt::MemTracker* tracker = nullptr;
};

struct QueueStats {
  std::atomic<std::uint64_t> eager_sends{0};
  std::atomic<std::uint64_t> rdv_sends{0};
  std::atomic<std::uint64_t> send_retries{0};  // pool exhausted / fabric soft-fail
  std::atomic<std::uint64_t> recvs{0};
  std::atomic<std::uint64_t> progress_events{0};
};

class Queue {
 public:
  Queue(fabric::Fabric& fabric, fabric::Rank rank, QueueConfig cfg);

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  fabric::Rank rank() const noexcept { return device_.rank(); }
  std::size_t eager_limit() const noexcept { return device_.eager_limit(); }
  Device& device() noexcept { return device_; }
  QueueStats& stats() noexcept { return stats_; }

  /// Algorithm 1. Returns false when resources are exhausted (retry later).
  /// `req` must stay alive and un-moved until req.done().
  bool send_enq(const void* buf, std::size_t size, fabric::Rank dst,
                std::uint32_t tag, Request& req);

  /// Algorithm 2. Returns false when no packet is pending. On true, `req`
  /// describes the incoming message; data at req.buffer is valid (EGR) or
  /// will be valid once req.done() (rendezvous). Call release(req) after
  /// consuming the data.
  bool recv_deq(Request& req);

  /// Releases receive-side resources: recycles the pool packet back to the
  /// NIC receive window, or frees a rendezvous buffer.
  void release(Request& req);

  /// Algorithm 3, one step. Returns true if an event was processed.
  bool progress();

  /// Drain everything currently deliverable.
  void progress_all() {
    while (progress()) {
    }
  }

  /// Convenience blocking helpers for tests and examples. They internally
  /// call progress(), so they must not be mixed with a concurrent server
  /// thread unless `spin_only` semantics are acceptable.
  void send_blocking(const void* buf, std::size_t size, fabric::Rank dst,
                     std::uint32_t tag);
  void recv_blocking(Request& req);

 private:
  void serve_rtr(const RtrPayload& rtr, fabric::Rank peer);
  void retry_pending_puts();

  Device device_;
  rt::MpmcQueue<Packet*> incoming_;  // the global concurrent queue Q
  rt::MemTracker* tracker_;
  QueueStats stats_;
  telemetry::Histogram* recv_q_depth_ = nullptr;  // Q occupancy at enqueue
  telemetry::Registration stat_reg_;  // QueueStats probes ("lci.*")

  struct PendingPut {
    fabric::Rank peer;
    RtrPayload rtr;
  };
  rt::Spinlock pending_lock_;
  std::deque<PendingPut> pending_puts_;  // soft-failed lc_puts to retry
};

}  // namespace lcr::lci
