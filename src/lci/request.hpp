// LCI requests: single-flag completion objects.
//
// "In comparison to MPI functions such as MPI_TEST or MPI_WAIT, our mechanism
// is more lightweight: there is no need for a function call; the user
// maintains a list of requests and checks the status flag fields."
// (paper Section III-D, Communication Completion)
//
// Requests are caller-owned plain structs; the progress server completes them
// with a single atomic store, and the caller observes completion with a
// single atomic load - no library call, no lock, no network poll.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "fabric/packet.hpp"

namespace lcr::lci {

struct Packet;
class CompletionCounter;

enum class ReqStatus : std::uint8_t {
  Invalid = 0,
  Pending = 1,
  Done = 2,
};

struct Request {
  /// The single completion flag. Server stores Done; caller loads.
  std::atomic<ReqStatus> status{ReqStatus::Invalid};

  /// Peer rank and tag of the communication.
  fabric::Rank peer = 0;
  std::uint32_t tag = 0;

  /// User buffer and size. For an eager receive this points INTO the pool
  /// packet payload (zero-copy view); release via Queue::release().
  void* buffer = nullptr;
  std::size_t size = 0;

  /// Receive-side bookkeeping.
  Packet* packet = nullptr;              // pool packet to recycle on release
  fabric::RKey rkey = fabric::kInvalidRKey;  // rendezvous target registration
  bool owns_buffer = false;              // rendezvous recv allocated buffer

  /// Optional aggregate completion object, signalled (once) when the
  /// request reaches Done. Set before initiating the communication.
  CompletionCounter* signal = nullptr;

  bool done() const noexcept {
    return status.load(std::memory_order_acquire) == ReqStatus::Done;
  }

  void reset() noexcept {
    status.store(ReqStatus::Invalid, std::memory_order_relaxed);
    peer = 0;
    tag = 0;
    buffer = nullptr;
    size = 0;
    packet = nullptr;
    rkey = fabric::kInvalidRKey;
    owns_buffer = false;
    // `signal` is deliberately preserved: reset() is called by the queue on
    // initiation, after the caller attached the counter.
  }
};

}  // namespace lcr::lci
