#include "lci/queue.hpp"

#include "lci/completion.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "runtime/cpu_relax.hpp"
#include "telemetry/trace.hpp"

namespace lcr::lci {

namespace {
/// Retire a request: the single-flag completion store, plus the optional
/// aggregate counter signal.
inline void mark_done(Request& req) {
  req.status.store(ReqStatus::Done, std::memory_order_release);
  if (req.signal != nullptr) req.signal->signal();
}
}  // namespace

Queue::Queue(fabric::Fabric& fabric, fabric::Rank rank, QueueConfig cfg)
    : device_(fabric, rank, cfg.device),
      incoming_(cfg.device.rx_packets),
      tracker_(cfg.tracker) {
  recv_q_depth_ = &fabric.telemetry().histogram("lci.recv_q_depth");
  stat_reg_ = fabric.telemetry().register_probes({
      {"lci.eager_sends", &stats_.eager_sends},
      {"lci.rdv_sends", &stats_.rdv_sends},
      {"lci.send_retries", &stats_.send_retries},
      {"lci.recvs", &stats_.recvs},
      {"lci.progress_events", &stats_.progress_events},
  });
}

bool Queue::send_enq(const void* buf, std::size_t size, fabric::Rank dst,
                     std::uint32_t tag, Request& req) {
  Packet* p = device_.tx_alloc();  // packetAlloc(P, ...)
  if (p == nullptr) {
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    return false;  // pool exhausted: non-fatal, caller retries
  }

  req.reset();
  req.peer = dst;
  req.tag = tag;
  req.buffer = const_cast<void*>(buf);
  req.size = size;

  if (size <= device_.eager_limit()) {
    // Eager path: copy into the packet, send, complete immediately.
    std::memcpy(p->data, buf, size);
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(PacketType::EGR);
    meta.tag = tag;
    meta.size = static_cast<std::uint32_t>(size);
    const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
    device_.tx_free(p);
    if (r != fabric::PostResult::Ok) {
      stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
      return false;  // receiver out of buffers / throttled: retry later
    }
    stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    mark_done(req);
    return true;
  }

  // Rendezvous path: send an RTS carrying the size and our request handle.
  req.status.store(ReqStatus::Pending, std::memory_order_release);
  auto* rts = reinterpret_cast<RtsPayload*>(p->data);
  rts->msg_size = size;
  rts->send_req = reinterpret_cast<std::uint64_t>(&req);
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RTS);
  meta.tag = tag;
  meta.size = sizeof(RtsPayload);
  const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
  device_.tx_free(p);
  if (r != fabric::PostResult::Ok) {
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    req.status.store(ReqStatus::Invalid, std::memory_order_release);
    return false;
  }
  stats_.rdv_sends.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Queue::recv_deq(Request& req) {
  std::optional<Packet*> popped = incoming_.try_pop();  // dequeue(Q)
  if (!popped) return false;
  Packet* p = *popped;

  req.reset();
  req.peer = p->meta.src;
  req.tag = p->meta.tag;

  const auto type = static_cast<PacketType>(p->meta.kind);
  if (type == PacketType::EGR) {
    // Zero-copy view into the pool packet; caller releases when done.
    req.size = p->meta.size;
    req.buffer = p->data;
    req.packet = p;
    mark_done(req);
    stats_.recvs.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  assert(type == PacketType::RTS);
  RtsPayload rts;
  std::memcpy(&rts, p->data, sizeof(rts));

  // Allocate the target buffer (the paper uses Abelian's allocator; we use
  // the tracked heap so Fig-5 accounting sees it) and expose it for the put.
  req.size = static_cast<std::size_t>(rts.msg_size);
  req.buffer = ::operator new(req.size);
  req.owns_buffer = true;
  if (tracker_ != nullptr) tracker_->on_alloc(req.size);
  req.rkey = device_.register_memory(req.buffer, req.size);
  req.status.store(ReqStatus::Pending, std::memory_order_release);

  // Reply with the RTR; reuse the RTS packet slab as the send staging.
  RtrPayload rtr;
  rtr.send_req = rts.send_req;
  rtr.recv_req = reinterpret_cast<std::uint64_t>(&req);
  rtr.rkey = req.rkey;
  rtr.msg_size = rts.msg_size;
  std::memcpy(p->data, &rtr, sizeof(rtr));
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RTR);
  meta.tag = req.tag;
  meta.size = sizeof(RtrPayload);
  rt::Backoff backoff;
  while (device_.lc_send(req.peer, p->data, meta) != fabric::PostResult::Ok)
    backoff.pause();  // control reply; peer's server drains, bounded wait

  device_.repost_rx(p);  // give the slab back to the NIC receive window
  stats_.recvs.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Queue::release(Request& req) {
  if (req.packet != nullptr) {
    device_.repost_rx(req.packet);
    req.packet = nullptr;
    req.buffer = nullptr;
  } else if (req.owns_buffer && req.buffer != nullptr) {
    if (tracker_ != nullptr) tracker_->on_free(req.size);
    ::operator delete(req.buffer);
    req.buffer = nullptr;
    req.owns_buffer = false;
  }
}

void Queue::serve_rtr(const RtrPayload& rtr, fabric::Rank peer) {
  auto* sreq = reinterpret_cast<Request*>(rtr.send_req);
  const fabric::PostResult r =
      device_.lc_put(peer, rtr.rkey, sreq->buffer,
                     static_cast<std::size_t>(rtr.msg_size), rtr.recv_req);
  if (r == fabric::PostResult::Ok) {
    mark_done(*sreq);
  } else {
    // Soft failure (throttled / CQ full): retry on a later progress step.
    std::lock_guard<rt::Spinlock> guard(pending_lock_);
    pending_puts_.push_back(PendingPut{peer, rtr});
  }
}

void Queue::retry_pending_puts() {
  std::lock_guard<rt::Spinlock> guard(pending_lock_);
  std::size_t n = pending_puts_.size();
  while (n-- > 0) {
    PendingPut pp = pending_puts_.front();
    pending_puts_.pop_front();
    auto* sreq = reinterpret_cast<Request*>(pp.rtr.send_req);
    const fabric::PostResult r =
        device_.lc_put(pp.peer, pp.rtr.rkey, sreq->buffer,
                       static_cast<std::size_t>(pp.rtr.msg_size),
                       pp.rtr.recv_req);
    if (r == fabric::PostResult::Ok)
      mark_done(*sreq);
    else
      pending_puts_.push_back(pp);
  }
}

bool Queue::progress() {
  retry_pending_puts();
  std::optional<ProgressEvent> ev = device_.lc_progress();
  if (!ev) return false;
  stats_.progress_events.fetch_add(1, std::memory_order_relaxed);

  switch (ev->type) {
    case PacketType::EGR:
    case PacketType::RTS:
      // enqueue(Q, p); capacity == rx window size, cannot overflow.
      incoming_.push(ev->packet);
      if (telemetry::enabled())
        recv_q_depth_->record(incoming_.approx_size());
      break;
    case PacketType::RTR: {
      RtrPayload rtr;
      std::memcpy(&rtr, ev->packet->data, sizeof(rtr));
      const fabric::Rank peer = ev->meta.src;
      device_.repost_rx(ev->packet);
      serve_rtr(rtr, peer);
      break;
    }
    case PacketType::RDMA: {
      // Put notification: retire the receiver's request.
      auto* rreq = reinterpret_cast<Request*>(ev->meta.imm);
      if (rreq->rkey != fabric::kInvalidRKey) {
        device_.deregister_memory(rreq->rkey);
        rreq->rkey = fabric::kInvalidRKey;
      }
      mark_done(*rreq);
      break;
    }
    case PacketType::SIGNAL:
      break;  // one-sided signals are not routed through Queue endpoints
  }
  return true;
}

void Queue::send_blocking(const void* buf, std::size_t size, fabric::Rank dst,
                          std::uint32_t tag) {
  Request req;
  rt::Backoff backoff;
  while (!send_enq(buf, size, dst, tag, req)) {
    progress();
    backoff.pause();
  }
  while (!req.done()) {
    progress();
    rt::cpu_pause();
  }
}

void Queue::recv_blocking(Request& req) {
  rt::Backoff backoff;
  while (!recv_deq(req)) {
    progress();
    backoff.pause();
  }
  while (!req.done()) {
    progress();
    rt::cpu_pause();
  }
}

}  // namespace lcr::lci
