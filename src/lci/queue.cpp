#include "lci/queue.hpp"

#include "lci/completion.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "runtime/cpu_relax.hpp"
#include "runtime/ult.hpp"
#include "telemetry/trace.hpp"

namespace lcr::lci {

namespace {
/// Retire a request: the single-flag completion store, plus the optional
/// aggregate counter signal. The signal pointer must be read BEFORE the
/// Done store: the caller owns the Request and may destroy it the moment it
/// observes Done (lane mode completes requests from a server thread), so no
/// field may be touched after the store. The CompletionCounter itself must
/// outlive its requests by contract (callers wait on counter.complete()).
inline void mark_done(Request& req) {
  CompletionCounter* const signal = req.signal;
  req.status.store(ReqStatus::Done, std::memory_order_release);
  if (signal != nullptr) signal->signal();
}

/// Ops a server posts from one lane per visit. Large enough to amortize the
/// consumer-lock acquisition, small enough that stealers are not starved.
constexpr std::size_t kLaneBurst = 64;

/// Free tx packets a buffer lease may not consume: leases are held across
/// the whole gather of a range, so without a floor a wide parallel gather
/// could drain the pool and deadlock against the RTS/RTR control sends that
/// would free it.
constexpr std::size_t kTxLeaseFloor = 8;
}  // namespace

Queue::Queue(fabric::Fabric& fabric, fabric::Rank rank, QueueConfig cfg)
    : device_(fabric, rank, cfg.device),
      incoming_(cfg.device.rx_packets),
      tracker_(cfg.tracker) {
  recv_q_depth_ = &fabric.telemetry().histogram("lci.recv_q_depth");
  lane_depth_ = &fabric.telemetry().histogram("lci.lane_depth");
  stat_reg_ = fabric.telemetry().register_probes({
      {"lci.eager_sends", &stats_.eager_sends},
      {"lci.rdv_sends", &stats_.rdv_sends},
      {"lci.send_retries", &stats_.send_retries},
      {"lci.recvs", &stats_.recvs},
      {"lci.progress_events", &stats_.progress_events},
      {"lci.lane_posts", &stats_.lane_posts},
      {"lci.lane_steals", &stats_.lane_steals},
      {"lci.lane_full", &stats_.lane_full},
      {"lci.lease_sends", &stats_.lease_sends},
  });
  lanes_.reserve(cfg.lanes);
  for (std::size_t l = 0; l < cfg.lanes; ++l)
    lanes_.push_back(std::make_unique<Lane>(cfg.lane_depth));
  const std::size_t shards = fabric.num_ranks() > 0 ? fabric.num_ranks() : 1;
  put_shards_.reserve(shards);
  rtr_shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    put_shards_.push_back(std::make_unique<PutShard>());
    rtr_shards_.push_back(std::make_unique<RtrShard>());
  }
}

Queue::~Queue() {
  // Return any never-posted staged packets to the pool so the device's
  // packet accounting stays balanced. Requests referenced by these ops are
  // caller-owned and may already be gone; they are not touched.
  for (auto& lp : lanes_) {
    Lane& lane = *lp;
    if (lane.has_stalled) {
      device_.tx_free(lane.stalled.packet);
      lane.has_stalled = false;
    }
    while (std::optional<TxOp> op = lane.ring.try_pop())
      device_.tx_free(op->packet);
  }
}

std::size_t Queue::lane_index() const {
  // Process-wide injector numbering: each execution context (OS thread, or
  // fiber under the ULT host scheduler) takes the next id the first time it
  // sends through any lane-mode queue, then hashes onto this queue's lanes.
  // With lanes >= injectors every lane is SPSC in practice and the producer
  // lock never spins. Keying by fiber rather than worker matters for
  // correctness of the SPSC assumption: two host fibers multiplexed onto
  // one worker must not look like a single injector to a lane whose
  // consumer-side dedupe is per-injector.
  static std::atomic<std::size_t> next_injector{0};
  if (ult::on_fiber()) {
    static const int slot = ult::fls_alloc(nullptr);
    void* raw = ult::fls_get(slot);
    std::size_t id;
    if (raw == nullptr) {
      id = next_injector.fetch_add(1, std::memory_order_relaxed);
      ult::fls_set(slot, reinterpret_cast<void*>(id + 1));
    } else {
      id = reinterpret_cast<std::size_t>(raw) - 1;
    }
    return id % lanes_.size();
  }
  thread_local const std::size_t injector =
      next_injector.fetch_add(1, std::memory_order_relaxed);
  return injector % lanes_.size();
}

bool Queue::send_enq(const void* buf, std::size_t size, fabric::Rank dst,
                     std::uint32_t tag, Request& req) {
  if (!lanes_.empty()) return send_lane(buf, size, dst, tag, req);

  Packet* p = device_.tx_alloc();  // packetAlloc(P, ...)
  if (p == nullptr) {
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    return false;  // pool exhausted: non-fatal, caller retries
  }

  req.reset();
  req.peer = dst;
  req.tag = tag;
  req.buffer = const_cast<void*>(buf);
  req.size = size;

  if (size <= device_.eager_limit()) {
    // Eager path: copy into the packet, send, complete immediately.
    std::memcpy(p->data, buf, size);
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(PacketType::EGR);
    meta.tag = tag;
    meta.size = static_cast<std::uint32_t>(size);
    const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
    device_.tx_free(p);
    if (r != fabric::PostResult::Ok) {
      stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
      return false;  // receiver out of buffers / throttled: retry later
    }
    stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    mark_done(req);
    return true;
  }

  // Rendezvous path: send an RTS carrying the size and our request handle.
  req.status.store(ReqStatus::Pending, std::memory_order_release);
  auto* rts = reinterpret_cast<RtsPayload*>(p->data);
  rts->msg_size = size;
  rts->send_req = reinterpret_cast<std::uint64_t>(&req);
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RTS);
  meta.tag = tag;
  meta.size = sizeof(RtsPayload);
  const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
  device_.tx_free(p);
  if (r != fabric::PostResult::Ok) {
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    req.status.store(ReqStatus::Invalid, std::memory_order_release);
    return false;
  }
  stats_.rdv_sends.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Queue::send_lane(const void* buf, std::size_t size, fabric::Rank dst,
                      std::uint32_t tag, Request& req) {
  Packet* p = device_.tx_alloc();
  if (p == nullptr) {
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  req.reset();
  req.peer = dst;
  req.tag = tag;
  req.buffer = const_cast<void*>(buf);
  req.size = size;

  TxOp op;
  op.packet = p;
  op.dst = dst;
  op.req = &req;
  op.meta.tag = tag;
  if (size <= device_.eager_limit()) {
    // The payload is captured into the packet here, in the sender's thread;
    // only the post is deferred. The caller's buffer is free after return.
    std::memcpy(p->data, buf, size);
    op.meta.kind = static_cast<std::uint8_t>(PacketType::EGR);
    op.meta.size = static_cast<std::uint32_t>(size);
  } else {
    auto* rts = reinterpret_cast<RtsPayload*>(p->data);
    rts->msg_size = size;
    rts->send_req = reinterpret_cast<std::uint64_t>(&req);
    op.meta.kind = static_cast<std::uint8_t>(PacketType::RTS);
    op.meta.size = sizeof(RtsPayload);
    op.rdv = true;
  }
  // Deferred injection: even eager requests are Pending until a server
  // posts the op (the documented lane-mode semantics difference).
  req.status.store(ReqStatus::Pending, std::memory_order_release);

  Lane& lane = *lanes_[lane_index()];
  bool pushed;
  {
    std::lock_guard<rt::Spinlock> guard(lane.producer);
    pushed = lane.ring.try_push(op);
  }
  if (!pushed) {
    device_.tx_free(p);
    req.status.store(ReqStatus::Invalid, std::memory_order_release);
    stats_.lane_full.fetch_add(1, std::memory_order_relaxed);
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    return false;  // lane back-pressure: caller retries after progress
  }
  const std::size_t depth =
      lane.depth.fetch_add(1, std::memory_order_relaxed) + 1;
  stats_.lane_posts.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) lane_depth_->record(depth);
  return true;
}

Packet* Queue::lease_tx_packet() {
  return device_.tx_alloc_reserve(kTxLeaseFloor);
}

bool Queue::send_leased(Packet* p, std::size_t size, fabric::Rank dst,
                        std::uint32_t tag, Request& req) {
  assert(size <= device_.eager_limit());
  req.reset();
  req.peer = dst;
  req.tag = tag;
  req.buffer = p->data;
  req.size = size;

  if (!lanes_.empty()) {
    TxOp op;
    op.packet = p;
    op.dst = dst;
    op.req = &req;
    op.meta.kind = static_cast<std::uint8_t>(PacketType::EGR);
    op.meta.tag = tag;
    op.meta.size = static_cast<std::uint32_t>(size);
    req.status.store(ReqStatus::Pending, std::memory_order_release);
    Lane& lane = *lanes_[lane_index()];
    bool pushed;
    {
      std::lock_guard<rt::Spinlock> guard(lane.producer);
      pushed = lane.ring.try_push(op);
    }
    if (!pushed) {
      // Lane back-pressure. The packet stays leased (contents intact); the
      // caller makes progress and retries the commit.
      req.status.store(ReqStatus::Invalid, std::memory_order_release);
      stats_.lane_full.fetch_add(1, std::memory_order_relaxed);
      stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const std::size_t depth =
        lane.depth.fetch_add(1, std::memory_order_relaxed) + 1;
    stats_.lane_posts.fetch_add(1, std::memory_order_relaxed);
    stats_.lease_sends.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) lane_depth_->record(depth);
    return true;
  }

  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::EGR);
  meta.tag = tag;
  meta.size = static_cast<std::uint32_t>(size);
  const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
  if (r != fabric::PostResult::Ok) {
    // Soft failure: unlike send_enq, keep the packet leased so the
    // already-serialized payload is not lost.
    stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  device_.tx_free(p);  // retransmit buffering lives below lc_send
  stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
  stats_.lease_sends.fetch_add(1, std::memory_order_relaxed);
  mark_done(req);
  return true;
}

bool Queue::post_op(TxOp& op) {
  const fabric::PostResult r =
      device_.lc_send(op.dst, op.packet->data, op.meta);
  if (r != fabric::PostResult::Ok) return false;  // keep packet, retry later
  device_.tx_free(op.packet);
  if (op.rdv) {
    // Completes at RTR time, via serve_rtr's lc_put.
    stats_.rdv_sends.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    mark_done(*op.req);
  }
  return true;
}

bool Queue::drain_lane(Lane& lane, std::size_t burst) {
  if (!lane.consumer.try_lock()) return false;  // another server has it
  bool did_work = false;
  if (lane.has_stalled) {
    if (post_op(lane.stalled)) {
      lane.has_stalled = false;
      lane.depth.fetch_sub(1, std::memory_order_relaxed);
      did_work = true;
    } else {
      // Still soft-failing: stop here so per-lane FIFO order is kept.
      lane.consumer.unlock();
      return did_work;
    }
  }
  while (burst-- > 0) {
    std::optional<TxOp> op = lane.ring.try_pop();
    if (!op) break;
    if (post_op(*op)) {
      lane.depth.fetch_sub(1, std::memory_order_relaxed);
      did_work = true;
    } else {
      lane.stalled = *op;
      lane.has_stalled = true;
      break;
    }
  }
  lane.consumer.unlock();
  return did_work;
}

bool Queue::recv_deq(Request& req) {
  std::optional<Packet*> popped = incoming_.try_pop();  // dequeue(Q)
  if (!popped) return false;
  Packet* p = *popped;

  req.reset();
  req.peer = p->meta.src;
  req.tag = p->meta.tag;

  const auto type = static_cast<PacketType>(p->meta.kind);
  if (type == PacketType::EGR) {
    // Zero-copy view into the pool packet; caller releases when done.
    req.size = p->meta.size;
    req.buffer = p->data;
    req.packet = p;
    mark_done(req);
    stats_.recvs.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  assert(type == PacketType::RTS);
  RtsPayload rts;
  std::memcpy(&rts, p->data, sizeof(rts));

  // Allocate the target buffer (the paper uses Abelian's allocator; we use
  // the tracked heap so Fig-5 accounting sees it) and expose it for the put.
  req.size = static_cast<std::size_t>(rts.msg_size);
  req.buffer = ::operator new(req.size);
  req.owns_buffer = true;
  if (tracker_ != nullptr) tracker_->on_alloc(req.size);
  req.rkey = device_.register_memory(req.buffer, req.size);
  req.status.store(ReqStatus::Pending, std::memory_order_release);

  // Reply with the RTR; reuse the RTS packet slab as the send staging.
  RtrPayload rtr;
  rtr.send_req = rts.send_req;
  rtr.recv_req = reinterpret_cast<std::uint64_t>(&req);
  rtr.rkey = req.rkey;
  rtr.msg_size = rts.msg_size;
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RTR);
  meta.tag = req.tag;
  meta.size = sizeof(RtrPayload);
  if (device_.lc_send(req.peer, &rtr, meta) != fabric::PostResult::Ok) {
    // Reverse link full. DO NOT spin here: recv_deq runs on engine threads,
    // and a thread that blocks on the reply stops draining its own receive
    // side - with the peer in the symmetric state that is a cross-host
    // deadlock. Park the reply for the progress servers instead.
    RtrShard& shard = *rtr_shards_[req.peer % rtr_shards_.size()];
    std::lock_guard<rt::Spinlock> guard(shard.lock);
    shard.rtrs.push_back(PendingRtr{req.peer, req.tag, rtr});
  }

  device_.repost_rx(p);  // give the slab back to the NIC receive window
  stats_.recvs.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Queue::release(Request& req) {
  if (req.packet != nullptr) {
    device_.repost_rx(req.packet);
    req.packet = nullptr;
    req.buffer = nullptr;
  } else if (req.owns_buffer && req.buffer != nullptr) {
    if (tracker_ != nullptr) tracker_->on_free(req.size);
    ::operator delete(req.buffer);
    req.buffer = nullptr;
    req.owns_buffer = false;
  }
}

void Queue::serve_rtr(const RtrPayload& rtr, fabric::Rank peer) {
  auto* sreq = reinterpret_cast<Request*>(rtr.send_req);
  const fabric::PostResult r =
      device_.lc_put(peer, rtr.rkey, sreq->buffer,
                     static_cast<std::size_t>(rtr.msg_size), rtr.recv_req);
  if (r == fabric::PostResult::Ok) {
    mark_done(*sreq);
  } else {
    // Soft failure (throttled / CQ full): retry on a later progress step.
    PutShard& shard = *put_shards_[peer % put_shards_.size()];
    std::lock_guard<rt::Spinlock> guard(shard.lock);
    shard.puts.push_back(PendingPut{peer, rtr});
  }
}

bool Queue::retry_pending_puts(std::size_t server_id,
                               std::size_t num_servers) {
  bool did_work = false;
  for (std::size_t s = server_id; s < put_shards_.size(); s += num_servers) {
    PutShard& shard = *put_shards_[s];
    std::lock_guard<rt::Spinlock> guard(shard.lock);
    std::size_t n = shard.puts.size();
    while (n-- > 0) {
      PendingPut pp = shard.puts.front();
      shard.puts.pop_front();
      auto* sreq = reinterpret_cast<Request*>(pp.rtr.send_req);
      const fabric::PostResult r =
          device_.lc_put(pp.peer, pp.rtr.rkey, sreq->buffer,
                         static_cast<std::size_t>(pp.rtr.msg_size),
                         pp.rtr.recv_req);
      if (r == fabric::PostResult::Ok) {
        mark_done(*sreq);
        did_work = true;
      } else {
        shard.puts.push_back(pp);
      }
    }
  }
  return did_work;
}

bool Queue::retry_pending_rtrs(std::size_t server_id,
                               std::size_t num_servers) {
  bool did_work = false;
  for (std::size_t s = server_id; s < rtr_shards_.size(); s += num_servers) {
    RtrShard& shard = *rtr_shards_[s];
    std::lock_guard<rt::Spinlock> guard(shard.lock);
    std::size_t n = shard.rtrs.size();
    while (n-- > 0) {
      PendingRtr pr = shard.rtrs.front();
      shard.rtrs.pop_front();
      fabric::MsgMeta meta;
      meta.kind = static_cast<std::uint8_t>(PacketType::RTR);
      meta.tag = pr.tag;
      meta.size = sizeof(RtrPayload);
      if (device_.lc_send(pr.peer, &pr.rtr, meta) == fabric::PostResult::Ok) {
        did_work = true;
      } else {
        shard.rtrs.push_back(pr);
      }
    }
  }
  return did_work;
}

bool Queue::dispatch_one_event() {
  std::optional<ProgressEvent> ev = device_.lc_progress();
  if (!ev) return false;
  stats_.progress_events.fetch_add(1, std::memory_order_relaxed);

  switch (ev->type) {
    case PacketType::EGR:
    case PacketType::RTS:
      // enqueue(Q, p); capacity == rx window size, cannot overflow.
      incoming_.push(ev->packet);
      if (telemetry::enabled())
        recv_q_depth_->record(incoming_.approx_size());
      break;
    case PacketType::RTR: {
      RtrPayload rtr;
      std::memcpy(&rtr, ev->packet->data, sizeof(rtr));
      const fabric::Rank peer = ev->meta.src;
      device_.repost_rx(ev->packet);
      serve_rtr(rtr, peer);
      break;
    }
    case PacketType::RDMA: {
      // Put notification: retire the receiver's request.
      auto* rreq = reinterpret_cast<Request*>(ev->meta.imm);
      if (rreq->rkey != fabric::kInvalidRKey) {
        device_.deregister_memory(rreq->rkey);
        rreq->rkey = fabric::kInvalidRKey;
      }
      mark_done(*rreq);
      break;
    }
    case PacketType::SIGNAL:
      // Direct-write put notification: the payload already sits in the
      // registered region (the fabric wrote it before raising the CQE), so
      // there is nothing to receive - just surface the completion.
      if (signal_handler_) signal_handler_(ev->meta);
      break;
  }
  return true;
}

bool Queue::progress_shard(std::size_t server_id, std::size_t num_servers) {
  if (num_servers == 0) num_servers = 1;
  bool did_work = retry_pending_puts(server_id, num_servers);
  did_work |= retry_pending_rtrs(server_id, num_servers);
  const std::size_t num_lanes = lanes_.size();
  for (std::size_t l = server_id; l < num_lanes; l += num_servers)
    did_work |= drain_lane(*lanes_[l], kLaneBurst);
  did_work |= dispatch_one_event();
  if (!did_work && num_lanes > 0 && num_servers > 1) {
    // Idle: steal one backlogged lane homed on another server. depth is a
    // cheap pre-filter; the consumer try-lock is the real arbiter.
    for (std::size_t l = 0; l < num_lanes; ++l) {
      if (l % num_servers == server_id) continue;
      if (lanes_[l]->depth.load(std::memory_order_relaxed) == 0) continue;
      if (drain_lane(*lanes_[l], kLaneBurst)) {
        stats_.lane_steals.fetch_add(1, std::memory_order_relaxed);
        did_work = true;
        break;
      }
    }
  }
  return did_work;
}

void Queue::send_blocking(const void* buf, std::size_t size, fabric::Rank dst,
                          std::uint32_t tag) {
  Request req;
  rt::Backoff backoff;
  while (!send_enq(buf, size, dst, tag, req)) {
    progress();
    backoff.pause();
  }
  while (!req.done()) {
    progress();
    rt::cpu_pause();
  }
}

void Queue::recv_blocking(Request& req) {
  rt::Backoff backoff;
  while (!recv_deq(req)) {
    progress();
    backoff.pause();
  }
  while (!req.done()) {
    progress();
    rt::cpu_pause();
  }
}

}  // namespace lcr::lci
