#include "lci/device.hpp"

namespace lcr::lci {

Device::Device(fabric::Fabric& fabric, fabric::Rank rank, DeviceConfig cfg)
    : fabric_(fabric),
      rank_(rank),
      endpoint_(fabric.endpoint(rank)),
      eager_limit_(fabric.config().mtu),
      rx_count_(cfg.rx_packets),
      tx_pool_(cfg.tx_packets, fabric.config().mtu, cfg.pool_caches),
      rx_pool_(cfg.rx_packets, fabric.config().mtu, cfg.pool_caches) {
  // Hand the whole receive window to the NIC: this is the "fixed number of
  // buffers for receiving" of the paper. The packets come back to us through
  // lc_progress and are re-posted via repost_rx when the upper layer is done.
  for (std::size_t i = 0; i < rx_count_; ++i) {
    Packet* p = rx_pool_.alloc();
    fabric::RxSlot slot{p->data, p->capacity, p->index};
    endpoint_.post_rx(slot);
  }
}

Device::~Device() {
  // Reclaim the receive window from the NIC: the pool slabs die with us.
  endpoint_.detach();
}

fabric::PostResult Device::lc_send(fabric::Rank dst, const void* payload,
                                   fabric::MsgMeta meta) {
  return fabric_.post_send(rank_, dst, payload, meta);
}

fabric::PostResult Device::lc_put(fabric::Rank dst, fabric::RKey rkey,
                                  const void* payload, std::size_t size,
                                  std::uint64_t imm) {
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RDMA);
  meta.imm = imm;
  return fabric_.post_put(rank_, dst, rkey, /*offset=*/0, payload, size,
                          /*notify=*/true, meta);
}

fabric::PostResult Device::lc_put_ex(fabric::Rank dst, fabric::RKey rkey,
                                     std::size_t offset, const void* payload,
                                     std::size_t size, bool notify,
                                     fabric::MsgMeta meta) {
  return fabric_.post_put(rank_, dst, rkey, offset, payload, size, notify,
                          meta);
}

std::optional<ProgressEvent> Device::lc_progress() {
  std::optional<fabric::Cqe> cqe = endpoint_.poll_cq();
  if (!cqe) return std::nullopt;

  ProgressEvent ev;
  ev.meta = cqe->meta;
  ev.type = static_cast<PacketType>(cqe->meta.kind);
  if (cqe->kind == fabric::Cqe::Kind::Recv) {
    Packet* p = rx_pool_.packet_at(cqe->rx_context);
    p->meta = cqe->meta;
    ev.packet = p;
  }
  return ev;
}

void Device::repost_rx(Packet* p) {
  fabric::RxSlot slot{p->data, p->capacity, p->index};
  endpoint_.post_rx(slot);
}

}  // namespace lcr::lci
