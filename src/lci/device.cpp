#include "lci/device.hpp"

#include <algorithm>

namespace lcr::lci {

fabric::ReliabilityConfig Device::channel_config(const DeviceConfig& cfg) {
  fabric::ReliabilityConfig rc;
  // Budget a quarter of the receive window for out-of-order holds: enough
  // that a lossy window usually recovers with one gap-head retransmission,
  // while reordering can never pin most of the rx packets.
  rc.max_held = std::max<std::size_t>(4, cfg.rx_packets / 4);
  return rc;
}

Device::Device(fabric::Fabric& fabric, fabric::Rank rank, DeviceConfig cfg)
    : fabric_(fabric),
      rank_(rank),
      endpoint_(fabric.endpoint(rank)),
      eager_limit_(fabric.config().mtu),
      rx_count_(cfg.rx_packets),
      tx_pool_(cfg.tx_packets, fabric.config().mtu, cfg.pool_caches),
      rx_pool_(cfg.rx_packets, fabric.config().mtu, cfg.pool_caches),
      channel_(fabric, rank, channel_config(cfg), "lci") {
  // Hand the whole receive window to the NIC: this is the "fixed number of
  // buffers for receiving" of the paper. The packets come back to us through
  // lc_progress and are re-posted via repost_rx when the upper layer is done.
  for (std::size_t i = 0; i < rx_count_; ++i) {
    Packet* p = rx_pool_.alloc();
    fabric::RxSlot slot{p->data, p->capacity, p->index};
    endpoint_.post_rx(slot);
  }
  // Packets the channel consumes internally (duplicates, corrupt payloads)
  // go straight back to the NIC receive window.
  channel_.set_recycle([this](const fabric::Cqe& cqe) {
    repost_rx(rx_pool_.packet_at(cqe.rx_context));
  });
}

Device::~Device() {
  // Reclaim the receive window from the NIC: the pool slabs die with us.
  endpoint_.detach();
}

fabric::PostResult Device::lc_send(fabric::Rank dst, const void* payload,
                                   fabric::MsgMeta meta) {
  return channel_.send(dst, payload, meta);
}

fabric::PostResult Device::lc_put(fabric::Rank dst, fabric::RKey rkey,
                                  const void* payload, std::size_t size,
                                  std::uint64_t imm) {
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RDMA);
  meta.imm = imm;
  return channel_.put(dst, rkey, /*offset=*/0, payload, size,
                      /*notify=*/true, meta);
}

fabric::PostResult Device::lc_put_ex(fabric::Rank dst, fabric::RKey rkey,
                                     std::size_t offset, const void* payload,
                                     std::size_t size, bool notify,
                                     fabric::MsgMeta meta) {
  return channel_.put(dst, rkey, offset, payload, size, notify, meta);
}

std::optional<ProgressEvent> Device::lc_progress() {
  std::optional<fabric::Cqe> cqe = channel_.poll();
  if (!cqe) return std::nullopt;

  ProgressEvent ev;
  ev.meta = cqe->meta;
  ev.type = static_cast<PacketType>(cqe->meta.kind);
  if (cqe->kind == fabric::Cqe::Kind::Recv) {
    Packet* p = rx_pool_.packet_at(cqe->rx_context);
    p->meta = cqe->meta;
    ev.packet = p;
  }
  return ev;
}

void Device::repost_rx(Packet* p) {
  fabric::RxSlot slot{p->data, p->capacity, p->index};
  endpoint_.post_rx(slot);
}

}  // namespace lcr::lci
