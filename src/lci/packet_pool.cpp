#include "lci/packet.hpp"

#include <functional>
#include <mutex>
#include <thread>

namespace lcr::lci {

PacketPool::PacketPool(std::size_t count, std::size_t payload_size,
                       std::size_t num_caches)
    : payload_size_(payload_size),
      slab_(new std::byte[count * payload_size]),
      packets_(count),
      global_(count) {
  for (std::size_t i = 0; i < count; ++i) {
    packets_[i].data = slab_.get() + i * payload_size;
    packets_[i].capacity = payload_size;
    packets_[i].index = static_cast<std::uint32_t>(i);
    global_.push(&packets_[i]);
  }
  free_count_.store(count, std::memory_order_relaxed);
  caches_.reserve(num_caches);
  for (std::size_t c = 0; c < num_caches; ++c) {
    caches_.emplace_back(new Cache);
    caches_.back()->items.reserve(kCacheCap);
  }
}

PacketPool::Cache* PacketPool::my_cache() {
  if (caches_.empty()) return nullptr;
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return caches_[h % caches_.size()].get();
}

Packet* PacketPool::alloc(std::size_t keep_free) {
  if (keep_free != 0 &&
      free_count_.load(std::memory_order_relaxed) <= keep_free)
    return nullptr;  // below the floor: leave packets for control traffic
  if (Cache* cache = my_cache(); cache != nullptr) {
    std::unique_lock<rt::Spinlock> guard(cache->lock, std::try_to_lock);
    if (guard.owns_lock() && !cache->items.empty()) {
      Packet* p = cache->items.back();
      cache->items.pop_back();
      free_count_.fetch_sub(1, std::memory_order_relaxed);
      return p;
    }
  }
  if (auto p = global_.try_pop()) {
    free_count_.fetch_sub(1, std::memory_order_relaxed);
    return *p;
  }
  return nullptr;  // pool exhausted: caller retries later (non-fatal)
}

void PacketPool::free(Packet* p) {
  free_count_.fetch_add(1, std::memory_order_relaxed);
  if (Cache* cache = my_cache(); cache != nullptr) {
    std::unique_lock<rt::Spinlock> guard(cache->lock, std::try_to_lock);
    if (guard.owns_lock() && cache->items.size() < kCacheCap) {
      cache->items.push_back(p);
      return;
    }
  }
  global_.push(p);  // cannot block: pool capacity == packet count
}

std::size_t PacketPool::approx_free() const {
  std::size_t n = global_.approx_size();
  for (const auto& cache : caches_) {
    std::lock_guard<rt::Spinlock> guard(cache->lock);
    n += cache->items.size();
  }
  return n;
}

}  // namespace lcr::lci
