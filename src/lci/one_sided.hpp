// LCI one-sided interface: RDMA put with remote signal.
//
// The third LCI interface style (cf. real LCI's lc_putls): the target
// exposes a buffer once; origins write into it directly and optionally
// bump a named remote CompletionCounter, so the target discovers completed
// transfers with a single atomic load - no matching, no per-message receive
// calls at all. This is the lowest-overhead path for the "memoized shared
// list" communication Abelian uses, and the substrate the MPI-RMA layer
// competes with.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "lci/completion.hpp"
#include "lci/device.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::lci {

/// A remotely-writable region descriptor, exchanged out of band (the engine
/// exchanges them at setup, like rkeys in verbs).
struct RemoteBuffer {
  fabric::Rank rank = 0;
  fabric::RKey rkey = fabric::kInvalidRKey;
  std::size_t size = 0;
};

/// Bookkeeping for locally exposed direct-write regions (DESIGN.md §15).
///
/// One entry per live registration, keyed by a never-reused token (fabric
/// rkeys are monotonic; software emulations hand out their own monotonic
/// slots). Each entry carries the registered extent, the epoch/generation
/// tag of the registration, and an optional CompletionCounter bumped per
/// accepted put - the counter-based completion tracking that replaces
/// per-message headers on the direct path. note_put() is the single
/// validation ladder every emulated put walks: unknown token (stale rkey
/// after a revive), stale generation (put built against a retracted
/// descriptor), out-of-bounds extent. The direct-write backends consult it
/// before touching memory; the property/fuzz suite drives it standalone.
class RegionBook {
 public:
  struct Entry {
    std::byte* base = nullptr;
    std::size_t size = 0;
    std::uint32_t generation = 0;
    CompletionCounter* counter = nullptr;
  };

  enum class Verdict : std::uint8_t {
    Ok,
    UnknownToken,
    StaleGeneration,
    OutOfBounds,
  };

  /// Records a registration. False when the token is already live (tokens
  /// must never be reused while registered).
  bool add(std::uint64_t token, std::byte* base, std::size_t size,
           std::uint32_t generation, CompletionCounter* counter = nullptr);

  /// Drops a registration; false = unknown token.
  bool remove(std::uint64_t token);

  bool lookup(std::uint64_t token, Entry& out) const;

  /// Validates a put of `bytes` at `offset` claiming `generation` against
  /// the live registration under `token`. Ok bumps the entry's counter (if
  /// any) and the accepted tally; every rejection is tallied by cause.
  Verdict note_put(std::uint64_t token, std::size_t offset, std::size_t bytes,
                   std::uint32_t generation);

  std::size_t live() const;
  std::uint64_t accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  mutable rt::Spinlock lock_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

class OneSided {
 public:
  OneSided(fabric::Fabric& fabric, fabric::Rank rank, DeviceConfig cfg = {});

  OneSided(const OneSided&) = delete;
  OneSided& operator=(const OneSided&) = delete;

  fabric::Rank rank() const noexcept { return device_.rank(); }

  /// Exposes `size` bytes at `base` for remote puts; the returned descriptor
  /// is what origins pass to put().
  RemoteBuffer expose(void* base, std::size_t size);
  void unexpose(const RemoteBuffer& rb);

  /// Registers a named completion counter that remote put_signal()s with
  /// this id will bump.
  void register_signal(std::uint64_t id, CompletionCounter* counter);
  void deregister_signal(std::uint64_t id);

  /// One-sided write into the remote buffer; no remote notification.
  /// false = throttled/full, retry after progress.
  bool put(const RemoteBuffer& dst, std::size_t offset, const void* data,
           std::size_t size);

  /// One-sided write + bump the remote counter registered under signal_id.
  bool put_signal(const RemoteBuffer& dst, std::size_t offset,
                  const void* data, std::size_t size, std::uint64_t signal_id);

  /// Server step: only needed on hosts that RECEIVE signals.
  bool progress();

  Device& device() noexcept { return device_; }

 private:
  Device device_;
  rt::Spinlock signal_lock_;
  std::unordered_map<std::uint64_t, CompletionCounter*> signals_;
};

}  // namespace lcr::lci
