// LCI one-sided interface: RDMA put with remote signal.
//
// The third LCI interface style (cf. real LCI's lc_putls): the target
// exposes a buffer once; origins write into it directly and optionally
// bump a named remote CompletionCounter, so the target discovers completed
// transfers with a single atomic load - no matching, no per-message receive
// calls at all. This is the lowest-overhead path for the "memoized shared
// list" communication Abelian uses, and the substrate the MPI-RMA layer
// competes with.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "lci/completion.hpp"
#include "lci/device.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::lci {

/// A remotely-writable region descriptor, exchanged out of band (the engine
/// exchanges them at setup, like rkeys in verbs).
struct RemoteBuffer {
  fabric::Rank rank = 0;
  fabric::RKey rkey = fabric::kInvalidRKey;
  std::size_t size = 0;
};

class OneSided {
 public:
  OneSided(fabric::Fabric& fabric, fabric::Rank rank, DeviceConfig cfg = {});

  OneSided(const OneSided&) = delete;
  OneSided& operator=(const OneSided&) = delete;

  fabric::Rank rank() const noexcept { return device_.rank(); }

  /// Exposes `size` bytes at `base` for remote puts; the returned descriptor
  /// is what origins pass to put().
  RemoteBuffer expose(void* base, std::size_t size);
  void unexpose(const RemoteBuffer& rb);

  /// Registers a named completion counter that remote put_signal()s with
  /// this id will bump.
  void register_signal(std::uint64_t id, CompletionCounter* counter);
  void deregister_signal(std::uint64_t id);

  /// One-sided write into the remote buffer; no remote notification.
  /// false = throttled/full, retry after progress.
  bool put(const RemoteBuffer& dst, std::size_t offset, const void* data,
           std::size_t size);

  /// One-sided write + bump the remote counter registered under signal_id.
  bool put_signal(const RemoteBuffer& dst, std::size_t offset,
                  const void* data, std::size_t size, std::uint64_t signal_id);

  /// Server step: only needed on hosts that RECEIVE signals.
  bool progress();

  Device& device() noexcept { return device_; }

 private:
  Device device_;
  rt::Spinlock signal_lock_;
  std::unordered_map<std::uint64_t, CompletionCounter*> signals_;
};

}  // namespace lcr::lci
