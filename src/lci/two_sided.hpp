// LCI two-sided interface with tag matching.
//
// Queue (queue.hpp) is the interface the paper presents for Abelian's
// irregular pattern; the LCI design also supports classic two-sided
// matching for applications that want (source, tag) selection. The crucial
// difference from MPI: LCI has *no wildcards and no ordering guarantee*, so
// matching is an O(1) hash-table lookup on the exact (source, tag) key
// instead of MPI's linear scan of sequential queues (paper ref [17]) - and
// rendezvous data lands directly in the posted user buffer (true zero-copy
// receive), since the match happens before the RTR is answered.
//
// Thread-safety: send/recv may be called from any thread; progress is the
// communication server's (single thread).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "lci/device.hpp"
#include "lci/request.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::lci {

class TwoSided {
 public:
  TwoSided(fabric::Fabric& fabric, fabric::Rank rank, DeviceConfig cfg = {});

  TwoSided(const TwoSided&) = delete;
  TwoSided& operator=(const TwoSided&) = delete;

  fabric::Rank rank() const noexcept { return device_.rank(); }
  std::size_t eager_limit() const noexcept { return device_.eager_limit(); }

  /// Non-blocking send (eager or rendezvous); false = resources exhausted,
  /// retry. `req` must stay alive and un-moved until req.done().
  bool send(const void* buf, std::size_t size, fabric::Rank dst,
            std::uint32_t tag, Request& req);

  /// Posts a receive for exactly (src, tag) - no wildcards. The incoming
  /// message is delivered into `buf` (capacity `cap`); req.size carries the
  /// actual size once done. At most one receive may be outstanding per
  /// (src, tag) key.
  void recv(void* buf, std::size_t cap, fabric::Rank src, std::uint32_t tag,
            Request& req);

  /// Communication server step; single-threaded.
  bool progress();
  void progress_all() {
    while (progress()) {
    }
  }

  Device& device() noexcept { return device_; }

 private:
  struct Key {
    fabric::Rank src;
    std::uint32_t tag;
    bool operator==(const Key& o) const noexcept {
      return src == o.src && tag == o.tag;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return (static_cast<std::size_t>(k.src) << 32) ^ k.tag;
    }
  };

  void deliver_eager(Request& req, Packet* p);
  void answer_rts(Request& req, Packet* p);

  Device device_;

  rt::Spinlock match_lock_;
  std::unordered_map<Key, Request*, KeyHash> posted_;   // expected receives
  std::unordered_map<Key, std::deque<Packet*>, KeyHash> unexpected_;

  struct PendingPut {
    fabric::Rank peer;
    RtrPayload rtr;
  };
  /// RTR replies whose lc_send soft-failed (reverse link throttled): staged
  /// by value and retried from progress(), so answer_rts - which may run on
  /// the application thread via recv() - never blocks on the reverse link.
  struct PendingRtr {
    fabric::Rank peer;
    std::uint32_t tag;
    RtrPayload rtr;
  };
  rt::Spinlock pending_lock_;
  std::deque<PendingPut> pending_puts_;
  std::deque<PendingRtr> pending_rtrs_;
};

}  // namespace lcr::lci
