// Counter-based completion objects ("synchronizers").
//
// The request status flag (request.hpp) is LCI's per-communication
// completion primitive. When an application issues many communications and
// only cares that *all* of them finished (an Abelian host sending one chunk
// per peer, for instance), checking N flags costs N loads per poll. A
// CompletionCounter aggregates them: each request signals the shared counter
// when the server retires it, and the application polls a single atomic -
// still no library call, keeping LCI's "completion is a flag check" model.
#pragma once

#include <atomic>
#include <cstdint>

namespace lcr::lci {

class CompletionCounter {
 public:
  /// Declare that `n` more requests will signal this counter.
  void expect(std::uint64_t n = 1) noexcept {
    expected_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Signal one completion (called by the runtime when a request retires).
  void signal() noexcept {
    done_.fetch_add(1, std::memory_order_release);
  }

  /// Have all expected requests completed?
  bool complete() const noexcept {
    return done_.load(std::memory_order_acquire) >=
           expected_.load(std::memory_order_relaxed);
  }

  std::uint64_t expected() const noexcept {
    return expected_.load(std::memory_order_relaxed);
  }
  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  void reset() noexcept {
    expected_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> expected_{0};
  std::atomic<std::uint64_t> done_{0};
};

}  // namespace lcr::lci
