#include "lci/two_sided.hpp"

#include <cassert>
#include <cstring>
#include <mutex>

#include "lci/completion.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::lci {

namespace {
/// The caller owns the Request and may destroy it the moment it observes
/// Done (rendezvous puts complete from a progress thread while the poster
/// spins on status), so the signal pointer must be read BEFORE the store and
/// no field touched after it. The CompletionCounter outlives its requests by
/// contract.
inline void mark_done(Request& req) {
  CompletionCounter* const signal = req.signal;
  req.status.store(ReqStatus::Done, std::memory_order_release);
  if (signal != nullptr) signal->signal();
}
}  // namespace

TwoSided::TwoSided(fabric::Fabric& fabric, fabric::Rank rank,
                   DeviceConfig cfg)
    : device_(fabric, rank, cfg) {}

bool TwoSided::send(const void* buf, std::size_t size, fabric::Rank dst,
                    std::uint32_t tag, Request& req) {
  Packet* p = device_.tx_alloc();
  if (p == nullptr) return false;

  req.reset();
  req.peer = dst;
  req.tag = tag;
  req.buffer = const_cast<void*>(buf);
  req.size = size;

  if (size <= device_.eager_limit()) {
    std::memcpy(p->data, buf, size);
    fabric::MsgMeta meta;
    meta.kind = static_cast<std::uint8_t>(PacketType::EGR);
    meta.tag = tag;
    meta.size = static_cast<std::uint32_t>(size);
    const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
    device_.tx_free(p);
    if (r != fabric::PostResult::Ok) return false;
    mark_done(req);
    return true;
  }

  req.status.store(ReqStatus::Pending, std::memory_order_release);
  auto* rts = reinterpret_cast<RtsPayload*>(p->data);
  rts->msg_size = size;
  rts->send_req = reinterpret_cast<std::uint64_t>(&req);
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RTS);
  meta.tag = tag;
  meta.size = sizeof(RtsPayload);
  const fabric::PostResult r = device_.lc_send(dst, p->data, meta);
  device_.tx_free(p);
  if (r != fabric::PostResult::Ok) {
    req.status.store(ReqStatus::Invalid, std::memory_order_release);
    return false;
  }
  return true;
}

void TwoSided::deliver_eager(Request& req, Packet* p) {
  assert(p->meta.size <= req.size && "recv buffer too small");
  std::memcpy(req.buffer, p->data, p->meta.size);
  req.size = p->meta.size;
  device_.repost_rx(p);
  mark_done(req);
}

void TwoSided::answer_rts(Request& req, Packet* p) {
  RtsPayload rts;
  std::memcpy(&rts, p->data, sizeof(rts));
  assert(static_cast<std::size_t>(rts.msg_size) <= req.size &&
         "recv buffer too small for rendezvous");
  req.size = static_cast<std::size_t>(rts.msg_size);
  // Zero-copy: expose the POSTED USER BUFFER as the put target.
  req.rkey = device_.register_memory(req.buffer, req.size);
  req.status.store(ReqStatus::Pending, std::memory_order_release);

  RtrPayload rtr;
  rtr.send_req = rts.send_req;
  rtr.recv_req = reinterpret_cast<std::uint64_t>(&req);
  rtr.rkey = req.rkey;
  rtr.msg_size = rts.msg_size;
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::RTR);
  meta.tag = req.tag;
  meta.size = sizeof(RtrPayload);
  if (device_.lc_send(req.peer, &rtr, meta) != fabric::PostResult::Ok) {
    // Reverse link full: park the reply for progress() rather than spinning
    // on a thread that may be the one responsible for draining this side.
    std::lock_guard<rt::Spinlock> guard(pending_lock_);
    pending_rtrs_.push_back(PendingRtr{req.peer, req.tag, rtr});
  }
  device_.repost_rx(p);
}

void TwoSided::recv(void* buf, std::size_t cap, fabric::Rank src,
                    std::uint32_t tag, Request& req) {
  req.reset();
  req.peer = src;
  req.tag = tag;
  req.buffer = buf;
  req.size = cap;
  req.status.store(ReqStatus::Pending, std::memory_order_release);

  // O(1) exact-key match against the unexpected table; else post.
  Packet* ready = nullptr;
  {
    std::lock_guard<rt::Spinlock> guard(match_lock_);
    const Key key{src, tag};
    auto it = unexpected_.find(key);
    if (it != unexpected_.end() && !it->second.empty()) {
      ready = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) unexpected_.erase(it);
    } else {
      assert(posted_.find(key) == posted_.end() &&
             "one outstanding recv per (src, tag)");
      posted_.emplace(key, &req);
      return;
    }
  }
  if (static_cast<PacketType>(ready->meta.kind) == PacketType::EGR)
    deliver_eager(req, ready);
  else
    answer_rts(req, ready);
}

bool TwoSided::progress() {
  // Retry rendezvous puts and RTR replies that soft-failed.
  {
    std::lock_guard<rt::Spinlock> guard(pending_lock_);
    std::size_t nr = pending_rtrs_.size();
    while (nr-- > 0) {
      PendingRtr pr = pending_rtrs_.front();
      pending_rtrs_.pop_front();
      fabric::MsgMeta meta;
      meta.kind = static_cast<std::uint8_t>(PacketType::RTR);
      meta.tag = pr.tag;
      meta.size = sizeof(RtrPayload);
      if (device_.lc_send(pr.peer, &pr.rtr, meta) != fabric::PostResult::Ok)
        pending_rtrs_.push_back(pr);
    }
    std::size_t n = pending_puts_.size();
    while (n-- > 0) {
      PendingPut pp = pending_puts_.front();
      pending_puts_.pop_front();
      auto* sreq = reinterpret_cast<Request*>(pp.rtr.send_req);
      if (device_.lc_put(pp.peer, pp.rtr.rkey, sreq->buffer,
                         static_cast<std::size_t>(pp.rtr.msg_size),
                         pp.rtr.recv_req) == fabric::PostResult::Ok)
        mark_done(*sreq);
      else
        pending_puts_.push_back(pp);
    }
  }

  std::optional<ProgressEvent> ev = device_.lc_progress();
  if (!ev) return false;

  switch (ev->type) {
    case PacketType::EGR:
    case PacketType::RTS: {
      Packet* p = ev->packet;
      Request* match = nullptr;
      {
        std::lock_guard<rt::Spinlock> guard(match_lock_);
        const Key key{p->meta.src, p->meta.tag};
        auto it = posted_.find(key);
        if (it != posted_.end()) {
          match = it->second;
          posted_.erase(it);
        } else {
          unexpected_[key].push_back(p);
        }
      }
      if (match != nullptr) {
        if (ev->type == PacketType::EGR)
          deliver_eager(*match, p);
        else
          answer_rts(*match, p);
      }
      break;
    }
    case PacketType::RTR: {
      RtrPayload rtr;
      std::memcpy(&rtr, ev->packet->data, sizeof(rtr));
      const fabric::Rank peer = ev->meta.src;
      device_.repost_rx(ev->packet);
      auto* sreq = reinterpret_cast<Request*>(rtr.send_req);
      if (device_.lc_put(peer, rtr.rkey, sreq->buffer,
                         static_cast<std::size_t>(rtr.msg_size),
                         rtr.recv_req) == fabric::PostResult::Ok) {
        mark_done(*sreq);
      } else {
        std::lock_guard<rt::Spinlock> guard(pending_lock_);
        pending_puts_.push_back(PendingPut{peer, rtr});
      }
      break;
    }
    case PacketType::RDMA: {
      auto* rreq = reinterpret_cast<Request*>(ev->meta.imm);
      if (rreq->rkey != fabric::kInvalidRKey) {
        device_.deregister_memory(rreq->rkey);
        rreq->rkey = fabric::kInvalidRKey;
      }
      mark_done(*rreq);
      break;
    }
    case PacketType::SIGNAL:
      break;  // one-sided signals are not routed through TwoSided endpoints
  }
  return true;
}

}  // namespace lcr::lci
