// LCI packets and the locality-aware concurrent packet pool.
//
// Packets are the unit of flow control in LCI (paper Section III-D): each
// host owns a fixed-size pool P; the payload slab of every pool packet is
// pre-posted to the fabric endpoint as a receive buffer, so "the host has to
// maintain a fixed number of buffers for receiving these packets" and the
// pool size bounds the injection rate. packetAlloc failing is the non-fatal
// resource-exhaustion signal that send_enq surfaces to the caller as "retry
// later".
//
// The pool is locality-aware (paper ref [16]): freed packets go to a small
// per-thread cache first so a thread that frees a packet tends to reuse the
// same (cache-warm) slab; overflow/underflow falls back to a global
// fetch-and-add MPMC free list (paper ref [26]).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/packet.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::lci {

/// LCI wire packet types (paper Algorithms 1-3).
enum class PacketType : std::uint8_t {
  EGR = 1,     ///< eager packet carrying the data
  RTS = 2,     ///< ready-to-send (rendezvous request)
  RTR = 3,     ///< ready-to-receive (rendezvous reply with target address)
  RDMA = 4,    ///< completion notification of an lc_put
  SIGNAL = 5,  ///< one-sided put-with-signal notification (one_sided.hpp)
};

struct Request;

/// A pool packet: fixed control block + pointer into the payload slab.
struct Packet {
  fabric::MsgMeta meta;       // filled from the Cqe on receive
  std::byte* data = nullptr;  // payload slab (pool-owned, capacity bytes)
  std::size_t capacity = 0;
  std::uint32_t index = 0;    // index in the pool (stable identity)
};

/// Payload of an RTS control packet.
struct RtsPayload {
  std::uint64_t msg_size;   // full rendezvous message size
  std::uint64_t send_req;   // sender's Request*, echoed back in the RTR
};

/// Payload of an RTR control packet.
struct RtrPayload {
  std::uint64_t send_req;   // echo of RtsPayload::send_req
  std::uint64_t recv_req;   // receiver's Request*, echoed in the RDMA imm
  std::uint32_t rkey;       // registered target region
  std::uint64_t msg_size;
};

/// Locality-aware bounded packet pool.
class PacketPool {
 public:
  /// `count` packets with `payload_size`-byte slabs. `num_caches` per-thread
  /// caches (0 disables locality awareness -> pure global MPMC, used by the
  /// ablation bench).
  PacketPool(std::size_t count, std::size_t payload_size,
             std::size_t num_caches = 8);

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Non-blocking allocation; nullptr when the pool is exhausted, or when
  /// taking a packet would leave fewer than `keep_free` in the pool. Callers
  /// holding packets for long (buffer leases) pass a floor so short-lived
  /// control traffic (RTS/RTR) can always allocate. The floor check reads an
  /// approximate counter; racy over-admission by a packet or two is fine -
  /// it is a starvation heuristic, not an invariant.
  Packet* alloc(std::size_t keep_free = 0);

  /// Return a packet to the pool. Does NOT re-post its slab to any endpoint;
  /// the Queue layer does that, because the pool does not know the endpoint.
  void free(Packet* p);

  std::size_t count() const noexcept { return packets_.size(); }
  std::size_t payload_size() const noexcept { return payload_size_; }
  Packet* packet_at(std::size_t i) { return &packets_[i]; }

  /// Approximate number of free packets (diagnostics only).
  std::size_t approx_free() const;

 private:
  struct Cache {
    rt::Spinlock lock;
    std::vector<Packet*> items;
  };
  static constexpr std::size_t kCacheCap = 8;

  Cache* my_cache();

  std::size_t payload_size_;
  std::unique_ptr<std::byte[]> slab_;
  std::vector<Packet> packets_;
  rt::MpmcQueue<Packet*> global_;
  std::vector<std::unique_ptr<Cache>> caches_;
  std::atomic<std::size_t> free_count_{0};  // approximate, for alloc floors
};

}  // namespace lcr::lci
