#include "lci/one_sided.hpp"

#include <mutex>

namespace lcr::lci {

bool RegionBook::add(std::uint64_t token, std::byte* base, std::size_t size,
                     std::uint32_t generation, CompletionCounter* counter) {
  std::lock_guard<rt::Spinlock> guard(lock_);
  Entry e;
  e.base = base;
  e.size = size;
  e.generation = generation;
  e.counter = counter;
  return entries_.emplace(token, e).second;
}

bool RegionBook::remove(std::uint64_t token) {
  std::lock_guard<rt::Spinlock> guard(lock_);
  return entries_.erase(token) != 0;
}

bool RegionBook::lookup(std::uint64_t token, Entry& out) const {
  std::lock_guard<rt::Spinlock> guard(lock_);
  const auto it = entries_.find(token);
  if (it == entries_.end()) return false;
  out = it->second;
  return true;
}

RegionBook::Verdict RegionBook::note_put(std::uint64_t token,
                                         std::size_t offset,
                                         std::size_t bytes,
                                         std::uint32_t generation) {
  CompletionCounter* counter = nullptr;
  Verdict v = Verdict::Ok;
  {
    std::lock_guard<rt::Spinlock> guard(lock_);
    const auto it = entries_.find(token);
    if (it == entries_.end()) {
      v = Verdict::UnknownToken;
    } else if (it->second.generation != generation) {
      v = Verdict::StaleGeneration;
    } else if (offset > it->second.size ||
               bytes > it->second.size - offset) {
      v = Verdict::OutOfBounds;
    } else {
      counter = it->second.counter;
    }
  }
  if (v == Verdict::Ok) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (counter != nullptr) counter->signal();
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  return v;
}

std::size_t RegionBook::live() const {
  std::lock_guard<rt::Spinlock> guard(lock_);
  return entries_.size();
}

OneSided::OneSided(fabric::Fabric& fabric, fabric::Rank rank,
                   DeviceConfig cfg)
    : device_(fabric, rank, cfg) {}

RemoteBuffer OneSided::expose(void* base, std::size_t size) {
  RemoteBuffer rb;
  rb.rank = device_.rank();
  rb.rkey = device_.register_memory(base, size);
  rb.size = size;
  return rb;
}

void OneSided::unexpose(const RemoteBuffer& rb) {
  device_.deregister_memory(rb.rkey);
}

void OneSided::register_signal(std::uint64_t id, CompletionCounter* counter) {
  std::lock_guard<rt::Spinlock> guard(signal_lock_);
  signals_.emplace(id, counter);
}

void OneSided::deregister_signal(std::uint64_t id) {
  std::lock_guard<rt::Spinlock> guard(signal_lock_);
  signals_.erase(id);
}

bool OneSided::put(const RemoteBuffer& dst, std::size_t offset,
                   const void* data, std::size_t size) {
  return device_.lc_put_ex(dst.rank, dst.rkey, offset, data, size,
                           /*notify=*/false, {}) == fabric::PostResult::Ok;
}

bool OneSided::put_signal(const RemoteBuffer& dst, std::size_t offset,
                          const void* data, std::size_t size,
                          std::uint64_t signal_id) {
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(PacketType::SIGNAL);
  meta.imm = signal_id;
  return device_.lc_put_ex(dst.rank, dst.rkey, offset, data, size,
                           /*notify=*/true, meta) == fabric::PostResult::Ok;
}

bool OneSided::progress() {
  std::optional<ProgressEvent> ev = device_.lc_progress();
  if (!ev) return false;
  if (ev->type == PacketType::SIGNAL) {
    CompletionCounter* counter = nullptr;
    {
      std::lock_guard<rt::Spinlock> guard(signal_lock_);
      auto it = signals_.find(ev->meta.imm);
      if (it != signals_.end()) counter = it->second;
    }
    if (counter != nullptr) counter->signal();
  }
  // Other packet kinds are impossible on a pure one-sided endpoint.
  return true;
}

}  // namespace lcr::lci
