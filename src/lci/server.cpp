#include "lci/server.hpp"

#include <string>

#include "runtime/cpu_relax.hpp"
#include "runtime/timer.hpp"
#include "telemetry/profiler.hpp"

namespace lcr::lci {

void ProgressServer::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void ProgressServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void ProgressServer::loop() {
  rt::Backoff backoff;
  fabric::ReliableChannel& channel = queue_.device().reliable();
  // A lone server keeps the legacy "lci.server" prefix; a sharded group
  // gets per-server prefixes so work-vs-idle is attributed per server.
  const std::string prefix =
      count_ > 1 ? "lci.server" + std::to_string(id_) : "lci.server";
  telemetry::ProgressProfiler profiler(queue_.device().fabric().telemetry(),
                                       prefix.c_str());
  const std::uint64_t quiet_ns = channel.config().watchdog_quiet_ns;
  std::uint64_t last_forward_ns = rt::now_ns();
  std::uint64_t last_dump_ns = last_forward_ns;
  while (!stop_.load(std::memory_order_acquire)) {
    const bool did_work = queue_.progress_shard(id_, count_);
    profiler.note(did_work);
    if (did_work) {
      backoff.reset();
      last_forward_ns = rt::now_ns();
    } else {
      // Adaptive poll backoff: spin with cpu_relax first, yield once the
      // queue stays quiet (essential when servers oversubscribe cores).
      backoff.pause();
      // Server-side stall watchdog: the channel's own watchdog covers
      // unacked traffic it originated; this one also catches a loop that
      // spins forever with nothing locally in flight (e.g. waiting on a
      // peer whose retransmit ring is wedged). Dump at most once per quiet
      // period, only on a channel actually running the reliability
      // protocol, and only from server 0 of a group to avoid N copies.
      if (id_ == 0 && channel.active() && quiet_ns > 0) {
        const std::uint64_t now = rt::now_ns();
        if (now - last_forward_ns >= quiet_ns &&
            now - last_dump_ns >= quiet_ns && channel.has_inflight()) {
          last_dump_ns = now;
          channel.dump_state("progress-server stall");
        }
      }
    }
  }
  // Final drain so no completion is stranded at shutdown. progress_all
  // services every lane and shard regardless of this server's share.
  queue_.progress_all();
}

}  // namespace lcr::lci
