#include "lci/server.hpp"

#include "runtime/cpu_relax.hpp"

namespace lcr::lci {

void ProgressServer::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void ProgressServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void ProgressServer::loop() {
  rt::Backoff backoff;
  while (!stop_.load(std::memory_order_acquire)) {
    if (queue_.progress())
      backoff.reset();
    else
      backoff.pause();
  }
  // Final drain so no completion is stranded at shutdown.
  queue_.progress_all();
}

}  // namespace lcr::lci
