// The LCI communication server: a dedicated thread running Algorithm 3.
//
// "The progress is implicit and typically ensured by a communication server.
// When the communication is finished, a boolean flag is set." The server is
// the thread that drains the NIC; compute threads interact with it through
// nothing but the request status flags and the concurrent queue Q.
//
// Multi-server scaling: several servers may run over one Queue. Server `id`
// of `count` services the injection lanes and pending-put shards with
// index % count == id (see Queue::progress_shard), and steals backlogged
// lanes from its siblings when its own share is idle. Each server publishes
// its own work-vs-idle profile ("lci.server<id>" when count > 1) so
// telemetry attributes time per server, not per pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "lci/queue.hpp"

namespace lcr::lci {

class ProgressServer {
 public:
  explicit ProgressServer(Queue& queue, std::size_t id = 0,
                          std::size_t count = 1)
      : queue_(queue), id_(id), count_(count == 0 ? 1 : count) {}
  ~ProgressServer() { stop(); }

  ProgressServer(const ProgressServer&) = delete;
  ProgressServer& operator=(const ProgressServer&) = delete;

  /// Starts the server thread. Idempotent.
  void start();

  /// Stops and joins the server thread. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  std::size_t id() const noexcept { return id_; }

 private:
  void loop();

  Queue& queue_;
  const std::size_t id_;
  const std::size_t count_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

/// N progress servers sharding one Queue's lanes and peer ranks.
class ProgressServerGroup {
 public:
  ProgressServerGroup(Queue& queue, std::size_t count) {
    if (count == 0) count = 1;
    servers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      servers_.push_back(std::make_unique<ProgressServer>(queue, i, count));
  }
  ~ProgressServerGroup() { stop(); }

  ProgressServerGroup(const ProgressServerGroup&) = delete;
  ProgressServerGroup& operator=(const ProgressServerGroup&) = delete;

  void start() {
    for (auto& s : servers_) s->start();
  }
  void stop() {
    for (auto& s : servers_) s->stop();
  }
  std::size_t size() const noexcept { return servers_.size(); }

 private:
  std::vector<std::unique_ptr<ProgressServer>> servers_;
};

}  // namespace lcr::lci
