// The LCI communication server: a dedicated thread running Algorithm 3.
//
// "The progress is implicit and typically ensured by a communication server.
// When the communication is finished, a boolean flag is set." The server is
// the only thread that drains the NIC; compute threads interact with it
// through nothing but the request status flags and the concurrent queue Q.
#pragma once

#include <atomic>
#include <thread>

#include "lci/queue.hpp"

namespace lcr::lci {

class ProgressServer {
 public:
  explicit ProgressServer(Queue& queue) : queue_(queue) {}
  ~ProgressServer() { stop(); }

  ProgressServer(const ProgressServer&) = delete;
  ProgressServer& operator=(const ProgressServer&) = delete;

  /// Starts the server thread. Idempotent.
  void start();

  /// Stops and joins the server thread. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void loop();

  Queue& queue_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace lcr::lci
