// LCI device: the three primitive network operations over one endpoint.
//
// "To implement Queue, we make use of some abstractions for interacting with
// the underlying network APIs": lc_send (eager), lc_put (RDMA write) and
// lc_progress (drain the NIC, peek for an incoming packet). On psm2 these map
// to tag-matching sends; on ibverbs RC they map to ibv_post_send with
// IBV_WR_SEND / IBV_WR_RDMA_WRITE. Here they map to the simulated fabric's
// post_send / post_put / poll_cq.
#pragma once

#include <cstddef>
#include <optional>

#include "fabric/fabric.hpp"
#include "fabric/reliable.hpp"
#include "lci/packet.hpp"

namespace lcr::lci {

struct DeviceConfig {
  /// Packets reserved for transmit-side staging.
  std::size_t tx_packets = 64;
  /// Packets pre-posted as receive buffers (the fixed receive window).
  std::size_t rx_packets = 256;
  /// Locality caches in the packet pool (0 = plain global pool).
  std::size_t pool_caches = 8;
};

/// An event surfaced by lc_progress.
struct ProgressEvent {
  PacketType type;
  /// Pool packet holding the payload for EGR / RTS / RTR; nullptr for RDMA
  /// (put-completion) events, which carry only immediates.
  Packet* packet = nullptr;
  fabric::MsgMeta meta;
};

class Device {
 public:
  Device(fabric::Fabric& fabric, fabric::Rank rank, DeviceConfig cfg);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  fabric::Rank rank() const noexcept { return rank_; }

  /// Largest payload an eager packet can carry.
  std::size_t eager_limit() const noexcept { return eager_limit_; }

  /// Transmit-side packet staging (flow control): nullptr = exhausted, retry.
  Packet* tx_alloc() { return tx_pool_.alloc(); }
  /// Same, but refuses to drop the pool below `floor` free packets; used by
  /// buffer leases, which hold packets longer than an inline send does.
  Packet* tx_alloc_reserve(std::size_t floor) { return tx_pool_.alloc(floor); }
  void tx_free(Packet* p) { tx_pool_.free(p); }

  /// Eager send; payload must be <= eager_limit(). Non-blocking; a soft
  /// failure (receiver out of buffers / throttled / CQ full) means retry.
  fabric::PostResult lc_send(fabric::Rank dst, const void* payload,
                             fabric::MsgMeta meta);

  /// RDMA write with completion notification (imm) at the target.
  fabric::PostResult lc_put(fabric::Rank dst, fabric::RKey rkey,
                            const void* payload, std::size_t size,
                            std::uint64_t imm);

  /// General RDMA write: arbitrary offset, optional notification, caller
  /// supplied metadata (used by the one-sided interface).
  fabric::PostResult lc_put_ex(fabric::Rank dst, fabric::RKey rkey,
                               std::size_t offset, const void* payload,
                               std::size_t size, bool notify,
                               fabric::MsgMeta meta);

  /// Drain one completion from the NIC, if any.
  std::optional<ProgressEvent> lc_progress();

  /// Return a received packet's slab to the NIC receive window.
  void repost_rx(Packet* p);

  /// Register / deregister memory for rendezvous targets.
  fabric::RKey register_memory(void* base, std::size_t size) {
    return endpoint_.register_memory(base, size);
  }
  void deregister_memory(fabric::RKey key) { endpoint_.deregister_memory(key); }

  fabric::Endpoint& endpoint() noexcept { return endpoint_; }
  fabric::Fabric& fabric() noexcept { return fabric_; }
  std::size_t rx_packets() const noexcept { return rx_count_; }

  /// The reliability channel all wire traffic is routed through. A
  /// passthrough on reliable fabrics; runs seq/CRC/retransmit on lossy ones.
  fabric::ReliableChannel& reliable() noexcept { return channel_; }

 private:
  /// Channel tuning derived from the device shape (hold window bounded well
  /// below the rx window so reordering cannot starve receive buffers).
  static fabric::ReliabilityConfig channel_config(const DeviceConfig& cfg);

  fabric::Fabric& fabric_;
  fabric::Rank rank_;
  fabric::Endpoint& endpoint_;
  std::size_t eager_limit_;
  std::size_t rx_count_;
  PacketPool tx_pool_;
  PacketPool rx_pool_;  // slabs live on the endpoint rx queue or in flight
  fabric::ReliableChannel channel_;
};

}  // namespace lcr::lci
