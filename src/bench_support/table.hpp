// Plain-text table formatting for benchmark output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lcr::bench {

/// Column-aligned text table, printed like the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_seconds(double s);
std::string fmt_bytes(std::uint64_t bytes);
std::string fmt_ratio(double r);

/// Geometric mean of strictly positive values (0 on empty input).
double geomean(const std::vector<double>& values);

}  // namespace lcr::bench
