// End-to-end experiment runner: graph -> partition -> cluster -> app.
//
// One call runs one (app x engine x backend x policy x hosts) configuration
// on a simulated cluster and returns validated labels plus the timing and
// memory measurements the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "comm/backend.hpp"
#include "comm/membership.hpp"
#include "fabric/config.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "telemetry/health.hpp"

namespace lcr::bench {

struct RunSpec {
  std::string app = "bfs";  // bfs | cc | sssp | pagerank | labelprop | ...
  std::string engine = "abelian"; // abelian | gemini
  comm::BackendKind backend = comm::BackendKind::Lci;
  graph::PartitionPolicy policy = graph::PartitionPolicy::CartesianVertexCut;
  int hosts = 4;
  std::size_t threads = 2;
  /// Abelian receive-side apply workers (0 = all compute threads; see
  /// abelian::EngineConfig::apply_workers).
  std::size_t apply_workers = 0;
  /// Abelian apply-slice granularity (records); 0 = engine default. Tests
  /// shrink it so small graphs still exercise sliced parallel applies.
  std::uint32_t apply_slice_records = 0;
  graph::VertexId source = 0;
  std::uint32_t pagerank_iters = 20;
  std::uint32_t kcore_k = 4;  // for app == "kcore" (abelian engine only)
  /// Gemini sparse/dense switch (see gemini::GeminiConfig::dense_threshold).
  /// The Fig-4 bench forces sparse (> 1.0) to reproduce the paper's
  /// per-edge signal regime; the dense aggregation is this repo's extension.
  double gemini_dense_threshold = 0.05;
  /// Gemini record-batch bytes per (thread, destination).
  std::size_t gemini_batch_bytes = 8 * 1024;
  double pagerank_tol = 0.0;  // 0: fixed iteration count (fair comparisons)
  std::string mpi_personality = "default";
  /// MPI-Probe buffered-layer flush timeout (ablation C).
  std::uint64_t aggregation_timeout_us = 50;
  /// One-sided direct-write sync path (DESIGN.md §15); applies to both
  /// engines. Env LCR_DIRECT_WRITE=off|auto|forced overrides.
  comm::DirectWriteMode direct_write = comm::DirectWriteMode::Auto;
  /// Asynchronous checkpoint interval in rounds (0 = checkpointing off).
  /// With a kill schedule in `fabric.fault`, hosts that unwind on a failure
  /// rendezvous at the cluster recovery barrier, reload the last stable
  /// checkpoint and resume (DESIGN.md §13).
  std::int64_t ckpt_interval = 0;
  /// LCI injection lanes; 0 = engine default (one per compute thread).
  std::size_t lci_lanes = 0;
  /// Dedicated LCI progress servers sharding lanes and peer ranks; 0 = the
  /// engine's own comm/server thread is the only progress driver.
  std::size_t lci_servers = 0;
  /// Simulated-host scheduler (DESIGN.md §16): "" = env LCR_HOST_SCHED /
  /// OS threads; "os" forces one OS thread per host; "ult" multiplexes
  /// hosts as cooperative fibers over min(hardware threads, hosts) workers
  /// (required past ~16 hosts on ordinary machines).
  std::string host_sched;
  /// OOB control-plane collectives: "" = env LCR_OOB_COLL / tree; "tree" is
  /// the k-ary combining tree (O(log N) waves); "flat" keeps the original
  /// centralized barrier + 3-barrier scratch allreduce for comparison.
  std::string oob_coll;
  /// ULT worker pool size; 0 = min(hardware threads, hosts).
  std::size_t ult_workers = 0;
  /// When nonempty (or env LCR_HEALTH_OUT is set), the runner writes the
  /// cluster health monitor's round-indexed timeline and classifier
  /// findings as health.json to this path after the run (DESIGN.md §14).
  std::string health_out;
  fabric::FabricConfig fabric = fabric::test_config();
};

struct RunResult {
  double total_s = 0.0;    // max across hosts
  double compute_s = 0.0;  // max across hosts
  double comm_s = 0.0;     // max across hosts (non-overlapped communication)
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;  // summed across hosts
  std::uint64_t bytes = 0;
  /// Peak communication-buffer working set per host (Fig 5).
  std::vector<std::uint64_t> peak_mem;
  /// Fabric-level totals across hosts (wire traffic introspection).
  std::uint64_t wire_sends = 0;
  std::uint64_t wire_puts = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_soft_retries = 0;  // NoRxBuffer + Throttled + CqFull
  /// Injected-fault totals across hosts (zero on a reliable fabric).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_reordered = 0;
  /// Reliability-protocol totals across hosts (zero in passthrough mode).
  std::uint64_t rel_data_tx = 0;
  std::uint64_t rel_retransmits = 0;
  std::uint64_t rel_probes = 0;
  std::uint64_t rel_acks_tx = 0;
  std::uint64_t rel_acks_rx = 0;
  std::uint64_t rel_delivered = 0;
  std::uint64_t rel_dup_dropped = 0;
  std::uint64_t rel_crc_dropped = 0;
  std::uint64_t rel_ooo_held = 0;
  std::uint64_t rel_ooo_dropped = 0;
  std::uint64_t rel_stall_dumps = 0;
  /// Full snapshot of the cluster fabric's telemetry registry, taken while
  /// every host engine was still alive (so it includes the per-layer probes:
  /// lci.*, mpilite.*, abelian.*, gemini.*, plus "<name>.count"/"<name>.sum"
  /// per histogram). The wire_*/faults_*/rel_* fields above are views
  /// derived from this map, kept for source compatibility.
  std::map<std::string, std::uint64_t> telemetry;
  /// Fail-stop recovery observables (all zero / empty on an unfailed run).
  std::uint64_t kills = 0;       // fail-stop kills injected during the run
  std::uint64_t recoveries = 0;  // completed cluster recovery rendezvous
  std::int64_t rollback_round = -1;   // last recovery's rollback round
  std::uint64_t killed_at_op = 0;     // victim's data-op count at the kill
  /// Max across hosts: wall seconds from unwinding on the failure until the
  /// host's rebuilt engine was ready to resume (rollback + re-admission).
  double recovery_s = 0.0;
  /// Deterministic recovery trace (Kill / Rollback / Readmit order).
  std::vector<comm::RecoveryEvent> recovery_events;
  /// Cluster health report: per-phase timeline plus classifier findings
  /// (straggler / retransmit_storm / apply_backlog / checkpoint_interference;
  /// DESIGN.md §14). Empty timeline when no engine reported phases.
  telemetry::HealthReport health;
  /// Global result labels assembled from the masters.
  std::vector<std::uint32_t> labels_u32;  // bfs / cc / sssp
  std::vector<double> labels_f64;         // pagerank
};

/// Runs `spec` on `g`. For cc the caller should pass a symmetrized graph.
/// The gemini engine forces BlockedEdgeCut.
RunResult run_app(const graph::Csr& g, const RunSpec& spec);

/// Picks a well-connected source (max out-degree vertex).
graph::VertexId choose_source(const graph::Csr& g);

}  // namespace lcr::bench
