// Named cluster configurations (paper Table III analogues).
#pragma once

#include <string>
#include <vector>

#include "fabric/config.hpp"

namespace lcr::bench {

struct ClusterProfile {
  std::string name;          // "stampede2-like", "stampede1-like"
  fabric::FabricConfig fabric;
  std::size_t compute_threads;  // per host (scaled from 68 / 16 cores)
  std::string description;
};

/// Stampede2 analogue: Intel KNL + Omni-Path (the paper's primary platform).
ClusterProfile stampede2_like();

/// Stampede1 analogue: SandyBridge + Infiniband FDR (Section IV-B3).
ClusterProfile stampede1_like();

/// All profiles, for sweeps.
std::vector<ClusterProfile> all_profiles();

/// Formats a Table-III-style description block.
std::string format_profile(const ClusterProfile& p);

}  // namespace lcr::bench
