#include "bench_support/cluster_configs.hpp"

#include <sstream>

namespace lcr::bench {

ClusterProfile stampede2_like() {
  ClusterProfile p;
  p.name = "stampede2-like";
  p.fabric = fabric::omnipath_knl_config();
  p.compute_threads = 2;  // scaled from 68 cores (single-core container)
  p.description =
      "Intel KNL-class hosts, Omni-Path-class fabric (psm2 analogue): "
      "16KiB MTU, ~0.9us latency, 100Gb/s";
  return p;
}

ClusterProfile stampede1_like() {
  ClusterProfile p;
  p.name = "stampede1-like";
  p.fabric = fabric::infiniband_snb_config();
  p.compute_threads = 2;  // scaled from 16 cores
  p.description =
      "SandyBridge-class hosts, Infiniband FDR-class fabric (ibverbs RC "
      "analogue): 8KiB MTU, ~1.3us latency, 54Gb/s";
  return p;
}

std::vector<ClusterProfile> all_profiles() {
  return {stampede2_like(), stampede1_like()};
}

std::string format_profile(const ClusterProfile& p) {
  std::ostringstream os;
  os << p.name << ": " << p.description
     << " | rx-buffers/endpoint=" << p.fabric.default_rx_buffers
     << " threads/host=" << p.compute_threads;
  return os.str();
}

}  // namespace lcr::bench
