#include "bench_support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lcr::bench {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(s < 0.1 ? 4 : 3) << s;
  return os.str();
}

std::string fmt_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (bytes >= (1ULL << 30))
    os << static_cast<double>(bytes) / (1ULL << 30) << "GiB";
  else if (bytes >= (1ULL << 20))
    os << static_cast<double>(bytes) / (1ULL << 20) << "MiB";
  else if (bytes >= (1ULL << 10))
    os << static_cast<double>(bytes) / (1ULL << 10) << "KiB";
  else
    os << bytes << "B";
  return os.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << r << "x";
  return os.str();
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace lcr::bench
