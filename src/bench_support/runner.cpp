#include "bench_support/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "abelian/cluster.hpp"
#include "abelian/engine.hpp"
#include "abelian/sync.hpp"
#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/kcore.hpp"
#include "apps/labelprop.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "apps/sssp_delta.hpp"
#include "gemini/engine.hpp"
#include "graph/partition.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/mem_tracker.hpp"
#include "runtime/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace lcr::bench {

graph::VertexId choose_source(const graph::Csr& g) {
  graph::VertexId best = 0;
  std::size_t best_deg = 0;
  for (graph::VertexId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > best_deg) {
      best_deg = g.degree(v);
      best = v;
    }
  }
  return best;
}

namespace {

struct HostOutcome {
  double total_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double recovery_s = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

template <typename Label>
void write_masters(const graph::DistGraph& g, const std::vector<Label>& local,
                   std::vector<Label>& global) {
  for (graph::VertexId lid = 0; lid < g.num_masters; ++lid)
    global[g.local_to_global(lid)] = local[lid];
}

/// Untimed warm-up: run one empty sync round with the app's patterns and
/// datatype. This mirrors the paper's measurement protocol ("RMA window
/// creation time is excluded in MPI-RMA results") and warms every backend's
/// send/receive paths equally.
template <typename Label>
void warmup_sync(abelian::HostEngine& eng, const abelian::SyncPlan& plan) {
  rt::ConcurrentBitset clean(eng.graph().num_local);
  std::vector<Label> scratch(eng.graph().num_local, Label{});
  if (plan.do_reduce)
    eng.sync_reduce<Label>(
        scratch.data(), clean, [](Label&, Label) { return false; },
        [](graph::VertexId) {});
  if (plan.do_broadcast)
    eng.sync_broadcast<Label>(scratch.data(), clean, [](graph::VertexId) {});
}

void warmup_engine(abelian::HostEngine& eng, const std::string& app,
                   graph::PartitionPolicy policy) {
  abelian::SyncPlan plan = app == "pagerank"
                               ? abelian::plan_accumulate(policy)
                               : abelian::plan_push_monotone(policy);
  if (app == "kcore") plan = abelian::SyncPlan{true, true};
  if (app == "pagerank")
    warmup_sync<double>(eng, plan);
  else
    warmup_sync<std::uint32_t>(eng, plan);
  // Warm-up communication must not count towards the reported numbers.
  eng.stats().comm_s = 0.0;
  eng.stats().compute_s = 0.0;
  eng.stats().phases = 0;
  eng.stats().messages_sent.store(0);
  eng.stats().bytes_sent.store(0);
}

/// Accounts the rounds of work a recovery threw away: the victim had
/// completed `rounds_at_fail` rounds, the cluster resumed at `resume_round`
/// (-1 = from scratch). Feeds the "ckpt.rollback_rounds" registry counter
/// (host 0 only, so cluster-wide rollbacks are counted once).
void note_rollback_rounds(telemetry::Registry& reg,
                          std::uint64_t rounds_at_fail,
                          std::int64_t resume_round) {
  const std::uint64_t resume =
      resume_round < 0 ? 0 : static_cast<std::uint64_t>(resume_round);
  if (rounds_at_fail > resume)
    reg.counter("ckpt.rollback_rounds").add(rounds_at_fail - resume);
}

}  // namespace

RunResult run_app(const graph::Csr& g, const RunSpec& spec) {
  const bool is_gemini = spec.engine == "gemini";
  const graph::PartitionPolicy policy =
      is_gemini ? graph::PartitionPolicy::BlockedEdgeCut : spec.policy;

  std::vector<graph::DistGraph> parts =
      graph::partition(g, spec.hosts, policy);

  abelian::ClusterOptions copts = abelian::ClusterOptions::from_env();
  if (spec.host_sched == "ult")
    copts.host_sched = abelian::ClusterOptions::HostSched::kUlt;
  else if (spec.host_sched == "os")
    copts.host_sched = abelian::ClusterOptions::HostSched::kOsThreads;
  if (spec.oob_coll == "tree")
    copts.oob_coll = abelian::ClusterOptions::OobColl::kTree;
  else if (spec.oob_coll == "flat")
    copts.oob_coll = abelian::ClusterOptions::OobColl::kFlat;
  if (spec.ult_workers != 0) copts.ult_workers = spec.ult_workers;
  abelian::Cluster cluster(spec.hosts, spec.fabric, copts);

  RunResult result;
  result.peak_mem.assign(static_cast<std::size_t>(spec.hosts), 0);
  const bool is_pagerank = spec.app == "pagerank";
  if (is_pagerank)
    result.labels_f64.assign(g.num_nodes(), 0.0);
  else
    result.labels_u32.assign(g.num_nodes(), 0);

  std::vector<HostOutcome> outcomes(static_cast<std::size_t>(spec.hosts));
  std::vector<rt::MemTracker> trackers(static_cast<std::size_t>(spec.hosts));

  cluster.run([&](int h) {
    const auto hs = static_cast<std::size_t>(h);
    const graph::DistGraph& part = parts[hs];
    HostOutcome& out = outcomes[hs];

    // Recovery context: every driver checkpoints through the cluster store;
    // after a failure the retry loop flips `resume` and re-enters the app at
    // the rollback round (DESIGN.md §13). All hosts abort / recover / resume
    // in lockstep, so the collective call sequence stays aligned.
    rt::RecoveryCtx rec;
    rec.store = &cluster.checkpoints();
    rec.host = hs;
    rec.interval = spec.ckpt_interval;

    bool first_attempt = true;
    std::uint64_t measure_start_ns = 0;
    std::uint64_t fail_ns = 0;

    if (is_gemini) {
      gemini::GeminiConfig cfg;
      cfg.comm = spec.backend == comm::BackendKind::Lci
                     ? gemini::CommKind::Lci
                     : gemini::CommKind::MpiProbeMulti;
      cfg.compute_threads = spec.threads;
      cfg.mpi_personality = spec.mpi_personality;
      cfg.tracker = &trackers[hs];
      cfg.dense_threshold = spec.gemini_dense_threshold;
      cfg.batch_bytes = spec.gemini_batch_bytes;
      cfg.lci_lanes = spec.lci_lanes;
      cfg.lci_servers = spec.lci_servers;
      cfg.direct_write = spec.direct_write;

      std::unique_ptr<gemini::GeminiHost> host;
      for (;;) {
        try {
          host = std::make_unique<gemini::GeminiHost>(cluster, part, cfg);
          cluster.oob_barrier();
          // Setup spans must not pollute the measured trace (mirrors the
          // stats zeroing warmup_engine does for the abelian path).
          if (h == 0 && first_attempt) telemetry::reset_trace();
          cluster.oob_barrier();
          if (measure_start_ns == 0) measure_start_ns = rt::now_ns();
          if (fail_ns != 0) {
            out.recovery_s +=
                static_cast<double>(rt::now_ns() - fail_ns) * 1e-9;
            fail_ns = 0;
          }
          if (spec.app == "bfs") {
            auto labels = host->run_push<apps::BfsTraits>(spec.source, &rec);
            write_masters(part, labels, result.labels_u32);
          } else if (spec.app == "cc") {
            auto labels = host->run_push<apps::CcTraits>(0, &rec);
            write_masters(part, labels, result.labels_u32);
          } else if (spec.app == "labelprop") {
            auto labels =
                host->run_push<apps::LabelPropTraits>(0, &rec);
            write_masters(part, labels, result.labels_u32);
          } else if (spec.app == "sssp") {
            auto labels = host->run_push<apps::SsspTraits>(spec.source, &rec);
            write_masters(part, labels, result.labels_u32);
          } else if (spec.app == "pagerank") {
            auto ranks = host->run_pagerank(0.85, spec.pagerank_iters,
                                            spec.pagerank_tol, &rec);
            write_masters(part, ranks, result.labels_f64);
          } else {
            throw std::invalid_argument("unknown app: " + spec.app);
          }
          break;
        } catch (const comm::HostKilledError&) {
          fail_ns = rt::now_ns();
        } catch (const comm::PeerFailedError&) {
          fail_ns = rt::now_ns();
        }
        first_attempt = false;
        const std::uint64_t rounds_at_fail = host ? host->stats().rounds : 0;
        host.reset();  // tear down before re-admission (endpoint detach)
        rec.resume = true;
        rec.resume_round = cluster.recover(h);
        if (h == 0)
          note_rollback_rounds(cluster.fabric().telemetry(), rounds_at_fail,
                               rec.resume_round);
      }
      out.total_s =
          static_cast<double>(rt::now_ns() - measure_start_ns) * 1e-9;
      cluster.oob_barrier();
      // Snapshot the registry while every host's engine (and therefore
      // every layer's probe registration) is still alive; the trailing
      // barrier keeps peers from tearing down early.
      if (h == 0) result.telemetry = cluster.fabric().telemetry().snapshot();
      cluster.oob_barrier();
      out.compute_s = host->stats().compute_s;
      out.comm_s = host->stats().comm_s;
      out.rounds = host->stats().rounds;
      out.messages = host->stats().messages.load();
      out.bytes = host->stats().bytes.load();
      return;
    }

    abelian::EngineConfig cfg;
    cfg.backend = spec.backend;
    cfg.backend_options.tracker = &trackers[hs];
    cfg.backend_options.mpi_personality = spec.mpi_personality;
    cfg.backend_options.aggregation_timeout_us = spec.aggregation_timeout_us;
    cfg.backend_options.lci_lanes = spec.lci_lanes;
    cfg.backend_options.lci_servers = spec.lci_servers;
    cfg.compute_threads = spec.threads;
    cfg.apply_workers = spec.apply_workers;
    cfg.direct_write = spec.direct_write;
    if (spec.apply_slice_records != 0)
      cfg.apply_slice_records = spec.apply_slice_records;

    std::unique_ptr<abelian::HostEngine> eng;
    for (;;) {
      try {
        eng = std::make_unique<abelian::HostEngine>(cluster, part, cfg);
        warmup_engine(*eng, spec.app, policy);
        cluster.oob_barrier();
        if (h == 0 && first_attempt)
          telemetry::reset_trace();  // drop warm-up spans
        cluster.oob_barrier();
        if (measure_start_ns == 0) measure_start_ns = rt::now_ns();
        if (fail_ns != 0) {
          out.recovery_s +=
              static_cast<double>(rt::now_ns() - fail_ns) * 1e-9;
          fail_ns = 0;
        }
        if (spec.app == "bfs") {
          auto labels = apps::run_bfs(*eng, spec.source, &rec);
          write_masters(part, labels, result.labels_u32);
        } else if (spec.app == "cc") {
          auto labels = apps::run_cc(*eng, &rec);
          write_masters(part, labels, result.labels_u32);
        } else if (spec.app == "labelprop") {
          auto labels = apps::run_labelprop(*eng, &rec);
          write_masters(part, labels, result.labels_u32);
        } else if (spec.app == "sssp") {
          auto labels = apps::run_sssp(*eng, spec.source, &rec);
          write_masters(part, labels, result.labels_u32);
        } else if (spec.app == "pagerank") {
          apps::PagerankOptions opt;
          opt.max_iterations = spec.pagerank_iters;
          opt.tolerance = spec.pagerank_tol;
          auto ranks = apps::run_pagerank(*eng, opt, &rec);
          write_masters(part, ranks, result.labels_f64);
        } else if (spec.app == "kcore") {
          auto alive = apps::run_kcore(*eng, spec.kcore_k);
          write_masters(part, alive, result.labels_u32);
        } else if (spec.app == "sssp_delta") {
          auto labels = apps::run_sssp_delta(*eng, spec.source);
          write_masters(part, labels, result.labels_u32);
        } else {
          throw std::invalid_argument("unknown app: " + spec.app);
        }
        break;
      } catch (const comm::HostKilledError&) {
        fail_ns = rt::now_ns();
      } catch (const comm::PeerFailedError&) {
        fail_ns = rt::now_ns();
      }
      first_attempt = false;
      const std::uint64_t rounds_at_fail = eng ? eng->stats().rounds : 0;
      eng.reset();  // tear down before re-admission (endpoint detach)
      rec.resume = true;
      rec.resume_round = cluster.recover(h);
      if (h == 0)
        note_rollback_rounds(cluster.fabric().telemetry(), rounds_at_fail,
                             rec.resume_round);
    }
    out.total_s =
        static_cast<double>(rt::now_ns() - measure_start_ns) * 1e-9;
    cluster.oob_barrier();
    if (h == 0) result.telemetry = cluster.fabric().telemetry().snapshot();
    cluster.oob_barrier();
    out.compute_s = eng->stats().compute_s;
    out.comm_s = eng->stats().comm_s;
    out.rounds = eng->stats().rounds;
    out.messages = eng->stats().messages_sent.load();
    out.bytes = eng->stats().bytes_sent.load();
  });

  // Second snapshot pass: engine-owned probes (lci.*, abelian.*, ...) died
  // with the engines, but registry-owned counters and histograms survive
  // and keep growing through teardown (e.g. a ProgressProfiler's final
  // partial-window flush runs in the comm thread's destructor). Merge the
  // late values over the in-run ones; counters are monotonic so max() is
  // simply "latest available".
  for (const auto& [name, value] : cluster.fabric().telemetry().snapshot()) {
    auto& slot = result.telemetry[name];
    slot = std::max(slot, value);
  }
  // Span-ring overflow is silent on the hot path; surface it next to the
  // registry counters so json-out consumers see incomplete traces.
  result.telemetry["trace.dropped"] =
      std::max(result.telemetry["trace.dropped"], telemetry::trace_dropped());

  // Cluster health: classifier findings always ride in the result; the
  // full health.json artifact is written when the spec (or env) asks.
  result.health = cluster.health().diagnose();
  std::string health_out = spec.health_out;
  if (health_out.empty())
    if (const char* env = std::getenv("LCR_HEALTH_OUT")) health_out = env;
  if (!health_out.empty()) cluster.health().write_json(health_out);

  // The registry aggregates same-name probes across all endpoints/hosts, so
  // one snapshot replaces the per-endpoint, per-field copy loop this used
  // to hand-maintain. The named fields stay as views of the map.
  const auto tv = [&result](const char* name) -> std::uint64_t {
    const auto it = result.telemetry.find(name);
    return it == result.telemetry.end() ? 0 : it->second;
  };
  result.wire_sends = tv("fabric.sends");
  result.wire_puts = tv("fabric.puts");
  result.wire_bytes = tv("fabric.bytes_tx");
  result.wire_soft_retries = tv("fabric.retries_no_rx") +
                             tv("fabric.retries_throttled") +
                             tv("fabric.retries_cq_full");
  result.faults_dropped = tv("fault.dropped");
  result.faults_duplicated = tv("fault.duplicated");
  result.faults_corrupted = tv("fault.corrupted");
  result.faults_delayed = tv("fault.delayed");
  result.faults_reordered = tv("fault.reordered");
  result.rel_data_tx = tv("rel.data_tx");
  result.rel_retransmits = tv("rel.retransmits");
  result.rel_probes = tv("rel.probes_tx");
  result.rel_acks_tx = tv("rel.acks_tx");
  result.rel_acks_rx = tv("rel.acks_rx");
  result.rel_delivered = tv("rel.delivered");
  result.rel_dup_dropped = tv("rel.dup_dropped");
  result.rel_crc_dropped = tv("rel.crc_dropped");
  result.rel_ooo_held = tv("rel.ooo_held");
  result.rel_ooo_dropped = tv("rel.ooo_dropped");
  result.rel_stall_dumps = tv("rel.stall_dumps");
  for (int h = 0; h < spec.hosts; ++h) {
    const auto hs = static_cast<std::size_t>(h);
    result.total_s = std::max(result.total_s, outcomes[hs].total_s);
    result.compute_s = std::max(result.compute_s, outcomes[hs].compute_s);
    result.comm_s = std::max(result.comm_s, outcomes[hs].comm_s);
    result.recovery_s = std::max(result.recovery_s, outcomes[hs].recovery_s);
    result.rounds = std::max(result.rounds, outcomes[hs].rounds);
    result.messages += outcomes[hs].messages;
    result.bytes += outcomes[hs].bytes;
    result.peak_mem[hs] = trackers[hs].peak();
  }
  result.kills = cluster.membership().kills();
  result.recoveries = cluster.membership().recoveries();
  result.recovery_events = cluster.membership().events();
  result.killed_at_op = cluster.fabric().killed_at_op();
  for (const auto& ev : result.recovery_events)
    if (ev.kind == comm::RecoveryEvent::Kind::Rollback)
      result.rollback_round = ev.round;
  return result;
}

}  // namespace lcr::bench
