#include "comm/direct.hpp"

#include <mutex>

namespace lcr::comm {

std::uint32_t DirectDirectory::next_generation() noexcept {
  return next_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void DirectDirectory::publish(int target, int src, std::uint32_t pattern_key,
                              const DirectRegion& region) {
  std::lock_guard<rt::Spinlock> guard(lock_);
  regions_[Key{target, src, pattern_key}] = region;
}

bool DirectDirectory::lookup(int target, int src, std::uint32_t pattern_key,
                             DirectRegion& out) const {
  std::lock_guard<rt::Spinlock> guard(lock_);
  const auto it = regions_.find(Key{target, src, pattern_key});
  if (it == regions_.end()) return false;
  out = it->second;
  return true;
}

void DirectDirectory::retract(int target, int src, std::uint32_t pattern_key,
                              std::uint32_t generation) {
  std::lock_guard<rt::Spinlock> guard(lock_);
  const auto it = regions_.find(Key{target, src, pattern_key});
  if (it != regions_.end() && it->second.generation == generation)
    regions_.erase(it);
}

void DirectDirectory::retract_target(int target) {
  std::lock_guard<rt::Spinlock> guard(lock_);
  for (auto it = regions_.begin(); it != regions_.end();) {
    if (std::get<0>(it->first) == target)
      it = regions_.erase(it);
    else
      ++it;
  }
}

}  // namespace lcr::comm
