// The serializer is mostly header-only templates (comm/serializer.hpp);
// this TU holds the wire-format override state plus compile-time checks
// that the record layout is as documented.
#include "comm/serializer.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace lcr::comm {

static_assert(record_bytes<std::uint32_t>() == 8);
static_assert(record_bytes<double>() == 12);

namespace {

// -2 = environment not read yet, -1 = auto, otherwise a WireFormat value.
std::atomic<int> g_wire_override{-2};

int parse_env() {
  const char* raw = std::getenv("LCR_WIRE_FORMAT");
  if (raw == nullptr) return -1;
  const std::string_view s(raw);
  if (s == "sparse") return static_cast<int>(WireFormat::Sparse);
  if (s == "varint") return static_cast<int>(WireFormat::Varint);
  if (s == "dense") return static_cast<int>(WireFormat::Dense);
  return -1;  // "auto" and anything unrecognized
}

}  // namespace

std::optional<WireFormat> forced_wire_format() {
  int v = g_wire_override.load(std::memory_order_relaxed);
  if (v == -2) {
    int expected = -2;
    g_wire_override.compare_exchange_strong(expected, parse_env(),
                                            std::memory_order_relaxed);
    v = g_wire_override.load(std::memory_order_relaxed);
  }
  if (v < 0) return std::nullopt;
  return static_cast<WireFormat>(v);
}

void set_wire_format_override(std::optional<WireFormat> format) {
  // nullopt reverts to "unread" so the environment decides again.
  g_wire_override.store(format ? static_cast<int>(*format) : -2,
                        std::memory_order_relaxed);
}

}  // namespace lcr::comm
