// Intentionally small: the serializer is header-only templates
// (comm/serializer.hpp); this TU anchors the target and provides a
// compile-time check that the record layout is as documented.
#include "comm/serializer.hpp"

namespace lcr::comm {

static_assert(record_bytes<std::uint32_t>() == 8);
static_assert(record_bytes<double>() == 12);

}  // namespace lcr::comm
