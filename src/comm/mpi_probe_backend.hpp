// MPI-Probe communication backend (paper Section III-B).
//
// The baseline two-sided layer: MPI_THREAD_FUNNELED, all MPI calls from the
// dedicated communication thread, plus the *buffered network layer* the
// authors had to add because MPI provides no back pressure:
//
//   "For sending messages, the system buffers small items (those less than
//    the eager-send limit) until either the oldest buffered message times
//    out or the buffer size exceeds the eager send limit."
//
// Receives use MPI_Iprobe with wildcards to learn the size/source of the
// next incoming aggregate, then a matching MPI_Irecv; MPI_Test drives
// progress and reclaims buffers. All calls are nonblocking.
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <vector>

#include "comm/backend.hpp"
#include "lci/one_sided.hpp"
#include "mpilite/comm.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::comm {

class MpiProbeBackend final : public Backend {
 public:
  MpiProbeBackend(fabric::Fabric& fabric, int rank,
                  const BackendOptions& options);
  ~MpiProbeBackend() override;

  const char* name() const override { return "mpi-probe"; }
  bool thread_safe_send() const override { return false; }  // FUNNELED
  bool thread_safe_recv() const override { return false; }
  std::size_t chunk_bytes() const override { return comm_.eager_limit(); }

  void begin_phase(const PhaseSpec& spec) override;
  bool try_send(int dst, std::vector<std::byte>& payload) override;
  void flush() override;
  bool try_recv(InMessage& out) override;
  void progress() override;
  void end_phase() override;

  mpi::Comm& comm() noexcept { return comm_; }

  /// Direct-write path (DESIGN.md §15), software-emulated: this layer has
  /// no one-sided primitive, so a "put" travels as a framed two-sided
  /// message on a dedicated tag and the receive pump performs the region
  /// write itself - after walking the RegionBook validation ladder (token /
  /// generation / bounds), exactly the checks a NIC does in hardware. The
  /// framing keeps the engine's direct/two-sided selection logic and the
  /// completion accounting identical across all three backends.
  /// direct_put follows thread_safe_send() (comm thread only, FUNNELED);
  /// register/release/poll_direct are thread-safe.
  bool supports_direct_write() const override { return true; }
  DirectRegion register_direct_region(int src, std::byte* base,
                                      std::size_t bytes,
                                      std::uint32_t generation) override;
  void release_direct_region(int src, const DirectRegion& region) override;
  DirectPutStatus direct_put(int dst, const DirectRegion& region,
                             const void* payload, std::size_t bytes,
                             std::uint32_t phase_id,
                             std::uint32_t pattern_key) override;
  bool poll_direct(DirectSignal& out) override;

  lci::RegionBook& region_book() noexcept { return region_book_; }

 private:
  /// Per-destination aggregation buffer of the buffered network layer.
  struct AggBuffer {
    std::vector<std::byte> bytes;   // [u32 record_size][record]...
    std::uint64_t oldest_ns = 0;    // enqueue time of the oldest record
  };

  struct OutstandingSend {
    std::vector<std::byte> bytes;
    mpi::Request req;
  };

  /// A completed incoming aggregate, shared by the record views cut from it.
  struct RecvBuf {
    std::vector<std::byte> bytes;
    int src = -1;
  };

  struct PendingRecv {
    std::shared_ptr<RecvBuf> buf;
    mpi::Request req;
  };

  void append_record(AggBuffer& agg, const std::vector<std::byte>& payload);
  void flush_agg(int dst);
  void reap_outstanding();
  void pump_receives();
  void split_records(std::shared_ptr<RecvBuf> buf);
  void deliver_direct(const std::shared_ptr<RecvBuf>& buf);

  mpi::Comm comm_;
  rt::MemTracker* tracker_;
  std::uint64_t timeout_ns_;

  std::vector<AggBuffer> agg_;             // indexed by destination rank
  std::list<OutstandingSend> outstanding_; // isends awaiting completion
  std::list<PendingRecv> pending_recvs_;   // irecvs awaiting completion
  std::list<PendingRecv> pending_direct_;  // direct-frame irecvs in flight
  std::deque<InMessage> ready_;            // parsed records ready for the engine

  // Direct-write state. Tokens are handed out monotonically (never reused)
  // from next_direct_token_, mirroring fabric rkey semantics.
  std::uint64_t next_direct_token_ = 1;
  rt::Spinlock direct_lock_;
  std::deque<DirectSignal> direct_signals_;
  lci::RegionBook region_book_;
};

}  // namespace lcr::comm
