#include "comm/mpi_rma_backend.hpp"

#include <cassert>
#include <cstring>
#include <mutex>

#include "comm/direct.hpp"
#include "mpilite/personality.hpp"

namespace lcr::comm {

namespace {
mpi::Personality personality_by_name(const std::string& name) {
  if (name == "intelmpi") return mpi::intelmpi_like();
  if (name == "mvapich") return mpi::mvapich_like();
  if (name == "openmpi") return mpi::openmpi_like();
  return mpi::default_personality();
}
}  // namespace

MpiRmaBackend::MpiRmaBackend(fabric::Fabric& fabric, int rank,
                             const BackendOptions& options)
    // "this layer uses MPI_thread_multiple" - both the main compute thread
    // and the dedicated polling thread issue MPI commands.
    : comm_(fabric, rank, personality_by_name(options.mpi_personality),
            mpi::ThreadLevel::Multiple,
            // Two declared concurrent callers: the put-issuing compute path
            // and the dedicated polling thread.
            mpi::CommConfig{fabric.config().default_rx_buffers, nullptr, 2,
                            options.abort_check}),
      tracker_(options.tracker),
      delivered_(fabric.num_ranks(), false) {
  // Installed before the engine spawns its polling thread; the handler runs
  // under the comm lock on whichever thread drives progress.
  comm_.set_direct_handler([this](const fabric::MsgMeta& meta) {
    DirectSignal sig = unpack_direct_signal(static_cast<int>(meta.src),
                                            meta.imm, meta.imm2);
    std::lock_guard<rt::Spinlock> guard(direct_lock_);
    direct_signals_.push_back(sig);
  });
}

MpiRmaBackend::~MpiRmaBackend() {
  if (tracker_ != nullptr && window_bytes_ > 0)
    tracker_->on_free(window_bytes_);
}

MpiRmaBackend::WindowSet& MpiRmaBackend::ensure_window_set(
    const PhaseSpec& spec) {
  auto it = window_sets_.find(spec.pattern_key);
  if (it != window_sets_.end()) return it->second;

  // First communication with this (pattern x datatype): collectively create
  // the p windows with worst-case (all-nodes-active) preallocated buffers.
  const int p = comm_.size();
  const int me = comm_.rank();
  WindowSet set;
  set.recv_bufs.resize(static_cast<std::size_t>(p));
  set.recv_cap.resize(static_cast<std::size_t>(p));
  set.windows.resize(static_cast<std::size_t>(p));
  set.exposed.reset(new std::atomic<bool>[static_cast<std::size_t>(p)]);
  for (int j = 0; j < p; ++j)
    set.exposed[static_cast<std::size_t>(j)].store(false);
  for (int j = 0; j < p; ++j) {
    const std::size_t cap =
        j == me ? 64
                : std::max<std::size_t>(
                      64, spec.max_recv_bytes[static_cast<std::size_t>(j)]);
    set.recv_bufs[static_cast<std::size_t>(j)].reset(new std::byte[cap]);
    set.recv_cap[static_cast<std::size_t>(j)] = cap;
    window_bytes_ += cap;
    if (tracker_ != nullptr) tracker_->on_alloc(cap);
    set.windows[static_cast<std::size_t>(j)] = std::make_unique<mpi::Window>(
        comm_, set.recv_bufs[static_cast<std::size_t>(j)].get(), cap);
  }
  // Expose every foreign window to its owner immediately; grants accumulate.
  for (int j = 0; j < p; ++j) {
    if (j == me) continue;
    set.windows[static_cast<std::size_t>(j)]->post({j});
    set.exposed[static_cast<std::size_t>(j)].store(
        true, std::memory_order_release);
  }
  auto [pos, inserted] = window_sets_.emplace(spec.pattern_key, std::move(set));
  assert(inserted);
  return pos->second;
}

void MpiRmaBackend::begin_phase(const PhaseSpec& spec) {
  spec_ = &spec;
  current_ = &ensure_window_set(spec);
  std::fill(delivered_.begin(), delivered_.end(), false);
  // Make sure every source we expect from is exposed (re-post happens at
  // message release; first phase is covered by creation-time posts).
  for (int j : spec.recv_from) {
    if (!current_->exposed[static_cast<std::size_t>(j)].load(
            std::memory_order_acquire)) {
      current_->windows[static_cast<std::size_t>(j)]->post({j});
      current_->exposed[static_cast<std::size_t>(j)].store(
          true, std::memory_order_release);
    }
  }
  // Start the access epoch on OUR window, covering all destinations.
  if (!spec.send_to.empty()) {
    current_->windows[static_cast<std::size_t>(comm_.rank())]->start(
        spec.send_to);
    access_open_ = true;
  }
}

bool MpiRmaBackend::try_send(int dst, std::vector<std::byte>& payload) {
  assert(access_open_ && current_ != nullptr);
  assert(payload.size() <=
         spec_->max_send_bytes[static_cast<std::size_t>(dst)]);
  // One MPI_Put into dst's preallocated buffer in our window.
  current_->windows[static_cast<std::size_t>(comm_.rank())]->put(
      payload.data(), payload.size(), dst, 0);
  if (tracker_ != nullptr) tracker_->on_free(payload.size());
  payload.clear();
  payload.shrink_to_fit();
  return true;  // preallocated target: RMA never pushes back
}

void MpiRmaBackend::flush() {
  if (access_open_) {
    current_->windows[static_cast<std::size_t>(comm_.rank())]->complete();
    access_open_ = false;
  }
}

bool MpiRmaBackend::try_recv(InMessage& out) {
  if (current_ == nullptr || spec_ == nullptr) return false;
  for (int j : spec_->recv_from) {
    const auto js = static_cast<std::size_t>(j);
    if (delivered_[js] ||
        !current_->exposed[js].load(std::memory_order_acquire))
      continue;
    mpi::Window& win = *current_->windows[js];
    if (!win.test_wait()) continue;
    // Source j's access epoch is complete: its message is in our buffer.
    current_->exposed[js].store(false, std::memory_order_release);
    delivered_[js] = true;
    ChunkHeader header;
    std::memcpy(&header, current_->recv_bufs[js].get(), sizeof(header));
    out.src = j;
    out.data = current_->recv_bufs[js].get();
    out.size = kChunkHeaderBytes + header.payload_bytes;
    WindowSet* set = current_;
    out.release = [set, j, js] {
      // Scatter done: re-expose so j can start its next epoch.
      set->windows[js]->post({j});
      set->exposed[js].store(true, std::memory_order_release);
    };
    return true;
  }
  return false;
}

void MpiRmaBackend::progress() {
  // The dedicated thread "continuously polls the network to ensure forward
  // progress for the MPI RMA operations".
  comm_.progress();
}

void MpiRmaBackend::end_phase() {
  flush();
  spec_ = nullptr;
  // current_ stays: release() lambdas may still re-expose windows.
}

DirectRegion MpiRmaBackend::register_direct_region(int /*src*/,
                                                   std::byte* base,
                                                   std::size_t bytes,
                                                   std::uint32_t generation) {
  // Dynamic-segment emulation: no collective window creation, no worst-case
  // preallocation accounting - the engine owns the buffer; we only attach
  // it to the endpoint so remote puts can resolve it.
  DirectRegion r;
  r.token =
      static_cast<std::uint64_t>(comm_.endpoint().register_memory(base, bytes));
  r.capacity = bytes;
  r.generation = generation;
  region_book_.add(r.token, base, bytes, generation);
  return r;
}

void MpiRmaBackend::release_direct_region(int /*src*/,
                                          const DirectRegion& region) {
  if (!region.valid()) return;
  region_book_.remove(region.token);
  comm_.endpoint().deregister_memory(static_cast<fabric::RKey>(region.token));
}

DirectPutStatus MpiRmaBackend::direct_put(int dst, const DirectRegion& region,
                                          const void* payload,
                                          std::size_t bytes,
                                          std::uint32_t phase_id,
                                          std::uint32_t pattern_key) {
  if (!region.valid() || bytes > region.capacity)
    return DirectPutStatus::Unavailable;
  const fabric::PostResult r = comm_.direct_try_put(
      dst, region.token, payload, bytes,
      pack_direct_imm(region.generation, phase_id),
      pack_direct_imm2(pattern_key, static_cast<std::uint32_t>(bytes)));
  switch (r) {
    case fabric::PostResult::Ok:
      return DirectPutStatus::Ok;
    case fabric::PostResult::NoRxBuffer:
    case fabric::PostResult::Throttled:
    case fabric::PostResult::CqFull:
    case fabric::PostResult::RetransmitFull:
      return DirectPutStatus::Retry;
    default:
      return DirectPutStatus::Unavailable;
  }
}

bool MpiRmaBackend::poll_direct(DirectSignal& out) {
  std::lock_guard<rt::Spinlock> guard(direct_lock_);
  if (direct_signals_.empty()) return false;
  out = direct_signals_.front();
  direct_signals_.pop_front();
  return true;
}

}  // namespace lcr::comm
