// MPI-RMA communication backend (paper Section III-C).
//
// One-sided baseline: for every (communication pattern x datatype) key it
// lazily creates a *window set* of p windows - "for p hosts, there are p
// shared windows" - where window j holds, on every host, a preallocated
// buffer sized for the worst case message from host j ("an upper bound can
// be computed assuming all nodes are active"). Such a set is created "for
// each datatype that is communicated (on first communication) for each
// pattern of communication (reduce and broadcast)".
//
// Synchronization is generalized active-target (PSCW), not fences: a host
// starts an access epoch on ITS window (windows[rank]), performs one MPI_Put
// per destination into that destination's preallocated buffer, and
// completes; each target waits per-source and re-exposes after scattering.
//
// The cost reproduced here is memory: windows are worst-case sized and never
// shrink, which is exactly what Fig. 5 measures ("MPI-RMA has to preallocate
// all buffers with a size that is the upper-bound of memory required").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "comm/backend.hpp"
#include "lci/one_sided.hpp"
#include "mpilite/comm.hpp"
#include "mpilite/rma.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::comm {

class MpiRmaBackend final : public Backend {
 public:
  MpiRmaBackend(fabric::Fabric& fabric, int rank,
                const BackendOptions& options);
  ~MpiRmaBackend() override;

  const char* name() const override { return "mpi-rma"; }
  /// Puts go straight from compute threads (THREAD_MULTIPLE), as in the
  /// paper; receives / epoch management stay on the polling thread.
  bool thread_safe_send() const override { return true; }
  bool thread_safe_recv() const override { return false; }
  /// 0 = one message per peer per phase (put into the worst-case slot).
  std::size_t chunk_bytes() const override { return 0; }

  void begin_phase(const PhaseSpec& spec) override;
  bool try_send(int dst, std::vector<std::byte>& payload) override;
  void flush() override;
  bool try_recv(InMessage& out) override;
  void progress() override;
  void end_phase() override;

  mpi::Comm& comm() noexcept { return comm_; }

  /// Direct-write path (DESIGN.md §15): the mpilite emulation of dynamic
  /// windows. Regions register straight at the endpoint (no collective
  /// window creation), puts travel as WireKind::DirectPut outside any PSCW
  /// epoch, and landed notifications queue here until polled.
  bool supports_direct_write() const override { return true; }
  DirectRegion register_direct_region(int src, std::byte* base,
                                      std::size_t bytes,
                                      std::uint32_t generation) override;
  void release_direct_region(int src, const DirectRegion& region) override;
  DirectPutStatus direct_put(int dst, const DirectRegion& region,
                             const void* payload, std::size_t bytes,
                             std::uint32_t phase_id,
                             std::uint32_t pattern_key) override;
  bool poll_direct(DirectSignal& out) override;

  /// Receiver-side registration bookkeeping (fuzz-suite introspection).
  lci::RegionBook& region_book() noexcept { return region_book_; }

  /// Total bytes preallocated in windows (diagnostics; also in the tracker).
  std::size_t window_bytes() const noexcept { return window_bytes_; }

 private:
  /// p windows for one (pattern x datatype) key; windows[j] receives from j.
  struct WindowSet {
    std::vector<std::unique_ptr<std::byte[]>> recv_bufs;  // indexed by source
    std::vector<std::size_t> recv_cap;
    std::vector<std::unique_ptr<mpi::Window>> windows;
    /// Exposure epoch open for source j? Atomic: written by scatter threads
    /// (message release re-exposes) and read by the communication thread.
    std::unique_ptr<std::atomic<bool>[]> exposed;
  };

  WindowSet& ensure_window_set(const PhaseSpec& spec);

  mpi::Comm comm_;
  rt::MemTracker* tracker_;
  std::size_t window_bytes_ = 0;

  std::map<std::uint32_t, WindowSet> window_sets_;  // by pattern key
  const PhaseSpec* spec_ = nullptr;                 // current phase
  WindowSet* current_ = nullptr;
  bool access_open_ = false;
  std::vector<bool> delivered_;  // source already surfaced this phase

  // Direct-write state: DirectPut notifications are pushed from the comm
  // progress path; compute/apply threads pop them via poll_direct.
  rt::Spinlock direct_lock_;
  std::deque<DirectSignal> direct_signals_;
  lci::RegionBook region_book_;
};

}  // namespace lcr::comm
