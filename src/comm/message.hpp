// Engine-level message framing shared by every communication backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

namespace lcr::comm {

/// Wire encoding of a chunk's record payload, negotiated per message through
/// the header's one-byte format tag (DESIGN.md §11). The sender picks the
/// cheapest encoding from the dirty popcount of the range it covers; the
/// receiver's unified scatter dispatches on the tag, so mixed-format senders
/// and receivers always interoperate.
enum class WireFormat : std::uint8_t {
  Raw = 0,     ///< opaque payload (gemini signal records, control tails)
  Sparse = 1,  ///< [u32 rel_pos][value] fixed-stride records (status quo)
  Varint = 2,  ///< [varint pos-delta][value] records for mid density
  Dense = 3,   ///< [bitmap][packed values] when most of the span is dirty
};

inline constexpr std::size_t kWireFormatCount = 4;

/// ChunkHeader flag bits.
inline constexpr std::uint8_t kFlagDenseFull = 0x01;  ///< Dense, bitmap elided
inline constexpr std::uint8_t kFlagMaskKnown = 0x01;

/// Header prepended to every engine message (one chunk of a phase's payload
/// from one host to another). `base_pos`/`span` name the shared-list range
/// [base_pos, base_pos + span) this chunk covers; record positions on the
/// wire are relative to base_pos so they fit the adaptive encodings.
/// `check` is a cheap self-check so a scatter never parses a garbage header
/// (fuzzed tags, truncated frames); finalize() computes it, valid() verifies.
struct ChunkHeader {
  std::uint32_t phase_id = 0;       // global BSP phase counter
  std::uint32_t payload_bytes = 0;  // bytes following the header
  std::uint32_t base_pos = 0;       // first shared-list position covered
  std::uint32_t span = 0;           // positions covered from base_pos
  std::uint16_t chunk_idx = 0;      // this chunk's index (diagnostic)
  std::uint16_t num_chunks = 1;     // total chunks this phase; 0 = streaming
                                    // chunk, the total arrives in a tail
  std::uint8_t format = 0;          // WireFormat tag
  std::uint8_t flags = 0;           // kFlag* bits
  std::uint16_t check = 0;          // Fletcher-style header self-check
  std::uint32_t trace_id = 0;       // causal-trace context (telemetry);
                                    // 0 = this message is not sampled
  std::uint8_t trace_hop = 0;       // hop counter stamped by the sender
  std::uint8_t reserved[3] = {0, 0, 0};

  void finalize() noexcept { check = compute_check(); }

  /// True when the self-check matches and every tagged field is parsable.
  bool valid() const noexcept {
    return check == compute_check() &&
           format < static_cast<std::uint8_t>(kWireFormatCount) &&
           (flags & ~kFlagMaskKnown) == 0;
  }

 private:
  std::uint16_t compute_check() const noexcept {
    // Fletcher-16 over every header byte except the check field itself.
    ChunkHeader copy;
    std::memcpy(&copy, this, sizeof(ChunkHeader));
    copy.check = 0;
    unsigned char bytes[sizeof(ChunkHeader)];
    std::memcpy(bytes, &copy, sizeof(copy));
    std::uint32_t s1 = 0xA5, s2 = 0xC3;
    for (const unsigned char b : bytes) {
      s1 = (s1 + b) % 255;
      s2 = (s2 + s1) % 255;
    }
    return static_cast<std::uint16_t>((s2 << 8) | s1);
  }
};

static_assert(sizeof(ChunkHeader) == 32, "wire layout is part of the ABI");

inline constexpr std::size_t kChunkHeaderBytes = sizeof(ChunkHeader);

/// A received message surfaced to the engine. `release()` must be called
/// exactly once after the data has been consumed; it recycles backend
/// resources (LCI packets, probe receive buffers, RMA exposure epochs).
struct InMessage {
  int src = -1;
  const std::byte* data = nullptr;  // starts at the ChunkHeader
  std::size_t size = 0;             // header + payload bytes
  std::function<void()> release;

  /// Copied out by value: probe aggregates cut record views at arbitrary
  /// byte offsets, so the header may not be aligned for an in-place read.
  ChunkHeader header() const {
    ChunkHeader h;
    std::memcpy(&h, data, sizeof(h));
    return h;
  }
  const std::byte* payload() const { return data + kChunkHeaderBytes; }
  std::size_t payload_size() const { return size - kChunkHeaderBytes; }
};

}  // namespace lcr::comm
