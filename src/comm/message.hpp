// Engine-level message framing shared by every communication backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace lcr::comm {

/// Header prepended to every engine message (one chunk of a phase's payload
/// from one host to another).
struct ChunkHeader {
  std::uint32_t phase_id = 0;   // global BSP phase counter
  std::uint16_t chunk_idx = 0;  // this chunk's index
  std::uint16_t num_chunks = 1; // total chunks from this sender this phase
  std::uint32_t payload_bytes = 0;  // bytes following the header
};

inline constexpr std::size_t kChunkHeaderBytes = sizeof(ChunkHeader);

/// A received message surfaced to the engine. `release()` must be called
/// exactly once after the data has been consumed; it recycles backend
/// resources (LCI packets, probe receive buffers, RMA exposure epochs).
struct InMessage {
  int src = -1;
  const std::byte* data = nullptr;  // starts at the ChunkHeader
  std::size_t size = 0;             // header + payload bytes
  std::function<void()> release;

  const ChunkHeader& header() const {
    return *reinterpret_cast<const ChunkHeader*>(data);
  }
  const std::byte* payload() const { return data + kChunkHeaderBytes; }
  std::size_t payload_size() const { return size - kChunkHeaderBytes; }
};

}  // namespace lcr::comm
