#include "comm/lci_backend.hpp"

#include <algorithm>
#include <mutex>

#include "comm/direct.hpp"
#include "runtime/cpu_relax.hpp"

namespace lcr::comm {

namespace {
constexpr std::uint32_t kDataTag = 7;
}

LciBackend::LciBackend(fabric::Fabric& fabric, int rank,
                       const BackendOptions& options)
    : queue_(fabric, static_cast<fabric::Rank>(rank),
             lci::QueueConfig{
                 lci::DeviceConfig{/*tx_packets=*/64,
                                   /*rx_packets=*/options.lci_rx_packets != 0
                                       ? options.lci_rx_packets
                                       : fabric.config().default_rx_buffers,
                                   /*pool_caches=*/8},
                 options.tracker,
                 /*lanes=*/options.lci_lanes,
                 /*lane_depth=*/256}),
      tracker_(options.tracker) {
  // Must be installed before any concurrent progress driver exists: the
  // handler slot is written once here and only read afterwards.
  queue_.set_signal_handler([this](const fabric::MsgMeta& meta) {
    DirectSignal sig = unpack_direct_signal(static_cast<int>(meta.src),
                                            meta.imm, meta.imm2);
    std::lock_guard<rt::Spinlock> guard(direct_lock_);
    direct_signals_.push_back(sig);
  });
  if (options.lci_servers > 0) {
    servers_ =
        std::make_unique<lci::ProgressServerGroup>(queue_, options.lci_servers);
    servers_->start();
  }
}

LciBackend::~LciBackend() {
  // Stop the servers and drain staged lane ops while the in-flight send
  // slots they reference are still alive, then reap.
  if (servers_ != nullptr) servers_->stop();
  queue_.progress_all();
  reap_sends();
}

void LciBackend::begin_phase(const PhaseSpec&) {}

bool LciBackend::try_send(int dst, std::vector<std::byte>& payload) {
  auto slot = std::make_unique<SendSlot>();
  // SEND-ENQ: a false return is the non-fatal resource-exhaustion signal;
  // surface it so the caller can receive/scatter (back pressure), not spin.
  if (!queue_.send_enq(payload.data(), payload.size(),
                       static_cast<fabric::Rank>(dst), kDataTag, slot->req)) {
    return false;
  }
  slot->bytes = payload.size();
  slot->payload = std::move(payload);
  {
    std::lock_guard<rt::Spinlock> guard(send_lock_);
    in_flight_sends_.push_back(std::move(slot));
  }
  reap_sends();
  return true;
}

BufferLease LciBackend::acquire(int dst, std::size_t max_bytes) {
  if (max_bytes <= queue_.eager_limit()) {
    if (lci::Packet* p = queue_.lease_tx_packet(); p != nullptr) {
      BufferLease lease;
      lease.data = p->data;
      lease.capacity = std::min(p->capacity, queue_.eager_limit());
      lease.pooled = true;
      lease.token = p;
      return lease;
    }
    // Pool at the lease floor: fall through to a heap lease rather than
    // making the caller spin; commit() then pays one copy via try_send.
  }
  return Backend::acquire(dst, max_bytes);
}

bool LciBackend::commit(int dst, BufferLease& lease, std::size_t bytes) {
  if (!lease.pooled) return Backend::commit(dst, lease, bytes);
  auto* p = static_cast<lci::Packet*>(lease.token);
  auto slot = std::make_unique<SendSlot>();
  slot->bytes = bytes;
  if (!queue_.send_leased(p, bytes, static_cast<fabric::Rank>(dst), kDataTag,
                          slot->req)) {
    return false;  // packet stays leased, payload intact; caller retries
  }
  {
    std::lock_guard<rt::Spinlock> guard(send_lock_);
    in_flight_sends_.push_back(std::move(slot));
  }
  reap_sends();
  lease = BufferLease{};
  return true;
}

void LciBackend::abandon(BufferLease& lease) {
  if (lease.pooled)
    queue_.return_tx_packet(static_cast<lci::Packet*>(lease.token));
  lease = BufferLease{};
}

void LciBackend::reap_sends() {
  std::lock_guard<rt::Spinlock> guard(send_lock_);
  while (!in_flight_sends_.empty() && in_flight_sends_.front()->req.done()) {
    if (tracker_ != nullptr)
      tracker_->on_free(in_flight_sends_.front()->bytes);
    in_flight_sends_.pop_front();
  }
}

void LciBackend::flush() {
  // All sends were injected synchronously (eager) or are progressing
  // (rendezvous); nothing to force. Reap what has finished.
  reap_sends();
}

bool LciBackend::try_recv(InMessage& out) {
  // First: any rendezvous receive whose RDMA completed?
  {
    std::lock_guard<rt::Spinlock> guard(rdv_lock_);
    for (auto it = pending_rdv_.begin(); it != pending_rdv_.end(); ++it) {
      if ((*it)->done()) {
        lci::Request* req = it->release();
        pending_rdv_.erase(it);
        out.src = static_cast<int>(req->peer);
        out.data = static_cast<const std::byte*>(req->buffer);
        out.size = req->size;
        out.release = [this, req] {
          queue_.release(*req);
          delete req;
        };
        return true;
      }
    }
  }

  // RECV-DEQ: first-packet policy, any source, any tag.
  auto req = std::make_unique<lci::Request>();
  if (!queue_.recv_deq(*req)) return false;

  if (!req->done()) {
    // Rendezvous in progress: park it until the server's RDMA notification.
    std::lock_guard<rt::Spinlock> guard(rdv_lock_);
    pending_rdv_.push_back(std::move(req));
    return false;
  }

  lci::Request* raw = req.release();
  out.src = static_cast<int>(raw->peer);
  out.data = static_cast<const std::byte*>(raw->buffer);
  out.size = raw->size;
  out.release = [this, raw] {
    queue_.release(*raw);
    delete raw;
  };
  return true;
}

void LciBackend::progress() {
  queue_.progress();
  reap_sends();
}

void LciBackend::end_phase() { reap_sends(); }

DirectRegion LciBackend::register_direct_region(int /*src*/, std::byte* base,
                                                std::size_t bytes,
                                                std::uint32_t generation) {
  DirectRegion r;
  r.token = static_cast<std::uint64_t>(
      queue_.device().register_memory(base, bytes));
  r.capacity = bytes;
  r.generation = generation;
  region_book_.add(r.token, base, bytes, generation);
  return r;
}

void LciBackend::release_direct_region(int /*src*/,
                                       const DirectRegion& region) {
  if (!region.valid()) return;
  region_book_.remove(region.token);
  queue_.device().deregister_memory(
      static_cast<fabric::RKey>(region.token));
}

DirectPutStatus LciBackend::direct_put(int dst, const DirectRegion& region,
                                       const void* payload, std::size_t bytes,
                                       std::uint32_t phase_id,
                                       std::uint32_t pattern_key) {
  if (!region.valid() || bytes > region.capacity)
    return DirectPutStatus::Unavailable;
  fabric::MsgMeta meta;
  meta.kind = static_cast<std::uint8_t>(lci::PacketType::SIGNAL);
  meta.size = static_cast<std::uint32_t>(bytes);
  meta.imm = pack_direct_imm(region.generation, phase_id);
  meta.imm2 = pack_direct_imm2(pattern_key,
                               static_cast<std::uint32_t>(bytes));
  // The reliability layer snapshots the payload for retransmission, so the
  // caller's staging buffer is free as soon as this returns Ok.
  const fabric::PostResult r = queue_.device().lc_put_ex(
      static_cast<fabric::Rank>(dst), static_cast<fabric::RKey>(region.token),
      /*offset=*/0, payload, bytes, /*notify=*/true, meta);
  switch (r) {
    case fabric::PostResult::Ok:
      return DirectPutStatus::Ok;
    case fabric::PostResult::NoRxBuffer:
    case fabric::PostResult::Throttled:
    case fabric::PostResult::CqFull:
    case fabric::PostResult::RetransmitFull:
      return DirectPutStatus::Retry;
    default:
      // Invalid (stale rkey after a revive) / TooLarge / Down: this put can
      // never land - the caller reverts to the two-sided path.
      return DirectPutStatus::Unavailable;
  }
}

bool LciBackend::poll_direct(DirectSignal& out) {
  std::lock_guard<rt::Spinlock> guard(direct_lock_);
  if (direct_signals_.empty()) return false;
  out = direct_signals_.front();
  direct_signals_.pop_front();
  return true;
}

}  // namespace lcr::comm
