// Membership / epoch layer: who is alive, who is suspected, and the
// cluster-wide rendezvous that re-admits a restarted rank.
//
// Two kinds of input feed it:
//   * ground truth from the fabric's fail-stop kill layer (report_kill) -
//     deterministic, logged into the recovery-event trace;
//   * detector reports from the reliability watchdog (report_suspect) -
//     timing-dependent, recorded as peer state but never logged, so the
//     recovery trace stays bit-identical across runs with the same seed.
//
// A pending failure aborts every host's collectives (the cluster's OOB
// barrier and allreduces check failure_pending()); host threads unwind to
// the runner, rendezvous at recovery_barrier(), and the leader (host 0 -
// OS threads survive a *simulated* host death) revives the victim under a
// new fabric epoch, resets the torn collectives and clears the failure.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/barrier.hpp"

namespace lcr::comm {

/// Thrown on the victim's host thread: this simulated host died.
class HostKilledError : public std::runtime_error {
 public:
  explicit HostKilledError(int host_)
      : std::runtime_error("host " + std::to_string(host_) + " killed"),
        host(host_) {}
  int host;
};

/// Thrown on surviving host threads: a peer died mid-computation and the
/// cluster must roll back together.
class PeerFailedError : public std::runtime_error {
 public:
  explicit PeerFailedError(int peer_)
      : std::runtime_error("peer " + std::to_string(peer_) + " failed"),
        peer(peer_) {}
  int peer;
};

enum class PeerState : std::uint8_t { Alive, Slow, SuspectedDead, Dead };

const char* to_string(PeerState s);

/// One entry in the deterministic recovery trace.
struct RecoveryEvent {
  enum class Kind : std::uint8_t { Kill, Rollback, Readmit };
  Kind kind = Kind::Kill;
  int host = -1;            // killed / readmitted host (Rollback: -1)
  std::int64_t round = -1;  // Rollback: target round; else -1
  std::uint32_t epoch = 0;  // fabric epoch after the event

  bool operator==(const RecoveryEvent& o) const {
    return kind == o.kind && host == o.host && round == o.round &&
           epoch == o.epoch;
  }
};

std::string to_string(const RecoveryEvent& ev);

class Membership {
 public:
  explicit Membership(std::size_t num_hosts);

  std::size_t num_hosts() const noexcept { return n_; }

  /// True while a kill awaits cluster-wide recovery. Collectives poll this
  /// to abort instead of deadlocking on a dead participant.
  bool failure_pending() const noexcept {
    return failure_pending_.load(std::memory_order_acquire);
  }

  PeerState state(std::size_t host) const;

  /// Ground truth from the fabric kill layer: `host` is dead. Sets the
  /// pending failure and logs a Kill event.
  void report_kill(int host);

  /// Detector report (reliability watchdog): `reporter` suspects `peer`.
  /// Upgrades Alive -> SuspectedDead; never overrides Dead and is not
  /// logged (detection timing is nondeterministic).
  void report_suspect(int reporter, int peer);

  /// Cluster-wide recovery rendezvous. Every host thread calls this after
  /// unwinding; `leader_fix` runs on host 0 exactly once between arrival
  /// and release (revive the victim, bump the epoch, reset torn barriers,
  /// log Rollback/Readmit). clear_failure() must be called inside it.
  void recovery_barrier(std::size_t self,
                        const std::function<void()>& leader_fix);

  /// Leader-side helpers for use inside recovery_barrier's leader_fix.
  void mark_alive(std::size_t host);
  void clear_failure() {
    failure_pending_.store(false, std::memory_order_release);
  }

  void log_event(const RecoveryEvent& ev);
  std::vector<RecoveryEvent> events() const;

  std::uint64_t kills() const noexcept {
    return kills_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const noexcept {
    return recoveries_.load(std::memory_order_relaxed);
  }
  /// State-transition counters (Alive -> SuspectedDead upgrades that stuck,
  /// and non-Alive -> Alive readmissions). Exposed as member.* probes.
  std::uint64_t suspects() const noexcept {
    return suspects_.load(std::memory_order_relaxed);
  }
  std::uint64_t readmits() const noexcept {
    return readmits_.load(std::memory_order_relaxed);
  }

  /// Raw counter storage for telemetry probe registration.
  std::atomic<std::uint64_t>& kills_counter() noexcept { return kills_; }
  std::atomic<std::uint64_t>& recoveries_counter() noexcept {
    return recoveries_;
  }
  std::atomic<std::uint64_t>& suspects_counter() noexcept { return suspects_; }
  std::atomic<std::uint64_t>& readmits_counter() noexcept { return readmits_; }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> states_;
  std::atomic<bool> failure_pending_{false};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> suspects_{0};
  std::atomic<std::uint64_t> readmits_{0};

  mutable std::mutex events_lock_;
  std::vector<RecoveryEvent> events_;

  rt::SenseBarrier enter_;
  rt::SenseBarrier exit_;
};

}  // namespace lcr::comm
