#include "comm/mpi_probe_backend.hpp"

#include <cstring>
#include <mutex>

#include "comm/direct.hpp"
#include "mpilite/personality.hpp"
#include "runtime/timer.hpp"

namespace lcr::comm {

namespace {

constexpr int kDataTag = 7;
constexpr int kDirectTag = 8;

/// Wire prefix of an emulated direct put: the state a NIC would carry in
/// the work request (target token) and the notification immediates.
struct DirectFrame {
  std::uint64_t token;
  std::uint64_t imm;   // (generation << 32) | phase_id
  std::uint64_t imm2;  // (pattern_key << 32) | bytes
};

mpi::Personality personality_by_name(const std::string& name) {
  if (name == "intelmpi") return mpi::intelmpi_like();
  if (name == "mvapich") return mpi::mvapich_like();
  if (name == "openmpi") return mpi::openmpi_like();
  return mpi::default_personality();
}

}  // namespace

MpiProbeBackend::MpiProbeBackend(fabric::Fabric& fabric, int rank,
                                 const BackendOptions& options)
    : comm_(fabric, rank, personality_by_name(options.mpi_personality),
            mpi::ThreadLevel::Funneled,
            mpi::CommConfig{fabric.config().default_rx_buffers,
                            /*internal_tracker=*/nullptr}),
      tracker_(options.tracker),
      timeout_ns_(options.aggregation_timeout_us * 1000),
      agg_(fabric.num_ranks()) {}

MpiProbeBackend::~MpiProbeBackend() = default;

void MpiProbeBackend::begin_phase(const PhaseSpec&) {}

void MpiProbeBackend::append_record(AggBuffer& agg,
                                    const std::vector<std::byte>& payload) {
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  const std::size_t old = agg.bytes.size();
  agg.bytes.resize(old + sizeof(size) + payload.size());
  std::memcpy(agg.bytes.data() + old, &size, sizeof(size));
  std::memcpy(agg.bytes.data() + old + sizeof(size), payload.data(),
              payload.size());
  if (tracker_ != nullptr)
    tracker_->on_alloc(sizeof(size) + payload.size());
  if (agg.oldest_ns == 0) agg.oldest_ns = rt::now_ns();
}

void MpiProbeBackend::flush_agg(int dst) {
  AggBuffer& agg = agg_[static_cast<std::size_t>(dst)];
  if (agg.bytes.empty()) return;
  outstanding_.emplace_back();
  OutstandingSend& out = outstanding_.back();
  out.bytes = std::move(agg.bytes);
  agg.bytes.clear();
  agg.oldest_ns = 0;
  out.req = comm_.isend(out.bytes.data(), out.bytes.size(), dst, kDataTag);
}

bool MpiProbeBackend::try_send(int dst, std::vector<std::byte>& payload) {
  // MPI never pushes back: everything is accepted and buffered.
  AggBuffer& agg = agg_[static_cast<std::size_t>(dst)];
  if (payload.size() >= comm_.eager_limit()) {
    // Large items are not aggregated (the buffered layer only batches items
    // below the eager-send limit); flush what's pending to preserve order,
    // then send the item as its own record.
    append_record(agg, payload);
    flush_agg(dst);
  } else {
    append_record(agg, payload);
    if (agg.bytes.size() >= comm_.eager_limit()) flush_agg(dst);
  }
  // The record was copied into the aggregate (tracked above); the caller's
  // gather buffer is done.
  if (tracker_ != nullptr) tracker_->on_free(payload.size());
  payload.clear();
  payload.shrink_to_fit();
  return true;
}

void MpiProbeBackend::flush() {
  for (int dst = 0; dst < comm_.size(); ++dst) flush_agg(dst);
}

void MpiProbeBackend::reap_outstanding() {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (comm_.test(it->req)) {
      if (tracker_ != nullptr) tracker_->on_free(it->bytes.size());
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

void MpiProbeBackend::pump_receives() {
  // MPI_Iprobe with wildcards, then MPI_Irecv of the discovered size.
  mpi::Status st;
  while (comm_.iprobe(mpi::kAnySource, kDataTag, &st)) {
    auto buf = std::make_shared<RecvBuf>();
    buf->bytes.resize(st.size);
    buf->src = st.source;
    if (tracker_ != nullptr) tracker_->on_alloc(st.size);
    pending_recvs_.push_back(PendingRecv{
        buf, comm_.irecv(buf->bytes.data(), st.size, st.source, st.tag)});
  }
  // Emulated direct puts arrive on their own tag and never enter the
  // record/aggregate path: the pump performs the region write itself.
  while (comm_.iprobe(mpi::kAnySource, kDirectTag, &st)) {
    auto buf = std::make_shared<RecvBuf>();
    buf->bytes.resize(st.size);
    buf->src = st.source;
    pending_direct_.push_back(PendingRecv{
        buf, comm_.irecv(buf->bytes.data(), st.size, st.source, st.tag)});
  }
  for (auto it = pending_recvs_.begin(); it != pending_recvs_.end();) {
    if (comm_.test(it->req)) {
      split_records(it->buf);
      it = pending_recvs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_direct_.begin(); it != pending_direct_.end();) {
    if (comm_.test(it->req)) {
      deliver_direct(it->buf);
      it = pending_direct_.erase(it);
    } else {
      ++it;
    }
  }
}

void MpiProbeBackend::deliver_direct(const std::shared_ptr<RecvBuf>& buf) {
  if (buf->bytes.size() < sizeof(DirectFrame)) return;  // malformed: drop
  DirectFrame frame;
  std::memcpy(&frame, buf->bytes.data(), sizeof(frame));
  DirectSignal sig = unpack_direct_signal(buf->src, frame.imm, frame.imm2);
  const std::size_t payload = buf->bytes.size() - sizeof(frame);
  if (payload != sig.bytes) return;  // truncated frame: drop
  // The validation ladder a NIC walks in hardware: token must be live, the
  // claimed generation must match the registration, the write must fit the
  // registered extent. Only then does the payload touch memory.
  lci::RegionBook::Entry entry;
  if (region_book_.note_put(frame.token, 0, payload, sig.generation) !=
          lci::RegionBook::Verdict::Ok ||
      !region_book_.lookup(frame.token, entry))
    return;  // rejected puts are tallied in the book and never land
  std::memcpy(entry.base, buf->bytes.data() + sizeof(frame), payload);
  std::lock_guard<rt::Spinlock> guard(direct_lock_);
  direct_signals_.push_back(sig);
}

void MpiProbeBackend::split_records(std::shared_ptr<RecvBuf> buf) {
  std::size_t off = 0;
  rt::MemTracker* tracker = tracker_;
  const std::size_t total = buf->bytes.size();
  while (off < buf->bytes.size()) {
    std::uint32_t size = 0;
    std::memcpy(&size, buf->bytes.data() + off, sizeof(size));
    off += sizeof(size);
    InMessage msg;
    msg.src = buf->src;
    msg.data = buf->bytes.data() + off;
    msg.size = size;
    // Shared ownership: the aggregate is freed (and accounted) when the last
    // record view is released.
    msg.release = [buf, tracker, total] {
      if (buf.use_count() == 1 && tracker != nullptr) tracker->on_free(total);
    };
    ready_.push_back(std::move(msg));
    off += size;
  }
}

bool MpiProbeBackend::try_recv(InMessage& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void MpiProbeBackend::progress() {
  // Timeout-driven flush of aged sub-eager aggregates ("until the oldest
  // buffered message times out").
  const std::uint64_t now = rt::now_ns();
  for (int dst = 0; dst < comm_.size(); ++dst) {
    AggBuffer& agg = agg_[static_cast<std::size_t>(dst)];
    if (!agg.bytes.empty() && now - agg.oldest_ns >= timeout_ns_)
      flush_agg(dst);
  }
  reap_outstanding();
  pump_receives();
}

void MpiProbeBackend::end_phase() {
  flush();
  reap_outstanding();
}

DirectRegion MpiProbeBackend::register_direct_region(
    int /*src*/, std::byte* base, std::size_t bytes,
    std::uint32_t generation) {
  DirectRegion r;
  {
    std::lock_guard<rt::Spinlock> guard(direct_lock_);
    r.token = next_direct_token_++;
  }
  r.capacity = bytes;
  r.generation = generation;
  region_book_.add(r.token, base, bytes, generation);
  return r;
}

void MpiProbeBackend::release_direct_region(int /*src*/,
                                            const DirectRegion& region) {
  if (!region.valid()) return;
  region_book_.remove(region.token);
}

DirectPutStatus MpiProbeBackend::direct_put(int dst,
                                            const DirectRegion& region,
                                            const void* payload,
                                            std::size_t bytes,
                                            std::uint32_t phase_id,
                                            std::uint32_t pattern_key) {
  if (!region.valid() || bytes > region.capacity)
    return DirectPutStatus::Unavailable;
  DirectFrame frame;
  frame.token = region.token;
  frame.imm = pack_direct_imm(region.generation, phase_id);
  frame.imm2 = pack_direct_imm2(pattern_key, static_cast<std::uint32_t>(bytes));
  outstanding_.emplace_back();
  OutstandingSend& out = outstanding_.back();
  out.bytes.resize(sizeof(frame) + bytes);
  std::memcpy(out.bytes.data(), &frame, sizeof(frame));
  std::memcpy(out.bytes.data() + sizeof(frame), payload, bytes);
  // The staging copy is comm-buffer working set; reap_outstanding frees
  // every completed OutstandingSend, so the alloc must be tracked here or
  // the tracker's current-bytes counter underflows.
  if (tracker_ != nullptr) tracker_->on_alloc(out.bytes.size());
  out.req = comm_.isend(out.bytes.data(), out.bytes.size(), dst, kDirectTag);
  return DirectPutStatus::Ok;  // MPI never pushes back: accepted and buffered
}

bool MpiProbeBackend::poll_direct(DirectSignal& out) {
  std::lock_guard<rt::Spinlock> guard(direct_lock_);
  if (direct_signals_.empty()) return false;
  out = direct_signals_.front();
  direct_signals_.pop_front();
  return true;
}

}  // namespace lcr::comm
