// Out-of-band descriptor exchange for the direct-write path (DESIGN.md §15).
//
// Real clusters exchange RMA region descriptors (rkeys) through the job
// launcher / PMI layer. The simulated cluster's stand-in is this directory:
// a target host registers a per-source region with its backend and publishes
// the resulting descriptor under (target, src, pattern_key); an origin looks
// the descriptor up right before a dense round and falls back to the
// two-sided path on a miss. Generations are handed out by the directory so
// every registration cluster-wide carries a unique, monotonically increasing
// epoch tag: a put built against a retracted descriptor can always be told
// apart from one aimed at the live registration, even if the target reused
// the same buffer address.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <tuple>

#include "comm/backend.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::comm {

// The put notification's immediates carry the completion-tracking state so
// the target never reads a header to account a put: imm = (generation <<
// 32) | phase_id, imm2 = (pattern_key << 32) | bytes.
inline std::uint64_t pack_direct_imm(std::uint32_t generation,
                                     std::uint32_t phase_id) noexcept {
  return (static_cast<std::uint64_t>(generation) << 32) | phase_id;
}

inline std::uint64_t pack_direct_imm2(std::uint32_t pattern_key,
                                      std::uint32_t bytes) noexcept {
  return (static_cast<std::uint64_t>(pattern_key) << 32) | bytes;
}

inline DirectSignal unpack_direct_signal(int src, std::uint64_t imm,
                                         std::uint64_t imm2) noexcept {
  DirectSignal sig;
  sig.src = src;
  sig.generation = static_cast<std::uint32_t>(imm >> 32);
  sig.phase_id = static_cast<std::uint32_t>(imm);
  sig.pattern_key = static_cast<std::uint32_t>(imm2 >> 32);
  sig.bytes = static_cast<std::uint32_t>(imm2);
  return sig;
}

class DirectDirectory {
 public:
  /// Hands out the next cluster-unique generation tag (starts at 1; 0 means
  /// "never registered" and is rejected by every validator).
  std::uint32_t next_generation() noexcept;

  /// Publishes `region` as the put target on host `target` for origin `src`
  /// under `pattern_key`, replacing any previous registration (a rebuilt
  /// engine republishes with a fresh generation).
  void publish(int target, int src, std::uint32_t pattern_key,
               const DirectRegion& region);

  /// Origin-side lookup; false = not (yet) published, use two-sided.
  bool lookup(int target, int src, std::uint32_t pattern_key,
              DirectRegion& out) const;

  /// Removes the registration, but only if it still carries `generation` -
  /// a stale retract (an old engine tearing down after its successor
  /// already republished) must not erase the live descriptor.
  void retract(int target, int src, std::uint32_t pattern_key,
               std::uint32_t generation);

  /// Drops every registration targeting `target` (fail-stop cleanup, so
  /// origins stop putting at a dead host's regions immediately).
  void retract_target(int target);

 private:
  using Key = std::tuple<int, int, std::uint32_t>;
  mutable rt::Spinlock lock_;
  std::map<Key, DirectRegion> regions_;
  std::atomic<std::uint32_t> next_generation_{0};
};

}  // namespace lcr::comm
