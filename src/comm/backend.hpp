// Communication-backend interface for the gather-communicate-scatter runtime.
//
// The Abelian engine (paper Fig. 2) drives one of three interchangeable
// backends: LCI (Section III-D), MPI-Probe (III-B) or MPI-RMA (III-C). The
// interface captures exactly the degrees of freedom the paper contrasts:
//
//  * thread_safe(): may compute threads send/receive directly? True for LCI
//    ("a thread can send a serialized message through SEND-ENQ and use
//    RECV-DEQ for probing incoming messages"); false for the MPI layers,
//    where a dedicated communication thread owns all MPI calls.
//  * chunk_bytes(): preferred message chunking. The MPI/LCI layers split a
//    peer's payload into eager-limit-sized chunks (the many-small-irregular-
//    messages regime); MPI-RMA sends one put per peer into a preallocated
//    worst-case window slot (chunk_bytes() == 0).
//  * begin_phase/flush/end_phase: BSP phase hooks; only RMA uses them
//    heavily (window creation, access/exposure epochs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/message.hpp"
#include "runtime/mem_tracker.hpp"

namespace lcr::fabric {
class Fabric;
}

namespace lcr::comm {

/// Description of one BSP communication phase, identical on all hosts.
struct PhaseSpec {
  std::uint32_t phase_id = 0;
  /// Stable key identifying the communication pattern x datatype; the RMA
  /// backend keeps one preallocated window set per key ("for each datatype
  /// ... for each pattern of communication").
  std::uint32_t pattern_key = 0;
  std::vector<int> send_to;
  std::vector<int> recv_from;
  /// Worst-case bytes (all nodes active) per peer, indexed by rank; used by
  /// RMA to size windows.
  std::vector<std::size_t> max_send_bytes;
  std::vector<std::size_t> max_recv_bytes;
};

/// Engine policy for the one-sided direct-write sync path (DESIGN.md §15).
enum class DirectWriteMode : std::uint8_t {
  Off,     ///< always two-sided (the pre-PR-8 pipeline)
  Auto,    ///< direct-write a (peer, round) when its payload is dense
  Forced,  ///< direct-write every non-empty (peer, round) with a region
};

const char* to_string(DirectWriteMode m);

/// Resolves the configured mode against the LCR_DIRECT_WRITE environment
/// override (off | auto | forced); the env var wins when set and valid.
DirectWriteMode resolve_direct_write(DirectWriteMode cfg);

/// A remotely writable per-source region descriptor, exchanged out of band
/// (the cluster's DirectDirectory stands in for the PMI rkey exchange).
/// `generation` is the epoch tag of DESIGN.md §15: bumped on every
/// (re)registration so a put aimed at a dead registration is detectable
/// even if the address range was reused.
struct DirectRegion {
  std::uint64_t token = 0;  ///< backend handle (fabric rkey / registry slot)
  std::size_t capacity = 0;
  std::uint32_t generation = 0;
  bool valid() const noexcept { return capacity != 0; }
};

/// Completion notification surfaced on the target after one direct put has
/// landed: counter-style accounting replaces per-message headers.
struct DirectSignal {
  int src = -1;
  std::uint32_t phase_id = 0;
  std::uint32_t pattern_key = 0;
  std::uint32_t generation = 0;
  std::uint32_t bytes = 0;
};

/// Outcome of a direct_put attempt. Retry = transient resource exhaustion
/// (make progress and call again); Unavailable = this put cannot succeed
/// (stale rkey after a revive, dead peer, unsupported backend) and the
/// caller must fall back to the two-sided path for this (peer, round).
enum class DirectPutStatus : std::uint8_t { Ok, Retry, Unavailable };

/// A writable send buffer handed out by a backend so gather can serialize
/// records (and the chunk header) directly into wire memory - an LCI packet
/// from the pre-registered pool, or plain heap for backends without native
/// buffers. Move-only; exactly one of commit()/abandon() must consume it.
struct BufferLease {
  std::byte* data = nullptr;
  std::size_t capacity = 0;
  bool pooled = false;   ///< true when `data` is backend-owned wire memory
  void* token = nullptr; ///< backend-private handle (e.g. the lci::Packet*)
  std::vector<std::byte> heap;  ///< backing store for the fallback lease

  explicit operator bool() const noexcept { return data != nullptr; }
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;
  /// May compute threads call try_send directly? True for LCI (SEND-ENQ is
  /// thread-safe) and for MPI-RMA ("the main compute thread ... will
  /// instead perform RMA operations", Section III-C); false for MPI-Probe
  /// (FUNNELED: the dedicated communication thread owns every MPI call).
  virtual bool thread_safe_send() const = 0;
  /// May compute threads call try_recv directly? True only for LCI
  /// (RECV-DEQ); the MPI layers receive on the communication thread.
  virtual bool thread_safe_recv() const = 0;
  virtual std::size_t chunk_bytes() const = 0;

  virtual void begin_phase(const PhaseSpec& spec) = 0;

  /// Attempts to hand one framed message (ChunkHeader already in `payload`)
  /// to the network layer. On success the buffer is moved out of `payload`
  /// and the backend reports its eventual free to the tracker. Returns false
  /// - leaving `payload` intact - when resources are exhausted; the caller
  /// must make progress (receive/scatter) and retry. This is LCI's
  /// back-pressure surface; the MPI backends always accept and buffer
  /// internally instead (the "lack of back pressure" of Section III-B).
  /// If !thread_safe(), only the communication thread may call.
  virtual bool try_send(int dst, std::vector<std::byte>& payload) = 0;

  /// Leases a writable buffer of at least `max_bytes` for a message to
  /// `dst`. The default implementation hands out heap memory that commit()
  /// forwards through try_send(); LCI overrides it to lease a registered
  /// packet so the payload is serialized in place (zero-copy). Thread-safety
  /// matches try_send: if !thread_safe_send(), comm thread only.
  virtual BufferLease acquire(int dst, std::size_t max_bytes);

  /// Submits the first `bytes` of a leased buffer (header already written at
  /// offset 0). Returns false - leaving the lease intact for retry - when
  /// the network layer is saturated; the caller must make progress and call
  /// again. On success the lease is emptied and ownership transfers.
  virtual bool commit(int dst, BufferLease& lease, std::size_t bytes);

  /// Returns an unused lease to the backend (e.g. the range was clean).
  virtual void abandon(BufferLease& lease);

  /// Called once per phase by the communication thread after every send for
  /// the phase has been issued.
  virtual void flush() = 0;

  /// Polls for an arrived message. If !thread_safe(), only the communication
  /// thread may call.
  virtual bool try_recv(InMessage& out) = 0;

  /// One progress step; called in a loop by the communication thread.
  virtual void progress() = 0;

  virtual void end_phase() = 0;

  // --- One-sided direct-write path (DESIGN.md §15) -----------------------
  // Dense rounds bypass the chunked two-sided pipeline: the target registers
  // a per-source region once, origins mirror whole reduction payloads into
  // it with a single put, and completion is counted via DirectSignals
  // instead of per-message headers. Backends that cannot provide the path
  // keep the defaults (unsupported) and the engine stays two-sided.

  /// Does this backend implement the direct-write path?
  virtual bool supports_direct_write() const { return false; }

  /// Registers `bytes` at `base` as a put target for peer `src` and tags it
  /// with `generation`. Thread-safe (no network calls). Returns an invalid
  /// region when the backend does not support direct writes.
  virtual DirectRegion register_direct_region(int src, std::byte* base,
                                              std::size_t bytes,
                                              std::uint32_t generation);

  /// Tears down a registration; in-flight puts at the old token resolve
  /// invalid at the fabric (tokens are never reused). Thread-safe.
  virtual void release_direct_region(int src, const DirectRegion& region);

  /// One-sided write of `bytes` from `payload` into peer `dst`'s region at
  /// offset 0, followed by a completion signal carrying (phase_id,
  /// pattern_key, region.generation, bytes). The payload is consumed at the
  /// call (the reliability layer snapshots it for retransmission), so the
  /// caller's buffer is reusable as soon as this returns Ok. Thread-safety
  /// matches thread_safe_send().
  virtual DirectPutStatus direct_put(int dst, const DirectRegion& region,
                                     const void* payload, std::size_t bytes,
                                     std::uint32_t phase_id,
                                     std::uint32_t pattern_key);

  /// Pops one landed-put notification. Thread-safe on every backend (the
  /// signal queue is backend-internal); signals become visible only after
  /// the put's payload is fully in the region.
  virtual bool poll_direct(DirectSignal& out);
};

/// Which backend to instantiate (bench/test parameter).
enum class BackendKind : std::uint8_t { Lci, MpiProbe, MpiRma };

const char* to_string(BackendKind k);

struct BackendOptions {
  rt::MemTracker* tracker = nullptr;
  /// MPI personality name: "default", "intelmpi", "mvapich", "openmpi".
  std::string mpi_personality = "default";
  /// MPI-Probe buffered-layer flush timeout (us) for sub-eager aggregates.
  std::uint64_t aggregation_timeout_us = 50;
  /// LCI receive-window packets; 0 = use the fabric's default_rx_buffers.
  std::size_t lci_rx_packets = 0;
  /// LCI injection lanes (SPSC rings sender threads stage into). 0 = legacy
  /// inline injection; size to the number of concurrently-sending threads.
  std::size_t lci_lanes = 0;
  /// Dedicated LCI progress servers owned by the backend, sharding lanes and
  /// peer ranks. 0 = none: progress happens only on the threads that call
  /// Backend::progress() (the engine comm/server thread assist path).
  std::size_t lci_servers = 0;
  /// Cluster failure hook: returns true while a host kill awaits recovery.
  /// Backends with internally blocking synchronization (MPI-RMA epochs)
  /// poll it so host threads unwind to the recovery rendezvous instead of
  /// wedging on a peer that died or already tore down its communicator.
  std::function<bool()> abort_check;
};

/// Factory: builds the backend for `rank` on `fabric`.
std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      fabric::Fabric& fabric, int rank,
                                      const BackendOptions& options);

}  // namespace lcr::comm
