#include "comm/backend.hpp"

#include <cstdlib>
#include <cstring>

#include "comm/lci_backend.hpp"
#include "comm/mpi_probe_backend.hpp"
#include "comm/mpi_rma_backend.hpp"

namespace lcr::comm {

BufferLease Backend::acquire(int /*dst*/, std::size_t max_bytes) {
  BufferLease lease;
  lease.heap.resize(max_bytes);
  lease.data = lease.heap.data();
  lease.capacity = max_bytes;
  return lease;
}

bool Backend::commit(int dst, BufferLease& lease, std::size_t bytes) {
  // Shrink-only: the lease was sized for the worst case, the message may be
  // smaller. Never shrink-then-regrow - that would value-initialize the tail.
  if (lease.heap.size() != bytes) lease.heap.resize(bytes);
  if (!try_send(dst, lease.heap)) return false;
  lease = BufferLease{};
  return true;
}

void Backend::abandon(BufferLease& lease) { lease = BufferLease{}; }

// Direct-write defaults: unsupported. Engines probe supports_direct_write()
// before relying on any of these, so the defaults only need to be inert.
DirectRegion Backend::register_direct_region(int /*src*/, std::byte* /*base*/,
                                             std::size_t /*bytes*/,
                                             std::uint32_t /*generation*/) {
  return DirectRegion{};
}

void Backend::release_direct_region(int /*src*/,
                                    const DirectRegion& /*region*/) {}

DirectPutStatus Backend::direct_put(int /*dst*/, const DirectRegion& /*r*/,
                                    const void* /*payload*/,
                                    std::size_t /*bytes*/,
                                    std::uint32_t /*phase_id*/,
                                    std::uint32_t /*pattern_key*/) {
  return DirectPutStatus::Unavailable;
}

bool Backend::poll_direct(DirectSignal& /*out*/) { return false; }

const char* to_string(DirectWriteMode m) {
  switch (m) {
    case DirectWriteMode::Off: return "off";
    case DirectWriteMode::Auto: return "auto";
    case DirectWriteMode::Forced: return "forced";
  }
  return "?";
}

DirectWriteMode resolve_direct_write(DirectWriteMode cfg) {
  const char* env = std::getenv("LCR_DIRECT_WRITE");
  if (env == nullptr) return cfg;
  if (std::strcmp(env, "off") == 0) return DirectWriteMode::Off;
  if (std::strcmp(env, "auto") == 0) return DirectWriteMode::Auto;
  if (std::strcmp(env, "forced") == 0 || std::strcmp(env, "on") == 0)
    return DirectWriteMode::Forced;
  return cfg;  // unparsable override: keep the configured mode
}

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::Lci: return "lci";
    case BackendKind::MpiProbe: return "mpi-probe";
    case BackendKind::MpiRma: return "mpi-rma";
  }
  return "?";
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      fabric::Fabric& fabric, int rank,
                                      const BackendOptions& options) {
  switch (kind) {
    case BackendKind::Lci:
      return std::make_unique<LciBackend>(fabric, rank, options);
    case BackendKind::MpiProbe:
      return std::make_unique<MpiProbeBackend>(fabric, rank, options);
    case BackendKind::MpiRma:
      return std::make_unique<MpiRmaBackend>(fabric, rank, options);
  }
  return nullptr;
}

}  // namespace lcr::comm
