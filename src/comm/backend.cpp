#include "comm/backend.hpp"

#include "comm/lci_backend.hpp"
#include "comm/mpi_probe_backend.hpp"
#include "comm/mpi_rma_backend.hpp"

namespace lcr::comm {

BufferLease Backend::acquire(int /*dst*/, std::size_t max_bytes) {
  BufferLease lease;
  lease.heap.resize(max_bytes);
  lease.data = lease.heap.data();
  lease.capacity = max_bytes;
  return lease;
}

bool Backend::commit(int dst, BufferLease& lease, std::size_t bytes) {
  // Shrink-only: the lease was sized for the worst case, the message may be
  // smaller. Never shrink-then-regrow - that would value-initialize the tail.
  if (lease.heap.size() != bytes) lease.heap.resize(bytes);
  if (!try_send(dst, lease.heap)) return false;
  lease = BufferLease{};
  return true;
}

void Backend::abandon(BufferLease& lease) { lease = BufferLease{}; }

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::Lci: return "lci";
    case BackendKind::MpiProbe: return "mpi-probe";
    case BackendKind::MpiRma: return "mpi-rma";
  }
  return "?";
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      fabric::Fabric& fabric, int rank,
                                      const BackendOptions& options) {
  switch (kind) {
    case BackendKind::Lci:
      return std::make_unique<LciBackend>(fabric, rank, options);
    case BackendKind::MpiProbe:
      return std::make_unique<MpiProbeBackend>(fabric, rank, options);
    case BackendKind::MpiRma:
      return std::make_unique<MpiRmaBackend>(fabric, rank, options);
  }
  return nullptr;
}

}  // namespace lcr::comm
