#include "comm/backend.hpp"

#include "comm/lci_backend.hpp"
#include "comm/mpi_probe_backend.hpp"
#include "comm/mpi_rma_backend.hpp"

namespace lcr::comm {

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::Lci: return "lci";
    case BackendKind::MpiProbe: return "mpi-probe";
    case BackendKind::MpiRma: return "mpi-rma";
  }
  return "?";
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      fabric::Fabric& fabric, int rank,
                                      const BackendOptions& options) {
  switch (kind) {
    case BackendKind::Lci:
      return std::make_unique<LciBackend>(fabric, rank, options);
    case BackendKind::MpiProbe:
      return std::make_unique<MpiProbeBackend>(fabric, rank, options);
    case BackendKind::MpiRma:
      return std::make_unique<MpiRmaBackend>(fabric, rank, options);
  }
  return nullptr;
}

}  // namespace lcr::comm
