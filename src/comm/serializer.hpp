// Gather/scatter record serialization for proxy synchronization.
//
// A sync payload names which entries of the memoized shared vertex list
// changed this round and their new label values - the paper's "minimizes the
// communication meta-data while synchronizing only the updated labels": no
// global ids travel. Three adaptive encodings trade meta-data bytes against
// dirty density (DESIGN.md §11), chosen per message from the range popcount
// and tagged in the chunk header:
//
//   Sparse  [u32 rel_pos][value]...            4+sizeof(T) bytes/record
//   Varint  [varint pos_delta][value]...       1..5+sizeof(T) bytes/record
//   Dense   [span-bit bitmap][packed values]   span/8 + count*sizeof(T) total
//           (bitmap elided entirely when every position is dirty -
//            header flag kFlagDenseFull)
//
// Positions on the wire are relative to the header's base_pos so chunk
// ranges partition freely. encode_dirty_range() serializes straight into
// caller-provided memory (a backend BufferLease) - no intermediate vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "comm/message.hpp"
#include "graph/csr.hpp"
#include "runtime/bitset.hpp"
#include "runtime/ult.hpp"
#include "runtime/varint.hpp"

namespace lcr::comm {

namespace detail {

/// Uniform iteration over a shared vertex list: fn(pos, lid) for pos in
/// [lo, hi). A plain vector indexes directly; the compressed sync plans
/// (graph::PlanSpan, DESIGN.md §17) stream through their chunked decoder -
/// either way the encode paths below never materialize the list.
template <typename Shared, typename Fn>
void for_each_shared(const Shared& shared, std::uint32_t lo, std::uint32_t hi,
                     Fn&& fn) {
  if constexpr (requires { shared.visit(lo, hi, fn); }) {
    shared.visit(lo, hi, fn);
  } else {
    for (std::uint32_t pos = lo; pos < hi; ++pos) fn(pos, shared[pos]);
  }
}

/// Encoder spill scratch for the in-place format-upgrade pass, keyed by
/// execution context: one buffer per OS thread, or per fiber under the ULT
/// host scheduler, so compute fibers of different simulated hosts
/// multiplexed onto one worker never share (or cross-account) scratch
/// (DESIGN.md §16 re-keying rule).
inline std::vector<std::byte>& encode_scratch() {
  if (ult::on_fiber()) {
    static const int slot = ult::fls_alloc(
        [](void* p) { delete static_cast<std::vector<std::byte>*>(p); });
    auto* v = static_cast<std::vector<std::byte>*>(ult::fls_get(slot));
    if (v == nullptr) {
      v = new std::vector<std::byte>();
      ult::fls_set(slot, v);
    }
    return *v;
  }
  static thread_local std::vector<std::byte> scratch;
  return scratch;
}

}  // namespace detail

template <typename T>
constexpr std::size_t record_bytes() {
  return sizeof(std::uint32_t) + sizeof(T);
}

/// Appends one sparse record to `out`. (Legacy path; the engines encode
/// through encode_dirty_range into leased buffers.)
template <typename T>
void append_record(std::vector<std::byte>& out, std::uint32_t pos,
                   const T& value) {
  const std::size_t old = out.size();
  out.resize(old + record_bytes<T>());
  std::memcpy(out.data() + old, &pos, sizeof(pos));
  std::memcpy(out.data() + old + sizeof(pos), &value, sizeof(T));
}

/// Gather: serialize dirty entries of the shared list into sparse records.
/// `shared[pos]` is a local vertex id; an entry is shipped iff
/// dirty.test(shared[pos]). Returns the number of records written.
template <typename T>
std::size_t gather_records(const std::vector<graph::VertexId>& shared,
                           const rt::ConcurrentBitset& dirty, const T* labels,
                           std::vector<std::byte>& out) {
  std::size_t count = 0;
  for (std::uint32_t pos = 0; pos < shared.size(); ++pos) {
    const graph::VertexId lid = shared[pos];
    if (dirty.test(lid)) {
      append_record(out, pos, labels[lid]);
      ++count;
    }
  }
  return count;
}

/// Scatter: invoke fn(pos, value) for every sparse record in
/// [data, data+size).
template <typename T, typename Fn>
void scatter_records(const std::byte* data, std::size_t size, Fn&& fn) {
  std::size_t off = 0;
  while (off + record_bytes<T>() <= size) {
    std::uint32_t pos = 0;
    T value;
    std::memcpy(&pos, data + off, sizeof(pos));
    std::memcpy(&value, data + off + sizeof(pos), sizeof(T));
    fn(pos, value);
    off += record_bytes<T>();
  }
}

// ---------------------------------------------------------------------------
// Adaptive formats
// ---------------------------------------------------------------------------

/// Dirty popcount of shared-list range [lo, hi) - exact reservation sizing.
template <typename Shared>
std::size_t count_dirty(const Shared& shared, const rt::ConcurrentBitset& dirty,
                        std::size_t lo, std::size_t hi) {
  std::size_t count = 0;
  detail::for_each_shared(shared, static_cast<std::uint32_t>(lo),
                          static_cast<std::uint32_t>(hi),
                          [&](std::uint32_t, graph::VertexId lid) {
                            if (dirty.test(lid)) ++count;
                          });
  return count;
}

/// LCR_WIRE_FORMAT={auto,sparse,varint,dense} debugging override; env is
/// read once, then cached. Tests force formats programmatically instead.
std::optional<WireFormat> forced_wire_format();

/// Programmatic override: a concrete format forces every subsequent encode;
/// nullopt reverts to the environment/auto behavior.
void set_wire_format_override(std::optional<WireFormat> format);

inline std::size_t sparse_bytes(std::size_t count, std::size_t value_bytes) {
  return count * (sizeof(std::uint32_t) + value_bytes);
}

inline std::size_t dense_bytes(std::size_t count, std::size_t span,
                               std::size_t value_bytes, bool all_set) {
  return (all_set ? 0 : (span + 7) / 8) + count * value_bytes;
}

/// Upper bound for the varint encoding. Each delta costs one byte plus at
/// most gap/64 continuation bytes (a gap g >= 128 never needs more than
/// g/64 extra); the gaps sum to at most span, hence the span/64 + 1 slack.
/// Always <= span * (4 + value_bytes), the sparse worst case, so every
/// format fits a lease sized for worst-case sparse.
inline std::size_t varint_bound(std::size_t count, std::size_t span,
                                std::size_t value_bytes) {
  return count * (1 + value_bytes) + span / 64 + 1;
}

/// Density-threshold format choice (override wins). Dense pays off once
/// >= 1/8 of the span is dirty (the 4-byte position exceeds the amortized
/// bitmap cost); varint helps from ~1/64 up, where deltas stay short.
inline WireFormat choose_format(std::size_t count, std::size_t span,
                                std::size_t value_bytes) {
  (void)value_bytes;
  if (const auto forced = forced_wire_format()) return *forced;
  if (count == 0 || span == 0) return WireFormat::Sparse;
  if (count * 8 >= span) return WireFormat::Dense;
  if (count * 64 >= span) return WireFormat::Varint;
  return WireFormat::Sparse;
}

/// LEB128 codec, shared with the compressed lid maps (runtime/varint.hpp).
using rt::get_varint;
using rt::put_varint;

/// Result of encoding one shared-list range.
struct EncodedChunk {
  WireFormat format = WireFormat::Sparse;
  std::size_t bytes = 0;    ///< payload bytes actually written
  std::size_t records = 0;  ///< dirty entries encoded
  bool all_set = false;     ///< every position in the range was dirty
};

/// Encodes the dirty entries of shared[lo, hi) directly into memory obtained
/// from `reserve(max_bytes)` - called at most once (with worst-case sparse
/// sizing for the range), and not at all when the range is clean. The caller
/// points `reserve` at a leased backend buffer (offset past the header) so
/// records land in wire memory with zero copies. Safe to run concurrently
/// from compute threads on disjoint ranges.
///
/// Format strategy: one pass over the range writes sparse records while
/// counting - the low-density common case finishes right there, with no
/// separate popcount pass. When the final count crosses a density
/// threshold, the records are spilled to a thread-local scratch buffer and
/// re-encoded into the lease as varint or dense. The upgrade pass reads the
/// compact record stream sequentially - it never re-walks shared/dirty/
/// labels with their random indirection - and every format fits the
/// worst-case sparse reservation (dense_bytes, varint_bound <=
/// sparse_bytes for any span).
template <typename T, typename Shared, typename ReserveFn>
EncodedChunk encode_dirty_range(const Shared& shared,
                                const rt::ConcurrentBitset& dirty,
                                const T* labels, std::uint32_t lo,
                                std::uint32_t hi, ReserveFn&& reserve) {
  constexpr std::size_t vb = sizeof(T);
  constexpr std::size_t rec = record_bytes<T>();
  EncodedChunk enc;
  const std::uint32_t span = hi - lo;

  std::byte* dst = nullptr;
  std::size_t off = 0;
  std::size_t count = 0;
  detail::for_each_shared(
      shared, lo, hi, [&](std::uint32_t pos, graph::VertexId lid) {
        if (!dirty.test(lid)) return;
        if (dst == nullptr) dst = reserve(sparse_bytes(span, vb));
        const std::uint32_t rel = pos - lo;
        std::memcpy(dst + off, &rel, sizeof(rel));
        std::memcpy(dst + off + sizeof(rel), &labels[lid], vb);
        off += rec;
        ++count;
      });
  if (count == 0) return enc;
  enc.records = count;
  enc.all_set = count == span;
  enc.format = choose_format(count, span, vb);
  if (enc.format != WireFormat::Dense && enc.format != WireFormat::Varint) {
    enc.format = WireFormat::Sparse;  // forced Raw falls back to records
    enc.bytes = off;
    return enc;
  }

  // Upgrade pass: spill the sparse records and re-encode sequentially.
  std::vector<std::byte>& scratch = detail::encode_scratch();
  if (scratch.size() < off) scratch.resize(off);
  std::memcpy(scratch.data(), dst, off);
  const std::byte* src = scratch.data();
  if (enc.format == WireFormat::Dense) {
    const std::size_t bitmap = enc.all_set ? 0 : (span + 7) / 8;
    enc.bytes = dense_bytes(count, span, vb, enc.all_set);
    if (bitmap != 0) std::memset(dst, 0, bitmap);
    std::byte* values = dst + bitmap;
    for (std::size_t i = 0; i < count; ++i) {
      if (bitmap != 0) {
        std::uint32_t rel = 0;
        std::memcpy(&rel, src + i * rec, sizeof(rel));
        dst[rel >> 3] |= static_cast<std::byte>(1U << (rel & 7));
      }
      std::memcpy(values, src + i * rec + sizeof(std::uint32_t), vb);
      values += vb;
    }
  } else {  // Varint
    off = 0;
    std::uint32_t prev_next = 0;  // rel position one past the last record
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t rel = 0;
      std::memcpy(&rel, src + i * rec, sizeof(rel));
      off += put_varint(dst + off, rel - prev_next);
      prev_next = rel + 1;
      std::memcpy(dst + off, src + i * rec + sizeof(std::uint32_t), vb);
      off += vb;
    }
    enc.bytes = off;
  }
  return enc;
}

// ---------------------------------------------------------------------------
// Re-entrant decode (parallel receive-side apply, DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Resumable decode state. All fields are format-private; callers only
/// default-construct a cursor (or position one via seek_record) and hand it
/// back unchanged between decode_chunk_resume calls on the same chunk.
struct DecodeCursor {
  /// Sparse/Varint: payload byte offset. Dense: bitmap byte index.
  /// DenseFull: record (= relative position) index.
  std::size_t off = 0;
  std::uint64_t next = 0;      ///< Varint: next expected relative position
  std::size_t seen = 0;        ///< Dense: packed values consumed so far
  std::uint8_t pending = 0;    ///< Dense: unconsumed bits of byte `off`
  bool pending_valid = false;  ///< Dense: `pending` holds byte `off`'s bits
  bool started = false;        ///< structural validation already ran
};

enum class DecodeStatus : std::uint8_t {
  Done,   ///< payload fully consumed, all records emitted
  More,   ///< record budget exhausted; call again with the same cursor
  Error,  ///< malformed payload; fn was not invoked past the failure point
};

inline constexpr std::size_t kAllRecords = ~std::size_t{0};

/// Random-access sliceability of one chunk: fixed-stride formats (Sparse and
/// bitmap-elided Dense) expose their record count up front, so disjoint
/// [rec_lo, rec_hi) slices can be decoded independently via seek_record.
/// Varint (positions are deltas) and bitmap Dense (values index by popcount
/// prefix) must be walked sequentially: records == 0, sliceable == false.
/// A bad size modulus also reports non-sliceable; the (single) decode call
/// then surfaces the Error.
struct ChunkSliceInfo {
  bool sliceable = false;
  std::uint32_t records = 0;
};

inline ChunkSliceInfo chunk_slice_info(const ChunkHeader& h,
                                       std::size_t value_bytes) {
  const std::size_t size = h.payload_bytes;
  switch (static_cast<WireFormat>(h.format)) {
    case WireFormat::Sparse: {
      const std::size_t rec = sizeof(std::uint32_t) + value_bytes;
      if (size % rec != 0) return {};
      return {true, static_cast<std::uint32_t>(size / rec)};
    }
    case WireFormat::Dense:
      if ((h.flags & kFlagDenseFull) == 0) return {};
      if (value_bytes == 0 || size != h.span * value_bytes) return {};
      return {true, h.span};
    default:
      return {};
  }
}

/// Positions `cur` at record index `rec_idx` of a sliceable chunk (see
/// chunk_slice_info) and runs the structural validation a first decode call
/// would. Returns false on a non-sliceable format (unless rec_idx == 0, which
/// just resets the cursor), an out-of-range index, or a malformed chunk.
template <typename T>
bool seek_record(const ChunkHeader& h, std::size_t shared_size,
                 std::size_t rec_idx, DecodeCursor& cur) {
  constexpr std::size_t vb = sizeof(T);
  cur = DecodeCursor{};
  if (rec_idx == 0) return true;  // fresh cursor; decode validates
  if (static_cast<std::uint64_t>(h.base_pos) + h.span > shared_size)
    return false;
  const std::size_t size = h.payload_bytes;
  switch (static_cast<WireFormat>(h.format)) {
    case WireFormat::Sparse: {
      constexpr std::size_t rec = record_bytes<T>();
      if (size % rec != 0 || rec_idx > size / rec) return false;
      cur.off = rec_idx * rec;
      cur.started = true;
      return true;
    }
    case WireFormat::Dense: {
      if ((h.flags & kFlagDenseFull) == 0) return false;
      if (size != static_cast<std::size_t>(h.span) * vb || rec_idx > h.span)
        return false;
      cur.off = rec_idx;
      cur.started = true;
      return true;
    }
    default:
      return false;
  }
}

/// Re-entrant unified scatter: decodes up to `max_records` records starting
/// from `cur` and invokes fn(absolute_pos, value) per record, where
/// absolute_pos = header.base_pos + relative position. Structural checks
/// (size modulus, bitmap/value length agreement, span bounds) run on the
/// first call for a cursor; per-record checks (out-of-span position,
/// truncated varint, stray bitmap bits) run as records stream. Returns Error
/// - without invoking fn beyond the failure point - on any malformed input,
/// More when the budget ran out with payload left, Done at the end. Raw
/// payloads carry no typed records and always Error.
template <typename T, typename Fn>
DecodeStatus decode_chunk_resume(const ChunkHeader& h,
                                 const std::byte* payload,
                                 std::size_t shared_size, DecodeCursor& cur,
                                 std::size_t max_records, Fn&& fn) {
  constexpr std::size_t vb = sizeof(T);
  const std::size_t size = h.payload_bytes;
  const std::uint64_t base = h.base_pos;
  const std::uint64_t span = h.span;
  if (base + span > shared_size) return DecodeStatus::Error;
  std::size_t emitted = 0;
  switch (static_cast<WireFormat>(h.format)) {
    case WireFormat::Sparse: {
      constexpr std::size_t rec = record_bytes<T>();
      if (!cur.started) {
        if (size % rec != 0) return DecodeStatus::Error;
        cur.started = true;
      }
      while (cur.off < size) {
        if (emitted == max_records) return DecodeStatus::More;
        std::uint32_t rel = 0;
        T value;
        std::memcpy(&rel, payload + cur.off, sizeof(rel));
        std::memcpy(&value, payload + cur.off + sizeof(rel), vb);
        if (rel >= span) return DecodeStatus::Error;
        cur.off += rec;
        ++emitted;
        fn(static_cast<std::uint32_t>(base + rel), value);
      }
      return DecodeStatus::Done;
    }
    case WireFormat::Varint: {
      cur.started = true;
      while (cur.off < size) {
        if (emitted == max_records) return DecodeStatus::More;
        std::size_t off = cur.off;
        std::uint32_t delta = 0;
        if (!get_varint(payload, size, off, delta))
          return DecodeStatus::Error;
        const std::uint64_t rel = cur.next + delta;
        if (rel >= span) return DecodeStatus::Error;
        if (off + vb > size) return DecodeStatus::Error;
        T value;
        std::memcpy(&value, payload + off, vb);
        cur.off = off + vb;
        cur.next = rel + 1;
        ++emitted;
        fn(static_cast<std::uint32_t>(base + rel), value);
      }
      return DecodeStatus::Done;
    }
    case WireFormat::Dense: {
      if ((h.flags & kFlagDenseFull) != 0) {
        if (!cur.started) {
          if (size != span * vb) return DecodeStatus::Error;
          cur.started = true;
        }
        while (cur.off < span) {
          if (emitted == max_records) return DecodeStatus::More;
          T value;
          std::memcpy(&value, payload + cur.off * vb, vb);
          const auto rel = static_cast<std::uint64_t>(cur.off);
          ++cur.off;
          ++emitted;
          fn(static_cast<std::uint32_t>(base + rel), value);
        }
        return DecodeStatus::Done;
      }
      const std::size_t bitmap = (span + 7) / 8;
      if (!cur.started) {
        if (size < bitmap || (size - bitmap) % vb != 0)
          return DecodeStatus::Error;
        cur.started = true;
      }
      const std::size_t count = (size - bitmap) / vb;
      const std::byte* values = payload + bitmap;
      for (;;) {
        if (!cur.pending_valid) {
          if (cur.off >= bitmap) break;
          cur.pending = static_cast<std::uint8_t>(payload[cur.off]);
          cur.pending_valid = true;
        }
        while (cur.pending != 0) {
          if (emitted == max_records) return DecodeStatus::More;
          const int b = __builtin_ctz(cur.pending);
          cur.pending = static_cast<std::uint8_t>(cur.pending &
                                                  (cur.pending - 1));
          const std::uint64_t rel =
              cur.off * 8 + static_cast<std::uint64_t>(b);
          if (rel >= span) return DecodeStatus::Error;  // stray bit past span
          if (cur.seen == count) return DecodeStatus::Error;
          T value;
          std::memcpy(&value, values + cur.seen * vb, vb);
          ++cur.seen;
          ++emitted;
          fn(static_cast<std::uint32_t>(base + rel), value);
        }
        cur.pending_valid = false;
        ++cur.off;
      }
      // Every shipped value must have a bitmap bit.
      return cur.seen == count ? DecodeStatus::Done : DecodeStatus::Error;
    }
    default:
      return DecodeStatus::Error;  // Raw payloads carry no typed records
  }
}

/// Unified scatter: decodes one chunk's payload according to its header tag
/// and invokes fn(absolute_pos, value) per record, where absolute_pos =
/// header.base_pos + relative position. Returns false - without invoking fn
/// beyond the point of failure - on any malformed input: bad size modulus,
/// out-of-span position, truncated varint, bitmap/value length mismatch, or
/// set bitmap bits beyond the span. Raw payloads are not typed records.
/// (One-shot wrapper over decode_chunk_resume.)
template <typename T, typename Fn>
bool decode_chunk(const ChunkHeader& h, const std::byte* payload,
                  std::size_t shared_size, Fn&& fn) {
  DecodeCursor cur;
  return decode_chunk_resume<T>(h, payload, shared_size, cur, kAllRecords,
                                std::forward<Fn>(fn)) == DecodeStatus::Done;
}

}  // namespace lcr::comm
