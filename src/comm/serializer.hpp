// Gather/scatter record serialization for proxy synchronization.
//
// A sync message's payload is a sequence of fixed-size records
// [u32 position][label value], where `position` indexes the memoized shared
// vertex list both endpoints hold for this (pair, direction) - the paper's
// "minimizes the communication meta-data while synchronizing only the
// updated labels": only dirty entries are shipped and no global ids travel.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "graph/csr.hpp"
#include "runtime/bitset.hpp"

namespace lcr::comm {

template <typename T>
constexpr std::size_t record_bytes() {
  return sizeof(std::uint32_t) + sizeof(T);
}

/// Appends one record to `out`.
template <typename T>
void append_record(std::vector<std::byte>& out, std::uint32_t pos,
                   const T& value) {
  const std::size_t old = out.size();
  out.resize(old + record_bytes<T>());
  std::memcpy(out.data() + old, &pos, sizeof(pos));
  std::memcpy(out.data() + old + sizeof(pos), &value, sizeof(T));
}

/// Gather: serialize dirty entries of the shared list into records.
/// `shared[pos]` is a local vertex id; an entry is shipped iff
/// dirty.test(shared[pos]). Returns the number of records written.
template <typename T>
std::size_t gather_records(const std::vector<graph::VertexId>& shared,
                           const rt::ConcurrentBitset& dirty, const T* labels,
                           std::vector<std::byte>& out) {
  std::size_t count = 0;
  for (std::uint32_t pos = 0; pos < shared.size(); ++pos) {
    const graph::VertexId lid = shared[pos];
    if (dirty.test(lid)) {
      append_record(out, pos, labels[lid]);
      ++count;
    }
  }
  return count;
}

/// Scatter: invoke fn(pos, value) for every record in [data, data+size).
template <typename T, typename Fn>
void scatter_records(const std::byte* data, std::size_t size, Fn&& fn) {
  std::size_t off = 0;
  while (off + record_bytes<T>() <= size) {
    std::uint32_t pos = 0;
    T value;
    std::memcpy(&pos, data + off, sizeof(pos));
    std::memcpy(&value, data + off + sizeof(pos), sizeof(T));
    fn(pos, value);
    off += record_bytes<T>();
  }
}

}  // namespace lcr::comm
