// Gather/scatter record serialization for proxy synchronization.
//
// A sync payload names which entries of the memoized shared vertex list
// changed this round and their new label values - the paper's "minimizes the
// communication meta-data while synchronizing only the updated labels": no
// global ids travel. Three adaptive encodings trade meta-data bytes against
// dirty density (DESIGN.md §11), chosen per message from the range popcount
// and tagged in the chunk header:
//
//   Sparse  [u32 rel_pos][value]...            4+sizeof(T) bytes/record
//   Varint  [varint pos_delta][value]...       1..5+sizeof(T) bytes/record
//   Dense   [span-bit bitmap][packed values]   span/8 + count*sizeof(T) total
//           (bitmap elided entirely when every position is dirty -
//            header flag kFlagDenseFull)
//
// Positions on the wire are relative to the header's base_pos so chunk
// ranges partition freely. encode_dirty_range() serializes straight into
// caller-provided memory (a backend BufferLease) - no intermediate vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "comm/message.hpp"
#include "graph/csr.hpp"
#include "runtime/bitset.hpp"

namespace lcr::comm {

template <typename T>
constexpr std::size_t record_bytes() {
  return sizeof(std::uint32_t) + sizeof(T);
}

/// Appends one sparse record to `out`. (Legacy path; the engines encode
/// through encode_dirty_range into leased buffers.)
template <typename T>
void append_record(std::vector<std::byte>& out, std::uint32_t pos,
                   const T& value) {
  const std::size_t old = out.size();
  out.resize(old + record_bytes<T>());
  std::memcpy(out.data() + old, &pos, sizeof(pos));
  std::memcpy(out.data() + old + sizeof(pos), &value, sizeof(T));
}

/// Gather: serialize dirty entries of the shared list into sparse records.
/// `shared[pos]` is a local vertex id; an entry is shipped iff
/// dirty.test(shared[pos]). Returns the number of records written.
template <typename T>
std::size_t gather_records(const std::vector<graph::VertexId>& shared,
                           const rt::ConcurrentBitset& dirty, const T* labels,
                           std::vector<std::byte>& out) {
  std::size_t count = 0;
  for (std::uint32_t pos = 0; pos < shared.size(); ++pos) {
    const graph::VertexId lid = shared[pos];
    if (dirty.test(lid)) {
      append_record(out, pos, labels[lid]);
      ++count;
    }
  }
  return count;
}

/// Scatter: invoke fn(pos, value) for every sparse record in
/// [data, data+size).
template <typename T, typename Fn>
void scatter_records(const std::byte* data, std::size_t size, Fn&& fn) {
  std::size_t off = 0;
  while (off + record_bytes<T>() <= size) {
    std::uint32_t pos = 0;
    T value;
    std::memcpy(&pos, data + off, sizeof(pos));
    std::memcpy(&value, data + off + sizeof(pos), sizeof(T));
    fn(pos, value);
    off += record_bytes<T>();
  }
}

// ---------------------------------------------------------------------------
// Adaptive formats
// ---------------------------------------------------------------------------

/// Dirty popcount of shared-list range [lo, hi) - exact reservation sizing.
inline std::size_t count_dirty(const std::vector<graph::VertexId>& shared,
                               const rt::ConcurrentBitset& dirty,
                               std::size_t lo, std::size_t hi) {
  std::size_t count = 0;
  for (std::size_t pos = lo; pos < hi; ++pos)
    if (dirty.test(shared[pos])) ++count;
  return count;
}

/// LCR_WIRE_FORMAT={auto,sparse,varint,dense} debugging override; env is
/// read once, then cached. Tests force formats programmatically instead.
std::optional<WireFormat> forced_wire_format();

/// Programmatic override: a concrete format forces every subsequent encode;
/// nullopt reverts to the environment/auto behavior.
void set_wire_format_override(std::optional<WireFormat> format);

inline std::size_t sparse_bytes(std::size_t count, std::size_t value_bytes) {
  return count * (sizeof(std::uint32_t) + value_bytes);
}

inline std::size_t dense_bytes(std::size_t count, std::size_t span,
                               std::size_t value_bytes, bool all_set) {
  return (all_set ? 0 : (span + 7) / 8) + count * value_bytes;
}

/// Upper bound for the varint encoding. Each delta costs one byte plus at
/// most gap/64 continuation bytes (a gap g >= 128 never needs more than
/// g/64 extra); the gaps sum to at most span, hence the span/64 + 1 slack.
/// Always <= span * (4 + value_bytes), the sparse worst case, so every
/// format fits a lease sized for worst-case sparse.
inline std::size_t varint_bound(std::size_t count, std::size_t span,
                                std::size_t value_bytes) {
  return count * (1 + value_bytes) + span / 64 + 1;
}

/// Density-threshold format choice (override wins). Dense pays off once
/// >= 1/8 of the span is dirty (the 4-byte position exceeds the amortized
/// bitmap cost); varint helps from ~1/64 up, where deltas stay short.
inline WireFormat choose_format(std::size_t count, std::size_t span,
                                std::size_t value_bytes) {
  (void)value_bytes;
  if (const auto forced = forced_wire_format()) return *forced;
  if (count == 0 || span == 0) return WireFormat::Sparse;
  if (count * 8 >= span) return WireFormat::Dense;
  if (count * 64 >= span) return WireFormat::Varint;
  return WireFormat::Sparse;
}

/// LEB128 append; returns bytes written (<= 5 for u32).
inline std::size_t put_varint(std::byte* dst, std::uint32_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<std::byte>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  dst[n++] = static_cast<std::byte>(v);
  return n;
}

/// LEB128 read with strict truncation/overflow checks.
inline bool get_varint(const std::byte* data, std::size_t size,
                       std::size_t& off, std::uint32_t& out) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (off >= size) return false;  // truncated mid-varint
    const auto b = static_cast<std::uint8_t>(data[off++]);
    if (i == 4 && (b & ~0x0FU) != 0) return false;  // > 32 bits
    value |= static_cast<std::uint32_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) {
      out = value;
      return true;
    }
  }
  return false;  // continuation bit never cleared
}

/// Result of encoding one shared-list range.
struct EncodedChunk {
  WireFormat format = WireFormat::Sparse;
  std::size_t bytes = 0;    ///< payload bytes actually written
  std::size_t records = 0;  ///< dirty entries encoded
  bool all_set = false;     ///< every position in the range was dirty
};

/// Encodes the dirty entries of shared[lo, hi) directly into memory obtained
/// from `reserve(max_bytes)` - called at most once (with worst-case sparse
/// sizing for the range), and not at all when the range is clean. The caller
/// points `reserve` at a leased backend buffer (offset past the header) so
/// records land in wire memory with zero copies. Safe to run concurrently
/// from compute threads on disjoint ranges.
///
/// Format strategy: one pass over the range writes sparse records while
/// counting - the low-density common case finishes right there, with no
/// separate popcount pass. When the final count crosses a density
/// threshold, the records are spilled to a thread-local scratch buffer and
/// re-encoded into the lease as varint or dense. The upgrade pass reads the
/// compact record stream sequentially - it never re-walks shared/dirty/
/// labels with their random indirection - and every format fits the
/// worst-case sparse reservation (dense_bytes, varint_bound <=
/// sparse_bytes for any span).
template <typename T, typename ReserveFn>
EncodedChunk encode_dirty_range(const std::vector<graph::VertexId>& shared,
                                const rt::ConcurrentBitset& dirty,
                                const T* labels, std::uint32_t lo,
                                std::uint32_t hi, ReserveFn&& reserve) {
  constexpr std::size_t vb = sizeof(T);
  constexpr std::size_t rec = record_bytes<T>();
  EncodedChunk enc;
  const std::uint32_t span = hi - lo;

  std::byte* dst = nullptr;
  std::size_t off = 0;
  std::size_t count = 0;
  for (std::uint32_t pos = lo; pos < hi; ++pos) {
    const graph::VertexId lid = shared[pos];
    if (!dirty.test(lid)) continue;
    if (dst == nullptr) dst = reserve(sparse_bytes(span, vb));
    const std::uint32_t rel = pos - lo;
    std::memcpy(dst + off, &rel, sizeof(rel));
    std::memcpy(dst + off + sizeof(rel), &labels[lid], vb);
    off += rec;
    ++count;
  }
  if (count == 0) return enc;
  enc.records = count;
  enc.all_set = count == span;
  enc.format = choose_format(count, span, vb);
  if (enc.format != WireFormat::Dense && enc.format != WireFormat::Varint) {
    enc.format = WireFormat::Sparse;  // forced Raw falls back to records
    enc.bytes = off;
    return enc;
  }

  // Upgrade pass: spill the sparse records and re-encode sequentially.
  static thread_local std::vector<std::byte> scratch;
  if (scratch.size() < off) scratch.resize(off);
  std::memcpy(scratch.data(), dst, off);
  const std::byte* src = scratch.data();
  if (enc.format == WireFormat::Dense) {
    const std::size_t bitmap = enc.all_set ? 0 : (span + 7) / 8;
    enc.bytes = dense_bytes(count, span, vb, enc.all_set);
    if (bitmap != 0) std::memset(dst, 0, bitmap);
    std::byte* values = dst + bitmap;
    for (std::size_t i = 0; i < count; ++i) {
      if (bitmap != 0) {
        std::uint32_t rel = 0;
        std::memcpy(&rel, src + i * rec, sizeof(rel));
        dst[rel >> 3] |= static_cast<std::byte>(1U << (rel & 7));
      }
      std::memcpy(values, src + i * rec + sizeof(std::uint32_t), vb);
      values += vb;
    }
  } else {  // Varint
    off = 0;
    std::uint32_t prev_next = 0;  // rel position one past the last record
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t rel = 0;
      std::memcpy(&rel, src + i * rec, sizeof(rel));
      off += put_varint(dst + off, rel - prev_next);
      prev_next = rel + 1;
      std::memcpy(dst + off, src + i * rec + sizeof(std::uint32_t), vb);
      off += vb;
    }
    enc.bytes = off;
  }
  return enc;
}

/// Unified scatter: decodes one chunk's payload according to its header tag
/// and invokes fn(absolute_pos, value) per record, where absolute_pos =
/// header.base_pos + relative position. Returns false - without invoking fn
/// beyond the point of failure - on any malformed input: bad size modulus,
/// out-of-span position, truncated varint, bitmap/value length mismatch, or
/// set bitmap bits beyond the span. Raw payloads are not typed records.
template <typename T, typename Fn>
bool decode_chunk(const ChunkHeader& h, const std::byte* payload,
                  std::size_t shared_size, Fn&& fn) {
  constexpr std::size_t vb = sizeof(T);
  const std::size_t size = h.payload_bytes;
  const std::uint64_t base = h.base_pos;
  const std::uint64_t span = h.span;
  if (base + span > shared_size) return false;
  switch (static_cast<WireFormat>(h.format)) {
    case WireFormat::Sparse: {
      if (size % record_bytes<T>() != 0) return false;
      std::size_t off = 0;
      while (off < size) {
        std::uint32_t rel = 0;
        T value;
        std::memcpy(&rel, payload + off, sizeof(rel));
        std::memcpy(&value, payload + off + sizeof(rel), vb);
        if (rel >= span) return false;
        fn(static_cast<std::uint32_t>(base + rel), value);
        off += record_bytes<T>();
      }
      return true;
    }
    case WireFormat::Varint: {
      std::size_t off = 0;
      std::uint64_t next = 0;  // rel position one past the last record
      while (off < size) {
        std::uint32_t delta = 0;
        if (!get_varint(payload, size, off, delta)) return false;
        const std::uint64_t rel = next + delta;
        if (rel >= span) return false;
        if (off + vb > size) return false;
        T value;
        std::memcpy(&value, payload + off, vb);
        off += vb;
        fn(static_cast<std::uint32_t>(base + rel), value);
        next = rel + 1;
      }
      return true;
    }
    case WireFormat::Dense: {
      if ((h.flags & kFlagDenseFull) != 0) {
        if (size != span * vb) return false;
        for (std::uint64_t rel = 0; rel < span; ++rel) {
          T value;
          std::memcpy(&value, payload + rel * vb, vb);
          fn(static_cast<std::uint32_t>(base + rel), value);
        }
        return true;
      }
      const std::size_t bitmap = (span + 7) / 8;
      if (size < bitmap || (size - bitmap) % vb != 0) return false;
      const std::size_t count = (size - bitmap) / vb;
      std::size_t seen = 0;
      const std::byte* values = payload + bitmap;
      for (std::size_t byte = 0; byte < bitmap; ++byte) {
        std::uint8_t bits = static_cast<std::uint8_t>(payload[byte]);
        while (bits != 0) {
          const int b = __builtin_ctz(bits);
          bits = static_cast<std::uint8_t>(bits & (bits - 1));
          const std::uint64_t rel = byte * 8 + static_cast<std::uint64_t>(b);
          if (rel >= span) return false;  // stray bit past the span
          if (seen == count) return false;
          T value;
          std::memcpy(&value, values + seen * vb, vb);
          ++seen;
          fn(static_cast<std::uint32_t>(base + rel), value);
        }
      }
      return seen == count;  // every shipped value must have a bitmap bit
    }
    default:
      return false;  // Raw payloads carry no typed records
  }
}

}  // namespace lcr::comm
