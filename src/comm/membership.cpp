#include "comm/membership.hpp"

#include <cstdio>

#include "telemetry/flight_recorder.hpp"

namespace lcr::comm {

const char* to_string(PeerState s) {
  switch (s) {
    case PeerState::Alive: return "alive";
    case PeerState::Slow: return "slow";
    case PeerState::SuspectedDead: return "suspected-dead";
    case PeerState::Dead: return "dead";
  }
  return "?";
}

std::string to_string(const RecoveryEvent& ev) {
  char buf[96];
  switch (ev.kind) {
    case RecoveryEvent::Kind::Kill:
      std::snprintf(buf, sizeof(buf), "kill{host=%d epoch=%u}", ev.host,
                    ev.epoch);
      break;
    case RecoveryEvent::Kind::Rollback:
      std::snprintf(buf, sizeof(buf), "rollback{round=%lld epoch=%u}",
                    static_cast<long long>(ev.round), ev.epoch);
      break;
    case RecoveryEvent::Kind::Readmit:
      std::snprintf(buf, sizeof(buf), "readmit{host=%d epoch=%u}", ev.host,
                    ev.epoch);
      break;
  }
  return buf;
}

Membership::Membership(std::size_t num_hosts)
    : n_(num_hosts),
      states_(new std::atomic<std::uint8_t>[num_hosts]),
      enter_(num_hosts),
      exit_(num_hosts) {
  for (std::size_t h = 0; h < n_; ++h)
    states_[h].store(static_cast<std::uint8_t>(PeerState::Alive),
                     std::memory_order_relaxed);
}

PeerState Membership::state(std::size_t host) const {
  return static_cast<PeerState>(states_[host].load(std::memory_order_acquire));
}

void Membership::report_kill(int host) {
  if (host < 0 || static_cast<std::size_t>(host) >= n_) return;
  states_[static_cast<std::size_t>(host)].store(
      static_cast<std::uint8_t>(PeerState::Dead), std::memory_order_release);
  kills_.fetch_add(1, std::memory_order_relaxed);
  failure_pending_.store(true, std::memory_order_release);
  // failure_pending tripping is a flight-recorder trigger: dump the ring
  // while the events leading up to the death are still in it.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "{\"host\":%d}", host);
  telemetry::flight_record(static_cast<std::uint32_t>(host), "member.dead",
                           buf);
  telemetry::flight_dump("failure_pending");
}

void Membership::report_suspect(int reporter, int peer) {
  if (peer < 0 || static_cast<std::size_t>(peer) >= n_) return;
  // Upgrade only: a ground-truth Dead must never be demoted by a late
  // detector report, and duplicate suspicions are idempotent.
  auto& s = states_[static_cast<std::size_t>(peer)];
  std::uint8_t cur = s.load(std::memory_order_acquire);
  while (cur < static_cast<std::uint8_t>(PeerState::SuspectedDead)) {
    if (s.compare_exchange_weak(
            cur, static_cast<std::uint8_t>(PeerState::SuspectedDead),
            std::memory_order_acq_rel)) {
      suspects_.fetch_add(1, std::memory_order_relaxed);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"reporter\":%d,\"peer\":%d}",
                    reporter, peer);
      telemetry::flight_record(static_cast<std::uint32_t>(reporter),
                               "member.suspect", buf);
      break;
    }
  }
}

void Membership::recovery_barrier(std::size_t self,
                                  const std::function<void()>& leader_fix) {
  enter_.arrive_and_wait();
  if (self == 0) {
    leader_fix();
    recoveries_.fetch_add(1, std::memory_order_relaxed);
  }
  exit_.arrive_and_wait();
}

void Membership::mark_alive(std::size_t host) {
  if (host >= n_) return;
  const std::uint8_t prev = states_[host].exchange(
      static_cast<std::uint8_t>(PeerState::Alive), std::memory_order_acq_rel);
  if (prev != static_cast<std::uint8_t>(PeerState::Alive)) {
    readmits_.fetch_add(1, std::memory_order_relaxed);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"host\":%zu,\"was\":\"%s\"}", host,
                  to_string(static_cast<PeerState>(prev)));
    telemetry::flight_record(static_cast<std::uint32_t>(host),
                             "member.readmit", buf);
  }
}

void Membership::log_event(const RecoveryEvent& ev) {
  std::lock_guard<std::mutex> guard(events_lock_);
  events_.push_back(ev);
}

std::vector<RecoveryEvent> Membership::events() const {
  std::lock_guard<std::mutex> guard(events_lock_);
  return events_;
}

}  // namespace lcr::comm
