// LCI communication backend (paper Section III-D).
//
// Thin shim over lci::Queue: send() is SEND-ENQ with retry-on-exhaustion,
// try_recv() is RECV-DEQ with the first-packet policy, progress() runs the
// communication server step (Algorithm 3). Compute threads may call send and
// try_recv directly (thread_safe() == true); completion is observed through
// the request status flags, never a library call.
#pragma once

#include <deque>
#include <memory>

#include "comm/backend.hpp"
#include "lci/one_sided.hpp"
#include "lci/queue.hpp"
#include "lci/server.hpp"
#include "runtime/spinlock.hpp"

namespace lcr::comm {

class LciBackend final : public Backend {
 public:
  LciBackend(fabric::Fabric& fabric, int rank, const BackendOptions& options);
  ~LciBackend() override;

  const char* name() const override { return "lci"; }
  bool thread_safe_send() const override { return true; }
  bool thread_safe_recv() const override { return true; }
  std::size_t chunk_bytes() const override { return queue_.eager_limit(); }

  void begin_phase(const PhaseSpec& spec) override;
  bool try_send(int dst, std::vector<std::byte>& payload) override;

  /// Zero-copy lease path: messages that fit an eager packet are serialized
  /// directly into pool memory and sent without any backend copy; larger
  /// requests fall back to the base-class heap lease (which funnels through
  /// try_send and the rendezvous path).
  BufferLease acquire(int dst, std::size_t max_bytes) override;
  bool commit(int dst, BufferLease& lease, std::size_t bytes) override;
  void abandon(BufferLease& lease) override;

  void flush() override;
  bool try_recv(InMessage& out) override;
  void progress() override;
  void end_phase() override;

  /// Direct-write path (DESIGN.md §15): regions are registered straight at
  /// the device (monotonic fabric rkeys, never reused), puts ride lc_put
  /// with a SIGNAL notification whose immediates carry the completion
  /// accounting, and landed signals queue here until the engine polls them.
  bool supports_direct_write() const override { return true; }
  DirectRegion register_direct_region(int src, std::byte* base,
                                      std::size_t bytes,
                                      std::uint32_t generation) override;
  void release_direct_region(int src, const DirectRegion& region) override;
  DirectPutStatus direct_put(int dst, const DirectRegion& region,
                             const void* payload, std::size_t bytes,
                             std::uint32_t phase_id,
                             std::uint32_t pattern_key) override;
  bool poll_direct(DirectSignal& out) override;

  lci::Queue& queue() noexcept { return queue_; }

  /// Receiver-side registration bookkeeping (bounds / generation / counter
  /// audits; the fuzz suite inspects it through here).
  lci::RegionBook& region_book() noexcept { return region_book_; }

 private:
  struct SendSlot {
    std::vector<std::byte> payload;  // empty for leased-packet sends
    std::size_t bytes = 0;           // wire bytes (tracker accounting)
    lci::Request req;
  };

  void reap_sends();

  lci::Queue queue_;
  // Declared after queue_ (destroyed first); explicitly stopped in the
  // destructor before any send-slot state is torn down, because staged lane
  // ops hold Request* into in_flight_sends_ slots.
  std::unique_ptr<lci::ProgressServerGroup> servers_;
  rt::MemTracker* tracker_;

  // Incomplete requests list (paper: "Abelian's communication layer
  // maintains a list of incomplete requests, and can start freeing resources
  // ... by simply checking the boolean-type status of each request").
  rt::Spinlock send_lock_;
  std::deque<std::unique_ptr<SendSlot>> in_flight_sends_;

  rt::Spinlock rdv_lock_;
  std::deque<std::unique_ptr<lci::Request>> pending_rdv_;

  // Direct-write state: landed SIGNAL notifications (pushed from whichever
  // thread runs progress) and the local registration book.
  rt::Spinlock direct_lock_;
  std::deque<DirectSignal> direct_signals_;
  lci::RegionBook region_book_;
};

}  // namespace lcr::comm
