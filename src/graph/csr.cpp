#include "graph/csr.hpp"

#include <cassert>

namespace lcr::graph {

Csr Csr::from_edges(VertexId num_nodes, const EdgeList& edges,
                    const std::vector<Weight>& weights) {
  assert(weights.empty() || weights.size() == edges.size());
  Csr g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) {
    assert(e.first < num_nodes && e.second < num_nodes);
    ++g.offsets_[e.first + 1];
  }
  for (std::size_t v = 1; v <= num_nodes; ++v)
    g.offsets_[v] += g.offsets_[v - 1];

  g.targets_.resize(edges.size());
  if (!weights.empty()) g.weights_.resize(edges.size());
  std::vector<EdgeId> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const EdgeId slot = cursor[edges[i].first]++;
    g.targets_[slot] = edges[i].second;
    if (!weights.empty()) g.weights_[slot] = weights[i];
  }
  return g;
}

Csr Csr::reverse() const {
  Csr r;
  const VertexId n = num_nodes();
  r.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId t : targets_) ++r.offsets_[t + 1];
  for (std::size_t v = 1; v <= n; ++v) r.offsets_[v] += r.offsets_[v - 1];

  r.targets_.resize(targets_.size());
  if (!weights_.empty()) r.weights_.resize(weights_.size());
  std::vector<EdgeId> cursor(r.offsets_.begin(), r.offsets_.end() - 1);
  for (VertexId src = 0; src < n; ++src) {
    for (EdgeId e = offsets_[src]; e < offsets_[src + 1]; ++e) {
      const EdgeId slot = cursor[targets_[e]]++;
      r.targets_[slot] = src;
      if (!weights_.empty()) r.weights_[slot] = weights_[e];
    }
  }
  return r;
}

}  // namespace lcr::graph
