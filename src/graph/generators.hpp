// Synthetic graph generators.
//
// The paper's inputs (Table I) are clueweb12 (a 978M-node web crawl with
// E/V ~ 16 and an extreme max in-degree), kron30 and rmat28 (scale-free
// synthetic graphs with E/V ~ 16-32 and multi-million-degree hubs). The web
// crawl is not redistributable and the synthetic graphs are far beyond one
// machine, so we generate scaled-down graphs that preserve the
// degree-distribution *shape* - power-law skew with disproportionate hubs -
// which is what stresses irregular communication (DESIGN.md, substitution
// table).
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace lcr::graph {

struct GenOptions {
  std::uint64_t seed = 42;
  bool make_weights = false;    // uniform weights in [1, max_weight]
  Weight max_weight = 100;
  bool remove_self_loops = true;
};

/// R-MAT generator (rmat28 analogue): recursive quadrant sampling with
/// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), E/V ~ 16.
Csr rmat(unsigned scale, double edge_factor = 16.0, GenOptions opt = {});

/// Kronecker generator (kron30 analogue): same recursion with Graph500
/// parameters and a denser E/V ~ 32; vertex ids are scrambled.
Csr kron(unsigned scale, double edge_factor = 32.0, GenOptions opt = {});

/// Web-crawl-like generator (clueweb12 analogue): Zipf-distributed in-degrees
/// with exponent ~ 2.1 produce a very large max in-degree relative to the
/// max out-degree, at E/V ~ 16.
Csr web(unsigned scale, double edge_factor = 16.0, GenOptions opt = {});

/// Erdos-Renyi G(n, m)-style uniform random graph (tests).
Csr erdos_renyi(VertexId n, EdgeId m, GenOptions opt = {});

/// Deterministic small graphs for unit tests.
Csr path(VertexId n, bool bidirectional = true);
Csr star(VertexId n, bool out_from_center = true);
Csr complete(VertexId n);
Csr grid2d(VertexId rows, VertexId cols);

/// Named lookup used by benches/examples: "rmat", "kron", "web", "er".
Csr by_name(const std::string& name, unsigned scale, GenOptions opt = {});

}  // namespace lcr::graph
