#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lcr::graph {

namespace {
constexpr std::uint64_t kMagic = 0x4C43524230303031ULL;  // "LCRB0001"

struct BinaryHeader {
  std::uint64_t magic = kMagic;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t has_weights = 0;
};
}  // namespace

void save_edge_list(const Csr& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << "# lcr edge list |V|=" << g.num_nodes() << " |E|=" << g.num_edges()
      << "\n";
  for (VertexId u = 0; u < g.num_nodes(); ++u) {
    for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      out << u << ' ' << g.edge_target(e);
      if (g.has_weights()) out << ' ' << g.edge_weight(e);
      out << '\n';
    }
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Csr load_edge_list(const std::string& path, VertexId num_nodes_hint) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  EdgeList edges;
  std::vector<Weight> weights;
  bool any_weight = false;
  VertexId max_id = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ls >> u >> v))
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected 'src dst [weight]'");
    std::uint64_t w = 0;
    if (ls >> w) {
      any_weight = true;
      weights.resize(edges.size(), 1);  // backfill default for earlier rows
      weights.push_back(static_cast<Weight>(w));
    } else if (any_weight) {
      weights.push_back(1);
    }
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    max_id = std::max({max_id, static_cast<VertexId>(u),
                       static_cast<VertexId>(v)});
  }
  const VertexId n =
      std::max<VertexId>(num_nodes_hint, edges.empty() ? 0 : max_id + 1);
  if (!any_weight) weights.clear();
  return Csr::from_edges(n, edges, weights);
}

void save_binary(const Csr& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  BinaryHeader header;
  header.num_nodes = g.num_nodes();
  header.num_edges = g.num_edges();
  header.has_weights = g.has_weights() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(g.targets().size() *
                                         sizeof(VertexId)));
  if (g.has_weights())
    out.write(reinterpret_cast<const char*>(g.weights().data()),
              static_cast<std::streamsize>(g.weights().size() *
                                           sizeof(Weight)));
  if (!out) throw std::runtime_error("write failed: " + path);
}

Csr load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  BinaryHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || header.magic != kMagic)
    throw std::runtime_error("not an LCRB file: " + path);

  // Rebuild via the edge-list constructor to reuse its validation.
  std::vector<EdgeId> offsets(header.num_nodes + 1);
  std::vector<VertexId> targets(header.num_edges);
  std::vector<Weight> weights;
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(VertexId)));
  if (header.has_weights != 0) {
    weights.resize(header.num_edges);
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(Weight)));
  }
  if (!in) throw std::runtime_error("truncated LCRB file: " + path);

  EdgeList edges;
  edges.reserve(header.num_edges);
  for (VertexId u = 0; u < header.num_nodes; ++u)
    for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e)
      edges.emplace_back(u, targets[e]);
  return Csr::from_edges(static_cast<VertexId>(header.num_nodes), edges,
                         weights);
}

}  // namespace lcr::graph
