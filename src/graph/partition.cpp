#include "graph/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace lcr::graph {

std::pair<int, int> cvc_grid(int num_hosts) {
  int pr = static_cast<int>(std::sqrt(static_cast<double>(num_hosts)));
  while (pr > 1 && num_hosts % pr != 0) --pr;
  return {pr, num_hosts / pr};
}

Csr symmetrize(const Csr& g) {
  EdgeList edges;
  std::vector<Weight> weights;
  const bool w = g.has_weights();
  edges.reserve(g.num_edges() * 2);
  if (w) weights.reserve(g.num_edges() * 2);
  for (VertexId u = 0; u < g.num_nodes(); ++u) {
    for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const VertexId v = g.edge_target(e);
      edges.emplace_back(u, v);
      edges.emplace_back(v, u);
      if (w) {
        weights.push_back(g.edge_weight(e));
        weights.push_back(g.edge_weight(e));
      }
    }
  }
  return Csr::from_edges(g.num_nodes(), edges, weights);
}

namespace {

/// Contiguous master blocks balanced by out-edge count (Gemini's "blocked"
/// assignment that "tries to balance the assigned edges across hosts").
std::vector<VertexId> compute_master_bounds(const Csr& g, int num_hosts) {
  const VertexId n = g.num_nodes();
  std::vector<VertexId> bounds(static_cast<std::size_t>(num_hosts) + 1, n);
  bounds[0] = 0;
  const double target =
      static_cast<double>(g.num_edges()) / static_cast<double>(num_hosts);
  EdgeId acc = 0;
  int h = 1;
  for (VertexId v = 0; v < n && h < num_hosts; ++v) {
    acc += g.degree(v);
    if (static_cast<double>(acc) >= target * h) {
      bounds[static_cast<std::size_t>(h)] = v + 1;
      ++h;
    }
  }
  // Any remaining cuts collapse to n (empty hosts are legal for tiny graphs).
  for (; h < num_hosts; ++h)
    bounds[static_cast<std::size_t>(h)] =
        std::max(bounds[static_cast<std::size_t>(h)],
                 bounds[static_cast<std::size_t>(h - 1)]);
  return bounds;
}

int owner_from_bounds(const std::vector<VertexId>& bounds, VertexId gid) {
  // upper_bound over bounds[1..p]; small p, linear is fine but use binary.
  int lo = 0;
  int hi = static_cast<int>(bounds.size()) - 1;
  while (hi - lo > 1) {
    const int mid = (lo + hi) / 2;
    if (bounds[static_cast<std::size_t>(mid)] <= gid)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

std::vector<DistGraph> partition(const Csr& g, int num_hosts,
                                 PartitionPolicy policy) {
  assert(num_hosts >= 1);
  const VertexId n = g.num_nodes();
  const std::vector<VertexId> bounds = compute_master_bounds(g, num_hosts);
  const auto [pr, pc] = cvc_grid(num_hosts);

  // 1. Assign every edge to a host.
  auto edge_host = [&](VertexId u, VertexId v) -> int {
    const int ou = owner_from_bounds(bounds, u);
    switch (policy) {
      case PartitionPolicy::BlockedEdgeCut:
      case PartitionPolicy::OutgoingEdgeCut:
        return ou;
      case PartitionPolicy::IncomingEdgeCut:
        return owner_from_bounds(bounds, v);
      case PartitionPolicy::CartesianVertexCut: {
        const int ov = owner_from_bounds(bounds, v);
        const int r = ou * pr / num_hosts;
        const int c = ov * pc / num_hosts;
        return r * pc + c;
      }
    }
    return ou;
  };

  std::vector<EdgeList> host_edges(static_cast<std::size_t>(num_hosts));
  std::vector<std::vector<Weight>> host_weights(
      static_cast<std::size_t>(num_hosts));
  const bool weighted = g.has_weights();
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const VertexId v = g.edge_target(e);
      const int h = edge_host(u, v);
      host_edges[static_cast<std::size_t>(h)].emplace_back(u, v);
      if (weighted)
        host_weights[static_cast<std::size_t>(h)].push_back(g.edge_weight(e));
    }
  }

  // 2. Build each host's local graph: masters (all owned vertices) first,
  //    then mirrors (non-owned endpoints of local edges), each sorted by gid.
  std::vector<DistGraph> hosts(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    DistGraph& dg = hosts[static_cast<std::size_t>(h)];
    dg.host_id = h;
    dg.num_hosts = num_hosts;
    dg.policy = policy;
    dg.global_nodes = n;
    dg.master_bounds = bounds;

    const VertexId mlo = bounds[static_cast<std::size_t>(h)];
    const VertexId mhi = bounds[static_cast<std::size_t>(h) + 1];
    dg.num_masters = mhi - mlo;

    // Collect mirror gids.
    std::vector<VertexId> mirrors;
    {
      std::vector<bool> seen;  // lazily sized; local edges touch few gids
      seen.assign(n, false);
      for (const Edge& e : host_edges[static_cast<std::size_t>(h)]) {
        for (const VertexId gid : {e.first, e.second}) {
          if ((gid < mlo || gid >= mhi) && !seen[gid]) {
            seen[gid] = true;
            mirrors.push_back(gid);
          }
        }
      }
      std::sort(mirrors.begin(), mirrors.end());
    }

    dg.num_local = dg.num_masters + static_cast<VertexId>(mirrors.size());

    // Compressed lid map: masters implicit, mirror gids appended in the
    // sorted order the collection above produced.
    CompressedLidMap::Builder lids(mlo, dg.num_masters);
    for (const VertexId gid : mirrors) lids.add_mirror(gid);
    dg.lids = std::move(lids).build();

    // Local CSR. Construction uses a throwaway g2l hash map - the edge list
    // is touched once and random-order, so the transient map beats repeated
    // chunk decodes; it dies with this scope and never ships with the graph.
    std::unordered_map<VertexId, VertexId> g2l;
    g2l.reserve(dg.num_local);
    for (VertexId i = 0; i < dg.num_masters; ++i) g2l.emplace(mlo + i, i);
    for (std::size_t i = 0; i < mirrors.size(); ++i)
      g2l.emplace(mirrors[i], dg.num_masters + static_cast<VertexId>(i));
    EdgeList local;
    local.reserve(host_edges[static_cast<std::size_t>(h)].size());
    for (const Edge& e : host_edges[static_cast<std::size_t>(h)])
      local.emplace_back(g2l.at(e.first), g2l.at(e.second));
    dg.out_edges = Csr::from_edges(dg.num_local, local,
                                   host_weights[static_cast<std::size_t>(h)]);
    dg.in_edges = dg.out_edges.reverse();

    // Global out-degrees for every local proxy.
    dg.global_out_degree.resize(dg.num_local);
    for (VertexId i = 0; i < dg.num_masters; ++i)
      dg.global_out_degree[i] = static_cast<std::uint32_t>(g.degree(mlo + i));
    for (std::size_t i = 0; i < mirrors.size(); ++i)
      dg.global_out_degree[dg.num_masters + i] =
          static_cast<std::uint32_t>(g.degree(mirrors[i]));
  }

  // 3. Memoized sync plans. Mirrors are sorted by gid, masters are sorted by
  //    gid, and gid -> master-local-id is monotone, so both sides of each
  //    pair list the shared vertices in identical (gid) order - which also
  //    means every per-(host, peer) list appends strictly increasing lids,
  //    exactly what the delta-chunk builders require.
  std::vector<CompressedPlan::Builder> m2m_builders;
  std::vector<CompressedPlan::Builder> m2mirror_builders;
  m2m_builders.reserve(static_cast<std::size_t>(num_hosts));
  m2mirror_builders.reserve(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    m2m_builders.emplace_back(num_hosts);
    m2mirror_builders.emplace_back(num_hosts);
  }
  for (int h = 0; h < num_hosts; ++h) {
    DistGraph& dg = hosts[static_cast<std::size_t>(h)];
    dg.lids.visit_mirrors([&](VertexId lid, VertexId gid) {
      const int p = owner_from_bounds(bounds, gid);
      m2m_builders[static_cast<std::size_t>(h)].append(p, lid);
      // The owner-side master lid is arithmetic: gid - owner's block start.
      m2mirror_builders[static_cast<std::size_t>(p)].append(
          h, gid - bounds[static_cast<std::size_t>(p)]);
    });
  }
  for (int h = 0; h < num_hosts; ++h) {
    DistGraph& dg = hosts[static_cast<std::size_t>(h)];
    dg.mirror_to_master =
        std::move(m2m_builders[static_cast<std::size_t>(h)]).build();
    dg.master_to_mirror =
        std::move(m2mirror_builders[static_cast<std::size_t>(h)]).build();
  }

  return hosts;
}

}  // namespace lcr::graph
