// Graph degree statistics (paper Table I).
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace lcr::graph {

struct GraphStats {
  VertexId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;       // |E| / |V|
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
};

/// Computes Table-I-style properties of a graph.
GraphStats compute_stats(const Csr& g);

/// Formats like the paper's Table I row set.
std::string format_stats(const std::string& name, const GraphStats& s);

}  // namespace lcr::graph
