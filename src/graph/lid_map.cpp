#include "graph/lid_map.hpp"

#include <atomic>

namespace lcr::graph::detail {

// Ids start at 1 so 0 can mean "empty cache way". A process that built
// 2^64 maps would wrap; at one build per nanosecond that is ~580 years.
std::uint64_t next_sequence_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lcr::graph::detail
