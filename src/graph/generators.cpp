#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/rng.hpp"

namespace lcr::graph {

namespace {

/// One R-MAT edge at the given scale with quadrant probabilities.
Edge rmat_edge(rt::Xoshiro256& rng, unsigned scale, double a, double b,
               double c) {
  VertexId src = 0;
  VertexId dst = 0;
  for (unsigned bit = 0; bit < scale; ++bit) {
    const double r = rng.uniform();
    src <<= 1;
    dst <<= 1;
    if (r < a) {
      // top-left: no bits set
    } else if (r < a + b) {
      dst |= 1;
    } else if (r < a + b + c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

std::vector<Weight> gen_weights(rt::Xoshiro256& rng, std::size_t count,
                                Weight max_weight) {
  std::vector<Weight> w(count);
  for (auto& x : w) x = static_cast<Weight>(1 + rng.below(max_weight));
  return w;
}

Csr finish(VertexId n, EdgeList edges, const GenOptions& opt,
           rt::Xoshiro256& rng) {
  if (opt.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) { return e.first == e.second; }),
                edges.end());
  }
  std::vector<Weight> weights;
  if (opt.make_weights) weights = gen_weights(rng, edges.size(), opt.max_weight);
  return Csr::from_edges(n, edges, weights);
}

/// Zipf-like sample over [0, n): power-law tail with exponent `s` via
/// inverse-CDF of a shifted Pareto; `spread` scales how much probability
/// mass the top ranks take (larger spread = flatter head, smaller max
/// degree). Out-of-range samples fall back to uniform.
VertexId zipf_sample(rt::Xoshiro256& rng, VertexId n, double s,
                     double spread) {
  const double u = rng.uniform() + 1e-12;
  const double x = spread * (std::pow(u, -1.0 / (s - 1.0)) - 1.0);
  const auto k = static_cast<std::uint64_t>(x);
  return static_cast<VertexId>(k >= n ? rng.below(n) : k);
}

}  // namespace

Csr rmat(unsigned scale, double edge_factor, GenOptions opt) {
  const VertexId n = VertexId{1} << scale;
  const auto m = static_cast<EdgeId>(edge_factor * static_cast<double>(n));
  rt::Xoshiro256 rng(opt.seed);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i)
    edges.push_back(rmat_edge(rng, scale, 0.57, 0.19, 0.19));
  return finish(n, std::move(edges), opt, rng);
}

Csr kron(unsigned scale, double edge_factor, GenOptions opt) {
  const VertexId n = VertexId{1} << scale;
  const auto m = static_cast<EdgeId>(edge_factor * static_cast<double>(n));
  rt::Xoshiro256 rng(opt.seed ^ 0x6b726f6eULL);
  // Graph500 Kronecker parameters; ids scrambled with a hash permutation.
  EdgeList edges;
  edges.reserve(m);
  const VertexId mask = n - 1;
  for (EdgeId i = 0; i < m; ++i) {
    Edge e = rmat_edge(rng, scale, 0.57, 0.19, 0.19);
    e.first = static_cast<VertexId>(rt::hash64(e.first) & mask);
    e.second = static_cast<VertexId>(rt::hash64(e.second) & mask);
    edges.push_back(e);
  }
  return finish(n, std::move(edges), opt, rng);
}

Csr web(unsigned scale, double edge_factor, GenOptions opt) {
  const VertexId n = VertexId{1} << scale;
  const auto m = static_cast<EdgeId>(edge_factor * static_cast<double>(n));
  rt::Xoshiro256 rng(opt.seed ^ 0x77656257ULL);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    // Sources: power-law but with a flattened head (pages have bounded
    // out-link counts), so the max out-degree stays moderate.
    const VertexId src = zipf_sample(rng, n, 2.0, 64.0);
    // Destinations: heavily concentrated head (a few pages collect most
    // in-links), giving the clueweb-like max-Din >> max-Dout signature.
    const VertexId dst = zipf_sample(rng, n, 2.2, 2.0);
    edges.emplace_back(src, dst);
  }
  return finish(n, std::move(edges), opt, rng);
}

Csr erdos_renyi(VertexId n, EdgeId m, GenOptions opt) {
  rt::Xoshiro256 rng(opt.seed ^ 0x6572ULL);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i)
    edges.emplace_back(static_cast<VertexId>(rng.below(n)),
                       static_cast<VertexId>(rng.below(n)));
  return finish(n, std::move(edges), opt, rng);
}

Csr path(VertexId n, bool bidirectional) {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
    if (bidirectional) edges.emplace_back(v + 1, v);
  }
  return Csr::from_edges(n, edges);
}

Csr star(VertexId n, bool out_from_center) {
  EdgeList edges;
  for (VertexId v = 1; v < n; ++v) {
    if (out_from_center)
      edges.emplace_back(0, v);
    else
      edges.emplace_back(v, 0);
  }
  return Csr::from_edges(n, edges);
}

Csr complete(VertexId n) {
  EdgeList edges;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = 0; v < n; ++v)
      if (u != v) edges.emplace_back(u, v);
  return Csr::from_edges(n, edges);
}

Csr grid2d(VertexId rows, VertexId cols) {
  EdgeList edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(id(r, c), id(r, c + 1));
        edges.emplace_back(id(r, c + 1), id(r, c));
      }
      if (r + 1 < rows) {
        edges.emplace_back(id(r, c), id(r + 1, c));
        edges.emplace_back(id(r + 1, c), id(r, c));
      }
    }
  }
  return Csr::from_edges(rows * cols, edges);
}

Csr by_name(const std::string& name, unsigned scale, GenOptions opt) {
  if (name == "rmat") return rmat(scale, 16.0, opt);
  if (name == "kron") return kron(scale, 32.0, opt);
  if (name == "web") return web(scale, 16.0, opt);
  if (name == "er")
    return erdos_renyi(VertexId{1} << scale,
                       EdgeId{8} << scale, opt);
  throw std::invalid_argument("unknown graph generator: " + name);
}

}  // namespace lcr::graph
