// Distributed graph: one host's partition with master/mirror proxies.
//
// Mirrors the representation described in paper Section II: edges are
// assigned to hosts by a partitioning policy; a host creates proxies for the
// endpoints of its edges; one proxy per vertex is the master (owning the
// canonical value), the rest are mirrors. On each host "the master nodes are
// stored contiguously, followed by mirror nodes" - local ids [0, num_masters)
// are masters, [num_masters, num_local) are mirrors.
//
// For communication, each pair of hosts shares *memoized index lists* sorted
// by global id (Abelian "minimizes the communication meta-data"):
//   mirror_to_master.span(p) - my mirror local-ids whose master lives on p
//   master_to_mirror.span(p) - my master local-ids that have a mirror on p
// Host A's mirror_to_master[B] and host B's master_to_mirror[A] enumerate the
// same global vertices in the same order, so sync messages only carry
// (position, value) pairs, never global ids.
//
// All lid metadata - the l2g/g2l maps and both plan directions - lives in
// delta-varint chunks (graph/lid_map.hpp, DESIGN.md §17): master lookups are
// pure arithmetic and mirror/plan structures cost ~1-2 bytes per entry
// instead of the 28+ bytes of the former vector + hash-map representation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/lid_map.hpp"

namespace lcr::graph {

/// Partitioning policies (paper Section II / IV).
enum class PartitionPolicy : std::uint8_t {
  /// Gemini's policy: contiguous vertex blocks balanced by edge count; an
  /// edge lives with its source's owner.
  BlockedEdgeCut,
  /// Abelian outgoing edge-cut: same edge placement, hashed-block masters.
  OutgoingEdgeCut,
  /// Incoming edge-cut: an edge lives with its *destination's* owner, so
  /// push operators always write masters (no reduce needed - broadcast
  /// only), the mirror-image of the outgoing cut. Exercises the other
  /// branch of Abelian's partition-aware synchronization.
  IncomingEdgeCut,
  /// Abelian's "advanced vertex-cut": 2D cartesian blocking of the adjacency
  /// matrix (paper ref [27]); both endpoints of an edge may be mirrors.
  CartesianVertexCut,
};

const char* to_string(PartitionPolicy p);

class DistGraph {
 public:
  int host_id = 0;
  int num_hosts = 1;
  PartitionPolicy policy = PartitionPolicy::BlockedEdgeCut;

  /// Total vertices in the global graph.
  VertexId global_nodes = 0;

  /// Local proxies: masters in [0, num_masters), mirrors after.
  VertexId num_masters = 0;
  VertexId num_local = 0;

  /// Compressed local<->global vertex id map (DESIGN.md §17).
  CompressedLidMap lids;

  /// Local out-edges (local src -> local dst) and the transpose.
  Csr out_edges;
  Csr in_edges;

  /// Memoized sync plans, indexed by peer host (see file comment).
  CompressedPlan mirror_to_master;
  CompressedPlan master_to_mirror;

  /// Master-ownership block boundaries: owner of gid v is the unique h with
  /// master_bounds[h] <= v < master_bounds[h+1].
  std::vector<VertexId> master_bounds;

  /// Global out-degrees of local proxies (size num_local), needed by
  /// pagerank; filled by the partitioner from the global graph.
  std::vector<std::uint32_t> global_out_degree;

  bool is_master(VertexId local) const noexcept { return local < num_masters; }

  VertexId local_to_global(VertexId local) const {
    return lids.local_to_global(local);
  }

  /// Owner host of a global vertex.
  int owner_of(VertexId gid) const {
    int lo = 0;
    int hi = num_hosts;
    while (hi - lo > 1) {
      const int mid = (lo + hi) / 2;
      if (master_bounds[static_cast<std::size_t>(mid)] <= gid)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }

  /// First global id of this host's master block.
  VertexId master_lo() const {
    return master_bounds[static_cast<std::size_t>(host_id)];
  }

  /// Local id of a global vertex, or kNoLocal if absent on this host.
  /// Masters resolve by pure arithmetic (the contiguous [mlo, mlo +
  /// num_masters) block), mirrors by chunk binary search - no hashing.
  static constexpr VertexId kNoLocal = CompressedLidMap::kNoLocal;
  VertexId global_to_local(VertexId gid) const {
    return lids.global_to_local(gid);
  }

  /// Heap bytes of this host's lid metadata (lid map + both sync plans +
  /// ownership bounds) in the compressed representation.
  std::size_t mem_bytes() const noexcept {
    return lids.mem_bytes() + mirror_to_master.mem_bytes() +
           master_to_mirror.mem_bytes() +
           master_bounds.capacity() * sizeof(VertexId);
  }

  /// What the same metadata cost in the seed representation (l2g vector +
  /// g2l unordered_map + vector<vector> plans); the model is documented at
  /// CompressedLidMap::mem_bytes_uncompressed.
  std::size_t mem_bytes_uncompressed() const noexcept {
    return lids.mem_bytes_uncompressed() +
           mirror_to_master.mem_bytes_uncompressed() +
           master_to_mirror.mem_bytes_uncompressed() +
           master_bounds.capacity() * sizeof(VertexId);
  }
};

}  // namespace lcr::graph
