// Distributed graph: one host's partition with master/mirror proxies.
//
// Mirrors the representation described in paper Section II: edges are
// assigned to hosts by a partitioning policy; a host creates proxies for the
// endpoints of its edges; one proxy per vertex is the master (owning the
// canonical value), the rest are mirrors. On each host "the master nodes are
// stored contiguously, followed by mirror nodes" - local ids [0, num_masters)
// are masters, [num_masters, num_local) are mirrors.
//
// For communication, each pair of hosts shares *memoized index lists* sorted
// by global id (Abelian "minimizes the communication meta-data"):
//   mirror_to_master[p] - my mirror local-ids whose master lives on p
//   master_to_mirror[p] - my master local-ids that have a mirror on p
// Host A's mirror_to_master[B] and host B's master_to_mirror[A] enumerate the
// same global vertices in the same order, so sync messages only carry
// (position, value) pairs, never global ids.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"

namespace lcr::graph {

/// Partitioning policies (paper Section II / IV).
enum class PartitionPolicy : std::uint8_t {
  /// Gemini's policy: contiguous vertex blocks balanced by edge count; an
  /// edge lives with its source's owner.
  BlockedEdgeCut,
  /// Abelian outgoing edge-cut: same edge placement, hashed-block masters.
  OutgoingEdgeCut,
  /// Incoming edge-cut: an edge lives with its *destination's* owner, so
  /// push operators always write masters (no reduce needed - broadcast
  /// only), the mirror-image of the outgoing cut. Exercises the other
  /// branch of Abelian's partition-aware synchronization.
  IncomingEdgeCut,
  /// Abelian's "advanced vertex-cut": 2D cartesian blocking of the adjacency
  /// matrix (paper ref [27]); both endpoints of an edge may be mirrors.
  CartesianVertexCut,
};

const char* to_string(PartitionPolicy p);

class DistGraph {
 public:
  int host_id = 0;
  int num_hosts = 1;
  PartitionPolicy policy = PartitionPolicy::BlockedEdgeCut;

  /// Total vertices in the global graph.
  VertexId global_nodes = 0;

  /// Local proxies: masters in [0, num_masters), mirrors after.
  VertexId num_masters = 0;
  VertexId num_local = 0;

  /// Local-to-global vertex id map (size num_local).
  std::vector<VertexId> l2g;

  /// Local out-edges (local src -> local dst) and the transpose.
  Csr out_edges;
  Csr in_edges;

  /// Memoized sync lists, indexed by peer host (see file comment).
  std::vector<std::vector<VertexId>> mirror_to_master;
  std::vector<std::vector<VertexId>> master_to_mirror;

  /// Master-ownership block boundaries: owner of gid v is the unique h with
  /// master_bounds[h] <= v < master_bounds[h+1].
  std::vector<VertexId> master_bounds;

  /// Global out-degrees of local proxies (size num_local), needed by
  /// pagerank; filled by the partitioner from the global graph.
  std::vector<std::uint32_t> global_out_degree;

  bool is_master(VertexId local) const noexcept { return local < num_masters; }

  VertexId local_to_global(VertexId local) const { return l2g[local]; }

  /// Owner host of a global vertex.
  int owner_of(VertexId gid) const {
    int lo = 0;
    int hi = num_hosts;
    while (hi - lo > 1) {
      const int mid = (lo + hi) / 2;
      if (master_bounds[static_cast<std::size_t>(mid)] <= gid)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }

  /// First global id of this host's master block.
  VertexId master_lo() const {
    return master_bounds[static_cast<std::size_t>(host_id)];
  }

  /// Local id of a global vertex, or kNoLocal if absent on this host.
  static constexpr VertexId kNoLocal = ~VertexId{0};
  VertexId global_to_local(VertexId gid) const {
    // Masters are the contiguous block [mlo, mlo + num_masters) mapped to
    // local ids [0, num_masters) in order: pure arithmetic, no hashing.
    const VertexId mlo = master_lo();
    if (gid >= mlo && gid - mlo < num_masters) return gid - mlo;
    auto it = g2l_.find(gid);
    return it == g2l_.end() ? kNoLocal : it->second;
  }

  /// Construction-time access for the partitioner.
  std::unordered_map<VertexId, VertexId>& g2l_mutable() { return g2l_; }
  const std::unordered_map<VertexId, VertexId>& g2l() const { return g2l_; }

 private:
  std::unordered_map<VertexId, VertexId> g2l_;
};

}  // namespace lcr::graph
