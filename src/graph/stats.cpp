#include "graph/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace lcr::graph {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.avg_degree = s.num_nodes == 0
                     ? 0.0
                     : static_cast<double>(s.num_edges) /
                           static_cast<double>(s.num_nodes);
  std::vector<std::size_t> in_deg(s.num_nodes, 0);
  for (VertexId v = 0; v < s.num_nodes; ++v) {
    s.max_out_degree = std::max(s.max_out_degree, g.degree(v));
    for (EdgeId e = g.edge_begin(v); e < g.edge_end(v); ++e)
      ++in_deg[g.edge_target(e)];
  }
  if (!in_deg.empty())
    s.max_in_degree = *std::max_element(in_deg.begin(), in_deg.end());
  return s;
}

std::string format_stats(const std::string& name, const GraphStats& s) {
  std::ostringstream os;
  os << name << ": |V|=" << s.num_nodes << " |E|=" << s.num_edges
     << " |E|/|V|=" << s.avg_degree << " maxDout=" << s.max_out_degree
     << " maxDin=" << s.max_in_degree;
  return os.str();
}

}  // namespace lcr::graph
