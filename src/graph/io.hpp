// Graph file I/O: plain edge-list text and a compact binary format.
//
// Real deployments load graphs like clueweb12 from disk; this module gives
// the library the same workflow at reproduction scale. Two formats:
//   * text edge list - one "src dst [weight]" per line, '#' comments;
//     interoperable with SNAP / common graph datasets.
//   * LCRB binary    - header + CSR arrays, loads without re-sorting.
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace lcr::graph {

/// Writes g as a text edge list (with weights if present).
void save_edge_list(const Csr& g, const std::string& path);

/// Parses a text edge list. Node count is 1 + max id seen unless
/// `num_nodes_hint` is larger. Throws std::runtime_error on parse errors.
Csr load_edge_list(const std::string& path, VertexId num_nodes_hint = 0);

/// Writes g in the LCRB binary format.
void save_binary(const Csr& g, const std::string& path);

/// Loads an LCRB binary file. Throws std::runtime_error on bad magic/size.
Csr load_binary(const std::string& path);

}  // namespace lcr::graph
