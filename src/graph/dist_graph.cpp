#include "graph/dist_graph.hpp"

namespace lcr::graph {

const char* to_string(PartitionPolicy p) {
  switch (p) {
    case PartitionPolicy::BlockedEdgeCut: return "blocked-edge-cut";
    case PartitionPolicy::OutgoingEdgeCut: return "outgoing-edge-cut";
    case PartitionPolicy::IncomingEdgeCut: return "incoming-edge-cut";
    case PartitionPolicy::CartesianVertexCut: return "cartesian-vertex-cut";
  }
  return "?";
}

}  // namespace lcr::graph
