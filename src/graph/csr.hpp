// Compressed sparse row graph representation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace lcr::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;
using Weight = std::uint32_t;

/// A directed edge (src, dst).
using Edge = std::pair<VertexId, VertexId>;
using EdgeList = std::vector<Edge>;

/// Immutable CSR over directed edges, with optional per-edge weights stored
/// in edge order.
class Csr {
 public:
  Csr() = default;

  /// Builds from an edge list (not required to be sorted). If `weights` is
  /// non-empty it must parallel `edges`.
  static Csr from_edges(VertexId num_nodes, const EdgeList& edges,
                        const std::vector<Weight>& weights = {});

  VertexId num_nodes() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  EdgeId num_edges() const noexcept { return targets_.size(); }
  bool has_weights() const noexcept { return !weights_.empty(); }

  /// Out-degree of v.
  std::size_t degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }
  EdgeId edge_begin(VertexId v) const noexcept { return offsets_[v]; }
  EdgeId edge_end(VertexId v) const noexcept { return offsets_[v + 1]; }
  VertexId edge_target(EdgeId e) const noexcept { return targets_[e]; }
  Weight edge_weight(EdgeId e) const noexcept {
    return weights_.empty() ? 1 : weights_[e];
  }

  /// Iterates fn(dst, weight) over v's out-edges.
  template <typename Fn>
  void for_each_edge(VertexId v, Fn&& fn) const {
    for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e)
      fn(targets_[e], weights_.empty() ? Weight{1} : weights_[e]);
  }

  /// Returns the transpose (in-edges become out-edges), carrying weights.
  Csr reverse() const;

  const std::vector<EdgeId>& offsets() const noexcept { return offsets_; }
  const std::vector<VertexId>& targets() const noexcept { return targets_; }
  const std::vector<Weight>& weights() const noexcept { return weights_; }

 private:
  std::vector<EdgeId> offsets_;   // size num_nodes + 1
  std::vector<VertexId> targets_; // size num_edges
  std::vector<Weight> weights_;   // empty or size num_edges
};

}  // namespace lcr::graph
