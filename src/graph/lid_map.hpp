// Compressed local-id maps and sync plans (DESIGN.md §17).
//
// The Gemini-style partition layout makes every per-host lid structure a
// strictly increasing u32 sequence: masters are the contiguous gid block
// [mlo, mlo + num_masters) mapped to local ids [0, num_masters) in order,
// mirrors are sorted by gid, and the memoized per-peer sync lists enumerate
// lids in increasing order on both sides of every (host, peer) pair. So
// instead of materializing an l2g vector, a g2l hash map, and
// vector<vector<VertexId>> plan lists (28+ bytes per local proxy at scale),
// everything non-arithmetic is stored as ONE representation:
//
//   delta-varint chunks - the sequence is cut into fixed spans of
//   kLidChunkSpan entries; each chunk stores its first value uncompressed
//   in an anchor array plus LEB128-encoded (delta - 1) gaps for the rest
//   (strict monotonicity guarantees gap >= 1). Typical cost: ~1-2 bytes
//   per entry plus 8 bytes per chunk of anchor/offset overhead.
//
// Lookups:
//   * master g2l / l2g     - pure arithmetic (gid - mlo / mlo + lid).
//   * mirror g2l           - binary search over the anchors, then a scan of
//                            one decoded chunk (<= kLidChunkSpan entries).
//   * mirror l2g           - O(1) anchor pick + partial chunk decode.
//   * plan iteration       - streaming visit() for gathers, a PlanCursor
//                            (one decoded chunk of state) for scatters.
//
// Decoded chunks are memoized in a small per-execution-context cache keyed
// by fiber identity under the ULT host scheduler (the §16 re-keying rule,
// same pattern as comm::detail::encode_scratch), so gemini's per-edge l2g
// lookups and the engines' sequential plan walks decode each chunk once,
// not once per entry. Cache entries are keyed by a process-unique map id
// assigned at build() time, so a map that died can never satisfy a hit for
// a map that reused its address.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "runtime/ult.hpp"
#include "runtime/varint.hpp"

namespace lcr::graph {

/// Entries per delta chunk. 64 keeps the in-chunk scan short (one cache
/// line of anchors covers 1k entries) while amortizing the 8-byte
/// anchor+offset overhead to 0.125 bytes/entry.
inline constexpr std::uint32_t kLidChunkSpan = 64;

namespace detail {

/// Per-context decode cache (see file comment). Direct-mapped by
/// (sequence id, chunk index); ways sized so an engine interleaving a plan
/// walk with lid-map lookups doesn't thrash one slot.
inline constexpr std::size_t kChunkCacheWays = 8;

struct ChunkCacheEntry {
  std::uint64_t seq_id = 0;  ///< owning sequence's unique id; 0 = empty
  std::uint32_t chunk = 0;
  std::uint32_t len = 0;
  VertexId vals[kLidChunkSpan];
};

struct ChunkCache {
  ChunkCacheEntry ways[kChunkCacheWays];
};

/// One cache per OS thread, or per fiber under the ULT host scheduler
/// (DESIGN.md §16 re-keying rule): compute fibers of different simulated
/// hosts multiplexed onto one worker never share decode state.
inline ChunkCache& chunk_cache() {
  if (ult::on_fiber()) {
    static const int slot = ult::fls_alloc(
        [](void* p) { delete static_cast<ChunkCache*>(p); });
    auto* c = static_cast<ChunkCache*>(ult::fls_get(slot));
    if (c == nullptr) {
      c = new ChunkCache();
      ult::fls_set(slot, c);
    }
    return *c;
  }
  static thread_local ChunkCache cache;
  return cache;
}

/// Process-unique sequence id (monotone, starts at 1). Defined in
/// lid_map.cpp so every translation unit draws from one counter.
std::uint64_t next_sequence_id();

/// Delta-varint-encoded strictly increasing VertexId sequence in fixed
/// kLidChunkSpan-entry chunks: the single representation behind both the
/// mirror gid segment of CompressedLidMap and every CompressedPlan list.
class DeltaChunks {
 public:
  class Builder {
   public:
    /// Appends the next value; must be strictly greater than the last.
    void append(VertexId v) {
      assert(count_ == 0 || v > prev_);
      prev_ = v;
      pend_[pend_n_++] = v;
      ++count_;
      if (pend_n_ == kLidChunkSpan) flush_chunk();
    }

    std::uint32_t size() const noexcept { return count_; }

    DeltaChunks build() && {
      flush_chunk();
      DeltaChunks c;
      c.count_ = count_;
      c.anchors_ = std::move(anchors_);
      c.chunk_off_ = std::move(chunk_off_);
      c.run_ = std::move(run_);
      c.bytes_ = std::move(bytes_);
      c.anchors_.shrink_to_fit();
      c.chunk_off_.shrink_to_fit();
      c.run_.shrink_to_fit();
      c.bytes_.shrink_to_fit();
      c.id_ = next_sequence_id();
      return c;
    }

   private:
    /// Chunks are encoded whole so a run chunk - every delta exactly 1,
    /// i.e. kLidChunkSpan consecutive values - can skip the byte stream
    /// entirely: the anchor alone reconstructs it arithmetically. Runs
    /// dominate dense mirror segments and plan lists, so this is both the
    /// decode fast path and a size win.
    void flush_chunk() {
      if (pend_n_ == 0) return;
      anchors_.push_back(pend_[0]);
      chunk_off_.push_back(static_cast<std::uint32_t>(bytes_.size()));
      bool run = true;
      for (std::uint32_t i = 1; i < pend_n_; ++i)
        if (pend_[i] != pend_[i - 1] + 1) {
          run = false;
          break;
        }
      run_.push_back(run ? 1 : 0);
      if (!run) {
        for (std::uint32_t i = 1; i < pend_n_; ++i) {
          std::byte buf[5];
          const std::size_t n =
              rt::put_varint(buf, pend_[i] - pend_[i - 1] - 1);
          bytes_.insert(bytes_.end(), buf, buf + n);
        }
      }
      pend_n_ = 0;
    }

    std::uint32_t count_ = 0;
    VertexId prev_ = 0;
    std::uint32_t pend_n_ = 0;
    VertexId pend_[kLidChunkSpan];
    std::vector<VertexId> anchors_;
    std::vector<std::uint32_t> chunk_off_;
    std::vector<std::uint8_t> run_;
    std::vector<std::byte> bytes_;
  };

  std::uint32_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  std::uint64_t id() const noexcept { return id_; }

  std::uint32_t num_chunks() const noexcept {
    return static_cast<std::uint32_t>(anchors_.size());
  }

  /// True when chunk `chunk` is a pure run (anchor + i reconstructs it).
  bool is_run(std::uint32_t chunk) const noexcept {
    return run_[chunk] != 0;
  }

  /// Decodes chunk `chunk` into out[0..len); returns len (<= kLidChunkSpan).
  std::uint32_t decode_chunk(std::uint32_t chunk, VertexId* out) const {
    const std::uint32_t base = chunk * kLidChunkSpan;
    const std::uint32_t len = std::min(kLidChunkSpan, count_ - base);
    const VertexId a = anchors_[chunk];
    if (run_[chunk] != 0) {
      for (std::uint32_t i = 0; i < len; ++i) out[i] = a + i;
      return len;
    }
    VertexId v = a;
    out[0] = v;
    std::size_t off = chunk_off_[chunk];
    const std::size_t end = chunk + 1 < chunk_off_.size()
                                ? chunk_off_[chunk + 1]
                                : bytes_.size();
    if (end - off == len - 1) {
      // Every delta fits one varint byte: skip the continuation-bit loop.
      const std::byte* b = bytes_.data() + off;
      for (std::uint32_t i = 1; i < len; ++i) {
        v += static_cast<std::uint32_t>(b[i - 1]) + 1;
        out[i] = v;
      }
      return len;
    }
    for (std::uint32_t i = 1; i < len; ++i) {
      std::uint32_t delta = 0;
      const bool ok = rt::get_varint(bytes_.data(), end, off, delta);
      assert(ok);
      (void)ok;
      v += delta + 1;
      out[i] = v;
    }
    return len;
  }

  /// Decodes via the per-context cache; the entry stays valid until the
  /// same context decodes a colliding (id, chunk) pair.
  const ChunkCacheEntry& cached_chunk(std::uint32_t chunk) const {
    ChunkCache& cache = chunk_cache();
    ChunkCacheEntry& e =
        cache.ways[(id_ * 0x9E3779B97F4A7C15ull + chunk) & (kChunkCacheWays - 1)];
    if (e.seq_id != id_ || e.chunk != chunk) {
      e.seq_id = id_;
      e.chunk = chunk;
      e.len = decode_chunk(chunk, e.vals);
    }
    return e;
  }

  /// Random access: arithmetic for run chunks, per-context cache otherwise.
  VertexId at(std::uint32_t idx) const {
    const std::uint32_t chunk = idx / kLidChunkSpan;
    if (run_[chunk] != 0) return anchors_[chunk] + idx % kLidChunkSpan;
    const ChunkCacheEntry& e = cached_chunk(chunk);
    return e.vals[idx % kLidChunkSpan];
  }

  static constexpr std::uint32_t kNotFound = ~std::uint32_t{0};

  /// Index of `value` in the sequence, or kNotFound. Binary search over the
  /// anchors, then binary search inside one decoded (cached) chunk.
  std::uint32_t find(VertexId value) const {
    if (count_ == 0 || value < anchors_[0]) return kNotFound;
    const auto it =
        std::upper_bound(anchors_.begin(), anchors_.end(), value);
    const auto chunk =
        static_cast<std::uint32_t>(it - anchors_.begin()) - 1;
    if (run_[chunk] != 0) {
      const std::uint32_t base = chunk * kLidChunkSpan;
      const std::uint32_t len = std::min(kLidChunkSpan, count_ - base);
      const VertexId off = value - anchors_[chunk];  // >= 0 by upper_bound
      return off < len ? base + off : kNotFound;
    }
    const ChunkCacheEntry& e = cached_chunk(chunk);
    const VertexId* lo = e.vals;
    const VertexId* hi = e.vals + e.len;
    const VertexId* pos = std::lower_bound(lo, hi, value);
    if (pos == hi || *pos != value) return kNotFound;
    return chunk * kLidChunkSpan + static_cast<std::uint32_t>(pos - lo);
  }

  /// Streaming decode of index range [lo, hi): fn(index, value). Uses a
  /// stack buffer, not the cache - a full walk would only evict hot chunks.
  template <typename Fn>
  void visit(std::uint32_t lo, std::uint32_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    VertexId buf[kLidChunkSpan];
    for (std::uint32_t c = lo / kLidChunkSpan; c * kLidChunkSpan < hi; ++c) {
      const std::uint32_t base = c * kLidChunkSpan;
      if (run_[c] != 0) {
        const std::uint32_t len = std::min(kLidChunkSpan, count_ - base);
        const VertexId a = anchors_[c];
        const std::uint32_t b = std::max(lo, base);
        const std::uint32_t e = std::min(hi, base + len);
        for (std::uint32_t i = b; i < e; ++i) fn(i, a + (i - base));
        continue;
      }
      const std::uint32_t len = decode_chunk(c, buf);
      const std::uint32_t b = std::max(lo, base);
      const std::uint32_t e = std::min(hi, base + len);
      for (std::uint32_t i = b; i < e; ++i) fn(i, buf[i - base]);
    }
  }

  /// Heap bytes of the compressed representation.
  std::size_t mem_bytes() const noexcept {
    return anchors_.capacity() * sizeof(VertexId) +
           chunk_off_.capacity() * sizeof(std::uint32_t) +
           run_.capacity() * sizeof(std::uint8_t) + bytes_.capacity();
  }

 private:
  std::uint32_t count_ = 0;
  std::uint64_t id_ = 0;
  std::vector<VertexId> anchors_;     ///< first value of each chunk
  std::vector<std::uint32_t> chunk_off_;  ///< byte offset of each chunk's deltas
  std::vector<std::uint8_t> run_;     ///< 1 = pure run chunk, no delta bytes
  std::vector<std::byte> bytes_;      ///< LEB128 (delta - 1) stream
};

}  // namespace detail

// ---------------------------------------------------------------------------
// CompressedLidMap: the host's entire l2g/g2l in arithmetic + delta chunks
// ---------------------------------------------------------------------------

class CompressedLidMap {
 public:
  static constexpr VertexId kNoLocal = ~VertexId{0};

  /// Build order: masters are implicit (the [mlo, mlo + num_masters) block);
  /// mirror gids are appended in strictly increasing order, matching the
  /// partitioner's sorted mirror collection.
  class Builder {
   public:
    Builder() = default;
    Builder(VertexId master_lo, VertexId num_masters)
        : master_lo_(master_lo), num_masters_(num_masters) {}

    void add_mirror(VertexId gid) {
      assert(gid < master_lo_ || gid >= master_lo_ + num_masters_);
      mirrors_.append(gid);
    }

    CompressedLidMap build() && {
      CompressedLidMap m;
      m.master_lo_ = master_lo_;
      m.num_masters_ = num_masters_;
      m.mirrors_ = std::move(mirrors_).build();
      return m;
    }

   private:
    VertexId master_lo_ = 0;
    VertexId num_masters_ = 0;
    detail::DeltaChunks::Builder mirrors_;
  };

  CompressedLidMap() = default;

  VertexId master_lo() const noexcept { return master_lo_; }
  VertexId num_masters() const noexcept { return num_masters_; }
  VertexId num_mirrors() const noexcept { return mirrors_.size(); }
  VertexId num_local() const noexcept { return num_masters_ + mirrors_.size(); }

  /// Local id of a global vertex, or kNoLocal if absent on this host.
  VertexId global_to_local(VertexId gid) const {
    // Master block: pure arithmetic, no search and no hashing.
    if (gid >= master_lo_ && gid - master_lo_ < num_masters_)
      return gid - master_lo_;
    const std::uint32_t idx = mirrors_.find(gid);
    return idx == detail::DeltaChunks::kNotFound ? kNoLocal
                                                 : num_masters_ + idx;
  }

  /// Global id of a local proxy.
  VertexId local_to_global(VertexId lid) const {
    if (lid < num_masters_) return master_lo_ + lid;
    return mirrors_.at(lid - num_masters_);
  }

  /// Streaming walk of the mirror segment: fn(lid, gid) in lid order.
  template <typename Fn>
  void visit_mirrors(Fn&& fn) const {
    const VertexId nm = num_masters_;
    mirrors_.visit(0, mirrors_.size(), [&](std::uint32_t idx, VertexId gid) {
      fn(nm + idx, gid);
    });
  }

  /// Heap bytes of the compressed map.
  std::size_t mem_bytes() const noexcept { return mirrors_.mem_bytes(); }

  /// What the seed representation cost for the same contents: an l2g
  /// vector (4 B per proxy) plus an unordered_map g2l - per entry one hash
  /// node (next pointer + key/value pair, 16 B on LP64 libstdc++) plus a
  /// bucket pointer at load factor 1.
  std::size_t mem_bytes_uncompressed() const noexcept {
    const std::size_t n = num_local();
    return n * sizeof(VertexId) +                       // l2g
           n * (sizeof(void*) + 2 * sizeof(VertexId)) +  // g2l hash nodes
           n * sizeof(void*);                           // g2l buckets
  }

 private:
  VertexId master_lo_ = 0;
  VertexId num_masters_ = 0;
  detail::DeltaChunks mirrors_;
};

// ---------------------------------------------------------------------------
// CompressedPlan: the memoized per-peer sync lists in the same encoding
// ---------------------------------------------------------------------------

/// View of one peer's plan list. Cheap to copy; valid while the owning
/// CompressedPlan lives.
class PlanSpan {
 public:
  PlanSpan() = default;
  explicit PlanSpan(const detail::DeltaChunks* chunks) : chunks_(chunks) {}

  std::uint32_t size() const noexcept {
    return chunks_ == nullptr ? 0 : chunks_->size();
  }
  bool empty() const noexcept { return size() == 0; }

  /// Streaming decode of positions [lo, hi): fn(pos, lid). This is the
  /// gather-side iteration contract (comm::encode_dirty_range).
  template <typename Fn>
  void visit(std::uint32_t lo, std::uint32_t hi, Fn&& fn) const {
    if (chunks_ != nullptr) chunks_->visit(lo, hi, fn);
  }

  /// Random access through the per-context decode cache.
  VertexId at(std::uint32_t pos) const { return chunks_->at(pos); }

  const detail::DeltaChunks* chunks() const noexcept { return chunks_; }

 private:
  const detail::DeltaChunks* chunks_ = nullptr;
};

/// Scatter-side cursor: one decoded chunk of private state, so concurrent
/// apply slices of the same plan never share mutable data. at(pos) accepts
/// any position but is O(1) amortized for the monotone position streams the
/// decode path produces (record positions are strictly increasing within a
/// slice).
class PlanCursor {
 public:
  explicit PlanCursor(PlanSpan span) : chunks_(span.chunks()) {}

  VertexId at(std::uint32_t pos) {
    const std::uint32_t chunk = pos / kLidChunkSpan;
    if (chunk != chunk_) {
      chunk_ = chunk;
      len_ = chunks_->decode_chunk(chunk, buf_);
    }
    assert(pos % kLidChunkSpan < len_);
    return buf_[pos % kLidChunkSpan];
  }

 private:
  const detail::DeltaChunks* chunks_ = nullptr;
  std::uint32_t chunk_ = ~std::uint32_t{0};
  std::uint32_t len_ = 0;
  VertexId buf_[kLidChunkSpan];
};

/// All per-peer sync lists of one direction (mirror_to_master or
/// master_to_mirror), delta-chunked. Replaces vector<vector<VertexId>>.
class CompressedPlan {
 public:
  class Builder {
   public:
    Builder() = default;
    explicit Builder(int num_peers)
        : peers_(static_cast<std::size_t>(num_peers)) {}

    /// Appends `lid` to peer `peer`'s list; per-peer lids must be strictly
    /// increasing (the partitioner's gid-sorted construction guarantees it).
    void append(int peer, VertexId lid) {
      peers_[static_cast<std::size_t>(peer)].append(lid);
    }

    CompressedPlan build() && {
      CompressedPlan p;
      p.peers_.reserve(peers_.size());
      for (auto& b : peers_) p.peers_.push_back(std::move(b).build());
      return p;
    }

   private:
    std::vector<detail::DeltaChunks::Builder> peers_;
  };

  CompressedPlan() = default;

  int num_peers() const noexcept { return static_cast<int>(peers_.size()); }

  std::uint32_t size(int peer) const noexcept {
    return peers_[static_cast<std::size_t>(peer)].size();
  }
  bool empty(int peer) const noexcept { return size(peer) == 0; }

  PlanSpan span(int peer) const noexcept {
    return PlanSpan(&peers_[static_cast<std::size_t>(peer)]);
  }

  /// Total entries across all peers.
  std::uint64_t total_entries() const noexcept {
    std::uint64_t n = 0;
    for (const auto& p : peers_) n += p.size();
    return n;
  }

  /// Heap bytes of the compressed plan (all peers).
  std::size_t mem_bytes() const noexcept {
    std::size_t n = peers_.capacity() * sizeof(detail::DeltaChunks);
    for (const auto& p : peers_) n += p.mem_bytes();
    return n;
  }

  /// Seed-representation cost: one vector<VertexId> per peer (3-pointer
  /// header + 4 B per entry).
  std::size_t mem_bytes_uncompressed() const noexcept {
    std::size_t n = peers_.size() * 3 * sizeof(void*);
    for (const auto& p : peers_) n += p.size() * sizeof(VertexId);
    return n;
  }

 private:
  std::vector<detail::DeltaChunks> peers_;
};

}  // namespace lcr::graph
