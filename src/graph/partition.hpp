// Graph partitioners producing per-host DistGraph partitions.
//
// Partitioning runs centrally (graph loading/partitioning time is excluded
// from the paper's measurements), then each simulated host receives only its
// own DistGraph, exactly as if it had been distributed.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"

namespace lcr::graph {

/// Partition `g` across `num_hosts` hosts under `policy`.
std::vector<DistGraph> partition(const Csr& g, int num_hosts,
                                 PartitionPolicy policy);

/// Chooses the pr x pc host grid for the cartesian vertex-cut: the
/// factorization of p closest to square.
std::pair<int, int> cvc_grid(int num_hosts);

/// Returns a symmetrized copy of g (u->v implies v->u); used by connected
/// components, which is defined on undirected graphs.
Csr symmetrize(const Csr& g);

}  // namespace lcr::graph
