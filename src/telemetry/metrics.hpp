// Telemetry pillar 1: the metrics registry.
//
// A Registry is a named collection of monotonic counters and log2-scale
// histograms. Metrics come in two flavours:
//
//   * owned metrics - Counter / Histogram objects interned by name via
//     counter(name) / histogram(name); increments are lock-free (striped
//     per-thread slots for counters, atomic buckets for histograms).
//   * probes - views of std::atomic<u64> fields owned by an existing
//     *Stats struct (EndpointStats, QueueStats, CommStats, ...). The owner
//     registers {name, &field} pairs once at construction and keeps
//     incrementing its own atomics; the registry only reads them at
//     snapshot time. Registration is RAII: dropping the handle removes the
//     probes, so a stats struct can never be read after it died.
//
// Multiple probes may share one name (e.g. every endpoint registers
// "fabric.sends"); snapshot() and sum() aggregate across them, which is what
// turns per-host stats structs into cluster-wide totals without any
// hand-written copy loops.
//
// Scoping: each simulated Fabric owns a Registry for everything riding on
// it (the runner reads cluster.fabric().telemetry()); Registry::global()
// exists for fabric-less users and tests.
//
// Thread-safety: interning/registration/snapshot take an internal mutex
// (cold paths); Counter::add and Histogram::record are lock-free.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lcr::telemetry {

/// Monotonic counter with cache-line-striped slots: concurrent add() from
/// many threads never contends on one line; value() sums the stripes.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void add(std::uint64_t n = 1) noexcept {
    slots_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t stripe_index() noexcept;

  Slot slots_[kStripes];
};

/// Log2-bucketed histogram: bucket 0 holds the value 0, bucket i >= 1 holds
/// [2^(i-1), 2^i - 1]. Covers the full u64 range in 64 buckets (the tail
/// bucket absorbs everything >= 2^62), which fits message sizes, queue
/// depths and nanosecond latencies alike.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Smallest bucket lower bound such that >= fraction q of samples fall at
  /// or below the bucket (coarse log2 quantile; exact enough for dashboards).
  std::uint64_t quantile_lo(double q) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// A named view of an atomic counter owned elsewhere.
struct Probe {
  std::string name;
  std::atomic<std::uint64_t>* value = nullptr;
};

class Registry;

/// RAII handle for a set of probes; unregisters on destruction. Movable.
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept {
    if (this != &other) {
      release();
      registry_ = other.registry_;
      token_ = other.token_;
      other.registry_ = nullptr;
      other.token_ = 0;
    }
    return *this;
  }
  ~Registration() { release(); }

  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;

  void release();

 private:
  friend class Registry;
  Registration(Registry* registry, std::uint64_t token)
      : registry_(registry), token_(token) {}

  Registry* registry_ = nullptr;
  std::uint64_t token_ = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default instance (fabric-less users, tests).
  static Registry& global();

  /// Interns an owned counter / histogram by name. References stay valid for
  /// the registry's lifetime; hot paths should cache them.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers external probes; the returned handle removes them when
  /// destroyed. Probe pointers must outlive the handle.
  [[nodiscard]] Registration register_probes(std::vector<Probe> probes);

  /// Sum of every probe and owned counter named `name`.
  std::uint64_t sum(std::string_view name) const;

  /// All metrics by name: owned counters and probes aggregated per name,
  /// plus "<name>.count" / "<name>.sum" entries per histogram.
  std::map<std::string, std::uint64_t> snapshot() const;

  /// Zeroes every owned counter and histogram *and* every registered probe
  /// (the probes' owners see their atomics reset). snapshot() after reset()
  /// with no traffic in between reports all zeroes.
  void reset();

  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

 private:
  friend class Registration;
  void unregister(std::uint64_t token);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::uint64_t, std::vector<Probe>> probe_sets_;
  std::uint64_t next_token_ = 1;
};

}  // namespace lcr::telemetry
