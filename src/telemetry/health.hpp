// Telemetry pillar 5: the cluster health monitor (DESIGN.md §14).
//
// Every host reports one (duration, bytes) sample per BSP sync phase -
// piggybacked on the phase barrier the engines already run, so no extra
// synchronization is introduced. The last host to report a phase also
// snapshots a small set of cluster-wide registry counters (retransmits,
// fault drops, CRC refusals, apply-stash drops, checkpoint time), turning
// the per-phase reports into a round-indexed timeline with counter deltas
// attached. diagnose() runs four classifiers over that timeline:
//
//   * straggler      - one host repeatedly enters the sync phase last (its
//                      own phase time is the per-round minimum while every
//                      peer sits waiting for its data),
//   * retransmit_storm - a contiguous run of phases with reliability
//                      retransmissions above threshold,
//   * apply_backlog  - receive-side apply falls behind (OOO stash drops),
//   * checkpoint_interference - phases slowed while checkpoint staging or
//                      sealing was active.
//
// The monitor only reads the metrics Registry (which is compiled
// unconditionally), so it works even when span tracing is disabled; cost is
// one mutex acquisition per host per phase, entirely off the data path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace lcr::telemetry {

/// Classifier thresholds (documented in DESIGN.md §14).
struct HealthConfig {
  /// Straggler: a phase is skewed when its median/min duration ratio is
  /// >= straggler_ratio; the per-phase minimum host collects that skew as
  /// its vote (the injected-slow host finishes its own phase fastest while
  /// peers wait). Flag host h when it holds >= straggler_share of the total
  /// skew mass with at least two wins, once straggler_min_phases phases
  /// completed. Mass-weighted voting keeps short auxiliary phases' noise
  /// votes from diluting a repeated large skew.
  double straggler_ratio = 1.3;
  double straggler_share = 0.5;
  std::size_t straggler_min_phases = 4;
  /// Retransmit storm: a maximal run of consecutive phases with nonzero
  /// retransmit delta whose total reaches this count.
  std::uint64_t storm_retransmits = 4;
  /// Apply backlog: a phase with at least this many new stash drops.
  std::uint64_t backlog_stash_drops = 1;
  /// Checkpoint interference: a phase with checkpoint activity whose wall
  /// time exceeds ckpt_ratio x the median wall of checkpoint-free phases.
  double ckpt_ratio = 1.5;
};

/// One aggregated timeline row (a completed or partially-reported phase).
struct HealthPhase {
  std::uint32_t phase_id = 0;
  std::vector<std::uint64_t> dur_ns;  ///< per host; 0 = host never reported
  std::vector<std::uint64_t> bytes;   ///< per host payload bytes
  bool complete = false;              ///< all hosts reported
  // Cluster-wide counter deltas attributed to this phase (sampled by the
  // last host to report it; 0 for incomplete rows).
  std::uint64_t d_retransmits = 0;
  std::uint64_t d_fault_dropped = 0;
  std::uint64_t d_crc_dropped = 0;
  std::uint64_t d_probes = 0;
  std::uint64_t d_stash_drops = 0;
  std::uint64_t d_ckpt_ns = 0;  ///< stage + seal
};

struct HealthFinding {
  std::string kind;  ///< classifier name, e.g. "retransmit_storm"
  int host = -1;     ///< offending host; -1 = cluster-wide
  std::uint32_t phase_lo = 0;  ///< first phase id of the episode
  std::uint32_t phase_hi = 0;  ///< last phase id of the episode
  double severity = 0.0;       ///< classifier-specific magnitude
  std::string detail;          ///< human-readable one-liner
};

struct HealthReport {
  std::size_t hosts = 0;
  std::vector<HealthPhase> timeline;
  std::vector<HealthFinding> findings;
};

class HealthMonitor {
 public:
  /// `registry` supplies the watched counters (the fabric's registry in a
  /// cluster; a private one in unit tests). Must outlive the monitor.
  HealthMonitor(std::size_t hosts, Registry* registry, HealthConfig cfg = {});

  /// Reports host `host`'s sync phase `phase_id`: wall duration and payload
  /// bytes moved. Thread-safe; called once per host per phase.
  void note_phase(std::uint32_t host, std::uint32_t phase_id,
                  std::uint64_t dur_ns, std::uint64_t bytes);

  /// Runs the classifiers over the timeline collected so far.
  HealthReport diagnose() const;

  /// Writes diagnose() as health.json ({"hosts","timeline","findings"}).
  bool write_json(const std::string& path) const;

  /// Drops the timeline (keeps the counter baselines, so deltas across a
  /// reset stay attributed to post-reset phases).
  void reset();

  const HealthConfig& config() const noexcept { return cfg_; }

 private:
  void sample_deltas_locked(HealthPhase& row);

  HealthConfig cfg_;
  std::size_t hosts_;
  Registry* registry_;

  mutable std::mutex mu_;
  std::vector<HealthPhase> rows_;
  std::map<std::uint32_t, std::size_t> row_of_phase_;
  std::vector<std::size_t> reported_;  ///< hosts reported, per row
  // Last absolute values of the watched counters (delta baselines).
  std::uint64_t last_retransmits_ = 0;
  std::uint64_t last_fault_dropped_ = 0;
  std::uint64_t last_crc_ = 0;
  std::uint64_t last_probes_ = 0;
  std::uint64_t last_stash_ = 0;
  std::uint64_t last_ckpt_ = 0;
};

}  // namespace lcr::telemetry
