#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "runtime/spinlock.hpp"

namespace lcr::telemetry {

namespace {

/// Per-thread event ring. Registered globally on first use and kept alive by
/// shared ownership (the global list + the owning thread's TLS handle), so a
/// collector can still read events of threads that already exited.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;
  mutable rt::Spinlock lock;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

std::mutex g_buffers_mu;
std::vector<std::shared_ptr<ThreadBuffer>>& buffer_list() {
  static auto* list = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *list;
}

#ifndef LCR_TELEMETRY_DISABLED
ThreadBuffer& tls_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> guard(g_buffers_mu);
    b->tid = static_cast<std::uint32_t>(buffer_list().size());
    buffer_list().push_back(b);
    return b;
  }();
  return *buf;
}

bool env_enabled() {
  const char* v = std::getenv("LCR_TELEMETRY");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0;
}
#endif  // !LCR_TELEMETRY_DISABLED

}  // namespace

#ifndef LCR_TELEMETRY_DISABLED

namespace detail {

std::atomic<bool> g_enabled{env_enabled()};

std::uint32_t this_thread_tid() { return tls_buffer().tid; }

void record(TraceEvent&& ev) {
  ThreadBuffer& buf = tls_buffer();
  std::lock_guard<rt::Spinlock> guard(buf.lock);
  if (buf.events.size() >= ThreadBuffer::kCapacity) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(std::move(ev));
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void instant(const char* cat, const char* name, std::uint32_t pid,
             std::string args) {
  if (!enabled()) return;
  detail::record({cat, name, rt::now_ns(), 0, pid,
                  detail::this_thread_tid(), 'i', std::move(args)});
}

void emit_complete(const char* cat, const char* name, std::uint32_t pid,
                   std::uint64_t begin_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  detail::record({cat, name, begin_ns, dur_ns, pid,
                  detail::this_thread_tid(), 'X', {}});
}

#endif  // !LCR_TELEMETRY_DISABLED

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void reset_trace() {
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    buf->events.clear();
    buf->dropped = 0;
  }
}

std::uint64_t trace_dropped() {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    total += buf->dropped;
  }
  return total;
}

bool write_chrome_trace(const std::string& path,
                        const std::map<std::string, std::uint64_t>& other) {
  const std::vector<TraceEvent> events = collect_trace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::uint64_t t0 = ~std::uint64_t{0};
  for (const TraceEvent& e : events) t0 = std::min(t0, e.ts_ns);
  if (events.empty()) t0 = 0;

  std::fputs("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [", f);
  bool first = true;
  for (const TraceEvent& e : events) {
    std::fputs(first ? "\n" : ",\n", f);
    first = false;
    const double ts_us = static_cast<double>(e.ts_ns - t0) * 1e-3;
    if (e.phase == 'X') {
      const double dur_us = static_cast<double>(e.dur_ns) * 1e-3;
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                   e.name, e.cat, ts_us, dur_us, e.pid, e.tid);
    } else {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                   "\"ts\":%.3f,\"pid\":%u,\"tid\":%u",
                   e.name, e.cat, ts_us, e.pid, e.tid);
    }
    if (!e.args.empty()) std::fprintf(f, ",\"args\":%s", e.args.c_str());
    std::fputc('}', f);
  }
  std::fputs("\n],\n\"otherData\": {", f);
  first = true;
  for (const auto& [name, value] : other) {
    std::fprintf(f, "%s\n\"%s\": \"%llu\"", first ? "" : ",", name.c_str(),
                 static_cast<unsigned long long>(value));
    first = false;
  }
  std::fputs("\n}\n}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace lcr::telemetry
