#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "runtime/spinlock.hpp"
#include "runtime/ult.hpp"

namespace lcr::telemetry {

namespace {

/// Per-execution-context event ring. Registered globally on first use and
/// kept alive by shared ownership (the global list + the owning context's
/// handle), so a collector can still read events of contexts that already
/// exited. An "execution context" is an OS thread — or, under the ULT host
/// scheduler, one fiber: a simulated host's spans must attribute to that
/// host's rings, not to whichever OS worker happened to run it (the
/// re-keying satellite of DESIGN.md §16).
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;
  mutable rt::Spinlock lock;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

std::mutex g_buffers_mu;
std::vector<std::shared_ptr<ThreadBuffer>>& buffer_list() {
  static auto* list = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *list;
}

#ifndef LCR_TELEMETRY_DISABLED
std::shared_ptr<ThreadBuffer> make_buffer() {
  auto b = std::make_shared<ThreadBuffer>();
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  b->tid = static_cast<std::uint32_t>(buffer_list().size());
  buffer_list().push_back(b);
  return b;
}

ThreadBuffer& tls_buffer() {
  if (ult::on_fiber()) {
    static const int slot = ult::fls_alloc(
        [](void* p) { delete static_cast<std::shared_ptr<ThreadBuffer>*>(p); });
    auto* sp =
        static_cast<std::shared_ptr<ThreadBuffer>*>(ult::fls_get(slot));
    if (sp == nullptr) {
      sp = new std::shared_ptr<ThreadBuffer>(make_buffer());
      ult::fls_set(slot, sp);
    }
    return **sp;
  }
  thread_local std::shared_ptr<ThreadBuffer> buf = make_buffer();
  return *buf;
}

bool env_enabled() {
  const char* v = std::getenv("LCR_TELEMETRY");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0;
}

std::uint32_t env_sample_every() {
  const char* v = std::getenv("LCR_TRACE_SAMPLE");
  if (v == nullptr) return 0;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<std::uint32_t>(n) : 0;
}

std::uint64_t env_sample_seed() {
  const char* v = std::getenv("LCR_TRACE_SEED");
  if (v == nullptr) return 0;
  return std::strtoull(v, nullptr, 10);
}

/// splitmix64 finalizer: the same deterministic mixer the fabric's fault
/// roller uses, so sampling decisions are pure functions of the seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
#endif  // !LCR_TELEMETRY_DISABLED

/// Per-ring overflow counts, keyed by tid (for the export drop markers).
std::vector<std::pair<std::uint32_t, std::uint64_t>> collect_drops() {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    if (buf->dropped > 0) out.emplace_back(buf->tid, buf->dropped);
  }
  return out;
}

}  // namespace

#ifndef LCR_TELEMETRY_DISABLED

namespace detail {

std::atomic<bool> g_enabled{env_enabled()};

std::uint32_t this_thread_tid() { return tls_buffer().tid; }

void record(TraceEvent&& ev) {
  ThreadBuffer& buf = tls_buffer();
  std::lock_guard<rt::Spinlock> guard(buf.lock);
  if (buf.events.size() >= ThreadBuffer::kCapacity) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(std::move(ev));
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void instant(const char* cat, const char* name, std::uint32_t pid,
             std::string args) {
  if (!enabled()) return;
  detail::record({cat, name, rt::now_ns(), 0, pid,
                  detail::this_thread_tid(), 'i', 0, 0, std::move(args)});
}

void emit_complete(const char* cat, const char* name, std::uint32_t pid,
                   std::uint64_t begin_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  detail::record({cat, name, begin_ns, dur_ns, pid,
                  detail::this_thread_tid(), 'X', 0, 0, {}});
}

namespace {
std::atomic<std::uint32_t> g_sample_every{env_sample_every()};
std::atomic<std::uint64_t> g_sample_seed{env_sample_seed()};
}  // namespace

void hop(const char* stage, std::uint32_t pid, std::uint32_t trace_id,
         std::uint32_t attempt, std::string args) {
  if (!enabled() || trace_id == 0) return;
  detail::record({"flow", stage, rt::now_ns(), 0, pid,
                  detail::this_thread_tid(), 'f', trace_id, attempt,
                  std::move(args)});
}

void set_trace_sampling(std::uint32_t every, std::uint64_t seed) noexcept {
  g_sample_every.store(every, std::memory_order_relaxed);
  g_sample_seed.store(seed, std::memory_order_relaxed);
}

std::uint32_t trace_sample_every() noexcept {
  return g_sample_every.load(std::memory_order_relaxed);
}

std::uint32_t sample_trace_id(std::uint32_t host, std::uint32_t phase_id,
                              std::uint32_t base_pos,
                              std::uint32_t salt) noexcept {
  const std::uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every == 0 || !enabled()) return 0;
  std::uint64_t h = g_sample_seed.load(std::memory_order_relaxed);
  h = mix64(h ^ (static_cast<std::uint64_t>(host) << 40) ^
            (static_cast<std::uint64_t>(phase_id) << 20) ^ base_pos ^
            (static_cast<std::uint64_t>(salt) << 52));
  if (h % every != 0) return 0;
  const auto id = static_cast<std::uint32_t>(h >> 32);
  return id != 0 ? id : 1;  // 0 means "unsampled" on the wire
}

#endif  // !LCR_TELEMETRY_DISABLED

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void reset_trace() {
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    buf->events.clear();
    buf->dropped = 0;
  }
}

std::uint64_t trace_dropped() {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> guard(g_buffers_mu);
  for (const auto& buf : buffer_list()) {
    std::lock_guard<rt::Spinlock> b(buf->lock);
    total += buf->dropped;
  }
  return total;
}

bool write_chrome_trace(const std::string& path,
                        const std::map<std::string, std::uint64_t>& other) {
  const std::vector<TraceEvent> events = collect_trace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::uint64_t t0 = ~std::uint64_t{0};
  std::uint64_t t_end = 0;
  for (const TraceEvent& e : events) {
    t0 = std::min(t0, e.ts_ns);
    t_end = std::max(t_end, e.ts_ns + e.dur_ns);
  }
  if (events.empty()) t0 = 0;

  // Hop counts per trace id, so the streaming pass knows which hop opens a
  // flow chain ("s"), which continue it ("t") and which terminates it ("f").
  std::map<std::uint32_t, std::uint32_t> flow_total;
  for (const TraceEvent& e : events)
    if (e.phase == 'f') ++flow_total[e.flow_id];
  std::map<std::uint32_t, std::uint32_t> flow_seen;

  std::fputs("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [", f);
  bool first = true;
  const auto sep = [&] {
    std::fputs(first ? "\n" : ",\n", f);
    first = false;
  };
  for (const TraceEvent& e : events) {
    sep();
    const double ts_us = static_cast<double>(e.ts_ns - t0) * 1e-3;
    if (e.phase == 'X') {
      const double dur_us = static_cast<double>(e.dur_ns) * 1e-3;
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                   e.name, e.cat, ts_us, dur_us, e.pid, e.tid);
    } else if (e.phase == 'f') {
      // One 1µs anchor slice per hop, so the flow arrows have an enclosing
      // 'X' event to bind to, followed by the flow event itself.
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":1.000,\"pid\":%u,\"tid\":%u,"
                   "\"args\":{\"trace_id\":%u,\"attempt\":%u%s%s}},\n",
                   e.name, ts_us, e.pid, e.tid, e.flow_id, e.flow_hop,
                   e.args.empty() ? "" : ",\"detail\":", e.args.c_str());
      const std::uint32_t seen = flow_seen[e.flow_id]++;
      const std::uint32_t total = flow_total[e.flow_id];
      const char* ph = seen == 0 ? "s" : (seen + 1 == total ? "f" : "t");
      std::fprintf(f,
                   "{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"%s\","
                   "\"id\":%u,\"ts\":%.3f,\"pid\":%u,\"tid\":%u%s",
                   ph, e.flow_id, ts_us, e.pid, e.tid,
                   ph[0] == 'f' ? ",\"bp\":\"e\"" : "");
    } else {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                   "\"ts\":%.3f,\"pid\":%u,\"tid\":%u",
                   e.name, e.cat, ts_us, e.pid, e.tid);
    }
    if (e.phase != 'f' && !e.args.empty())
      std::fprintf(f, ",\"args\":%s", e.args.c_str());
    std::fputc('}', f);
  }
  // Drop markers: a ring that wrapped silently lost spans; make the loss
  // visible in the exported timeline (satellite: no silent span loss).
  for (const auto& [tid, dropped] : collect_drops()) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"trace_buffer_overflow\",\"cat\":\"telemetry\","
                 "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"dropped\":%llu}}",
                 static_cast<double>(t_end - t0) * 1e-3, tid,
                 static_cast<unsigned long long>(dropped));
  }
  std::fputs("\n],\n\"otherData\": {", f);
  first = true;
  for (const auto& [name, value] : other) {
    std::fprintf(f, "%s\n\"%s\": \"%llu\"", first ? "" : ",", name.c_str(),
                 static_cast<unsigned long long>(value));
    first = false;
  }
  std::fputs("\n}\n}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::vector<FlowTrace> stitch_flows() {
  const std::vector<TraceEvent> events = collect_trace();  // ts-sorted
  std::map<std::uint32_t, FlowTrace> by_id;
  for (const TraceEvent& e : events) {
    if (e.phase != 'f') continue;
    FlowTrace& flow = by_id[e.flow_id];
    flow.id = e.flow_id;
    flow.hops.push_back(
        FlowHop{e.name, e.pid, e.tid, e.ts_ns, e.flow_hop, e.args});
  }
  std::vector<FlowTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, flow] : by_id) out.push_back(std::move(flow));
  return out;
}

bool flow_has_path(const FlowTrace& flow,
                   const std::vector<const char*>& stages) {
  std::size_t want = 0;
  for (const FlowHop& h : flow.hops) {
    if (want < stages.size() && std::strcmp(h.stage, stages[want]) == 0)
      ++want;
  }
  return want == stages.size();
}

bool write_flow_trace(const std::string& path) {
  const std::vector<FlowTrace> flows = stitch_flows();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\n\"flows\": [", f);
  bool first_flow = true;
  for (const FlowTrace& flow : flows) {
    std::fprintf(f, "%s\n{\"id\":%u,\"hops\":[", first_flow ? "" : ",",
                 flow.id);
    first_flow = false;
    bool first_hop = true;
    for (const FlowHop& h : flow.hops) {
      std::fprintf(f,
                   "%s\n  {\"stage\":\"%s\",\"host\":%u,\"tid\":%u,"
                   "\"ts_ns\":%llu,\"attempt\":%u%s%s}",
                   first_hop ? "" : ",", h.stage, h.host, h.tid,
                   static_cast<unsigned long long>(h.ts_ns), h.attempt,
                   h.args.empty() ? "" : ",\"detail\":", h.args.c_str());
      first_hop = false;
    }
    std::fputs("\n]}", f);
  }
  std::fprintf(f, "\n],\n\"dropped\": %llu\n}\n",
               static_cast<unsigned long long>(trace_dropped()));
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace lcr::telemetry
