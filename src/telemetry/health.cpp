#include "telemetry/health.hpp"

#include <algorithm>
#include <cstdio>

namespace lcr::telemetry {

namespace {

/// Median of a non-empty vector (lower median for even sizes).
std::uint64_t median_of(std::vector<std::uint64_t> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

HealthMonitor::HealthMonitor(std::size_t hosts, Registry* registry,
                             HealthConfig cfg)
    : cfg_(cfg), hosts_(hosts), registry_(registry) {
  // Counter baselines start at the registry's current values so phases never
  // inherit deltas from before the monitor existed (warm-up traffic).
  last_retransmits_ = registry_->sum("rel.retransmits");
  last_fault_dropped_ = registry_->sum("fault.dropped");
  last_crc_ = registry_->sum("rel.crc_dropped");
  last_probes_ = registry_->sum("rel.probes_tx");
  last_stash_ = registry_->sum("sync.stash_drops");
  last_ckpt_ = registry_->sum("ckpt.stage_ns") + registry_->sum("ckpt.seal_ns");
}

void HealthMonitor::sample_deltas_locked(HealthPhase& row) {
  const std::uint64_t retransmits = registry_->sum("rel.retransmits");
  const std::uint64_t fault_dropped = registry_->sum("fault.dropped");
  const std::uint64_t crc = registry_->sum("rel.crc_dropped");
  const std::uint64_t probes = registry_->sum("rel.probes_tx");
  const std::uint64_t stash = registry_->sum("sync.stash_drops");
  const std::uint64_t ckpt =
      registry_->sum("ckpt.stage_ns") + registry_->sum("ckpt.seal_ns");
  // Counters are monotonic, but a runner-side Registry::reset() between
  // rounds would rewind them; clamp instead of underflowing.
  const auto delta = [](std::uint64_t now, std::uint64_t& last) {
    const std::uint64_t d = now >= last ? now - last : 0;
    last = now;
    return d;
  };
  row.d_retransmits = delta(retransmits, last_retransmits_);
  row.d_fault_dropped = delta(fault_dropped, last_fault_dropped_);
  row.d_crc_dropped = delta(crc, last_crc_);
  row.d_probes = delta(probes, last_probes_);
  row.d_stash_drops = delta(stash, last_stash_);
  row.d_ckpt_ns = delta(ckpt, last_ckpt_);
}

void HealthMonitor::note_phase(std::uint32_t host, std::uint32_t phase_id,
                               std::uint64_t dur_ns, std::uint64_t bytes) {
  if (host >= hosts_) return;
  std::lock_guard<std::mutex> guard(mu_);
  auto [it, inserted] = row_of_phase_.try_emplace(phase_id, rows_.size());
  if (inserted) {
    rows_.emplace_back();
    rows_.back().phase_id = phase_id;
    rows_.back().dur_ns.assign(hosts_, 0);
    rows_.back().bytes.assign(hosts_, 0);
    reported_.push_back(0);
  }
  HealthPhase& row = rows_[it->second];
  if (row.dur_ns[host] == 0) ++reported_[it->second];
  row.dur_ns[host] = dur_ns == 0 ? 1 : dur_ns;
  row.bytes[host] = bytes;
  if (reported_[it->second] == hosts_ && !row.complete) {
    row.complete = true;
    // The last reporter just cleared the phase barrier on its host: sampling
    // here piggybacks the cluster snapshot on synchronization the engines
    // already paid for.
    sample_deltas_locked(row);
  }
}

HealthReport HealthMonitor::diagnose() const {
  HealthReport report;
  report.hosts = hosts_;
  {
    std::lock_guard<std::mutex> guard(mu_);
    report.timeline = rows_;
  }
  std::stable_sort(report.timeline.begin(), report.timeline.end(),
                   [](const HealthPhase& a, const HealthPhase& b) {
                     return a.phase_id < b.phase_id;
                   });
  const auto& rows = report.timeline;

  // --- straggler: repeated per-phase minimum with significant skew ---
  std::vector<std::size_t> argmin_wins(hosts_, 0);
  std::vector<double> skew_sum(hosts_, 0.0);
  std::size_t complete_rows = 0;
  for (const HealthPhase& row : rows) {
    if (!row.complete || hosts_ < 2) continue;
    ++complete_rows;
    std::size_t argmin = 0;
    for (std::size_t h = 1; h < hosts_; ++h)
      if (row.dur_ns[h] < row.dur_ns[argmin]) argmin = h;
    const std::uint64_t med = median_of(row.dur_ns);
    const double skew = static_cast<double>(med) /
                        static_cast<double>(row.dur_ns[argmin]);
    if (skew >= cfg_.straggler_ratio) {
      ++argmin_wins[argmin];
      skew_sum[argmin] += skew;
    }
  }
  // Quiet phases carry no information about who is dragging, and short
  // auxiliary phases cast near-threshold noise votes; a host is the
  // straggler when it accounts for the majority of the *skew mass* across
  // the skewed phases (a repeated 100x skew can never be outvoted by a few
  // 1.5x blips), with at least two wins so one noisy phase never convicts.
  double total_skew = 0.0;
  std::size_t skewed_rows = 0;
  for (std::size_t h = 0; h < hosts_; ++h) {
    total_skew += skew_sum[h];
    skewed_rows += argmin_wins[h];
  }
  if (complete_rows >= cfg_.straggler_min_phases && total_skew > 0.0) {
    for (std::size_t h = 0; h < hosts_; ++h) {
      const double share = skew_sum[h] / total_skew;
      if (argmin_wins[h] < 2 || share < cfg_.straggler_share) continue;
      HealthFinding f;
      f.kind = "straggler";
      f.host = static_cast<int>(h);
      f.phase_lo = rows.front().phase_id;
      f.phase_hi = rows.back().phase_id;
      f.severity = skew_sum[h] / static_cast<double>(argmin_wins[h]);
      f.detail = "host " + std::to_string(h) + " entered the sync phase " +
                 "last in " + std::to_string(argmin_wins[h]) + "/" +
                 std::to_string(skewed_rows) + " skewed phases (peers " +
                 "waited " + std::to_string(f.severity) + "x longer)";
      report.findings.push_back(std::move(f));
    }
  }

  // --- retransmit storm: contiguous phases with retransmissions ---
  // --- apply backlog: contiguous phases with stash drops ---
  const auto episodes = [&rows, &report](
                            const char* kind,
                            const std::function<std::uint64_t(
                                const HealthPhase&)>& measure,
                            std::uint64_t min_total, std::string what) {
    std::size_t i = 0;
    while (i < rows.size()) {
      if (measure(rows[i]) == 0) {
        ++i;
        continue;
      }
      std::size_t j = i;
      std::uint64_t total = 0;
      while (j < rows.size() && measure(rows[j]) != 0)
        total += measure(rows[j++]);
      if (total >= min_total) {
        HealthFinding f;
        f.kind = kind;
        f.phase_lo = rows[i].phase_id;
        f.phase_hi = rows[j - 1].phase_id;
        f.severity = static_cast<double>(total);
        f.detail = std::to_string(total) + " " + what + " across phases " +
                   std::to_string(f.phase_lo) + ".." +
                   std::to_string(f.phase_hi);
        report.findings.push_back(std::move(f));
      }
      i = j;
    }
  };
  episodes(
      "retransmit_storm",
      [](const HealthPhase& r) { return r.d_retransmits + r.d_crc_dropped; },
      cfg_.storm_retransmits, "retransmissions");
  episodes(
      "apply_backlog",
      [](const HealthPhase& r) { return r.d_stash_drops; },
      cfg_.backlog_stash_drops, "apply-stash drops");

  // --- checkpoint interference: slow phases overlapping checkpoint work ---
  std::vector<std::uint64_t> quiet_walls;
  for (const HealthPhase& row : rows) {
    if (!row.complete || row.d_ckpt_ns != 0) continue;
    quiet_walls.push_back(
        *std::max_element(row.dur_ns.begin(), row.dur_ns.end()));
  }
  if (!quiet_walls.empty()) {
    const std::uint64_t baseline = median_of(std::move(quiet_walls));
    for (const HealthPhase& row : rows) {
      if (!row.complete || row.d_ckpt_ns == 0) continue;
      const std::uint64_t wall =
          *std::max_element(row.dur_ns.begin(), row.dur_ns.end());
      const double ratio =
          static_cast<double>(wall) / static_cast<double>(baseline);
      if (ratio < cfg_.ckpt_ratio) continue;
      HealthFinding f;
      f.kind = "checkpoint_interference";
      f.phase_lo = f.phase_hi = row.phase_id;
      f.severity = ratio;
      f.detail = "phase " + std::to_string(row.phase_id) + " ran " +
                 std::to_string(ratio) + "x the checkpoint-free median " +
                 "while checkpointing";
      report.findings.push_back(std::move(f));
    }
  }

  return report;
}

bool HealthMonitor::write_json(const std::string& path) const {
  const HealthReport report = diagnose();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fprintf(f, "{\n\"hosts\": %zu,\n\"phases\": %zu,\n", report.hosts,
               report.timeline.size());
  std::fputs("\"timeline\": [", f);
  bool first = true;
  for (const HealthPhase& row : report.timeline) {
    std::fprintf(f, "%s\n{\"phase\":%u,\"complete\":%s,\"dur_ns\":[",
                 first ? "" : ",", row.phase_id,
                 row.complete ? "true" : "false");
    first = false;
    for (std::size_t h = 0; h < row.dur_ns.size(); ++h)
      std::fprintf(f, "%s%llu", h == 0 ? "" : ",",
                   static_cast<unsigned long long>(row.dur_ns[h]));
    std::fputs("],\"bytes\":[", f);
    for (std::size_t h = 0; h < row.bytes.size(); ++h)
      std::fprintf(f, "%s%llu", h == 0 ? "" : ",",
                   static_cast<unsigned long long>(row.bytes[h]));
    std::fprintf(
        f,
        "],\"retransmits\":%llu,\"fault_dropped\":%llu,\"crc_dropped\":%llu,"
        "\"probes\":%llu,\"stash_drops\":%llu,\"ckpt_ns\":%llu}",
        static_cast<unsigned long long>(row.d_retransmits),
        static_cast<unsigned long long>(row.d_fault_dropped),
        static_cast<unsigned long long>(row.d_crc_dropped),
        static_cast<unsigned long long>(row.d_probes),
        static_cast<unsigned long long>(row.d_stash_drops),
        static_cast<unsigned long long>(row.d_ckpt_ns));
  }
  std::fputs("\n],\n\"findings\": [", f);
  first = true;
  for (const HealthFinding& finding : report.findings) {
    std::fprintf(f,
                 "%s\n{\"kind\":\"%s\",\"host\":%d,\"phase_lo\":%u,"
                 "\"phase_hi\":%u,\"severity\":%.3f,\"detail\":\"%s\"}",
                 first ? "" : ",", finding.kind.c_str(), finding.host,
                 finding.phase_lo, finding.phase_hi, finding.severity,
                 finding.detail.c_str());
    first = false;
  }
  std::fputs("\n]\n}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void HealthMonitor::reset() {
  std::lock_guard<std::mutex> guard(mu_);
  rows_.clear();
  row_of_phase_.clear();
  reported_.clear();
}

}  // namespace lcr::telemetry
