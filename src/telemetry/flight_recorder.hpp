// Telemetry pillar 4: the anomaly flight recorder (DESIGN.md §14).
//
// A process-wide lock-free ring of recent structured events - reliability
// stall dumps, membership transitions, checkpoint seals and rollbacks,
// queue-depth samples - that is always recording (writes are one atomic
// ticket plus a bounded memcpy into a fixed slot; producers never block and
// never allocate). When an anomaly trips (the reliability stall watchdog
// fires, `failure_pending` trips on a kill report, or recovery rolls back),
// the recorder dumps the ring as a JSON bundle, turning what used to be a
// transient stderr dump into a replayable artifact.
//
// Dumping is armed by configuring a directory (env LCR_FLIGHT_DIR or
// flight_set_dir); with no directory the triggers are no-ops, so unit tests
// and benches never litter the working tree. Events survive in the ring
// either way and can be inspected via flight_snapshot().
//
// Building with -DLCR_TELEMETRY=OFF folds every call site away, like the
// rest of the telemetry subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lcr::telemetry {

/// One recorded event. `kind` is a short static-ish tag ("rel.stall",
/// "member.kill", "ckpt.seal", ...); `detail` is a preformatted JSON object
/// (possibly truncated to the slot capacity).
struct FlightEvent {
  std::uint64_t ts_ns = 0;
  std::uint32_t host = 0;
  std::string kind;
  std::string detail;
};

#ifdef LCR_TELEMETRY_DISABLED

inline void flight_record(std::uint32_t, const char*, std::string = {}) {}
inline bool flight_dump(const char*, std::string* = nullptr) { return false; }
inline void flight_set_dir(std::string) {}
inline std::vector<FlightEvent> flight_snapshot() { return {}; }
inline std::uint64_t flight_dumps() noexcept { return 0; }
inline void flight_reset() {}

#else

/// Appends one event to the ring. Lock-free and wait-free apart from the
/// bounded slot write; safe from any thread, including inside the
/// reliability progress pump. `detail` must be a JSON object or empty.
void flight_record(std::uint32_t host, const char* kind,
                   std::string detail = {});

/// Dumps the ring as flight_<seq>_<reason>.json into the configured
/// directory and returns true on success. No directory configured => false
/// without touching the filesystem. `out_path` receives the written path.
bool flight_dump(const char* reason, std::string* out_path = nullptr);

/// Arms/disarms automatic dumping ("" disarms). Initialized from env
/// LCR_FLIGHT_DIR.
void flight_set_dir(std::string dir);

/// Consistent copy of the ring's surviving events, oldest first.
std::vector<FlightEvent> flight_snapshot();

/// Number of bundles written so far (test hook).
std::uint64_t flight_dumps() noexcept;

/// Clears the ring and the dump counter (the directory stays configured).
void flight_reset();

#endif  // LCR_TELEMETRY_DISABLED

}  // namespace lcr::telemetry
