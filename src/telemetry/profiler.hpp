// Telemetry pillar 3: the progress-loop profiler.
//
// Communication progress loops (the LCI server, the Abelian/mpilite comm
// thread) spin calling a poll function that either does work or comes back
// empty. The Fig-6 compute/comm story hinges on how those loops actually
// spend their time, so instead of inferring it by wall-clock subtraction
// the profiler samples it directly: every iteration's outcome is counted,
// and every kSample iterations the elapsed wall time since the last sample
// is split between "work" and "idle" proportionally to the outcome mix
// observed in that window. That keeps the per-iteration cost to one branch
// plus two local increments, reading the clock only once per window.
//
// Counters land in the owning fabric's Registry:
//   <prefix>.polls_work / <prefix>.polls_idle - iteration outcome counts
//   <prefix>.work_ns    / <prefix>.idle_ns    - sampled time attribution
//
// Single-threaded by design: one profiler instance per loop, owned by the
// loop's thread (the Registry counters it writes are themselves
// thread-safe, so several loops may share a prefix).
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace lcr::telemetry {

class ProgressProfiler {
 public:
  static constexpr std::uint32_t kSample = 256;

  ProgressProfiler(Registry& registry, const char* prefix)
      : work_(registry.counter(std::string(prefix) + ".polls_work")),
        idle_(registry.counter(std::string(prefix) + ".polls_idle")),
        work_ns_(registry.counter(std::string(prefix) + ".work_ns")),
        idle_ns_(registry.counter(std::string(prefix) + ".idle_ns")),
        last_ns_(rt::now_ns()) {}

  ~ProgressProfiler() { flush(); }

  ProgressProfiler(const ProgressProfiler&) = delete;
  ProgressProfiler& operator=(const ProgressProfiler&) = delete;

  /// Call once per loop iteration with whether the poll did work.
  void note(bool did_work) noexcept {
    if (!enabled()) return;
    if (did_work)
      ++work_batch_;
    else
      ++idle_batch_;
    if (work_batch_ + idle_batch_ >= kSample) flush();
  }

  /// Publishes the partial window (also runs on destruction).
  void flush() noexcept {
    const std::uint32_t batch = work_batch_ + idle_batch_;
    const std::uint64_t now = rt::now_ns();
    if (batch == 0) {
      last_ns_ = now;
      return;
    }
    if (last_ns_ != 0) {
      const std::uint64_t elapsed = now - last_ns_;
      const std::uint64_t w = elapsed * work_batch_ / batch;
      if (w != 0) work_ns_.add(w);
      if (elapsed - w != 0) idle_ns_.add(elapsed - w);
    }
    work_.add(work_batch_);
    idle_.add(idle_batch_);
    work_batch_ = 0;
    idle_batch_ = 0;
    last_ns_ = now;
  }

 private:
  Counter& work_;
  Counter& idle_;
  Counter& work_ns_;
  Counter& idle_ns_;
  std::uint32_t work_batch_ = 0;
  std::uint32_t idle_batch_ = 0;
  std::uint64_t last_ns_;
};

}  // namespace lcr::telemetry
