// Umbrella header for the telemetry subsystem (see DESIGN.md §9).
//
//   metrics.hpp  - Registry of counters / histograms / probes
//   trace.hpp    - Span tracing + Chrome trace-event export
//   profiler.hpp - progress-loop work/idle sampler
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
