// Umbrella header for the telemetry subsystem (see DESIGN.md §9 and §14).
//
//   metrics.hpp         - Registry of counters / histograms / probes
//   trace.hpp           - span tracing, causal message tracing (hops /
//                         sampling / flow stitching), Chrome export
//   profiler.hpp        - progress-loop work/idle sampler
//   flight_recorder.hpp - anomaly flight recorder (lock-free event ring)
//   health.hpp          - cluster health monitor + classifiers
#pragma once

#include "telemetry/flight_recorder.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
