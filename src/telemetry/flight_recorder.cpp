#include "telemetry/flight_recorder.hpp"

#ifndef LCR_TELEMETRY_DISABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "runtime/timer.hpp"

namespace lcr::telemetry {

namespace {

constexpr std::size_t kSlots = 4096;  // power of two
constexpr std::size_t kKindBytes = 24;
constexpr std::size_t kDetailBytes = 232;

/// Seqlock-style slot: `stamp` holds ticket+1 once the payload is complete
/// and 0 while a writer owns it. A reader copies the payload and keeps it
/// only if the stamp it saw before and after the copy match and are nonzero.
struct Slot {
  std::atomic<std::uint64_t> stamp{0};
  std::uint64_t ts_ns = 0;
  std::uint32_t host = 0;
  char kind[kKindBytes] = {};
  char detail[kDetailBytes] = {};
};

struct Ring {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> dumps{0};
  Slot slots[kSlots];
  std::mutex dir_mu;
  std::string dir;
};

Ring& ring() {
  static auto* r = [] {
    auto* ptr = new Ring();
    if (const char* d = std::getenv("LCR_FLIGHT_DIR")) ptr->dir = d;
    return ptr;
  }();
  return *r;
}

void copy_bounded(char* dst, std::size_t cap, const char* src,
                  std::size_t len) {
  const std::size_t n = std::min(cap - 1, len);
  std::memcpy(dst, src, n);
  dst[n] = '\0';
}

}  // namespace

void flight_record(std::uint32_t host, const char* kind, std::string detail) {
  Ring& r = ring();
  const std::uint64_t ticket =
      r.head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = r.slots[ticket & (kSlots - 1)];
  s.stamp.store(0, std::memory_order_release);  // invalidate for readers
  s.ts_ns = rt::now_ns();
  s.host = host;
  copy_bounded(s.kind, kKindBytes, kind, std::strlen(kind));
  // A detail cut mid-object would poison the JSON bundle; drop it whole
  // rather than truncate.
  const bool fits = detail.size() < kDetailBytes;
  copy_bounded(s.detail, kDetailBytes, detail.data(),
               fits ? detail.size() : 0);
  s.stamp.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> flight_snapshot() {
  Ring& r = ring();
  std::vector<FlightEvent> out;
  out.reserve(kSlots);
  for (Slot& s : r.slots) {
    const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
    if (before == 0) continue;
    FlightEvent ev;
    ev.ts_ns = s.ts_ns;
    ev.host = s.host;
    ev.kind = s.kind;
    ev.detail = s.detail;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.stamp.load(std::memory_order_acquire) != before)
      continue;  // torn by a concurrent writer; the event is lost anyway
    out.push_back(std::move(ev));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void flight_set_dir(std::string dir) {
  Ring& r = ring();
  std::lock_guard<std::mutex> guard(r.dir_mu);
  r.dir = std::move(dir);
}

std::uint64_t flight_dumps() noexcept {
  return ring().dumps.load(std::memory_order_relaxed);
}

void flight_reset() {
  Ring& r = ring();
  for (Slot& s : r.slots) s.stamp.store(0, std::memory_order_release);
  r.head.store(0, std::memory_order_relaxed);
  r.dumps.store(0, std::memory_order_relaxed);
}

bool flight_dump(const char* reason, std::string* out_path) {
  Ring& r = ring();
  std::string dir;
  {
    std::lock_guard<std::mutex> guard(r.dir_mu);
    dir = r.dir;
  }
  if (dir.empty()) return false;

  const std::uint64_t seq = r.dumps.fetch_add(1, std::memory_order_relaxed);
  std::string path = dir + "/flight_" + std::to_string(seq) + "_" + reason +
                     ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  const std::vector<FlightEvent> events = flight_snapshot();
  std::fprintf(f, "{\n\"reason\": \"%s\",\n\"dumped_at_ns\": %llu,\n",
               reason, static_cast<unsigned long long>(rt::now_ns()));
  std::fputs("\"events\": [", f);
  bool first = true;
  for (const FlightEvent& ev : events) {
    std::fprintf(f,
                 "%s\n{\"ts_ns\":%llu,\"host\":%u,\"kind\":\"%s\"%s%s}",
                 first ? "" : ",",
                 static_cast<unsigned long long>(ev.ts_ns), ev.host,
                 ev.kind.c_str(), ev.detail.empty() ? "" : ",\"detail\":",
                 ev.detail.c_str());
    first = false;
  }
  std::fputs("\n]\n}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok && out_path != nullptr) *out_path = path;
  return ok;
}

}  // namespace lcr::telemetry

#endif  // !LCR_TELEMETRY_DISABLED
