// Telemetry pillar 2: span tracing with a Chrome trace-event exporter.
//
// Spans are recorded into per-thread ring buffers (one uncontended spinlock
// push per completed span; the lock only ever contends with a collector) and
// exported as Chrome trace-event JSON loadable in chrome://tracing or
// Perfetto. Instant events carry a preformatted JSON `args` object for
// structured records (e.g. the reliability watchdog's per-link state).
//
// Cost model:
//   * compile-time: building with -DLCR_TELEMETRY=OFF defines
//     LCR_TELEMETRY_DISABLED, turning Span/instant/emit_complete into empty
//     inlines and enabled() into `constexpr false`, so every call site folds
//     away.
//   * runtime: with tracing compiled in but not enabled (env LCR_TELEMETRY
//     unset and no set_enabled(true)), every hook is one relaxed atomic
//     load + predictable branch.
//
// The `pid` field of an event carries the simulated host id, so a trace of
// an N-host run opens as N process tracks; `tid` is a process-wide stable
// thread index.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/timer.hpp"

namespace lcr::telemetry {

struct TraceEvent {
  const char* cat = "";   // static string: subsystem ("abelian", "rel", ...)
  const char* name = "";  // static string: what happened
  std::uint64_t ts_ns = 0;   // begin timestamp (rt::now_ns clock)
  std::uint64_t dur_ns = 0;  // 0 for instants
  std::uint32_t pid = 0;     // simulated host id
  std::uint32_t tid = 0;     // process-wide thread index
  char phase = 'X';          // 'X' complete span, 'i' instant, 'f' flow hop
  std::uint32_t flow_id = 0;   // causal trace id ('f' events; 0 otherwise)
  std::uint32_t flow_hop = 0;  // transmission attempt at this hop
  std::string args;            // preformatted JSON object ("" = none)
};

#ifdef LCR_TELEMETRY_DISABLED

constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}

class Span {
 public:
  Span(const char*, const char*, std::uint32_t = 0) noexcept {}
};

inline void instant(const char*, const char*, std::uint32_t = 0,
                    std::string = {}) {}
inline void emit_complete(const char*, const char*, std::uint32_t,
                          std::uint64_t, std::uint64_t) {}
inline void hop(const char*, std::uint32_t, std::uint32_t, std::uint32_t,
                std::string = {}) {}
inline void set_trace_sampling(std::uint32_t, std::uint64_t) noexcept {}
constexpr std::uint32_t trace_sample_every() noexcept { return 0; }
inline std::uint32_t sample_trace_id(std::uint32_t, std::uint32_t,
                                     std::uint32_t,
                                     std::uint32_t = 0) noexcept {
  return 0;
}

#else  // tracing compiled in

namespace detail {
extern std::atomic<bool> g_enabled;
void record(TraceEvent&& ev);
std::uint32_t this_thread_tid();
}  // namespace detail

/// Runtime gate; initialized from env LCR_TELEMETRY (1/on/true).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// RAII complete-span guard. `cat` and `name` must be static strings.
class Span {
 public:
  Span(const char* cat, const char* name, std::uint32_t pid = 0) noexcept
      : live_(enabled()) {
    if (!live_) return;
    cat_ = cat;
    name_ = name;
    pid_ = pid;
    begin_ = rt::now_ns();
  }
  ~Span() {
    if (live_)
      detail::record({cat_, name_, begin_, rt::now_ns() - begin_, pid_,
                      detail::this_thread_tid(), 'X', 0, 0, {}});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t begin_ = 0;
  std::uint32_t pid_ = 0;
  bool live_;
};

/// Structured instant event; `args` must be a preformatted JSON object
/// (e.g. R"({"dst":3,"seq":17})") or empty.
void instant(const char* cat, const char* name, std::uint32_t pid = 0,
             std::string args = {});

/// Records a complete span from explicit timestamps (for phases whose
/// boundaries are computed after the fact, e.g. Gemini's produce/drain
/// split derived from the last producer's finish time).
void emit_complete(const char* cat, const char* name, std::uint32_t pid,
                   std::uint64_t begin_ns, std::uint64_t dur_ns);

// ---- Causal message tracing (DESIGN.md §14) ----
//
// A sampled message carries a 32-bit trace id (plus a transmission-attempt
// hop counter) in its ChunkHeader / MsgMeta; every layer it crosses records
// one `hop` event. Because all simulated hosts share one process clock,
// ordering hops by timestamp reconstructs the cross-host causal timeline.

/// Records one lifecycle hop of sampled message `trace_id` at `stage`
/// (static string: "encode", "post", "drop", "retransmit", ...). `attempt`
/// is the transmission attempt the hop belongs to (0 = first).
void hop(const char* stage, std::uint32_t pid, std::uint32_t trace_id,
         std::uint32_t attempt, std::string args = {});

/// Configures deterministic sampling: one message in `every` is traced
/// (0 disables). Initialized from env LCR_TRACE_SAMPLE / LCR_TRACE_SEED.
void set_trace_sampling(std::uint32_t every, std::uint64_t seed) noexcept;
std::uint32_t trace_sample_every() noexcept;

/// Deterministic sampling decision for the message identified by
/// (host, phase_id, base_pos, salt). Returns the nonzero trace id when the
/// message is sampled, 0 otherwise. Pure hash of the configured seed and
/// the identity tuple, so re-running a seeded workload samples the same
/// messages. `salt` disambiguates messages that share a base position
/// (e.g. the same record range encoded for two destinations).
std::uint32_t sample_trace_id(std::uint32_t host, std::uint32_t phase_id,
                              std::uint32_t base_pos,
                              std::uint32_t salt = 0) noexcept;

#endif  // LCR_TELEMETRY_DISABLED

// ---- Collection & export (always compiled; cheap and cold) ----

/// Copies every recorded event out of the thread rings, sorted by ts_ns.
std::vector<TraceEvent> collect_trace();

/// Drops all recorded events (buffers stay registered). Called by the bench
/// runner right before the timed region so warm-up spans never pollute a
/// measured trace.
void reset_trace();

/// Events discarded because a thread ring was full.
std::uint64_t trace_dropped();

/// Writes the whole trace as Chrome trace-event JSON. `other` entries (e.g.
/// a Registry snapshot) are embedded under "otherData" as string values.
/// Hop events are exported as 1µs slices joined by Chrome flow arrows
/// (ph "s"/"t"/"f", id = trace id), and every thread ring that overflowed
/// contributes a trailing "trace_buffer_overflow" drop-marker instant.
/// Returns false if the file could not be written.
bool write_chrome_trace(const std::string& path,
                        const std::map<std::string, std::uint64_t>& other = {});

/// One recorded lifecycle stage of a sampled message (stitched view).
struct FlowHop {
  const char* stage = "";
  std::uint32_t host = 0;
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint32_t attempt = 0;
  std::string args;
};

/// The full cross-host life of one sampled message, hops in causal
/// (timestamp) order.
struct FlowTrace {
  std::uint32_t id = 0;
  std::vector<FlowHop> hops;
};

/// Groups every recorded hop event by trace id into per-message causal
/// timelines (hops sorted by timestamp; all simulated hosts share one
/// clock, so timestamp order is causal order).
std::vector<FlowTrace> stitch_flows();

/// True when `stages` appears as a subsequence of the flow's hop stages -
/// e.g. {"post", "drop", "retransmit", "deliver", "apply"}.
bool flow_has_path(const FlowTrace& flow,
                   const std::vector<const char*>& stages);

/// Writes the stitched per-message timelines as a standalone JSON artifact
/// ({"flows":[{"id","hops":[{stage,host,tid,ts_ns,attempt,args}...]}...]}).
bool write_flow_trace(const std::string& path);

}  // namespace lcr::telemetry
