#include "telemetry/metrics.hpp"

namespace lcr::telemetry {

std::size_t Counter::stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx & (kStripes - 1);
}

std::uint64_t Histogram::quantile_lo(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > target) return bucket_lo(i);
  }
  return bucket_lo(kBuckets - 1);
}

void Registration::release() {
  if (registry_ != nullptr) registry_->unregister(token_);
  registry_ = nullptr;
  token_ = 0;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

Registration Registry::register_probes(std::vector<Probe> probes) {
  std::lock_guard<std::mutex> guard(mu_);
  const std::uint64_t token = next_token_++;
  probe_sets_.emplace(token, std::move(probes));
  return Registration(this, token);
}

void Registry::unregister(std::uint64_t token) {
  std::lock_guard<std::mutex> guard(mu_);
  probe_sets_.erase(token);
}

std::uint64_t Registry::sum(std::string_view name) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::uint64_t total = 0;
  if (auto it = counters_.find(name); it != counters_.end())
    total += it->second->value();
  for (const auto& [token, probes] : probe_sets_)
    for (const Probe& p : probes)
      if (p.name == name) total += p.value->load(std::memory_order_relaxed);
  return total;
}

std::map<std::string, std::uint64_t> Registry::snapshot() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] += c->value();
  for (const auto& [token, probes] : probe_sets_)
    for (const Probe& p : probes)
      out[p.name] += p.value->load(std::memory_order_relaxed);
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = h->count();
    out[name + ".sum"] = h->sum();
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [token, probes] : probe_sets_)
    for (Probe& p : probes) p.value->store(0, std::memory_order_relaxed);
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

}  // namespace lcr::telemetry
