// Auxiliary execution context: OS thread or sibling fiber, start-site picked.
//
// Engines spawn helper loops next to the host-main control flow: the abelian
// comm thread, Gemini's progress server, ThreadTeam compute workers. Under
// the OS-thread host scheduler each helper is a real std::thread. Under the
// ULT host scheduler (DESIGN.md §16) the host-main itself is a fiber, and
// forking a kernel thread per helper would bring back exactly the
// oversubscription the fiber scheduler exists to avoid: 256 hosts x
// (comm + compute) helpers is thousands of kernel threads on a handful of
// cores. AuxThread checks ult::on_fiber() at start: on a fiber it spawns a
// sibling fiber on the same scheduler (inheriting the simulated-host tag, so
// re-keyed telemetry/scratch attribute correctly); otherwise a std::thread.
//
// The helper loops this wraps block only through rt::Backoff-based spins
// (queue pops, sense barriers, progress pumps), which yield to the fiber
// scheduler via rt::thread_yield() — a cv-waiting loop must NOT run under
// AuxThread (it would pin its worker; the checkpoint sealer stays a plain
// std::thread for this reason).
#pragma once

#include <functional>
#include <thread>
#include <utility>

#include "runtime/ult.hpp"

namespace lcr::rt {

class AuxThread {
 public:
  AuxThread() = default;

  explicit AuxThread(std::function<void()> fn) {
    if (ult::on_fiber())
      task_ = ult::spawn(std::move(fn));
    else
      thread_ = std::thread(std::move(fn));
  }

  AuxThread(AuxThread&& other) noexcept { *this = std::move(other); }
  AuxThread& operator=(AuxThread&& other) noexcept {
    if (this != &other) {
      thread_ = std::move(other.thread_);
      task_ = other.task_;
      other.task_ = nullptr;
    }
    return *this;
  }

  AuxThread(const AuxThread&) = delete;
  AuxThread& operator=(const AuxThread&) = delete;

  // Like std::thread, the owner must join before destruction; an abandoned
  // joinable std::thread member still terminates, and an abandoned fiber
  // would leak its Task until scheduler teardown.
  ~AuxThread() = default;

  bool joinable() const noexcept {
    return task_ != nullptr || thread_.joinable();
  }

  void join() {
    if (task_ != nullptr) {
      ult::join(task_);
      task_ = nullptr;
    } else if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  std::thread thread_;
  ult::Task* task_ = nullptr;
};

}  // namespace lcr::rt
