// Concurrent dynamic bitset.
//
// Used for "dirty" label tracking (which proxies were updated this round and
// therefore must be synchronized) and for active-vertex frontiers. Set
// operations are thread-safe; iteration and clearing happen in quiescent
// phases, matching the BSP structure of the engines.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lcr::rt {

class ConcurrentBitset {
 public:
  ConcurrentBitset() = default;
  explicit ConcurrentBitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<std::uint64_t>>((bits + 63) / 64);
  }

  std::size_t size() const noexcept { return bits_; }

  /// Thread-safe set. Returns true if the bit transitioned 0 -> 1.
  bool set(std::size_t i) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Thread-safe clear of one bit.
  void reset(std::size_t i) noexcept {
    words_[i >> 6].fetch_and(~(1ULL << (i & 63)), std::memory_order_relaxed);
  }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6].load(std::memory_order_relaxed) >>
            (i & 63)) & 1ULL;
  }

  /// Clears all bits. Not thread-safe against concurrent set().
  void clear_all() noexcept {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Population count. Not thread-safe against concurrent set().
  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const auto& w : words_)
      total += static_cast<std::size_t>(
          __builtin_popcountll(w.load(std::memory_order_relaxed)));
    return total;
  }

  /// Population count of [lo, hi). Not thread-safe against concurrent set().
  std::size_t count_range(std::size_t lo, std::size_t hi) const noexcept {
    if (lo >= hi) return 0;
    const std::size_t first = lo >> 6;
    const std::size_t last = (hi - 1) >> 6;
    std::size_t total = 0;
    for (std::size_t wi = first; wi <= last && wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
      if (wi == first) w &= ~0ULL << (lo & 63);
      if (wi == last && ((hi & 63) != 0)) w &= (1ULL << (hi & 63)) - 1;
      total += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return total;
  }

  /// Raw word access for checkpoint/restore. Only meaningful in quiescent
  /// phases (no concurrent set()).
  std::size_t num_words() const noexcept { return words_.size(); }
  std::uint64_t word(std::size_t wi) const noexcept {
    return words_[wi].load(std::memory_order_relaxed);
  }
  void set_word(std::size_t wi, std::uint64_t v) noexcept {
    words_[wi].store(v, std::memory_order_relaxed);
  }
  /// Contiguous word storage for bulk snapshotting; atomics are lock-free
  /// and layout-compatible with uint64_t on every supported platform.
  const std::atomic<std::uint64_t>* words_data() const noexcept {
    return words_.data();
  }

  bool any() const noexcept {
    for (const auto& w : words_)
      if (w.load(std::memory_order_relaxed) != 0) return true;
    return false;
  }

  /// Calls fn(i) for every set bit. Not thread-safe against concurrent set().
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Calls fn(i) for every set bit in [lo, hi).
  template <typename Fn>
  void for_each_in_range(std::size_t lo, std::size_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    for (std::size_t wi = lo >> 6; wi <= (hi - 1) >> 6 && wi < words_.size();
         ++wi) {
      std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        const std::size_t i = wi * 64 + static_cast<std::size_t>(b);
        if (i >= lo && i < hi) fn(i);
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace lcr::rt
