#include "runtime/thread_team.hpp"

#include <algorithm>

namespace lcr::rt {

ThreadTeam::ThreadTeam(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)),
      start_barrier_(num_threads_),
      end_barrier_(num_threads_) {
  threads_.reserve(num_threads_ - 1);
  for (std::size_t t = 1; t < num_threads_; ++t)
    threads_.emplace_back(AuxThread([this, t] { worker_loop(t); }));
}

ThreadTeam::~ThreadTeam() {
  if (num_threads_ > 1) {
    shutdown_.store(true, std::memory_order_release);
    job_ = nullptr;
    start_barrier_.arrive_and_wait();  // release workers to observe shutdown
  }
  for (auto& th : threads_) th.join();
}

void ThreadTeam::worker_loop(std::size_t tid) {
  for (;;) {
    start_barrier_.arrive_and_wait();
    if (shutdown_.load(std::memory_order_acquire)) return;
    if (job_ != nullptr) (*job_)(tid);
    end_barrier_.arrive_and_wait();
  }
}

void ThreadTeam::run(const std::function<void(std::size_t)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  job_ = &fn;
  start_barrier_.arrive_and_wait();
  fn(0);
  end_barrier_.arrive_and_wait();
  job_ = nullptr;
}

void ThreadTeam::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  std::atomic<std::size_t> next{begin};
  run([&](std::size_t) {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = std::min(lo + grain, end);
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
}

void ThreadTeam::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  std::atomic<std::size_t> next{begin};
  run([&](std::size_t tid) {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      body(lo, std::min(lo + grain, end), tid);
    }
  });
}

}  // namespace lcr::rt
