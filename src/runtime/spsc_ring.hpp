// Bounded single-producer single-consumer ring buffer.
//
// Used for per-peer ordered channels (e.g. one compute thread feeding the
// dedicated communication thread).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>

namespace lcr::rt {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;
    buf_ = std::make_unique<T[]>(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool try_push(T value) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (((h + 1) & mask_) == (t & mask_)) return false;  // full
    buf_[h & mask_] = std::move(value);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t == h) return std::nullopt;  // empty
    std::optional<T> v(std::move(buf_[t & mask_]));
    tail_.store(t + 1, std::memory_order_release);
    return v;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::unique_ptr<T[]> buf_;
  std::size_t mask_ = 0;
};

}  // namespace lcr::rt
