#include "runtime/checkpoint.hpp"

#include <cstring>

#include "runtime/cpu_relax.hpp"
#include "runtime/timer.hpp"

namespace lcr::rt {

namespace {

/// FNV-1a over a byte range; cheap enough for the background sealer and
/// strong enough to catch staging bugs in tests.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CheckpointStore::CheckpointStore(std::size_t num_hosts) {
  hosts_.reserve(num_hosts);
  for (std::size_t h = 0; h < num_hosts; ++h)
    hosts_.emplace_back(new HostSlots());
  sealer_ = std::thread([this] { sealer_loop(); });
}

CheckpointStore::~CheckpointStore() {
  {
    std::lock_guard<std::mutex> guard(queue_lock_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  sealer_.join();
}

void CheckpointStore::save(std::size_t host, std::int64_t round,
                           const std::vector<View>& arrays) {
  HostSlots& hs = *hosts_[host];
  Slot& slot = hs.slots[hs.next];

  // The slot being recycled is two checkpoints old; its seal has almost
  // certainly finished. If the sealer is backlogged, wait here rather than
  // staging over bytes it is still checksumming.
  if (slot.round >= 0) {
    Backoff backoff;
    while (!slot.sealed.load(std::memory_order_acquire)) backoff.pause();
  }

  const std::uint64_t t0 = now_ns();
  slot.sealed.store(false, std::memory_order_relaxed);
  slot.round = round;
  slot.arrays.resize(arrays.size());
  std::uint64_t staged = 0;
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    slot.arrays[i].resize(arrays[i].bytes);
    if (arrays[i].bytes > 0)
      std::memcpy(slot.arrays[i].data(), arrays[i].data, arrays[i].bytes);
    staged += arrays[i].bytes;
  }
  stats_.bytes.fetch_add(staged, std::memory_order_relaxed);
  stats_.stage_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);

  // Commit at the round boundary: the checkpoint's data is complete from
  // here on, so recovery may target it even while the seal is in flight
  // (load() waits for the seal).
  hs.committed.store(round, std::memory_order_release);
  hs.next ^= 1;

  {
    std::lock_guard<std::mutex> guard(queue_lock_);
    seal_queue_.push_back(&slot);
  }
  queue_cv_.notify_one();
}

std::int64_t CheckpointStore::latest_round(std::size_t host) const {
  return hosts_[host]->committed.load(std::memory_order_acquire);
}

std::int64_t CheckpointStore::stable_round() const {
  std::int64_t r = -1;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    const std::int64_t hr = latest_round(h);
    if (hr < 0) return -1;
    if (r < 0 || hr < r) r = hr;
  }
  return r;
}

bool CheckpointStore::load(std::size_t host, std::int64_t round,
                           std::vector<std::vector<std::uint8_t>>& out) {
  HostSlots& hs = *hosts_[host];
  for (Slot& slot : hs.slots) {
    if (slot.round != round) continue;
    Backoff backoff;
    while (!slot.sealed.load(std::memory_order_acquire)) backoff.pause();
    out = slot.arrays;
    stats_.restores.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void CheckpointStore::quiesce() {
  std::unique_lock<std::mutex> guard(queue_lock_);
  idle_cv_.wait(guard,
                [this] { return seal_queue_.empty() && sealing_ == 0; });
}

void CheckpointStore::sealer_loop() {
  std::unique_lock<std::mutex> guard(queue_lock_);
  for (;;) {
    queue_cv_.wait(guard, [this] { return stop_ || !seal_queue_.empty(); });
    if (seal_queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Slot* slot = seal_queue_.front();
    seal_queue_.pop_front();
    ++sealing_;
    guard.unlock();

    const std::uint64_t t0 = now_ns();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& a : slot->arrays) h = fnv1a(h, a.data(), a.size());
    slot->checksum = h;
    stats_.seal_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    stats_.saves.fetch_add(1, std::memory_order_relaxed);
    slot->sealed.store(true, std::memory_order_release);

    guard.lock();
    --sealing_;
    if (seal_queue_.empty() && sealing_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace lcr::rt
