// Hierarchical (k-ary tree) shared-memory collectives for the OOB plane.
//
// The cluster's out-of-band control plane used flat all-to-all collectives:
// a centralized sense barrier (every participant fetch_adds one counter, N
// spinners on one sense flag) and allreduces built from THREE such barrier
// waits around a shared scratch cell. At 8-16 hosts that is invisible; at
// 128-256 simulated hosts the serialized fetch_add chain and the triple
// full-round synchronization dominate every BSP round boundary.
//
// These collectives replace that with a k-ary combining tree (default arity
// 4): each participant owns one tree node, waits for its children's partial
// results, combines them with its own contribution, publishes upward, then
// receives the final result down the same tree (each parent wakes only its
// children). One op is one up-wave plus one down-wave — O(k·log_k N) waits
// per participant and a single traversal instead of three flat barriers.
//
// Failure semantics match the flat plane (DESIGN.md §13): every wait is
// abortable, and an abort mid-collective tears the tree (flags for the
// current parity are half-flipped). reset() restores the initial state; it
// is only safe while every participant is quiescent inside the recovery
// rendezvous, exactly like rt::SenseBarrier::reset().
//
// All waits funnel through rt::Backoff, so participants running as ULT
// fibers yield to the scheduler instead of burning the worker (§16).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/cpu_relax.hpp"

namespace lcr::rt {

/// k-ary tree barrier. Participant i's children are i*k+1 .. i*k+k (< n);
/// the root is participant 0. Reusable across rounds via sense reversal.
/// Arity is clamped to [2, 8] (the child wait-sets are fixed arrays).
class TreeBarrier {
 public:
  explicit TreeBarrier(std::size_t n, std::size_t arity = 4);

  /// Collective: every live participant must call with its own `self`.
  void arrive_and_wait(std::size_t self) noexcept;

  /// Abortable arrival: returns false when `abort()` fired first. The
  /// barrier is torn afterwards; reset() before reuse.
  bool arrive_and_wait_abortable(std::size_t self,
                                 const std::function<bool()>& abort) noexcept;

  /// Restore the initial state. Only safe while all participants are
  /// quiescent (recovery rendezvous).
  void reset() noexcept;

  std::size_t participants() const noexcept { return n_; }

 private:
  struct alignas(64) Node {
    std::atomic<bool> arrived{false};   // child -> parent, per-parity
    std::atomic<bool> released{false};  // parent -> child, per-parity
    std::uint64_t round = 0;            // owner-written op counter
  };

  bool wave(std::size_t self, const std::function<bool()>* abort) noexcept;

  const std::size_t n_;
  const std::size_t arity_;
  std::vector<Node> nodes_;
};

/// k-ary tree allreduce over T. One object per (cluster, T); different
/// reductions (sum/min/max) share it — the combine op is a per-call
/// parameter and participants execute identical op sequences, so the
/// sense parity stays aligned.
template <typename T>
class TreeAllreduce {
 public:
  explicit TreeAllreduce(std::size_t n, std::size_t arity = 4)
      : n_(n), arity_(arity < 2 ? 2 : (arity > 8 ? 8 : arity)), nodes_(n) {}

  /// Collective reduce+broadcast. `combine(a, b)` must be associative and
  /// commutative. Returns false (leaving *out untouched) when `abort()`
  /// fired; the tree is torn afterwards — reset() before reuse.
  template <typename Combine, typename AbortFn>
  bool run(std::size_t self, T value, Combine&& combine, AbortFn&& abort,
           T* out) noexcept {
    Node& me = nodes_[self];
    const bool sense = (me.round & 1) == 0;
    ++me.round;
    // Up-wave: wait for the whole child set (polled together — one pass per
    // scheduler trip, see TreeBarrier::wave), then combine the partials in
    // fixed child order so floating-point results are deterministic.
    std::size_t pending = 0;
    std::size_t wait_set[8];  // arity clamped to [2, 8]
    for (std::size_t j = 1; j <= arity_; ++j) {
      const std::size_t child = self * arity_ + j;
      if (child >= n_) break;
      wait_set[pending++] = child;
    }
    const std::size_t num_children = pending;
    Backoff up_backoff;
    while (pending > 0) {
      std::size_t still = 0;
      for (std::size_t i = 0; i < pending; ++i)
        if (nodes_[wait_set[i]].arrived.load(std::memory_order_acquire) !=
            sense)
          wait_set[still++] = wait_set[i];
      pending = still;
      if (pending == 0) break;
      if (abort()) return false;
      up_backoff.pause();
    }
    T acc = value;
    for (std::size_t j = 1; j <= num_children; ++j)
      acc = combine(acc, nodes_[self * arity_ + j].partial);
    if (self == 0) {
      me.result = acc;
    } else {
      me.partial = acc;
      nodes_[self].arrived.store(sense, std::memory_order_release);
      // Down-wave: wait for the parent to hand us the final result.
      Backoff backoff;
      while (me.released.load(std::memory_order_acquire) != sense) {
        if (abort()) return false;
        backoff.pause();
      }
    }
    for (std::size_t j = 1; j <= arity_; ++j) {
      const std::size_t child = self * arity_ + j;
      if (child >= n_) break;
      Node& c = nodes_[child];
      c.result = me.result;
      c.released.store(sense, std::memory_order_release);
    }
    *out = me.result;
    return true;
  }

  /// Restore the initial state (quiescent participants only).
  void reset() noexcept {
    for (Node& node : nodes_) {
      node.arrived.store(false, std::memory_order_relaxed);
      node.released.store(false, std::memory_order_relaxed);
      node.round = 0;
      node.partial = T{};
      node.result = T{};
    }
    std::atomic_thread_fence(std::memory_order_release);
  }

  std::size_t participants() const noexcept { return n_; }

 private:
  struct alignas(64) Node {
    std::atomic<bool> arrived{false};   // partial is valid, per-parity
    std::atomic<bool> released{false};  // result is valid, per-parity
    std::uint64_t round = 0;            // owner-written op counter
    T partial{};                        // child -> parent payload
    T result{};                         // parent -> child payload
  };

  const std::size_t n_;
  const std::size_t arity_;
  std::vector<Node> nodes_;
};

}  // namespace lcr::rt
