// Cluster-wide checkpoint store: simulated stable storage for per-host
// vertex-state snapshots.
//
// Engines snapshot their application arrays plus the round counter every K
// rounds ("piggybacked" on the sync phase: the save happens at a round
// boundary, where the arrays are quiescent, so the copy needs no locking
// and the recorded round is exact). The save path is split so compute never
// waits on anything but a bounded memcpy:
//
//   * staging (synchronous, host thread): the arrays are copied into one of
//     two per-host slots and the slot's round is committed. This bounds the
//     per-round overhead to a memcpy of the vertex state.
//   * sealing (asynchronous, one background thread per store): checksum and
//     accounting run off the critical path; load() waits for the seal.
//
// Double buffering means the previous checkpoint stays intact while the next
// one is staged, so the cluster-wide rollback target (stable_round) is
// always available even when a host dies mid-save.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lcr::rt {

struct CheckpointStats {
  std::atomic<std::uint64_t> saves{0};     // sealed checkpoints
  std::atomic<std::uint64_t> bytes{0};     // staged bytes, all saves
  std::atomic<std::uint64_t> stage_ns{0};  // synchronous staging time
  std::atomic<std::uint64_t> seal_ns{0};   // background checksum time
  std::atomic<std::uint64_t> restores{0};  // load() calls that hit
};

class CheckpointStore {
 public:
  /// A borrowed byte range staged into the checkpoint.
  struct View {
    const void* data = nullptr;
    std::size_t bytes = 0;
  };

  explicit CheckpointStore(std::size_t num_hosts);
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  std::size_t num_hosts() const noexcept { return hosts_.size(); }

  /// Stage a checkpoint of `arrays` for `host` at `round`. Blocks only for
  /// the staging memcpy; checksum + commit accounting happen on the sealer
  /// thread. One caller per host at a time (the host's main thread).
  void save(std::size_t host, std::int64_t round,
            const std::vector<View>& arrays);

  /// Round of `host`'s newest committed checkpoint (-1 = none yet).
  std::int64_t latest_round(std::size_t host) const;

  /// Highest round every host has a committed checkpoint for: the
  /// cluster-wide rollback target. -1 when some host has none (recovery
  /// must restart the computation from scratch).
  std::int64_t stable_round() const;

  /// Copy `host`'s checkpoint at `round` into `out` (one vector per staged
  /// array, in save() order). Waits for the slot's seal if it is still in
  /// flight. Returns false when no slot holds `round`.
  bool load(std::size_t host, std::int64_t round,
            std::vector<std::vector<std::uint8_t>>& out);

  /// Block until every queued seal has completed (stat determinism in
  /// benches and tests).
  void quiesce();

  CheckpointStats& stats() noexcept { return stats_; }

 private:
  struct Slot {
    std::int64_t round = -1;
    std::atomic<bool> sealed{false};
    std::vector<std::vector<std::uint8_t>> arrays;
    std::uint64_t checksum = 0;
  };
  struct HostSlots {
    Slot slots[2];
    std::atomic<std::int64_t> committed{-1};
    int next = 0;  // slot the next save() stages into (host thread only)
  };

  void sealer_loop();

  std::vector<std::unique_ptr<HostSlots>> hosts_;
  CheckpointStats stats_;

  std::mutex queue_lock_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<Slot*> seal_queue_;
  std::size_t sealing_ = 0;  // jobs popped but not finished
  bool stop_ = false;
  std::thread sealer_;
};

/// Per-host recovery context threaded through the app drivers. `interval`
/// enables checkpointing every K rounds (round 0 included, so a kill during
/// warmup still has a rollback target once the first save lands); `resume`
/// tells the driver to reload `resume_round` from the store and re-enter its
/// sync loop there instead of initializing from scratch.
struct RecoveryCtx {
  CheckpointStore* store = nullptr;
  std::size_t host = 0;
  std::int64_t interval = 0;
  bool resume = false;
  std::int64_t resume_round = -1;
};

}  // namespace lcr::rt
