// Wall-clock timing helpers used by engines and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace lcr::rt {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since an arbitrary epoch; monotonic.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Simple start/elapsed stopwatch.
class Timer {
 public:
  Timer() : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }
  double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-3;
  }

 private:
  std::uint64_t start_;
};

/// Accumulates time over repeated start/stop sections (per-phase breakdowns).
class AccumTimer {
 public:
  void start() noexcept { start_ = now_ns(); }
  void stop() noexcept { total_ += now_ns() - start_; }
  std::uint64_t total_ns() const noexcept { return total_; }
  double total_s() const noexcept { return static_cast<double>(total_) * 1e-9; }
  void reset() noexcept { total_ = 0; }

 private:
  std::uint64_t start_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace lcr::rt
