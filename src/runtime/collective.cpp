#include "runtime/collective.hpp"

namespace lcr::rt {

TreeBarrier::TreeBarrier(std::size_t n, std::size_t arity)
    : n_(n), arity_(arity < 2 ? 2 : (arity > 8 ? 8 : arity)), nodes_(n) {}

bool TreeBarrier::wave(std::size_t self,
                       const std::function<bool()>* abort) noexcept {
  Node& me = nodes_[self];
  const bool sense = (me.round & 1) == 0;
  ++me.round;
  // Up-wave: wait for every child subtree to arrive. Children are polled
  // as a set, not sequentially: under the ULT scheduler each blocked wait
  // costs a trip through the worker's whole run queue, so one pass that
  // harvests every already-arrived child before yielding keeps the number
  // of scheduling round-trips at the tree depth, not the child count.
  std::size_t pending = 0;
  std::size_t wait_set[8];  // arity clamped to [2, 8]
  for (std::size_t j = 1; j <= arity_; ++j) {
    const std::size_t child = self * arity_ + j;
    if (child >= n_) break;
    wait_set[pending++] = child;
  }
  Backoff up_backoff;
  while (pending > 0) {
    std::size_t still = 0;
    for (std::size_t i = 0; i < pending; ++i)
      if (nodes_[wait_set[i]].arrived.load(std::memory_order_acquire) !=
          sense)
        wait_set[still++] = wait_set[i];
    pending = still;
    if (pending == 0) break;
    if (abort != nullptr && (*abort)()) return false;
    up_backoff.pause();
  }
  if (self != 0) {
    me.arrived.store(sense, std::memory_order_release);
    // Down-wave: the parent releases us once the root has seen everyone.
    Backoff backoff;
    while (me.released.load(std::memory_order_acquire) != sense) {
      if (abort != nullptr && (*abort)()) return false;
      backoff.pause();
    }
  }
  for (std::size_t j = 1; j <= arity_; ++j) {
    const std::size_t child = self * arity_ + j;
    if (child >= n_) break;
    nodes_[child].released.store(sense, std::memory_order_release);
  }
  return true;
}

void TreeBarrier::arrive_and_wait(std::size_t self) noexcept {
  wave(self, nullptr);
}

bool TreeBarrier::arrive_and_wait_abortable(
    std::size_t self, const std::function<bool()>& abort) noexcept {
  return wave(self, &abort);
}

void TreeBarrier::reset() noexcept {
  for (Node& node : nodes_) {
    node.arrived.store(false, std::memory_order_relaxed);
    node.released.store(false, std::memory_order_relaxed);
    node.round = 0;
  }
  std::atomic_thread_fence(std::memory_order_release);
}

}  // namespace lcr::rt
