// Bounded lock-free multi-producer multi-consumer queue.
//
// This is the fetch-and-add MPMC ring the paper cites ([26], Morrison &
// Afek-style fast path realized as the classic Vyukov bounded queue): each
// cell carries a sequence number; producers and consumers claim slots with a
// single fetch_add on their ticket counter and then synchronize on the cell
// sequence. LCI uses it for the global incoming-packet queue Q and the packet
// pool free list.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/cpu_relax.hpp"

namespace lcr::rt {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to the next power of two.
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Non-blocking push. Returns false when the queue is full.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop. Returns nullopt when the queue is empty.
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> result(std::move(cell->value));
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return result;
  }

  /// Blocking push with backoff; only used on paths where the caller owns
  /// flow control (e.g. returning a packet to the pool, which cannot be full).
  void push(T value) {
    Backoff backoff;
    while (!try_push(std::move(value))) backoff.pause();
  }

  /// Approximate size; only meaningful when producers/consumers are quiescent.
  std::size_t approx_size() const noexcept {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return h >= t ? h - t : 0;
  }

  bool approx_empty() const noexcept { return approx_size() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
};

}  // namespace lcr::rt
