// Persistent compute-thread team with fork/join parallel_for.
//
// Each simulated host owns one ThreadTeam for its compute threads (the
// "compute threads" of paper Fig. 2). The team is created once and reused
// every round; work is distributed in blocked or dynamic (chunk-stealing via
// a shared atomic counter) fashion.
//
// Under the ULT host scheduler the workers are sibling fibers instead of OS
// threads (rt::AuxThread picks at construction); the sense barriers they
// block on funnel through rt::Backoff and therefore yield to the fiber
// scheduler rather than burning the worker (DESIGN.md §16).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/aux_thread.hpp"
#include "runtime/barrier.hpp"

namespace lcr::rt {

class ThreadTeam {
 public:
  /// Creates a team of `num_threads` workers (>= 1). Thread 0 is the calling
  /// thread; only num_threads-1 OS threads are spawned.
  explicit ThreadTeam(std::size_t num_threads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  std::size_t size() const noexcept { return num_threads_; }

  /// Runs fn(thread_id) on every team member, including the caller as thread
  /// 0, and joins. Must be called from the thread that constructed the team.
  void run(const std::function<void(std::size_t)>& fn);

  /// Parallel loop over [begin, end) with dynamic chunking. `body` receives
  /// (index). Grain is the chunk size claimed per fetch_add.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 256);

  /// Parallel loop handing each worker whole chunks: body(chunk_begin,
  /// chunk_end, thread_id). Cheaper than per-index dispatch for tight loops.
  void parallel_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
      std::size_t grain = 1024);

 private:
  void worker_loop(std::size_t tid);

  std::size_t num_threads_;
  std::vector<AuxThread> threads_;
  SenseBarrier start_barrier_;
  SenseBarrier end_barrier_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<bool> shutdown_{false};
};

}  // namespace lcr::rt
