// Cooperative user-level-thread (fiber) scheduler for simulated hosts.
//
// Scale-out past ~16 simulated hosts is impossible when every host is an OS
// thread group: 256 hosts x (host-main + comm + compute) threads oversubscribe
// the box by two orders of magnitude and the kernel scheduler thrashes. This
// scheduler multiplexes those "threads" as cooperative fibers over a small
// fixed worker pool (min(hardware threads, hosts)), the fult model the ROADMAP
// calls for and the modern LCI runtime is built around.
//
// Model:
//   * A Scheduler owns a set of workers. run() turns the calling thread into
//     worker 0 and returns when every spawned fiber has finished; additional
//     workers are OS threads that live for the duration of run().
//   * Fibers are spawned with ult::spawn() (from a fiber) or
//     Scheduler::spawn() (from the owning thread before/around run()). Each
//     fiber owns an mmap'd stack with a guard page below it.
//   * Scheduling is cooperative: fibers run until they call ult::yield(),
//     ult::park(), or return. There is no preemption, which is exactly why
//     every blocking spin loop in the repo must funnel through rt::Backoff /
//     rt::thread_yield() (which yield the fiber) instead of burning
//     cpu_relax — see DESIGN.md §16.
//   * park()/notify() is the blocking primitive: park() suspends the current
//     fiber until some other fiber or OS thread calls notify() on it. A
//     notify that races ahead of the park is remembered (the park returns
//     immediately), like a binary semaphore.
//   * Fiber-local storage (fls_*) re-keys state that used to be thread_local
//     (telemetry trace rings, serializer scratch, LCI lane bindings) by
//     simulated-host identity instead of OS-thread identity.
//
// Locking rule (DESIGN.md §16): never yield or park while holding a lock.
// Critical sections in this repo are short and yield-free; a fiber that
// suspended while holding a lock could deadlock every fiber multiplexed onto
// the same worker.
//
// The context switch is a hand-rolled x86-64 System V switch (callee-saved
// GPRs + mxcsr/x87 control word + rsp). ASan fiber annotations
// (__sanitizer_start_switch_fiber) and the TSan fiber API
// (__tsan_switch_to_fiber) keep both sanitizers accurate across switches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace lcr::ult {

struct Task;           // opaque outside ult.cpp
struct SchedulerImpl;  // opaque outside ult.cpp
class Scheduler;

/// Aggregate scheduler statistics. Exported as sched.* telemetry by the
/// cluster's ULT run path (CI gates on their presence).
struct SchedStats {
  std::uint64_t spawns = 0;       ///< fibers created
  std::uint64_t switches = 0;     ///< context switches into a fiber
  std::uint64_t yields = 0;       ///< yields that actually switched out
  std::uint64_t yields_fast = 0;  ///< yields with nothing else runnable
  std::uint64_t steals = 0;       ///< tasks taken from another worker
  std::uint64_t parks = 0;        ///< fibers suspended in park()
  std::uint64_t notifies = 0;     ///< notify() calls
};

/// True when the calling code is running on a ULT fiber.
bool on_fiber() noexcept;

/// The currently running fiber (nullptr off-fiber).
Task* current() noexcept;

/// Simulated-host id attached to the current fiber (child fibers inherit it
/// from their spawner), or -1 off-fiber / untagged. Used to re-key state that
/// must attribute to the simulated host rather than the OS worker.
int current_host() noexcept;

/// Cooperatively yield the current fiber. Off-fiber this is a no-op (callers
/// that want an OS yield off-fiber use rt::thread_yield(), which already
/// falls back to std::this_thread::yield()).
void yield() noexcept;

/// yield() if on a fiber; returns false off-fiber so the caller can fall
/// back to an OS-level yield. This is the hook rt::thread_yield() uses to
/// make every Backoff-based spin loop in the repo scheduler-aware.
bool maybe_yield() noexcept;

/// Suspend the current fiber until notify(). A notify that already happened
/// is consumed and park() returns immediately. Must be called on a fiber.
void park() noexcept;

/// Make a parked fiber runnable. Safe from any fiber or OS thread. A notify
/// delivered while `t` is running is remembered for its next park().
void notify(Task* t) noexcept;

/// Spawn a fiber on the current fiber's scheduler, inheriting the spawner's
/// host tag. Must be called on a fiber. The returned Task* stays valid until
/// the scheduler is destroyed (tasks are arena-kept; stacks are released as
/// soon as the fiber finishes).
Task* spawn(std::function<void()> fn);

/// True once `t` has finished running.
bool done(const Task* t) noexcept;

/// Wait for `t` to finish: yields while on a fiber, OS-yields otherwise.
void join(Task* t) noexcept;

// --- Fiber-local storage -------------------------------------------------
// Fixed small slot table. Slots are process-global; values are per-fiber.
// The destructor (if any) runs on the worker when the fiber finishes.

using FlsDestructor = void (*)(void*);

inline constexpr int kMaxFlsSlots = 8;

/// Allocate a process-global fls slot. Aborts if the table is exhausted.
int fls_alloc(FlsDestructor dtor) noexcept;

/// Current fiber's value for `slot` (nullptr off-fiber or when unset).
void* fls_get(int slot) noexcept;

/// Set the current fiber's value for `slot`. No-op off-fiber.
void fls_set(int slot, void* value) noexcept;

// --- Scheduler -----------------------------------------------------------

struct SchedulerConfig {
  /// Worker (OS thread) count; 0 = min(hardware_concurrency, workers_hint).
  std::size_t workers = 0;
  /// Hint for the 0-default above, typically the host count. 0 = unbounded.
  std::size_t workers_hint = 0;
  /// Usable fiber stack bytes; 0 = default (LCR_ULT_STACK env override;
  /// larger default under ASan/TSan, whose instrumented frames are fatter).
  std::size_t stack_bytes = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig cfg = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Spawn a fiber tagged with simulated-host `host`. Callable from the
  /// owning thread (before or between run() calls) or from a fiber of this
  /// scheduler. Thread-safe.
  Task* spawn(std::function<void()> fn, int host = -1);

  /// The calling thread becomes worker 0 and runs fibers until every spawned
  /// fiber (including ones spawned while running) has finished. Spawns
  /// workers-1 helper OS threads for the duration of the call.
  void run();

  std::size_t workers() const noexcept;

  /// Statistics summed across workers. Exact after run() returns.
  SchedStats stats() const noexcept;

 private:
  std::unique_ptr<SchedulerImpl> impl_;
};

}  // namespace lcr::ult
