// Sense-reversing centralized barrier for a fixed set of threads.
#pragma once

#include <atomic>
#include <cstddef>

#include "runtime/cpu_relax.hpp"

namespace lcr::rt {

/// Classic sense-reversing barrier. Reusable across phases. All `n`
/// participants must call arrive_and_wait(); the last one flips the sense.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t n) : n_(n), remaining_(n) {}

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(n_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      Backoff backoff;
      while (sense_.load(std::memory_order_acquire) != my_sense)
        backoff.pause();
    }
  }

  /// Arrive and wait, bailing out when `abort()` returns true. Returns true
  /// on a normal release, false on abort. An abort tears the barrier (this
  /// thread's arrival is already counted): once every participant has
  /// rendezvoused elsewhere, call reset() before reusing it.
  template <typename AbortFn>
  bool arrive_and_wait_abortable(AbortFn&& abort) noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(n_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return true;
    }
    Backoff backoff;
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (abort()) return false;
      backoff.pause();
    }
    return true;
  }

  /// Restore a torn barrier to its initial arrival count. Only safe while
  /// every participant is quiescent (e.g. inside a recovery rendezvous).
  void reset() noexcept {
    remaining_.store(n_, std::memory_order_relaxed);
  }

  std::size_t participants() const noexcept { return n_; }

 private:
  const std::size_t n_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace lcr::rt
