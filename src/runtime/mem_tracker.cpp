#include "runtime/mem_tracker.hpp"

namespace lcr::rt {

void MemTracker::on_alloc(std::size_t bytes) noexcept {
  const std::uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  total_.fetch_add(bytes, std::memory_order_relaxed);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free peak update.
  std::uint64_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemTracker::on_free(std::size_t bytes) noexcept {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemTracker::reset() noexcept {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  allocs_.store(0, std::memory_order_relaxed);
}

}  // namespace lcr::rt
