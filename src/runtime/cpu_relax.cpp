#include "runtime/cpu_relax.hpp"

#include <chrono>
#include <thread>

#include "runtime/ult.hpp"

namespace lcr::rt {

void thread_yield() noexcept {
  // On a ULT fiber, yielding the OS thread would stall every fiber
  // multiplexed onto this worker — hand the core to a sibling fiber instead.
  // This single hook makes every Backoff-funneled spin loop in the repo
  // (barriers, spinlocks, queue pushes, progress pumps, engine drain waits)
  // scheduler-aware (DESIGN.md §16).
  if (ult::maybe_yield()) return;
  std::this_thread::yield();
}

void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) cpu_pause();
}

}  // namespace lcr::rt
