#include "runtime/cpu_relax.hpp"

#include <chrono>
#include <thread>

namespace lcr::rt {

void thread_yield() noexcept { std::this_thread::yield(); }

void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) cpu_pause();
}

}  // namespace lcr::rt
