// LEB128 varints for u32 values.
//
// Hoisted below both the comm and graph layers: the adaptive wire formats
// (comm/serializer.hpp, DESIGN.md §11) and the compressed lid maps
// (graph/lid_map.hpp, DESIGN.md §17) share this one codec, so a gid delta
// on disk-of-RAM and a position delta on the wire are encoded identically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lcr::rt {

/// LEB128 append; returns bytes written (<= 5 for u32).
inline std::size_t put_varint(std::byte* dst, std::uint32_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<std::byte>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  dst[n++] = static_cast<std::byte>(v);
  return n;
}

/// LEB128 read with strict truncation/overflow checks.
inline bool get_varint(const std::byte* data, std::size_t size,
                       std::size_t& off, std::uint32_t& out) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (off >= size) return false;  // truncated mid-varint
    const auto b = static_cast<std::uint8_t>(data[off++]);
    if (i == 4 && (b & ~0x0FU) != 0) return false;  // > 32 bits
    value |= static_cast<std::uint32_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) {
      out = value;
      return true;
    }
  }
  return false;  // continuation bit never cleared
}

}  // namespace lcr::rt
