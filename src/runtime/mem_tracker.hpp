// Communication-buffer memory accounting.
//
// The paper (Fig. 5) instruments Abelian to "count the size of allocation and
// deallocation of the buffers"; the memory footprint of a host is the maximum
// working-set size during execution. MemTracker reproduces exactly that:
// every communication-layer buffer allocation/free is reported here, and the
// peak is what the Fig-5 bench prints.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lcr::rt {

class MemTracker {
 public:
  /// Record an allocation of `bytes` for communication buffers.
  void on_alloc(std::size_t bytes) noexcept;

  /// Record a deallocation of `bytes`.
  void on_free(std::size_t bytes) noexcept;

  /// Current working-set size in bytes.
  std::uint64_t current() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  /// Peak working-set size in bytes (the paper's "memory footprint").
  std::uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Total bytes ever allocated (allocation churn; shows LCI's recycling).
  std::uint64_t total_allocated() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  std::uint64_t alloc_count() const noexcept {
    return allocs_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> allocs_{0};
};

/// RAII helper tying a buffer's lifetime to a tracker.
class TrackedAlloc {
 public:
  TrackedAlloc(MemTracker& tracker, std::size_t bytes)
      : tracker_(&tracker), bytes_(bytes) {
    tracker_->on_alloc(bytes_);
  }
  ~TrackedAlloc() { release(); }
  TrackedAlloc(const TrackedAlloc&) = delete;
  TrackedAlloc& operator=(const TrackedAlloc&) = delete;
  TrackedAlloc(TrackedAlloc&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
  }

  void release() noexcept {
    if (tracker_ != nullptr) {
      tracker_->on_free(bytes_);
      tracker_ = nullptr;
    }
  }

 private:
  MemTracker* tracker_;
  std::size_t bytes_;
};

}  // namespace lcr::rt
