// Deterministic, seedable random number generation (splitmix64 + xoshiro256**)
// used by graph generators and tests. Determinism matters: every experiment
// in EXPERIMENTS.md must be re-runnable bit-for-bit.
#pragma once

#include <cstdint>

namespace lcr::rt {

/// splitmix64: used for seeding and cheap hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot stateless hash of a 64-bit value.
inline std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is negligible for graph generation (bound << 2^64).
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// The repo's canonical deterministic RNG (seed -> replayable run).
using Rng = Xoshiro256;

}  // namespace lcr::rt
