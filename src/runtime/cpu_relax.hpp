// Low-level CPU pause / calibrated busy-wait helpers.
//
// All spin loops in the repository funnel through these helpers so that on an
// oversubscribed machine (the simulated cluster runs every "host" as a thread
// on one box) a spinning thread eventually yields the core instead of starving
// the thread it is waiting on.
#pragma once

#include <cstdint>

namespace lcr::rt {

/// Hint to the CPU that we are in a spin-wait loop (PAUSE on x86).
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Yield the OS thread. Used by spin loops after a bounded number of pauses.
void thread_yield() noexcept;

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Used by the mpilite "personality" layer to model per-operation software
/// costs of different MPI implementations (matching-queue element traversal,
/// probe overhead, lock acquisition). Spinning - rather than sleeping - is
/// deliberate: real MPI overhead burns CPU in exactly this way.
void spin_for_ns(std::uint64_t ns) noexcept;

/// Adaptive backoff for spin loops: pause a few times, then yield.
class Backoff {
 public:
  void pause() noexcept {
    if (count_ < kPauseLimit) {
      for (int i = 0; i < (1 << count_); ++i) cpu_pause();
      ++count_;
    } else {
      thread_yield();
    }
  }
  void reset() noexcept { count_ = 0; }

 private:
  static constexpr int kPauseLimit = 6;
  int count_ = 0;
};

}  // namespace lcr::rt
