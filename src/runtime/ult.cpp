#include "runtime/ult.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <thread>

#include "runtime/cpu_relax.hpp"
#include "runtime/spinlock.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define LCR_ULT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LCR_ULT_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define LCR_ULT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LCR_ULT_TSAN 1
#endif
#endif

#if defined(LCR_ULT_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(LCR_ULT_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

#if !defined(__x86_64__)
#error "lcr::ult implements the context switch for x86-64 System V only"
#endif

namespace lcr::ult {
namespace {

// ---------------------------------------------------------------------------
// Context switch: save callee-saved GPRs + mxcsr/x87 control word + rsp on
// the current stack, swap rsp, restore on the new stack. The System V ABI
// makes everything else caller-saved, and the compiler treats the extern
// call as a full clobber of those.
// ---------------------------------------------------------------------------

extern "C" void lcr_ult_ctx_swap(void** save_rsp, void* const* load_rsp);
extern "C" void lcr_ult_trampoline();

}  // namespace
}  // namespace lcr::ult

asm(R"(
.text
.align 16
.globl lcr_ult_ctx_swap
.hidden lcr_ult_ctx_swap
.type lcr_ult_ctx_swap, @function
lcr_ult_ctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq (%rsi), %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
.size lcr_ult_ctx_swap, .-lcr_ult_ctx_swap

.align 16
.globl lcr_ult_trampoline
.hidden lcr_ult_trampoline
.type lcr_ult_trampoline, @function
lcr_ult_trampoline:
  movq %r12, %rdi
  xorl %ebp, %ebp
  andq $-16, %rsp
  callq lcr_ult_task_entry
  ud2
.size lcr_ult_trampoline, .-lcr_ult_trampoline
)");

namespace lcr::ult {

namespace {

enum TaskState : int { kRunnable = 0, kRunning = 1, kParked = 2, kDone = 3 };

enum class Pending { kNone, kYield, kPark, kExit };

constexpr std::size_t kPageBytes = 4096;

std::size_t default_stack_bytes() {
  if (const char* env = std::getenv("LCR_ULT_STACK")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v >= 16 * 1024) return static_cast<std::size_t>(v);
  }
#if defined(LCR_ULT_ASAN) || defined(LCR_ULT_TSAN)
  // Instrumented frames are several times fatter (redzones, shadow spill).
  return 1024 * 1024;
#else
  return 256 * 1024;
#endif
}

std::atomic<int> g_fls_slots{0};
FlsDestructor g_fls_dtors[kMaxFlsSlots] = {};

}  // namespace

struct Task {
  void* ctx_rsp = nullptr;
  void* map_base = nullptr;       // mmap base (guard page lives here)
  std::size_t map_bytes = 0;
  void* stack_lo = nullptr;       // lowest usable stack byte (above guard)
  std::size_t stack_bytes = 0;
  SchedulerImpl* sched = nullptr;
  std::function<void()> fn;
  std::atomic<int> state{kRunnable};
  std::atomic<bool> notified{false};
  int host = -1;
  void* fls[kMaxFlsSlots] = {};
#if defined(LCR_ULT_ASAN)
  void* asan_save = nullptr;
#endif
#if defined(LCR_ULT_TSAN)
  void* tsan_fiber = nullptr;
#endif
};

namespace {

struct alignas(64) Worker {
  SchedulerImpl* sched = nullptr;
  std::size_t index = 0;
  void* ctx_rsp = nullptr;  // scheduler-side context while a fiber runs
  rt::Spinlock lock;
  std::deque<Task*> queue;
  std::atomic<std::size_t> qsize{0};
  Pending pending = Pending::kNone;
  SchedStats stats;
#if defined(LCR_ULT_ASAN)
  void* asan_save = nullptr;
  const void* stack_lo = nullptr;  // this worker's OS stack, for annotations
  std::size_t stack_bytes = 0;
#endif
#if defined(LCR_ULT_TSAN)
  void* tsan_fiber = nullptr;
#endif
};

thread_local Worker* tl_worker = nullptr;
thread_local Task* tl_task = nullptr;

}  // namespace

struct SchedulerImpl {
  explicit SchedulerImpl(SchedulerConfig cfg) : config(cfg) {
    std::size_t n = cfg.workers;
    if (n == 0) {
      n = std::thread::hardware_concurrency();
      if (n == 0) n = 1;
      if (cfg.workers_hint > 0 && cfg.workers_hint < n) n = cfg.workers_hint;
    }
    stack_bytes = cfg.stack_bytes ? cfg.stack_bytes : default_stack_bytes();
    stack_bytes = (stack_bytes + kPageBytes - 1) & ~(kPageBytes - 1);
    workers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto w = std::make_unique<Worker>();
      w->sched = this;
      w->index = i;
      workers.push_back(std::move(w));
    }
  }

  ~SchedulerImpl() {
    for (auto* t : arena) {
      destroy_stack(t);
      delete t;
    }
  }

  SchedulerConfig config;
  std::size_t stack_bytes = 0;
  std::vector<std::unique_ptr<Worker>> workers;
  rt::Spinlock inject_lock;
  std::deque<Task*> inject;
  std::atomic<std::size_t> inject_size{0};
  rt::Spinlock arena_lock;
  std::vector<Task*> arena;  // tasks stay valid until scheduler destruction
  std::atomic<std::size_t> live{0};
  std::atomic<bool> shutdown{false};
  std::atomic<std::uint64_t> external_spawns{0};
  std::atomic<std::uint64_t> external_notifies{0};

  Task* spawn(std::function<void()> fn, int host);
  void run();
  void worker_loop(Worker& w, bool primary);
  Task* next_task(Worker& w);
  void enqueue(Task* t);
  void run_task(Worker& w, Task* t);
  void cleanup(Task* t);
  void attach(Worker& w);
  void detach(Worker& w);
  void make_stack(Task* t);
  void destroy_stack(Task* t);
  SchedStats stats_sum() const;
};

namespace {

/// Fiber-side suspension: record why on the current worker and switch to its
/// scheduler context. The worker finishes the state transition once the
/// fiber's stack is no longer in use (deferred park/yield: a notify() racing
/// with park() can never resume a fiber that is still running).
void suspend(Pending why) {
  Task* t = tl_task;
  Worker* w = tl_worker;
  w->pending = why;
#if defined(LCR_ULT_ASAN)
  __sanitizer_start_switch_fiber(
      why == Pending::kExit ? nullptr : &t->asan_save, w->stack_lo,
      w->stack_bytes);
#endif
#if defined(LCR_ULT_TSAN)
  __tsan_switch_to_fiber(w->tsan_fiber, 0);
#endif
  lcr_ult_ctx_swap(&t->ctx_rsp, &w->ctx_rsp);
  // Resumed, possibly on a different worker (tl_worker is re-read by the
  // next suspension; never cache it across a switch).
#if defined(LCR_ULT_ASAN)
  __sanitizer_finish_switch_fiber(t->asan_save, nullptr, nullptr);
#endif
}

}  // namespace

extern "C" void lcr_ult_task_entry(Task* t) noexcept {
#if defined(LCR_ULT_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  try {
    t->fn();
  } catch (...) {
    // Same contract as std::thread: an exception escaping the body is fatal.
    std::fprintf(stderr, "lcr::ult: uncaught exception escaped a fiber\n");
    std::terminate();
  }
  t->fn = nullptr;  // run capture destructors on the fiber's own stack
  suspend(Pending::kExit);
  __builtin_unreachable();
}

void SchedulerImpl::make_stack(Task* t) {
  const std::size_t map_bytes = stack_bytes + kPageBytes;
  void* base = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (base == MAP_FAILED) {
    std::perror("lcr::ult: mmap fiber stack");
    std::abort();
  }
  ::mprotect(base, kPageBytes, PROT_NONE);  // guard page below the stack
  t->map_base = base;
  t->map_bytes = map_bytes;
  t->stack_lo = static_cast<char*>(base) + kPageBytes;
  t->stack_bytes = stack_bytes;

  // Initial frame, consumed by lcr_ult_ctx_swap's restore path: the switch
  // pops the control-word slot and six callee-saved registers, then returns
  // into the trampoline with the Task* staged in r12.
  auto* top = reinterpret_cast<std::uint64_t*>(
      static_cast<char*>(t->stack_lo) + t->stack_bytes);
  std::uint64_t* sp = top;
  *--sp = 0;  // padding: keeps the trampoline's post-ret rsp 16-aligned
  *--sp = reinterpret_cast<std::uint64_t>(&lcr_ult_trampoline);
  *--sp = 0;                                 // rbp
  *--sp = 0;                                 // rbx
  *--sp = reinterpret_cast<std::uint64_t>(t);  // r12 -> trampoline's rdi
  *--sp = 0;                                 // r13
  *--sp = 0;                                 // r14
  *--sp = 0;                                 // r15
  *--sp = 0x1F80ull | (0x037Full << 32);     // default mxcsr | x87 cw
  t->ctx_rsp = sp;
}

void SchedulerImpl::destroy_stack(Task* t) {
  if (t->map_base != nullptr) {
    ::munmap(t->map_base, t->map_bytes);
    t->map_base = nullptr;
  }
}

Task* SchedulerImpl::spawn(std::function<void()> fn, int host) {
  Task* t = new Task();
  t->sched = this;
  t->host = host;
  t->fn = std::move(fn);
  make_stack(t);
#if defined(LCR_ULT_TSAN)
  t->tsan_fiber = __tsan_create_fiber(0);
#endif
  {
    std::lock_guard<rt::Spinlock> guard(arena_lock);
    arena.push_back(t);
  }
  live.fetch_add(1, std::memory_order_acq_rel);
  Worker* w = tl_worker;
  if (w != nullptr && w->sched == this) {
    ++w->stats.spawns;
    std::lock_guard<rt::Spinlock> guard(w->lock);
    w->queue.push_back(t);
    w->qsize.fetch_add(1, std::memory_order_release);
  } else {
    external_spawns.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<rt::Spinlock> guard(inject_lock);
    inject.push_back(t);
    inject_size.fetch_add(1, std::memory_order_release);
  }
  return t;
}

void SchedulerImpl::enqueue(Task* t) {
  Worker* w = tl_worker;
  if (w != nullptr && w->sched == this) {
    std::lock_guard<rt::Spinlock> guard(w->lock);
    w->queue.push_back(t);
    w->qsize.fetch_add(1, std::memory_order_release);
  } else {
    std::lock_guard<rt::Spinlock> guard(inject_lock);
    inject.push_back(t);
    inject_size.fetch_add(1, std::memory_order_release);
  }
}

Task* SchedulerImpl::next_task(Worker& w) {
  // Fold externally injected tasks into the local FIFO first: a fiber that
  // yield-spins (re-enqueueing itself locally) must not starve tasks that
  // arrived from off-worker spawn()/notify() calls.
  if (inject_size.load(std::memory_order_acquire) > 0) {
    std::lock_guard<rt::Spinlock> iguard(inject_lock);
    if (!inject.empty()) {
      std::lock_guard<rt::Spinlock> wguard(w.lock);
      while (!inject.empty()) {
        w.queue.push_back(inject.front());
        inject.pop_front();
        inject_size.fetch_sub(1, std::memory_order_release);
        w.qsize.fetch_add(1, std::memory_order_release);
      }
    }
  }
  if (w.qsize.load(std::memory_order_acquire) > 0) {
    std::lock_guard<rt::Spinlock> guard(w.lock);
    if (!w.queue.empty()) {
      Task* t = w.queue.front();
      w.queue.pop_front();
      w.qsize.fetch_sub(1, std::memory_order_release);
      return t;
    }
  }
  if (workers.size() > 1) {
    for (std::size_t i = 1; i < workers.size(); ++i) {
      Worker& victim = *workers[(w.index + i) % workers.size()];
      if (victim.qsize.load(std::memory_order_acquire) == 0) continue;
      std::lock_guard<rt::Spinlock> guard(victim.lock);
      if (!victim.queue.empty()) {
        Task* t = victim.queue.back();
        victim.queue.pop_back();
        victim.qsize.fetch_sub(1, std::memory_order_release);
        ++w.stats.steals;
        return t;
      }
    }
  }
  return nullptr;
}

void SchedulerImpl::run_task(Worker& w, Task* t) {
  t->state.store(kRunning, std::memory_order_relaxed);
  tl_task = t;
  w.pending = Pending::kNone;
  ++w.stats.switches;
#if defined(LCR_ULT_ASAN)
  __sanitizer_start_switch_fiber(&w.asan_save, t->stack_lo, t->stack_bytes);
#endif
#if defined(LCR_ULT_TSAN)
  __tsan_switch_to_fiber(t->tsan_fiber, 0);
#endif
  lcr_ult_ctx_swap(&w.ctx_rsp, &t->ctx_rsp);
#if defined(LCR_ULT_ASAN)
  __sanitizer_finish_switch_fiber(w.asan_save, nullptr, nullptr);
#endif
  tl_task = nullptr;
  switch (w.pending) {
    case Pending::kYield:
      ++w.stats.yields;
      t->state.store(kRunnable, std::memory_order_release);
      enqueue(t);
      break;
    case Pending::kPark: {
      ++w.stats.parks;
      t->state.store(kParked, std::memory_order_release);
      // Close the race with a notify() that fired while the fiber was still
      // switching out: whoever wins the Parked->Runnable CAS enqueues.
      if (t->notified.exchange(false, std::memory_order_acq_rel)) {
        int expected = kParked;
        if (t->state.compare_exchange_strong(expected, kRunnable,
                                             std::memory_order_acq_rel))
          enqueue(t);
      }
      break;
    }
    case Pending::kExit:
      cleanup(t);
      break;
    case Pending::kNone:
      std::fprintf(stderr, "lcr::ult: fiber returned without suspending\n");
      std::abort();
  }
  w.pending = Pending::kNone;
}

void SchedulerImpl::cleanup(Task* t) {
  for (int i = 0; i < kMaxFlsSlots; ++i) {
    if (t->fls[i] != nullptr && g_fls_dtors[i] != nullptr) {
      g_fls_dtors[i](t->fls[i]);
      t->fls[i] = nullptr;
    }
  }
#if defined(LCR_ULT_TSAN)
  __tsan_destroy_fiber(t->tsan_fiber);
  t->tsan_fiber = nullptr;
#endif
  destroy_stack(t);
  t->state.store(kDone, std::memory_order_release);
  live.fetch_sub(1, std::memory_order_acq_rel);
}

void SchedulerImpl::attach(Worker& w) {
  tl_worker = &w;
#if defined(LCR_ULT_TSAN)
  w.tsan_fiber = __tsan_get_current_fiber();
#endif
#if defined(LCR_ULT_ASAN)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    pthread_attr_getstack(&attr, &addr, &size);
    w.stack_lo = addr;
    w.stack_bytes = size;
    pthread_attr_destroy(&attr);
  }
#endif
}

void SchedulerImpl::detach(Worker&) { tl_worker = nullptr; }

void SchedulerImpl::worker_loop(Worker& w, bool primary) {
  rt::Backoff idle;
  for (;;) {
    if (primary) {
      if (live.load(std::memory_order_acquire) == 0) return;
    } else {
      if (shutdown.load(std::memory_order_acquire)) return;
    }
    Task* t = next_task(w);
    if (t == nullptr) {
      idle.pause();  // off-fiber: Backoff falls through to an OS yield
      continue;
    }
    idle.reset();
    run_task(w, t);
  }
}

void SchedulerImpl::run() {
  Worker& w0 = *workers[0];
  attach(w0);
  std::vector<std::thread> helpers;
  helpers.reserve(workers.size() - 1);
  for (std::size_t i = 1; i < workers.size(); ++i) {
    Worker& w = *workers[i];
    helpers.emplace_back([this, &w] {
      attach(w);
      worker_loop(w, /*primary=*/false);
      detach(w);
    });
  }
  worker_loop(w0, /*primary=*/true);
  shutdown.store(true, std::memory_order_release);
  for (auto& th : helpers) th.join();
  shutdown.store(false, std::memory_order_relaxed);
  detach(w0);
}

SchedStats SchedulerImpl::stats_sum() const {
  SchedStats s;
  for (const auto& w : workers) {
    s.spawns += w->stats.spawns;
    s.switches += w->stats.switches;
    s.yields += w->stats.yields;
    s.yields_fast += w->stats.yields_fast;
    s.steals += w->stats.steals;
    s.parks += w->stats.parks;
    s.notifies += w->stats.notifies;
  }
  s.spawns += external_spawns.load(std::memory_order_relaxed);
  s.notifies += external_notifies.load(std::memory_order_relaxed);
  return s;
}

// --- public Scheduler ------------------------------------------------------

Scheduler::Scheduler(SchedulerConfig cfg)
    : impl_(std::make_unique<SchedulerImpl>(cfg)) {}

Scheduler::~Scheduler() = default;

Task* Scheduler::spawn(std::function<void()> fn, int host) {
  return impl_->spawn(std::move(fn), host);
}

void Scheduler::run() { impl_->run(); }

std::size_t Scheduler::workers() const noexcept {
  return impl_->workers.size();
}

SchedStats Scheduler::stats() const noexcept { return impl_->stats_sum(); }

// --- free functions --------------------------------------------------------

bool on_fiber() noexcept { return tl_task != nullptr; }

Task* current() noexcept { return tl_task; }

int current_host() noexcept {
  return tl_task != nullptr ? tl_task->host : -1;
}

void yield() noexcept {
  Task* t = tl_task;
  if (t == nullptr) return;
  Worker* w = tl_worker;
  // Fast path: nothing else visible to run anywhere — treat the yield as a
  // pause instead of paying two context switches to come straight back.
  SchedulerImpl* s = t->sched;
  bool anything = w->qsize.load(std::memory_order_acquire) > 0 ||
                  s->inject_size.load(std::memory_order_acquire) > 0;
  if (!anything && s->workers.size() > 1) {
    for (const auto& other : s->workers) {
      if (other->qsize.load(std::memory_order_acquire) > 0) {
        anything = true;
        break;
      }
    }
  }
  if (!anything) {
    ++w->stats.yields_fast;
    return;
  }
  suspend(Pending::kYield);
}

bool maybe_yield() noexcept {
  if (tl_task == nullptr) return false;
  yield();
  return true;
}

void park() noexcept {
  Task* t = tl_task;
  if (t == nullptr) {
    std::fprintf(stderr, "lcr::ult: park() called off-fiber\n");
    std::abort();
  }
  if (t->notified.exchange(false, std::memory_order_acq_rel)) return;
  suspend(Pending::kPark);
}

void notify(Task* t) noexcept {
  Worker* w = tl_worker;
  if (w != nullptr && w->sched == t->sched)
    ++w->stats.notifies;
  else
    t->sched->external_notifies.fetch_add(1, std::memory_order_relaxed);
  t->notified.store(true, std::memory_order_release);
  int expected = kParked;
  if (t->state.compare_exchange_strong(expected, kRunnable,
                                       std::memory_order_acq_rel)) {
    t->notified.store(false, std::memory_order_relaxed);
    t->sched->enqueue(t);
  }
}

Task* spawn(std::function<void()> fn) {
  Task* t = tl_task;
  if (t == nullptr) {
    std::fprintf(stderr, "lcr::ult: spawn() called off-fiber\n");
    std::abort();
  }
  return t->sched->spawn(std::move(fn), t->host);
}

bool done(const Task* t) noexcept {
  return t->state.load(std::memory_order_acquire) == kDone;
}

void join(Task* t) noexcept {
  rt::Backoff backoff;
  while (!done(t)) backoff.pause();
}

// --- fiber-local storage ---------------------------------------------------

int fls_alloc(FlsDestructor dtor) noexcept {
  const int slot = g_fls_slots.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxFlsSlots) {
    std::fprintf(stderr, "lcr::ult: fls slot table exhausted\n");
    std::abort();
  }
  g_fls_dtors[slot] = dtor;
  return slot;
}

void* fls_get(int slot) noexcept {
  Task* t = tl_task;
  return t != nullptr ? t->fls[slot] : nullptr;
}

void fls_set(int slot, void* value) noexcept {
  Task* t = tl_task;
  if (t != nullptr) t->fls[slot] = value;
}

}  // namespace lcr::ult
