// Test-and-test-and-set spinlock with adaptive backoff.
#pragma once

#include <atomic>

#include "runtime/cpu_relax.hpp"

namespace lcr::rt {

/// A small, fair-enough TTAS spinlock. Satisfies Lockable so it can be used
/// with std::lock_guard / std::unique_lock.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace lcr::rt
