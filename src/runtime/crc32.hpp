// CRC-32 (ISO-HDLC polynomial 0xEDB88320), table-driven, slicing-by-8.
//
// Used by the fabric reliability layer to detect payload corruption on a
// lossy transport (fabric/reliable.hpp). Table-based rather than hardware
// CRC32C so the checksum is identical on every platform the simulation runs
// on. Slicing-by-8 processes eight bytes per step (8 KiB of tables), which
// keeps the per-packet checksum cost small enough for the protocol fast
// path; the result is bit-identical to the classic byte-at-a-time loop.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace lcr::rt {

namespace detail {
struct Crc32Table {
  std::uint32_t entries[8][256];
  constexpr Crc32Table() : entries() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      entries[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = entries[0][i];
      for (int t = 1; t < 8; ++t) {
        c = entries[0][c & 0xFFU] ^ (c >> 8);
        entries[t][i] = c;
      }
    }
  }
};
inline constexpr Crc32Table kCrc32Table{};
}  // namespace detail

/// Incremental update: feed `n` bytes at `data` into a running CRC state.
/// Start from crc32_init(), finish with crc32_final().
inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t n) noexcept {
  const auto& t = detail::kCrc32Table.entries;
  const auto* p = static_cast<const unsigned char*>(data);
  // The sliced loop reads words little-endian; fall back to bytewise on
  // big-endian hosts so the checksum stays identical everywhere.
  while (std::endian::native == std::endian::little && n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xFFU] ^ t[6][(lo >> 8) & 0xFFU] ^
            t[5][(lo >> 16) & 0xFFU] ^ t[4][lo >> 24] ^
            t[3][hi & 0xFFU] ^ t[2][(hi >> 8) & 0xFFU] ^
            t[1][(hi >> 16) & 0xFFU] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0)
    state = t[0][(state ^ *p++) & 0xFFU] ^ (state >> 8);
  return state;
}

inline constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFU; }
inline constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFU;
}

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace lcr::rt
