// Figure 5: memory usage of communication buffers - maximum and minimum
// across hosts - Abelian with LCI vs MPI-RMA.
//
// Paper shape: "The memory footprint of LCI is much smaller for all
// applications on all hosts than MPI-RMA ... up to an order of magnitude
// higher [for RMA] because MPI-RMA has to preallocate all buffers with a
// size that is the upper-bound"; RMA's max and min are close to each other
// (static preallocation), LCI's vary with actual traffic (recycling).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

int main() {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(6);

  std::printf("=== Figure 5: comm-buffer memory footprint, LCI vs MPI-RMA "
              "===\n");
  std::printf("(peak working set of communication buffers per host; %d "
              "hosts, scale %u)\n\n", hosts, scale);

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::kron(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  bench::Table table({"app", "lci max", "lci min", "rma max", "rma min",
                      "rma/lci (max)"});
  for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    std::uint64_t mem[2][2] = {{0, 0}, {0, 0}};  // [backend][max/min]
    const comm::BackendKind kinds[2] = {comm::BackendKind::Lci,
                                        comm::BackendKind::MpiRma};
    for (int b = 0; b < 2; ++b) {
      bench::RunSpec spec;
      spec.app = app;
      spec.backend = kinds[b];
      spec.hosts = hosts;
      spec.threads = profile.compute_threads;
      spec.source = bench::choose_source(g);
      spec.pagerank_iters = pr_iters;
      spec.fabric = profile.fabric;
      const bench::RunResult r = bench::run_app(g, spec);
      mem[b][0] = *std::max_element(r.peak_mem.begin(), r.peak_mem.end());
      mem[b][1] = *std::min_element(r.peak_mem.begin(), r.peak_mem.end());
    }
    table.add_row({app, bench::fmt_bytes(mem[0][0]), bench::fmt_bytes(mem[0][1]),
                   bench::fmt_bytes(mem[1][0]), bench::fmt_bytes(mem[1][1]),
                   bench::fmt_ratio(static_cast<double>(mem[1][0]) /
                                    std::max<std::uint64_t>(mem[0][0], 1))});
  }
  table.print(std::cout);
  std::printf("\nshape to check: rma max >> lci max (worst-case "
              "preallocation); rma max ~ rma min (static windows).\n");
  return 0;
}
