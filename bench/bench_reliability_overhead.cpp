// Reliability-layer overhead, measured at two depths and three modes:
//   passthrough : reliable fabric, channel disabled - the seed fast path
//   protocol    : force_reliable on a fault-free fabric - every message pays
//                 seq + CRC + ring copy + ack traffic but nothing is lost
//   lossy       : 5% drop + 1% dup + 0.5% corrupt, fixed seed - recovery cost
//
// Depth 1 (raw channel): back-to-back eager sends straight through
// ReliableChannel, no runtime above it. This is the protocol's worst case -
// the passthrough baseline is a bare in-process memcpy, so seq + CRC + ring
// copy show up undiluted.
//
// Depth 2 (end-to-end): the Fig-1 LCI queue message-rate loop (SEND-ENQ /
// RECV-DEQ on the omnipath-knl personality, zero wire latency), which is the
// configuration the <5% overhead target is stated against in EXPERIMENTS.md:
// here the per-message cost includes the queue/packet-pool/progress software
// path the paper measures, and the protocol adds one ring insert + CRC to it.
#include <cstdio>
#include <memory>
#include <vector>

#include "fabric/config.hpp"
#include "fabric/fabric.hpp"
#include "fabric/reliable.hpp"
#include "lci/queue.hpp"
#include "runtime/timer.hpp"

using namespace lcr;

namespace {

constexpr std::size_t kMsgs = 200000;
constexpr std::uint32_t kPayload = 64;
constexpr std::size_t kSlots = 256;

struct Peer {
  Peer(fabric::Fabric& fab, fabric::Rank r)
      : mtu(fab.config().mtu), ep(fab.endpoint(r)), chan(fab, r, tuned(), ""),
        slab(kSlots * mtu) {
    for (std::uint64_t i = 0; i < kSlots; ++i) repost(i);
    chan.set_recycle([this](const fabric::Cqe& c) { repost(c.rx_context); });
  }
  static fabric::ReliabilityConfig tuned() {
    fabric::ReliabilityConfig rc;
    rc.rto_ns = 50 * 1000;  // fast NIC-local timeouts for a zero-latency sim
    return rc;
  }
  void repost(std::uint64_t i) { ep.post_rx({slab.data() + i * mtu, mtu, i}); }

  std::size_t mtu;
  fabric::Endpoint& ep;
  fabric::ReliableChannel chan;
  std::vector<std::byte> slab;
};

struct Outcome {
  double mmsg_s = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks = 0;
  std::uint64_t dropped = 0;
};

Outcome run(const fabric::FabricConfig& cfg) {
  fabric::Fabric fab(2, cfg);
  Peer a(fab, 0);
  Peer b(fab, 1);
  std::vector<std::byte> buf(kPayload, std::byte{0x5A});

  std::size_t sent = 0;
  std::size_t recvd = 0;
  rt::Timer timer;
  while (recvd < kMsgs) {
    if (sent < kMsgs) {
      fabric::MsgMeta m;
      m.kind = 1;
      m.tag = static_cast<std::uint32_t>(sent);
      m.size = kPayload;
      if (a.chan.send(1, buf.data(), m) == fabric::PostResult::Ok) ++sent;
    }
    while (auto c = b.chan.poll()) {
      ++recvd;
      if (c->kind == fabric::Cqe::Kind::Recv) b.repost(c->rx_context);
    }
    a.chan.pump();
  }
  Outcome out;
  out.mmsg_s = static_cast<double>(kMsgs) / timer.elapsed_s() / 1e6;
  out.retransmits = a.ep.stats().rel_retransmits.load();
  out.acks = b.ep.stats().rel_acks_tx.load();
  out.dropped = a.ep.stats().faults_dropped.load();
  return out;
}

// Fig-1 message-rate loop: rank 0 bursts 8-byte messages through the LCI
// queue interface, rank 1 drains with the first-packet policy.
Outcome run_e2e(const fabric::FabricConfig& cfg) {
  constexpr int kCount = 100000;
  fabric::Fabric fab(2, cfg);
  lci::Queue q0(fab, 0, {});
  lci::Queue q1(fab, 1, {});
  const std::uint64_t payload = 42;

  rt::Timer timer;
  int sent = 0;
  int received = 0;
  std::vector<std::unique_ptr<lci::Request>> reqs;
  while (received < kCount) {
    for (int burst = 0; burst < 16 && sent < kCount; ++burst) {
      auto req = std::make_unique<lci::Request>();
      if (!q0.send_enq(&payload, sizeof(payload), 1,
                       static_cast<std::uint32_t>(sent & 0xFF), *req))
        break;
      ++sent;
      reqs.push_back(std::move(req));
    }
    q1.progress();
    lci::Request in;
    while (q1.recv_deq(in)) {
      q1.release(in);
      ++received;
    }
    q0.progress();
  }
  Outcome out;
  out.mmsg_s = static_cast<double>(kCount) / timer.elapsed_s() / 1e6;
  out.retransmits = fab.endpoint(0).stats().rel_retransmits.load();
  out.acks = fab.endpoint(1).stats().rel_acks_tx.load();
  out.dropped = fab.endpoint(0).stats().faults_dropped.load();
  return out;
}

}  // namespace

namespace {

void print_section(const char* title, Outcome (*fn)(const fabric::FabricConfig&),
                   const fabric::FabricConfig& base_cfg) {
  fabric::FabricConfig protocol = base_cfg;
  protocol.force_reliable = true;

  fabric::FabricConfig lossy = base_cfg;
  lossy.fault.seed = 42;
  lossy.fault.drop_rate = 0.05;
  lossy.fault.dup_rate = 0.01;
  lossy.fault.corrupt_rate = 0.005;

  std::printf("%s\n", title);
  std::printf("%-12s %10s %10s %12s %10s\n", "mode", "Mmsg/s", "overhead",
              "retransmits", "acks");

  const Outcome base = fn(base_cfg);
  std::printf("%-12s %10.2f %10s %12llu %10llu\n", "passthrough",
              base.mmsg_s, "-",
              static_cast<unsigned long long>(base.retransmits),
              static_cast<unsigned long long>(base.acks));

  const Outcome proto = fn(protocol);
  std::printf("%-12s %10.2f %+9.1f%% %12llu %10llu\n", "protocol",
              proto.mmsg_s, (base.mmsg_s / proto.mmsg_s - 1.0) * 100.0,
              static_cast<unsigned long long>(proto.retransmits),
              static_cast<unsigned long long>(proto.acks));

  const Outcome chaos = fn(lossy);
  std::printf("%-12s %10.2f %+9.1f%% %12llu %10llu  (%llu dropped)\n\n",
              "lossy", chaos.mmsg_s,
              (base.mmsg_s / chaos.mmsg_s - 1.0) * 100.0,
              static_cast<unsigned long long>(chaos.retransmits),
              static_cast<unsigned long long>(chaos.acks),
              static_cast<unsigned long long>(chaos.dropped));
}

}  // namespace

int main() {
  fabric::FabricConfig lossy_hdr = fabric::test_config();
  lossy_hdr.fault.seed = 42;
  lossy_hdr.fault.drop_rate = 0.05;
  lossy_hdr.fault.dup_rate = 0.01;
  lossy_hdr.fault.corrupt_rate = 0.005;
  std::printf("# reliability overhead; lossy profile: %s\n\n",
              to_string(lossy_hdr.fault).c_str());

  std::printf("## raw channel: %zu msgs x %u B eager, 2 hosts, test fabric\n",
              kMsgs, kPayload);
  print_section("(baseline = bare in-process post_send/poll_cq)", run,
                fabric::test_config());

  fabric::FabricConfig fig1 = fabric::omnipath_knl_config();
  fig1.wire_latency = std::chrono::nanoseconds(0);
  fig1.bandwidth_Bps = 0.0;
  std::printf("## end-to-end: 100000 x 8 B via LCI queue, Fig-1 config\n");
  print_section("(baseline = full SEND-ENQ/RECV-DEQ software path)", run_e2e,
                fig1);
  return 0;
}
