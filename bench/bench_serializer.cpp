// Serializer microbench: encode/decode throughput and wire bytes of the
// adaptive formats (sparse / varint / dense) across dirty densities, for
// 4-byte and 8-byte labels (DESIGN.md §11).
//
// Shape to check: sparse wins far below ~1/64 density, varint in the middle
// band, dense from ~1/8 up; at full density dense ships exactly half the
// sparse bytes for u32 labels (bitmap elided). The auto row must track the
// cheapest format's bytes at every density.
//
// `--json-out <file>` (or env LCR_BENCH_JSON) writes the measurements as a
// JSON artifact for CI history.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_support/table.hpp"
#include "comm/message.hpp"
#include "comm/serializer.hpp"
#include "runtime/bitset.hpp"
#include "runtime/rng.hpp"

using namespace lcr;

namespace {

struct Measurement {
  std::string type;
  std::string mode;
  double density = 0.0;
  comm::WireFormat format = comm::WireFormat::Sparse;  // format actually used
  std::size_t records = 0;
  double bytes_per_record = 0.0;
  double encode_mrps = 0.0;  // million records per second
  double decode_mrps = 0.0;
};

const char* format_name(comm::WireFormat f) {
  switch (f) {
    case comm::WireFormat::Sparse: return "sparse";
    case comm::WireFormat::Varint: return "varint";
    case comm::WireFormat::Dense: return "dense";
    default: return "raw";
  }
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Encode + decode one (type, density, mode) cell, repeated until enough
/// records have moved to drown out clock granularity.
template <typename T>
Measurement run_cell(const char* type_name, double density,
                     std::optional<comm::WireFormat> mode, rt::Rng& rng) {
  constexpr std::uint32_t n = 1u << 16;
  std::vector<graph::VertexId> shared(n);
  for (std::uint32_t i = 0; i < n; ++i) shared[i] = i;
  rt::ConcurrentBitset dirty(n);
  std::vector<T> labels(n);
  const auto threshold =
      static_cast<std::uint64_t>(density * 1000000.0 + 0.5);
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t raw = rng();
    std::memcpy(&labels[i], &raw, sizeof(T));
    if (rng.below(1000000) < threshold) {
      dirty.set(i);
      ++count;
    }
  }

  Measurement m;
  m.type = type_name;
  m.mode = mode ? format_name(*mode) : "auto";
  m.density = density;
  m.records = count;
  if (count == 0) return m;

  comm::set_wire_format_override(mode);
  std::vector<std::byte> payload;
  const int reps =
      static_cast<int>(std::max<std::size_t>(1, (1u << 22) / count));

  comm::EncodedChunk enc;
  const double enc_start = now_s();
  for (int r = 0; r < reps; ++r) {
    enc = comm::encode_dirty_range<T>(shared, dirty, labels.data(), 0, n,
                                      [&](std::size_t need) {
                                        payload.resize(need);
                                        return payload.data();
                                      });
  }
  const double enc_s = now_s() - enc_start;
  comm::set_wire_format_override(std::nullopt);

  comm::ChunkHeader header;
  header.payload_bytes = static_cast<std::uint32_t>(enc.bytes);
  header.base_pos = 0;
  header.span = n;
  header.format = static_cast<std::uint8_t>(enc.format);
  if (enc.format == comm::WireFormat::Dense && enc.all_set)
    header.flags = comm::kFlagDenseFull;
  header.finalize();

  std::uint64_t sink = 0;
  const double dec_start = now_s();
  for (int r = 0; r < reps; ++r) {
    comm::decode_chunk<T>(header, payload.data(), n,
                          [&](std::uint32_t pos, const T& value) {
                            std::uint64_t bits = 0;
                            std::memcpy(&bits, &value, sizeof(T));
                            sink += pos ^ bits;
                          });
  }
  const double dec_s = now_s() - dec_start;
  if (sink == 0xDEADBEEF) std::printf("(unlikely)\n");  // keep `sink` live

  const double total_records =
      static_cast<double>(count) * static_cast<double>(reps);
  m.format = enc.format;
  m.bytes_per_record = static_cast<double>(enc.bytes) / count;
  m.encode_mrps = total_records / std::max(enc_s, 1e-12) * 1e-6;
  m.decode_mrps = total_records / std::max(dec_s, 1e-12) * 1e-6;
  return m;
}

/// The seed data path this PR replaced: gather into a growable record
/// vector, copy the slice into a per-chunk buffer, copy the chunk into the
/// backend's wire buffer. Measured here so the zero-copy speedup stays an
/// observable number instead of folklore.
template <typename T>
Measurement run_legacy_cell(const char* type_name, double density,
                            rt::Rng& rng) {
  constexpr std::uint32_t n = 1u << 16;
  std::vector<graph::VertexId> shared(n);
  for (std::uint32_t i = 0; i < n; ++i) shared[i] = i;
  rt::ConcurrentBitset dirty(n);
  std::vector<T> labels(n);
  const auto threshold =
      static_cast<std::uint64_t>(density * 1000000.0 + 0.5);
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t raw = rng();
    std::memcpy(&labels[i], &raw, sizeof(T));
    if (rng.below(1000000) < threshold) {
      dirty.set(i);
      ++count;
    }
  }

  Measurement m;
  m.type = type_name;
  m.mode = "legacy";
  m.density = density;
  m.records = count;
  if (count == 0) return m;

  const int reps =
      static_cast<int>(std::max<std::size_t>(1, (1u << 22) / count));
  std::vector<std::byte> records;
  std::vector<std::byte> chunk;
  std::vector<std::byte> wire;
  const double enc_start = now_s();
  for (int r = 0; r < reps; ++r) {
    records.clear();
    records.reserve(1024);  // the seed's guess-sized reservation
    comm::gather_records<T>(shared, dirty, labels.data(), records);
    chunk.assign(records.begin(), records.end());  // per-chunk slice copy
    wire.resize(chunk.size());                     // backend wire copy
    std::memcpy(wire.data(), chunk.data(), chunk.size());
  }
  const double enc_s = now_s() - enc_start;

  std::uint64_t sink = 0;
  const double dec_start = now_s();
  for (int r = 0; r < reps; ++r) {
    comm::scatter_records<T>(wire.data(), wire.size(),
                             [&](std::uint32_t pos, T value) {
                               std::uint64_t bits = 0;
                               std::memcpy(&bits, &value, sizeof(T));
                               sink += pos ^ bits;
                             });
  }
  const double dec_s = now_s() - dec_start;
  if (sink == 0xDEADBEEF) std::printf("(unlikely)\n");

  const double total_records =
      static_cast<double>(count) * static_cast<double>(reps);
  m.format = comm::WireFormat::Sparse;
  m.bytes_per_record = static_cast<double>(wire.size()) / count;
  m.encode_mrps = total_records / std::max(enc_s, 1e-12) * 1e-6;
  m.decode_mrps = total_records / std::max(dec_s, 1e-12) * 1e-6;
  return m;
}

std::string json_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json-out") return argv[i + 1];
  if (const char* s = std::getenv("LCR_BENCH_JSON")) return s;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_out(argc, argv);
  rt::Rng rng(0xB355EDu);

  std::printf("=== Serializer: adaptive wire formats, %u-entry shared list "
              "===\n\n", 1u << 16);

  const double densities[] = {0.001, 0.01, 0.1, 0.5, 0.95, 1.0};
  const std::optional<comm::WireFormat> modes[] = {
      std::nullopt, comm::WireFormat::Sparse, comm::WireFormat::Varint,
      comm::WireFormat::Dense};

  bench::Table table({"type", "density", "mode", "chosen", "records",
                      "bytes/rec", "enc Mrec/s", "dec Mrec/s"});
  std::vector<Measurement> all;
  for (const double density : densities) {
    for (int cell = 0; cell < 5; ++cell) {
      for (int type = 0; type < 2; ++type) {
        Measurement m;
        if (cell == 4) {
          m = type == 0 ? run_legacy_cell<std::uint32_t>("u32", density, rng)
                        : run_legacy_cell<double>("f64", density, rng);
        } else {
          const auto& mode = modes[cell];
          m = type == 0 ? run_cell<std::uint32_t>("u32", density, mode, rng)
                        : run_cell<double>("f64", density, mode, rng);
        }
        all.push_back(m);
        char dens[16], bpr[16], encs[16], decs[16];
        std::snprintf(dens, sizeof(dens), "%.3f%%", 100.0 * density);
        std::snprintf(bpr, sizeof(bpr), "%.2f", m.bytes_per_record);
        std::snprintf(encs, sizeof(encs), "%.1f", m.encode_mrps);
        std::snprintf(decs, sizeof(decs), "%.1f", m.decode_mrps);
        table.add_row({m.type, dens, m.mode, format_name(m.format),
                       std::to_string(m.records), bpr, encs, decs});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: auto's bytes/rec tracks the cheapest mode "
              "at every density; dense at 100%% ships half of sparse for "
              "u32.\n");

  // Zero-copy speedup vs the seed path (record vector + chunk copy + wire
  // copy), per density: encode-rate ratio of "auto" over "legacy".
  std::printf("\nserialization speedup vs seed (copying) path:\n");
  for (const double density : densities) {
    for (const char* type : {"u32", "f64"}) {
      const Measurement* auto_m = nullptr;
      const Measurement* legacy_m = nullptr;
      for (const Measurement& m : all) {
        if (m.density != density || m.type != type) continue;
        if (m.mode == "auto") auto_m = &m;
        if (m.mode == "legacy") legacy_m = &m;
      }
      if (auto_m == nullptr || legacy_m == nullptr ||
          legacy_m->encode_mrps <= 0.0)
        continue;
      std::printf("  %s @ %7.3f%%: %.2fx encode, %.2fx wire bytes\n", type,
                  100.0 * density,
                  auto_m->encode_mrps / legacy_m->encode_mrps,
                  legacy_m->bytes_per_record /
                      std::max(auto_m->bytes_per_record, 1e-9));
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"serializer\",\n  \"entries\": [\n");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Measurement& m = all[i];
      std::fprintf(f,
                   "    {\"type\": \"%s\", \"density\": %.4f, \"mode\": "
                   "\"%s\", \"chosen\": \"%s\", \"records\": %zu, "
                   "\"bytes_per_record\": %.4f, \"encode_mrps\": %.3f, "
                   "\"decode_mrps\": %.3f}%s\n",
                   m.type.c_str(), m.density, m.mode.c_str(),
                   format_name(m.format), m.records, m.bytes_per_record,
                   m.encode_mrps, m.decode_mrps,
                   i + 1 < all.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
