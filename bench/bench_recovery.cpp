// Recovery experiments (DESIGN.md §13, EXPERIMENTS.md "Recovery"):
//
//   1. Asynchronous checkpoint overhead: failure-free runs with the
//      double-buffered per-host checkpoint staged every K rounds vs the
//      K=0 baseline. Target: < 10% total-time overhead at K=8 - the save
//      path is a bounded memcpy, the checksum seals off-thread.
//
//   2. Recovery latency vs K: kill one host mid-run, roll the cluster back
//      to the last stable checkpoint, re-admit the victim under a new
//      fabric epoch and re-execute. Smaller K = less re-executed work but
//      more staging; the table shows both sides of the trade.
//
// Every failure run prints its kill schedule via to_string(FaultProfile)
// so the exact fault configuration is part of the record.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "fabric/config.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

namespace {

std::string fmt_pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", frac * 100.0);
  return buf;
}

}  // namespace

int main() {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(4);
  const std::uint32_t pr_iters = bench::env_pr_iters(16);

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::Csr g = graph::rmat(scale, 8.0);
  graph::Csr sym = graph::symmetrize(g);

  std::printf("=== Recovery: async checkpoint overhead + rollback latency "
              "===\n");
  std::printf("(rmat scale %u, %d hosts, %zu threads/host, %s fabric)\n\n",
              scale, hosts, profile.compute_threads, profile.name.c_str());

  auto base_spec = [&](const char* app) {
    bench::RunSpec spec;
    spec.app = app;
    spec.hosts = hosts;
    spec.threads = profile.compute_threads;
    spec.fabric = profile.fabric;
    spec.pagerank_iters = pr_iters;
    if (std::string(app) == "cc" || std::string(app) == "labelprop")
      spec.policy = graph::PartitionPolicy::OutgoingEdgeCut;
    else
      spec.source = bench::choose_source(g);
    return spec;
  };
  auto graph_for = [&](const char* app) -> const graph::Csr& {
    return (std::string(app) == "cc" || std::string(app) == "labelprop")
               ? sym
               : g;
  };

  // ------------------------------------------------------------------
  // 1. Failure-free checkpoint overhead vs interval K.
  // ------------------------------------------------------------------
  std::printf("--- checkpoint overhead (failure-free, vs K=0 baseline) "
              "---\n");
  for (const char* app : {"pagerank", "labelprop"}) {
    bench::Table table({"K", "total(s)", "overhead", "rounds"});
    double baseline = 0.0;
    for (std::int64_t k : {0, 16, 8, 4, 2}) {
      bench::RunSpec spec = base_spec(app);
      spec.ckpt_interval = k;
      const auto r = bench::run_app(graph_for(app), spec);
      if (k == 0) baseline = r.total_s;
      table.add_row({std::to_string(k), bench::fmt_seconds(r.total_s),
                     k == 0 ? "-" : fmt_pct(r.total_s / baseline - 1.0),
                     std::to_string(r.rounds)});
    }
    std::printf("%s:\n", app);
    table.print(std::cout);
    std::printf("(target: < 10%% at K=8)\n\n");
  }

  // ------------------------------------------------------------------
  // 2. Kill + rollback: recovery latency and re-execution cost vs K.
  // ------------------------------------------------------------------
  const std::int64_t kill_round =
      static_cast<std::int64_t>(pr_iters) / 2 + 1;
  std::printf("--- recovery latency vs checkpoint interval (pagerank) "
              "---\n");
  {
    bench::RunSpec probe = base_spec("pagerank");
    probe.fabric.fault.kill_host = 1;
    probe.fabric.fault.kill_at_round = kill_round;
    std::printf("fault profile: %s\n",
                fabric::to_string(probe.fabric.fault).c_str());
  }
  bench::Table table({"K", "total(s)", "recovery(s)", "rollback@",
                      "replayed", "kills", "unfailed(s)"});
  bench::RunSpec clean = base_spec("pagerank");
  const double unfailed = bench::run_app(g, clean).total_s;
  for (std::int64_t k : {2, 4, 8, 16}) {
    bench::RunSpec spec = base_spec("pagerank");
    spec.ckpt_interval = k;
    spec.fabric.fault.kill_host = 1;
    spec.fabric.fault.kill_at_round = kill_round;
    const auto r = bench::run_app(g, spec);
    const std::int64_t replayed =
        r.rollback_round >= 0 ? kill_round - r.rollback_round : kill_round;
    table.add_row({std::to_string(k), bench::fmt_seconds(r.total_s),
                   bench::fmt_seconds(r.recovery_s),
                   std::to_string(r.rollback_round),
                   std::to_string(replayed), std::to_string(r.kills),
                   bench::fmt_seconds(unfailed)});
  }
  table.print(std::cout);
  std::printf("(kill fires at round %lld of %u; 'replayed' = rounds "
              "re-executed after rollback)\n",
              static_cast<long long>(kill_round), pr_iters);
  return 0;
}
