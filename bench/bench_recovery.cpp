// Recovery experiments (DESIGN.md §13, EXPERIMENTS.md "Recovery"):
//
//   1. Asynchronous checkpoint overhead: failure-free runs with the
//      double-buffered per-host checkpoint staged every K rounds vs the
//      K=0 baseline. Target: < 10% total-time overhead at K=8 - the save
//      path is a bounded memcpy, the checksum seals off-thread.
//
//   2. Recovery latency vs K: kill one host mid-run, roll the cluster back
//      to the last stable checkpoint, re-admit the victim under a new
//      fabric epoch and re-execute. Smaller K = less re-executed work but
//      more staging; the table shows both sides of the trade.
//
// Every failure run prints its kill schedule via to_string(FaultProfile)
// so the exact fault configuration is part of the record.
//
// `--json-out <file>` (or env LCR_BENCH_JSON) writes the measurements as a
// JSON artifact for CI history.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "fabric/config.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

namespace {

std::string fmt_pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", frac * 100.0);
  return buf;
}

struct Entry {
  std::string section;  // "overhead" | "recovery"
  std::string app;
  std::int64_t k = 0;
  double total_s = 0.0;
  double recovery_s = 0.0;
  std::int64_t rollback_round = -1;
  std::int64_t replayed = 0;
  std::uint64_t rollback_rounds = 0;  // ckpt.rollback_rounds counter
  std::uint64_t kills = 0;
  std::uint64_t rounds = 0;
};

std::string json_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json-out") return argv[i + 1];
  if (const char* s = std::getenv("LCR_BENCH_JSON")) return s;
  return {};
}

void write_json(const std::string& path, const std::vector<Entry>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n  \"entries\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Entry& e = all[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"app\": \"%s\", \"k\": %lld, "
                 "\"total_s\": %.6f, \"recovery_s\": %.6f, "
                 "\"rollback_round\": %lld, \"replayed\": %lld, "
                 "\"rollback_rounds\": %llu, \"kills\": %llu, "
                 "\"rounds\": %llu}%s\n",
                 e.section.c_str(), e.app.c_str(),
                 static_cast<long long>(e.k), e.total_s, e.recovery_s,
                 static_cast<long long>(e.rollback_round),
                 static_cast<long long>(e.replayed),
                 static_cast<unsigned long long>(e.rollback_rounds),
                 static_cast<unsigned long long>(e.kills),
                 static_cast<unsigned long long>(e.rounds),
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_out(argc, argv);
  std::vector<Entry> entries;
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(4);
  const std::uint32_t pr_iters = bench::env_pr_iters(16);

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::Csr g = graph::rmat(scale, 8.0);
  graph::Csr sym = graph::symmetrize(g);

  std::printf("=== Recovery: async checkpoint overhead + rollback latency "
              "===\n");
  std::printf("(rmat scale %u, %d hosts, %zu threads/host, %s fabric)\n\n",
              scale, hosts, profile.compute_threads, profile.name.c_str());

  auto base_spec = [&](const char* app) {
    bench::RunSpec spec;
    spec.app = app;
    spec.hosts = hosts;
    spec.threads = profile.compute_threads;
    spec.fabric = profile.fabric;
    spec.pagerank_iters = pr_iters;
    if (std::string(app) == "cc" || std::string(app) == "labelprop")
      spec.policy = graph::PartitionPolicy::OutgoingEdgeCut;
    else
      spec.source = bench::choose_source(g);
    return spec;
  };
  auto graph_for = [&](const char* app) -> const graph::Csr& {
    return (std::string(app) == "cc" || std::string(app) == "labelprop")
               ? sym
               : g;
  };

  // ------------------------------------------------------------------
  // 1. Failure-free checkpoint overhead vs interval K.
  // ------------------------------------------------------------------
  std::printf("--- checkpoint overhead (failure-free, vs K=0 baseline) "
              "---\n");
  for (const char* app : {"pagerank", "labelprop"}) {
    bench::Table table({"K", "total(s)", "overhead", "rounds"});
    double baseline = 0.0;
    for (std::int64_t k : {0, 16, 8, 4, 2}) {
      bench::RunSpec spec = base_spec(app);
      spec.ckpt_interval = k;
      const auto r = bench::run_app(graph_for(app), spec);
      if (k == 0) baseline = r.total_s;
      table.add_row({std::to_string(k), bench::fmt_seconds(r.total_s),
                     k == 0 ? "-" : fmt_pct(r.total_s / baseline - 1.0),
                     std::to_string(r.rounds)});
      Entry e;
      e.section = "overhead";
      e.app = app;
      e.k = k;
      e.total_s = r.total_s;
      e.rounds = r.rounds;
      entries.push_back(e);
    }
    std::printf("%s:\n", app);
    table.print(std::cout);
    std::printf("(target: < 10%% at K=8)\n\n");
  }

  // ------------------------------------------------------------------
  // 2. Kill + rollback: recovery latency and re-execution cost vs K.
  // ------------------------------------------------------------------
  const std::int64_t kill_round =
      static_cast<std::int64_t>(pr_iters) / 2 + 1;
  std::printf("--- recovery latency vs checkpoint interval (pagerank) "
              "---\n");
  {
    bench::RunSpec probe = base_spec("pagerank");
    probe.fabric.fault.kill_host = 1;
    probe.fabric.fault.kill_at_round = kill_round;
    std::printf("fault profile: %s\n",
                fabric::to_string(probe.fabric.fault).c_str());
  }
  bench::Table table({"K", "total(s)", "recovery(s)", "rollback@",
                      "replayed", "kills", "unfailed(s)"});
  bench::RunSpec clean = base_spec("pagerank");
  const double unfailed = bench::run_app(g, clean).total_s;
  for (std::int64_t k : {2, 4, 8, 16}) {
    bench::RunSpec spec = base_spec("pagerank");
    spec.ckpt_interval = k;
    spec.fabric.fault.kill_host = 1;
    spec.fabric.fault.kill_at_round = kill_round;
    const auto r = bench::run_app(g, spec);
    const std::int64_t replayed =
        r.rollback_round >= 0 ? kill_round - r.rollback_round : kill_round;
    table.add_row({std::to_string(k), bench::fmt_seconds(r.total_s),
                   bench::fmt_seconds(r.recovery_s),
                   std::to_string(r.rollback_round),
                   std::to_string(replayed), std::to_string(r.kills),
                   bench::fmt_seconds(unfailed)});
    Entry e;
    e.section = "recovery";
    e.app = "pagerank";
    e.k = k;
    e.total_s = r.total_s;
    e.recovery_s = r.recovery_s;
    e.rollback_round = r.rollback_round;
    e.replayed = replayed;
    const auto rr = r.telemetry.find("ckpt.rollback_rounds");
    e.rollback_rounds = rr == r.telemetry.end() ? 0 : rr->second;
    e.kills = r.kills;
    e.rounds = r.rounds;
    entries.push_back(e);
  }
  table.print(std::cout);
  std::printf("(kill fires at round %lld of %u; 'replayed' = rounds "
              "re-executed after rollback)\n",
              static_cast<long long>(kill_round), pr_iters);
  if (!json_path.empty()) write_json(json_path, entries);
  return 0;
}
