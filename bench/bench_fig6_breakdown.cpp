// Figure 6: breakdown of execution time into computation and non-overlapped
// communication, kron graph at the maximum host count, per backend.
//
// Paper shape: the computation component is essentially identical across
// communication layers; "the changes in performance come from the
// communication component", where LCI is best or comparable to MPI-RMA and
// MPI-Probe is worst.
//
// With `--trace-out <file>` (or env LCR_TRACE_OUT) the run enables telemetry,
// cross-checks the span totals against the timer-based breakdown after every
// configuration, and writes the last configuration's Chrome trace JSON
// (earlier configurations are reset by the runner so warm-up and neighbour
// runs never pollute a measured trace). LCR_BENCH_APP=bfs narrows the sweep
// so the trace holds the configuration you asked for.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "telemetry/telemetry.hpp"

using namespace lcr;

namespace {

/// Sums this trace's per-host span time for `name` and returns the maximum
/// across hosts -- the same reduction RunResult applies to its timers.
double max_host_span_s(const std::vector<telemetry::TraceEvent>& events,
                       const char* name) {
  std::map<std::uint32_t, double> per_host;
  for (const auto& e : events)
    if (e.phase == 'X' && std::string(e.name) == name)
      per_host[e.pid] += static_cast<double>(e.dur_ns) * 1e-9;
  double best = 0.0;
  for (const auto& [host, s] : per_host) best = std::max(best, s);
  return best;
}

void print_span_check(const char* app, const char* backend,
                      const bench::RunResult& r) {
  const auto events = telemetry::collect_trace();
  // "compute" spans wrap exactly the regions the apps time into compute_s;
  // "sync_phase" spans wrap the regions the engine times into comm_s.
  const double span_compute = max_host_span_s(events, "compute");
  const double span_comm = max_host_span_s(events, "sync_phase");
  const auto pct = [](double span, double timer) {
    return timer > 0.0 ? 100.0 * span / timer : 100.0;
  };
  std::printf("  [trace] %s/%s: compute spans %.4fs vs timer %.4fs (%.1f%%), "
              "sync_phase spans %.4fs vs comm %.4fs (%.1f%%)\n",
              app, backend, span_compute, r.compute_s,
              pct(span_compute, r.compute_s), span_comm, r.comm_s,
              pct(span_comm, r.comm_s));
}

// ---------------------------------------------------------------------------
// Serialization-share perf guard. The share is the fraction of the cluster's
// compute-thread time spent in gather/encode: sync.gather_ns (summed over
// all hosts' compute threads) / (wall total * hosts * threads). A ratio, so
// machine-speed differences largely cancel; CI compares against the
// checked-in bench/fig6_baseline.json and fails on a > 25% relative
// regression (plus a small absolute slack for timer noise on tiny runs).
// ---------------------------------------------------------------------------

std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == flag) return argv[i + 1];
  return {};
}

std::map<std::string, double> load_shares(const std::string& path) {
  std::map<std::string, double> shares;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    char key[64];
    double value = 0.0;
    if (std::sscanf(line.c_str(), " \"%63[^\"]\": %lf", key, &value) == 2)
      shares[key] = value;
  }
  return shares;
}

bool write_shares(const std::string& path,
                  const std::map<std::string, double>& shares) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::size_t i = 0;
  for (const auto& [key, share] : shares) {
    std::fprintf(f, "  \"%s\": %.6f%s\n", key.c_str(), share,
                 ++i < shares.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(8);
  const std::string app_filter = bench::env_app();
  const double drop = bench::env_drop(0.0);
  const std::string trace_path = bench::trace_out(argc, argv);
  if (!trace_path.empty()) telemetry::set_enabled(true);
  std::string baseline_path = arg_value(argc, argv, "--perf-baseline");
  if (baseline_path.empty())
    if (const char* s = std::getenv("LCR_PERF_BASELINE")) baseline_path = s;
  const std::string perf_write = arg_value(argc, argv, "--perf-write");

  std::printf("=== Figure 6: compute vs non-overlapped communication, kron "
              "at %d hosts ===\n\n", hosts);
  if (drop > 0.0)
    std::printf("fault injection: drop %.1f%%, dup %.1f%%, corrupt %.2f%% "
                "(seed 42)\n\n", 100.0 * drop, 100.0 * drop / 5.0,
                100.0 * drop / 10.0);

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::kron(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  bench::Table table({"app", "backend", "compute(s)", "comm(s)", "total(s)",
                      "comm %", "ser %", "apply %", "direct %"});
  std::map<std::string, std::uint64_t> last_snapshot;
  std::map<std::string, double> measured_shares;
  for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
    if (!app_filter.empty() && app_filter != app) continue;
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    for (auto kind : {comm::BackendKind::Lci, comm::BackendKind::MpiProbe,
                      comm::BackendKind::MpiRma}) {
      bench::RunSpec spec;
      spec.app = app;
      spec.backend = kind;
      spec.hosts = hosts;
      spec.threads = profile.compute_threads;
      spec.source = bench::choose_source(g);
      spec.pagerank_iters = pr_iters;
      spec.fabric = profile.fabric;
      if (drop > 0.0) {
        spec.fabric.fault.seed = 42;
        spec.fabric.fault.drop_rate = drop;
        spec.fabric.fault.dup_rate = drop / 5.0;
        spec.fabric.fault.corrupt_rate = drop / 10.0;
      }
      const bench::RunResult r = bench::run_app(g, spec);
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%",
                    100.0 * r.comm_s / std::max(r.total_s, 1e-9));
      // Serialization share: cluster-wide gather/encode nanoseconds over
      // the total compute-thread-seconds available to the run.
      const auto gather_it = r.telemetry.find("sync.gather_ns");
      const double gather_s =
          gather_it != r.telemetry.end()
              ? static_cast<double>(gather_it->second) * 1e-9
              : 0.0;
      const double thread_s = r.total_s * static_cast<double>(hosts) *
                              static_cast<double>(spec.threads);
      const double ser_share = gather_s / std::max(thread_s, 1e-9);
      measured_shares[std::string(app) + "/" + comm::to_string(kind)] =
          ser_share;
      // Receive-side apply share: cluster-wide decode/scatter nanoseconds
      // over the same compute-thread-seconds denominator. Guarded like the
      // serialization share so a decode/apply slowdown trips CI.
      const auto apply_it = r.telemetry.find("sync.apply_ns");
      const double apply_s =
          apply_it != r.telemetry.end()
              ? static_cast<double>(apply_it->second) * 1e-9
              : 0.0;
      const double apply_share = apply_s / std::max(thread_s, 1e-9);
      measured_shares[std::string(app) + "/" + comm::to_string(kind) +
                      "#apply"] = apply_share;
      // Direct-write share: fraction of sync messages that went out as
      // one-sided puts (DESIGN.md §15). Baselined with the "#direct" key so
      // CI notices when the direct path silently stops engaging (the ser%
      // win would quietly evaporate with it).
      const auto direct_it = r.telemetry.find("sync.direct_sends");
      const auto msgs_it = r.telemetry.find("abelian.messages_sent");
      const double direct_sends =
          direct_it != r.telemetry.end()
              ? static_cast<double>(direct_it->second)
              : 0.0;
      const double msgs_sent = msgs_it != r.telemetry.end()
                                   ? static_cast<double>(msgs_it->second)
                                   : 0.0;
      const double direct_share = direct_sends / std::max(msgs_sent, 1.0);
      measured_shares[std::string(app) + "/" + comm::to_string(kind) +
                      "#direct"] = direct_share;
      char ser_pct[16];
      std::snprintf(ser_pct, sizeof(ser_pct), "%.1f%%", 100.0 * ser_share);
      char apply_pct[16];
      std::snprintf(apply_pct, sizeof(apply_pct), "%.1f%%",
                    100.0 * apply_share);
      char direct_pct[16];
      std::snprintf(direct_pct, sizeof(direct_pct), "%.1f%%",
                    100.0 * direct_share);
      table.add_row({app, comm::to_string(kind),
                     bench::fmt_seconds(r.compute_s),
                     bench::fmt_seconds(r.comm_s),
                     bench::fmt_seconds(r.total_s), pct, ser_pct, apply_pct,
                     direct_pct});
      if (!trace_path.empty()) {
        print_span_check(app, comm::to_string(kind), r);
        last_snapshot = r.telemetry;
      }
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: compute(s) roughly equal across backends "
              "per app; differences live in comm(s).\n");
  if (!trace_path.empty()) {
    if (telemetry::write_chrome_trace(trace_path, last_snapshot))
      std::printf("trace (last configuration) written to %s\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
  }

  if (!perf_write.empty()) {
    if (!write_shares(perf_write, measured_shares)) {
      std::fprintf(stderr, "failed to write %s\n", perf_write.c_str());
      return 1;
    }
    std::printf("serialization-share baseline written to %s\n",
                perf_write.c_str());
  }
  if (!baseline_path.empty()) {
    const auto baseline = load_shares(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "no baseline entries in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    int regressions = 0;
    for (const auto& [key, share] : measured_shares) {
      const auto it = baseline.find(key);
      if (it == baseline.end()) continue;
      // Cost shares (gather/apply) regress upward; the direct-engagement
      // share regresses downward (the put path silently disengaging).
      const bool lower_bound = key.size() > 7 &&
                               key.compare(key.size() - 7, 7, "#direct") == 0;
      const double limit = lower_bound ? it->second * 0.75 - 0.02
                                       : it->second * 1.25 + 0.02;
      const bool bad = lower_bound ? share < limit : share > limit;
      std::printf("  [perf] %-22s share %.4f vs baseline %.4f "
                  "(limit %s%.4f) %s\n",
                  key.c_str(), share, it->second, lower_bound ? ">=" : "<=",
                  limit, bad ? "REGRESSED" : "ok");
      if (bad) ++regressions;
    }
    if (regressions > 0) {
      std::fprintf(stderr,
                   "%d configuration(s) regressed gather/apply share > 25%% "
                   "over %s\n",
                   regressions, baseline_path.c_str());
      return 1;
    }
  }
  return 0;
}
