// Figure 6: breakdown of execution time into computation and non-overlapped
// communication, kron graph at the maximum host count, per backend.
//
// Paper shape: the computation component is essentially identical across
// communication layers; "the changes in performance come from the
// communication component", where LCI is best or comparable to MPI-RMA and
// MPI-Probe is worst.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

int main() {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(8);

  std::printf("=== Figure 6: compute vs non-overlapped communication, kron "
              "at %d hosts ===\n\n", hosts);

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::kron(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  bench::Table table({"app", "backend", "compute(s)", "comm(s)", "total(s)",
                      "comm %"});
  for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    for (auto kind : {comm::BackendKind::Lci, comm::BackendKind::MpiProbe,
                      comm::BackendKind::MpiRma}) {
      bench::RunSpec spec;
      spec.app = app;
      spec.backend = kind;
      spec.hosts = hosts;
      spec.threads = profile.compute_threads;
      spec.source = bench::choose_source(g);
      spec.pagerank_iters = pr_iters;
      spec.fabric = profile.fabric;
      const bench::RunResult r = bench::run_app(g, spec);
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%",
                    100.0 * r.comm_s / std::max(r.total_s, 1e-9));
      table.add_row({app, comm::to_string(kind),
                     bench::fmt_seconds(r.compute_s),
                     bench::fmt_seconds(r.comm_s),
                     bench::fmt_seconds(r.total_s), pct});
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: compute(s) roughly equal across backends "
              "per app; differences live in comm(s).\n");
  return 0;
}
