// Figure 6: breakdown of execution time into computation and non-overlapped
// communication, kron graph at the maximum host count, per backend.
//
// Paper shape: the computation component is essentially identical across
// communication layers; "the changes in performance come from the
// communication component", where LCI is best or comparable to MPI-RMA and
// MPI-Probe is worst.
//
// With `--trace-out <file>` (or env LCR_TRACE_OUT) the run enables telemetry,
// cross-checks the span totals against the timer-based breakdown after every
// configuration, and writes the last configuration's Chrome trace JSON
// (earlier configurations are reset by the runner so warm-up and neighbour
// runs never pollute a measured trace). LCR_BENCH_APP=bfs narrows the sweep
// so the trace holds the configuration you asked for.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "telemetry/telemetry.hpp"

using namespace lcr;

namespace {

/// Sums this trace's per-host span time for `name` and returns the maximum
/// across hosts -- the same reduction RunResult applies to its timers.
double max_host_span_s(const std::vector<telemetry::TraceEvent>& events,
                       const char* name) {
  std::map<std::uint32_t, double> per_host;
  for (const auto& e : events)
    if (e.phase == 'X' && std::string(e.name) == name)
      per_host[e.pid] += static_cast<double>(e.dur_ns) * 1e-9;
  double best = 0.0;
  for (const auto& [host, s] : per_host) best = std::max(best, s);
  return best;
}

void print_span_check(const char* app, const char* backend,
                      const bench::RunResult& r) {
  const auto events = telemetry::collect_trace();
  // "compute" spans wrap exactly the regions the apps time into compute_s;
  // "sync_phase" spans wrap the regions the engine times into comm_s.
  const double span_compute = max_host_span_s(events, "compute");
  const double span_comm = max_host_span_s(events, "sync_phase");
  const auto pct = [](double span, double timer) {
    return timer > 0.0 ? 100.0 * span / timer : 100.0;
  };
  std::printf("  [trace] %s/%s: compute spans %.4fs vs timer %.4fs (%.1f%%), "
              "sync_phase spans %.4fs vs comm %.4fs (%.1f%%)\n",
              app, backend, span_compute, r.compute_s,
              pct(span_compute, r.compute_s), span_comm, r.comm_s,
              pct(span_comm, r.comm_s));
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(8);
  const std::string app_filter = bench::env_app();
  const double drop = bench::env_drop(0.0);
  const std::string trace_path = bench::trace_out(argc, argv);
  if (!trace_path.empty()) telemetry::set_enabled(true);

  std::printf("=== Figure 6: compute vs non-overlapped communication, kron "
              "at %d hosts ===\n\n", hosts);
  if (drop > 0.0)
    std::printf("fault injection: drop %.1f%%, dup %.1f%%, corrupt %.2f%% "
                "(seed 42)\n\n", 100.0 * drop, 100.0 * drop / 5.0,
                100.0 * drop / 10.0);

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::kron(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  bench::Table table({"app", "backend", "compute(s)", "comm(s)", "total(s)",
                      "comm %"});
  std::map<std::string, std::uint64_t> last_snapshot;
  for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
    if (!app_filter.empty() && app_filter != app) continue;
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    for (auto kind : {comm::BackendKind::Lci, comm::BackendKind::MpiProbe,
                      comm::BackendKind::MpiRma}) {
      bench::RunSpec spec;
      spec.app = app;
      spec.backend = kind;
      spec.hosts = hosts;
      spec.threads = profile.compute_threads;
      spec.source = bench::choose_source(g);
      spec.pagerank_iters = pr_iters;
      spec.fabric = profile.fabric;
      if (drop > 0.0) {
        spec.fabric.fault.seed = 42;
        spec.fabric.fault.drop_rate = drop;
        spec.fabric.fault.dup_rate = drop / 5.0;
        spec.fabric.fault.corrupt_rate = drop / 10.0;
      }
      const bench::RunResult r = bench::run_app(g, spec);
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%",
                    100.0 * r.comm_s / std::max(r.total_s, 1e-9));
      table.add_row({app, comm::to_string(kind),
                     bench::fmt_seconds(r.compute_s),
                     bench::fmt_seconds(r.comm_s),
                     bench::fmt_seconds(r.total_s), pct});
      if (!trace_path.empty()) {
        print_span_check(app, comm::to_string(kind), r);
        last_snapshot = r.telemetry;
      }
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: compute(s) roughly equal across backends "
              "per app; differences live in comm(s).\n");
  if (!trace_path.empty()) {
    if (telemetry::write_chrome_trace(trace_path, last_snapshot))
      std::printf("trace (last configuration) written to %s\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
  }
  return 0;
}
