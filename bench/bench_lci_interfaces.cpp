// The three LCI interface styles on one ping-pong + streaming workload:
//
//   queue     - SEND-ENQ / RECV-DEQ, first-packet policy (the interface the
//               paper builds Abelian on: no matching at all),
//   two-sided - exact-(src, tag) hash matching, zero-copy rendezvous into
//               the posted buffer (no wildcards -> O(1) matching),
//   one-sided - put-with-signal into a pre-exposed buffer (no per-message
//               receive path at all).
//
// Expected shape: the pre-arranged interfaces (posted two-sided, exposed
// one-sided) are faster on a KNOWN pattern; the queue is the only one that
// handles an irregular pattern (senders/tags/sizes unknown), which is
// exactly Abelian's situation - the reason the paper presents Queue.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_support/table.hpp"
#include "fabric/fabric.hpp"
#include "lci/completion.hpp"
#include "lci/one_sided.hpp"
#include "lci/queue.hpp"
#include "lci/two_sided.hpp"
#include "runtime/timer.hpp"

using namespace lcr;

namespace {

constexpr int kMessages = 30000;
constexpr std::size_t kSize = 64;

fabric::FabricConfig quiet() {
  fabric::FabricConfig cfg = fabric::omnipath_knl_config();
  cfg.wire_latency = std::chrono::nanoseconds(0);
  cfg.bandwidth_Bps = 0;
  return cfg;
}

double queue_rate() {
  fabric::Fabric fab(2, quiet());
  lci::Queue q0(fab, 0, {}), q1(fab, 1, {});
  std::vector<char> payload(kSize, 'a');
  int sent = 0, received = 0;
  std::vector<std::unique_ptr<lci::Request>> live;
  rt::Timer timer;
  while (received < kMessages) {
    for (int b = 0; b < 16 && sent < kMessages; ++b) {
      auto req = std::make_unique<lci::Request>();
      if (!q0.send_enq(payload.data(), kSize, 1,
                       static_cast<std::uint32_t>(sent), *req))
        break;
      ++sent;
      live.push_back(std::move(req));
    }
    q1.progress();
    lci::Request in;
    while (q1.recv_deq(in)) {
      q1.release(in);
      ++received;
    }
    q0.progress();
  }
  return kMessages / timer.elapsed_s();
}

double two_sided_rate() {
  fabric::Fabric fab(2, quiet());
  lci::TwoSided t0(fab, 0), t1(fab, 1);
  std::vector<char> payload(kSize, 'a');
  std::vector<char> in(kSize);
  int done = 0;
  rt::Timer timer;
  // Pre-arranged tags: receiver posts, sender matches; window of 1 posted
  // recv per tag key keeps the table small and honest.
  while (done < kMessages) {
    lci::Request rreq, sreq;
    t1.recv(in.data(), kSize, 0, static_cast<std::uint32_t>(done & 0xFF),
            rreq);
    while (!t0.send(payload.data(), kSize, 1,
                    static_cast<std::uint32_t>(done & 0xFF), sreq)) {
      t0.progress();
      t1.progress();
    }
    while (!rreq.done()) {
      t1.progress();
      t0.progress();
    }
    ++done;
  }
  return kMessages / timer.elapsed_s();
}

double one_sided_rate() {
  fabric::Fabric fab(2, quiet());
  lci::OneSided o0(fab, 0), o1(fab, 1);
  std::vector<char> region(kSize * 64);
  const lci::RemoteBuffer rb = o1.expose(region.data(), region.size());
  lci::CompletionCounter arrived;
  o1.register_signal(1, &arrived);
  std::vector<char> payload(kSize, 'a');
  arrived.expect(kMessages);
  int sent = 0;
  rt::Timer timer;
  while (!arrived.complete()) {
    for (int b = 0; b < 16 && sent < kMessages; ++b) {
      if (!o0.put_signal(rb, (static_cast<std::size_t>(sent) % 64) * kSize,
                         payload.data(), kSize, 1))
        break;
      ++sent;
    }
    o1.progress();
  }
  const double rate = kMessages / timer.elapsed_s();
  o1.deregister_signal(1);
  o1.unexpose(rb);
  return rate;
}

}  // namespace

int main() {
  std::printf("=== LCI interface styles: %d x %zuB transfers ===\n\n",
              kMessages, kSize);
  const double q = queue_rate();
  const double t = two_sided_rate();
  const double o = one_sided_rate();
  bench::Table table({"interface", "msgs/s", "vs queue"});
  table.add_row({"queue (first-packet)",
                 std::to_string(static_cast<long long>(q)), "1.00x"});
  table.add_row({"two-sided (hash match, ping-pong posted)",
                 std::to_string(static_cast<long long>(t)),
                 bench::fmt_ratio(t / q)});
  table.add_row({"one-sided (put+signal)",
                 std::to_string(static_cast<long long>(o)),
                 bench::fmt_ratio(o / q)});
  table.print(std::cout);
  std::printf(
      "\nshape to check: the pre-arranged interfaces (two-sided with posted "
      "receives,\none-sided into exposed buffers) beat the queue on this "
      "KNOWN pattern - and the\nqueue is the only one usable when senders/"
      "sizes/tags are unknown, which is\nAbelian's irregular situation "
      "(Section III-A).\n");
  return 0;
}
