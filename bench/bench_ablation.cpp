// Ablation benches for the design choices DESIGN.md calls out:
//   A. locality-aware packet pool vs plain global pool (paper ref [16]),
//   B. first-packet completion policy vs enforced FIFO-by-tag completion,
//   C. MPI-Probe buffered-layer aggregation timeout sweep (Section III-B),
//   D. LCI receive-window (packet pool) size = the injection bound.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "fabric/fabric.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "lci/queue.hpp"
#include "runtime/timer.hpp"

using namespace lcr;

namespace {

/// Messages/second through a 2-host LCI pair with a given pool cache count.
double lci_rate(std::size_t pool_caches, std::size_t rx_packets,
                int count) {
  fabric::FabricConfig cfg = fabric::omnipath_knl_config();
  cfg.wire_latency = std::chrono::nanoseconds(0);
  cfg.bandwidth_Bps = 0;
  fabric::Fabric fab(2, cfg);
  lci::QueueConfig qcfg;
  qcfg.device.pool_caches = pool_caches;
  qcfg.device.rx_packets = rx_packets;
  lci::Queue q0(fab, 0, qcfg);
  lci::Queue q1(fab, 1, qcfg);

  const std::uint64_t payload = 1;
  int sent = 0, received = 0;
  std::vector<std::unique_ptr<lci::Request>> reqs;
  rt::Timer timer;
  while (received < count) {
    for (int b = 0; b < 16 && sent < count; ++b) {
      auto req = std::make_unique<lci::Request>();
      if (!q0.send_enq(&payload, sizeof(payload), 1,
                       static_cast<std::uint32_t>(sent), *req))
        break;
      ++sent;
      reqs.push_back(std::move(req));
    }
    q1.progress();
    lci::Request in;
    while (q1.recv_deq(in)) {
      q1.release(in);
      ++received;
    }
    q0.progress();
  }
  return count / timer.elapsed_s();
}

/// First-packet policy vs forced in-tag-order completion: the receiver
/// insists on consuming tags 0,1,2,... and stashes out-of-order arrivals
/// (what an ordering-dependent consumer must do on top of LCI - and what
/// MPI does internally for every message).
double lci_ordered_rate(bool enforce_order, int count) {
  fabric::FabricConfig cfg = fabric::omnipath_knl_config();
  cfg.wire_latency = std::chrono::nanoseconds(0);
  cfg.bandwidth_Bps = 0;
  fabric::Fabric fab(2, cfg);
  lci::Queue q0(fab, 0, {});
  lci::Queue q1(fab, 1, {});

  const std::uint64_t payload = 1;
  int sent = 0, received = 0;
  std::uint32_t next_tag = 0;
  std::vector<std::unique_ptr<lci::Request>> reqs;
  std::map<std::uint32_t, lci::Request*> stash;
  rt::Timer timer;
  while (received < count) {
    for (int b = 0; b < 16 && sent < count; ++b) {
      auto req = std::make_unique<lci::Request>();
      if (!q0.send_enq(&payload, sizeof(payload), 1,
                       static_cast<std::uint32_t>(sent), *req))
        break;
      ++sent;
      reqs.push_back(std::move(req));
    }
    q1.progress();
    if (enforce_order) {
      // Consume in tag order, stashing everything else.
      for (;;) {
        auto it = stash.find(next_tag);
        if (it != stash.end()) {
          q1.release(*it->second);
          delete it->second;
          stash.erase(it);
          ++received;
          ++next_tag;
          continue;
        }
        auto* in = new lci::Request();
        if (!q1.recv_deq(*in)) {
          delete in;
          break;
        }
        stash.emplace(in->tag, in);
      }
    } else {
      lci::Request in;
      while (q1.recv_deq(in)) {
        q1.release(in);
        ++received;
      }
    }
    q0.progress();
  }
  return count / timer.elapsed_s();
}

}  // namespace

int main() {
  constexpr int kMessages = 20000;
  std::printf("=== Ablations ===\n\n");

  // --- A: packet-pool locality ---
  {
    bench::Table t({"pool caches", "msgs/s"});
    for (std::size_t caches : {0u, 4u, 8u}) {
      const double rate = lci_rate(caches, 256, kMessages);
      t.add_row({caches == 0 ? "none (global only)" : std::to_string(caches),
                 std::to_string(static_cast<long long>(rate))});
    }
    std::printf("A. locality-aware packet pool (paper ref [16])\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // --- B: first-packet vs enforced ordering ---
  {
    const double fp = lci_ordered_rate(false, kMessages);
    const double ord = lci_ordered_rate(true, kMessages);
    bench::Table t({"completion policy", "msgs/s", "vs first-packet"});
    t.add_row({"first-packet (LCI)",
               std::to_string(static_cast<long long>(fp)), "1.00x"});
    t.add_row({"forced tag order",
               std::to_string(static_cast<long long>(ord)),
               bench::fmt_ratio(ord / fp)});
    std::printf("B. first-packet policy vs ordered completion\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // --- C: buffered-layer aggregation timeout (MPI-Probe) ---
  {
    graph::Csr g = graph::kron(bench::env_scale(9), 16.0);
    bench::Table t({"agg timeout (us)", "pagerank total(s)"});
    for (std::uint64_t timeout : {0ull, 50ull, 500ull, 5000ull}) {
      bench::RunSpec spec;
      spec.app = "pagerank";
      spec.backend = comm::BackendKind::MpiProbe;
      spec.hosts = 4;
      spec.pagerank_iters = 6;
      spec.fabric = fabric::omnipath_knl_config();
      // plumb the timeout through the backend options
      spec.mpi_personality = "default";
      // RunSpec has no field for the timeout; encode via environment-free
      // direct run: reuse aggregation default by custom spec field below.
      spec.aggregation_timeout_us = timeout;
      t.add_row({std::to_string(timeout),
                 bench::fmt_seconds(bench::run_app(g, spec).total_s)});
    }
    std::printf("C. MPI-Probe buffered-layer timeout sweep (Section "
                "III-B)\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // --- D: LCI receive-window size (the injection bound) ---
  {
    bench::Table t({"rx packets", "msgs/s"});
    for (std::size_t rx : {16u, 64u, 256u, 1024u}) {
      const double rate = lci_rate(8, rx, kMessages);
      t.add_row({std::to_string(rx),
                 std::to_string(static_cast<long long>(rate))});
    }
    std::printf("D. LCI packet-pool / receive-window size (flow control)\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // --- E: Gemini sparse vs dense vs adaptive signal modes (this repo's
  //        extension beyond the paper; cc has dense frontiers early) ---
  {
    graph::Csr g =
        graph::symmetrize(graph::kron(bench::env_scale(10), 16.0));
    bench::Table t({"mode", "total(s)", "bytes sent", "messages"});
    struct Mode {
      const char* label;
      double threshold;
    };
    for (const Mode& m : {Mode{"sparse (per-edge signals)", 2.0},
                          Mode{"dense (per-dst combined)", 0.0},
                          Mode{"adaptive (5% switch)", 0.05}}) {
      bench::RunSpec spec;
      spec.app = "cc";
      spec.engine = "gemini";
      spec.backend = comm::BackendKind::Lci;
      spec.hosts = 4;
      spec.gemini_dense_threshold = m.threshold;
      spec.fabric = fabric::omnipath_knl_config();
      const bench::RunResult r = bench::run_app(g, spec);
      t.add_row({m.label, bench::fmt_seconds(r.total_s),
                 bench::fmt_bytes(r.bytes), std::to_string(r.messages)});
    }
    std::printf("E. Gemini signal modes: dense pre-combining cuts traffic "
                "on dense frontiers\n");
    t.print(std::cout);
  }
  return 0;
}
