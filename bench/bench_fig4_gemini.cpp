// Figure 4: Gemini total execution time with LCI vs MPI-Probe runtimes.
//
// Paper shape: on kron30 and rmat28, where communication dominates, LCI
// clearly wins; across all apps at the largest host count the geomean
// communication speedup is ~2x, yielding ~1.64x execution-time speedup.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

int main() {
  // Scale 11 default: at smaller scales the per-round traffic is too small
  // for the runtimes to differentiate above scheduler noise (EXPERIMENTS.md).
  const unsigned scale = bench::env_scale(11);
  const int max_hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(6);

  std::printf("=== Figure 4: Gemini exec time - LCI vs MPI-Probe "
              "(THREAD_MULTIPLE) ===\n");
  std::printf("(graphs at scale %u, blocked edge-cut, stampede2-like "
              "fabric)\n\n", scale);

  const bench::ClusterProfile profile = bench::stampede2_like();
  std::vector<double> exec_speedups, comm_speedups;

  for (const char* gname : {"kron", "rmat"}) {
    graph::GenOptions opt;
    opt.make_weights = true;
    graph::Csr base = graph::by_name(gname, scale, opt);
    graph::Csr sym = graph::symmetrize(base);

    for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
      const graph::Csr& g = std::string(app) == "cc" ? sym : base;
      bench::Table table({"hosts", "lci(s)", "mpi(s)", "lci-comm(s)",
                          "mpi-comm(s)", "exec speedup", "comm speedup"});
      for (int hosts = 2; hosts <= max_hosts; hosts *= 2) {
        bench::RunSpec spec;
        spec.app = app;
        spec.engine = "gemini";
        spec.hosts = hosts;
        spec.threads = profile.compute_threads;
        spec.source = bench::choose_source(g);
        spec.pagerank_iters = pr_iters;
        spec.fabric = profile.fabric;
        // The paper's Gemini streams one signal per frontier out-edge; the
        // dense per-destination aggregation is this repo's extension and is
        // benchmarked separately in bench_ablation.
        spec.gemini_dense_threshold = 2.0;
        // Small per-thread batches reproduce the many-small-messages regime
        // that differentiates the runtimes at the paper's scale.
        spec.gemini_batch_bytes = 1024;

        spec.backend = comm::BackendKind::Lci;
        const bench::RunResult lci = bench::run_app(g, spec);
        spec.backend = comm::BackendKind::MpiProbe;
        const bench::RunResult mpi = bench::run_app(g, spec);

        table.add_row(
            {std::to_string(hosts), bench::fmt_seconds(lci.total_s),
             bench::fmt_seconds(mpi.total_s), bench::fmt_seconds(lci.comm_s),
             bench::fmt_seconds(mpi.comm_s),
             bench::fmt_ratio(mpi.total_s / lci.total_s),
             bench::fmt_ratio(mpi.comm_s / std::max(lci.comm_s, 1e-9))});
        if (hosts == max_hosts) {
          exec_speedups.push_back(mpi.total_s / lci.total_s);
          comm_speedups.push_back(mpi.comm_s / std::max(lci.comm_s, 1e-9));
        }
      }
      std::printf("--- %s / %s ---\n", gname, app);
      table.print(std::cout);
      std::printf("\n");
    }
  }

  std::printf("geomean at %d hosts: comm speedup %.2fx (paper: 2x), exec "
              "speedup %.2fx (paper: 1.64x)\n",
              max_hosts, bench::geomean(comm_speedups),
              bench::geomean(exec_speedups));
  return 0;
}
