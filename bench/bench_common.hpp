// Shared helpers for the benchmark binaries.
#pragma once

#include <cstdlib>
#include <string>

namespace lcr::bench {

/// Environment override helpers so every bench can be scaled up/down:
///   LCR_BENCH_SCALE  - log2 graph size (default per bench)
///   LCR_BENCH_HOSTS  - max simulated hosts (default per bench)
///   LCR_BENCH_PR_ITERS - pagerank iterations
inline unsigned env_scale(unsigned dflt) {
  if (const char* s = std::getenv("LCR_BENCH_SCALE"))
    return static_cast<unsigned>(std::atoi(s));
  return dflt;
}

inline int env_hosts(int dflt) {
  if (const char* s = std::getenv("LCR_BENCH_HOSTS")) return std::atoi(s);
  return dflt;
}

inline std::uint32_t env_pr_iters(std::uint32_t dflt) {
  if (const char* s = std::getenv("LCR_BENCH_PR_ITERS"))
    return static_cast<std::uint32_t>(std::atoi(s));
  return dflt;
}

}  // namespace lcr::bench
