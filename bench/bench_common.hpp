// Shared helpers for the benchmark binaries.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace lcr::bench {

/// Environment override helpers so every bench can be scaled up/down:
///   LCR_BENCH_SCALE  - log2 graph size (default per bench)
///   LCR_BENCH_HOSTS  - max simulated hosts (default per bench)
///   LCR_BENCH_PR_ITERS - pagerank iterations
inline unsigned env_scale(unsigned dflt) {
  if (const char* s = std::getenv("LCR_BENCH_SCALE"))
    return static_cast<unsigned>(std::atoi(s));
  return dflt;
}

inline int env_hosts(int dflt) {
  if (const char* s = std::getenv("LCR_BENCH_HOSTS")) return std::atoi(s);
  return dflt;
}

inline std::uint32_t env_pr_iters(std::uint32_t dflt) {
  if (const char* s = std::getenv("LCR_BENCH_PR_ITERS"))
    return static_cast<std::uint32_t>(std::atoi(s));
  return dflt;
}

/// LCR_BENCH_VERTS - vertex-count cap for vertex-sweep benches (the sweep
/// stops at the first scale whose 2^scale exceeds this). CI sets a small
/// cap so the gated sweep stays cheap; local runs default to 2^22.
inline std::uint64_t env_verts(std::uint64_t dflt) {
  if (const char* s = std::getenv("LCR_BENCH_VERTS"))
    return static_cast<std::uint64_t>(std::atoll(s));
  return dflt;
}

/// LCR_BENCH_DROP - fault-injection drop rate (0 = reliable fabric). A
/// non-zero rate also arms proportional dup/corrupt rates (chaos profile).
inline double env_drop(double dflt) {
  if (const char* s = std::getenv("LCR_BENCH_DROP")) return std::atof(s);
  return dflt;
}

/// LCR_BENCH_APP - restrict a multi-app bench to one app (empty = all).
inline std::string env_app() {
  if (const char* s = std::getenv("LCR_BENCH_APP")) return s;
  return {};
}

/// Chrome-trace output path: `--trace-out <file>` beats env LCR_TRACE_OUT;
/// empty means tracing stays off.
inline std::string trace_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--trace-out") return argv[i + 1];
  if (const char* s = std::getenv("LCR_TRACE_OUT")) return s;
  return {};
}

}  // namespace lcr::bench
