// Host-count scaling: flat vs hierarchical OOB collectives under the ULT
// host scheduler (DESIGN.md §16).
//
// The paper's runs span hundreds of hosts; simulating them demands (a) hosts
// as cooperative fibers over a small worker pool instead of OS thread groups
// and (b) an O(log N) control plane — the flat sense barrier serializes one
// fetch_add chain per round and the flat allreduce pays THREE such barriers
// around shared scratch.
//
// For hosts in {8, 16, 64, 128, 256} x {flat, tree} this bench reports:
//   * barrier(us)   - mean OOB barrier latency (host 0's wall / rounds)
//   * allreduce(us) - mean u64 sum-allreduce latency
//   * bfs(s)        - small end-to-end BFS wall time (LCI backend)
// plus the tree/flat speedup per host count. Shape to check: tree wins on
// both collective latencies from 64 hosts up, and the gap widens with N.
//
// `--json-out <file>` (or env LCR_BENCH_JSON) writes the measurements as a
// JSON artifact for CI history (archived by the perf-smoke job).
// LCR_BENCH_HOSTS caps the sweep (default 256).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "abelian/cluster.hpp"
#include "apps/reference.hpp"
#include "bench/bench_common.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "fabric/config.hpp"
#include "graph/generators.hpp"
#include "runtime/timer.hpp"

using namespace lcr;

namespace {

constexpr int kBarrierRounds = 200;
constexpr int kAllreduceRounds = 200;

struct Entry {
  int hosts = 0;
  std::string coll;  // "flat" | "tree"
  double barrier_us = 0.0;
  double allreduce_us = 0.0;
  double bfs_s = 0.0;
  std::uint64_t sched_yields = 0;
  std::uint64_t sched_switches = 0;
};

abelian::ClusterOptions ult_options(const std::string& coll) {
  abelian::ClusterOptions opts;
  opts.host_sched = abelian::ClusterOptions::HostSched::kUlt;
  opts.oob_coll = coll == "tree" ? abelian::ClusterOptions::OobColl::kTree
                                 : abelian::ClusterOptions::OobColl::kFlat;
  return opts;
}

/// Mean latency of the OOB barrier and the u64 sum-allreduce with all
/// `hosts` participating as fibers. Timed on host 0 across the whole loop;
/// per-op cost includes the fiber scheduling needed to cycle every host
/// through the collective, which is exactly the cost a BSP round pays.
void collective_latency(int hosts, const std::string& coll, Entry* e) {
  abelian::Cluster cluster(hosts, fabric::test_config(), ult_options(coll));
  double barrier_s = 0.0;
  double allreduce_s = 0.0;
  cluster.run([&](int h) {
    rt::Timer timer;
    for (int r = 0; r < kBarrierRounds; ++r) cluster.oob_barrier();
    if (h == 0) barrier_s = timer.elapsed_s();
    cluster.oob_barrier();
    rt::Timer timer2;
    std::uint64_t acc = 0;
    for (int r = 0; r < kAllreduceRounds; ++r)
      acc ^= cluster.oob_allreduce_sum(std::uint64_t{1});
    if (h == 0) allreduce_s = timer2.elapsed_s();
    if (acc == std::uint64_t{0xDEAD}) std::printf("unreachable\n");
  });
  e->barrier_us = barrier_s / kBarrierRounds * 1e6;
  e->allreduce_us = allreduce_s / kAllreduceRounds * 1e6;
}

/// Small end-to-end BFS: the collective plane's share of a real BSP app.
void bfs_e2e(const graph::Csr& g, int hosts, const std::string& coll,
             Entry* e) {
  bench::RunSpec spec;
  spec.app = "bfs";
  spec.hosts = hosts;
  spec.threads = 1;
  spec.host_sched = "ult";
  spec.oob_coll = coll;
  spec.source = bench::choose_source(g);
  const bench::RunResult r = bench::run_app(g, spec);
  e->bfs_s = r.total_s;
  const auto yields = r.telemetry.find("sched.yields");
  if (yields != r.telemetry.end()) e->sched_yields = yields->second;
  const auto switches = r.telemetry.find("sched.switches");
  if (switches != r.telemetry.end()) e->sched_switches = switches->second;
}

std::string json_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json-out") return argv[i + 1];
  if (const char* s = std::getenv("LCR_BENCH_JSON")) return s;
  return {};
}

void write_json(const std::string& path, const std::vector<Entry>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"host_scaling\",\n  \"entries\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Entry& e = all[i];
    std::fprintf(f,
                 "    {\"hosts\": %d, \"coll\": \"%s\", "
                 "\"barrier_us\": %.3f, \"allreduce_us\": %.3f, "
                 "\"bfs_s\": %.6f, \"sched_yields\": %llu, "
                 "\"sched_switches\": %llu}%s\n",
                 e.hosts, e.coll.c_str(), e.barrier_us, e.allreduce_us,
                 e.bfs_s, static_cast<unsigned long long>(e.sched_yields),
                 static_cast<unsigned long long>(e.sched_switches),
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_out(argc, argv);
  const int max_hosts = bench::env_hosts(256);

  std::printf("=== Host-count scaling: flat vs tree OOB collectives, hosts "
              "as ULT fibers ===\n");
  std::printf("(%d barrier + %d allreduce rounds per cell; BFS on rmat "
              "scale 9, LCI backend, 1 compute thread/host)\n\n",
              kBarrierRounds, kAllreduceRounds);

  graph::GenOptions opt;
  opt.seed = 1234;
  graph::Csr g = graph::rmat(9, 8.0, opt);

  std::vector<Entry> entries;
  bench::Table table({"hosts", "coll", "barrier(us)", "allreduce(us)",
                      "bfs(s)", "barrier tree/flat", "allred tree/flat"});
  for (int hosts : {8, 16, 64, 128, 256}) {
    if (hosts > max_hosts) break;
    Entry flat_entry;
    for (const char* coll : {"flat", "tree"}) {
      Entry e;
      e.hosts = hosts;
      e.coll = coll;
      collective_latency(hosts, coll, &e);
      bfs_e2e(g, hosts, coll, &e);
      char bspeed[16] = "-";
      char aspeed[16] = "-";
      if (e.coll == "tree") {
        std::snprintf(bspeed, sizeof(bspeed), "%.2fx",
                      flat_entry.barrier_us / std::max(e.barrier_us, 1e-9));
        std::snprintf(aspeed, sizeof(aspeed), "%.2fx",
                      flat_entry.allreduce_us /
                          std::max(e.allreduce_us, 1e-9));
      } else {
        flat_entry = e;
      }
      char barrier_buf[32], allred_buf[32], bfs_buf[32];
      std::snprintf(barrier_buf, sizeof(barrier_buf), "%.1f", e.barrier_us);
      std::snprintf(allred_buf, sizeof(allred_buf), "%.1f", e.allreduce_us);
      std::snprintf(bfs_buf, sizeof(bfs_buf), "%.3f", e.bfs_s);
      table.add_row({std::to_string(hosts), coll, barrier_buf, allred_buf,
                     bfs_buf, bspeed, aspeed});
      entries.push_back(e);
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: the allreduce gap is the headline (flat "
              "pays 3 full barrier rounds per op, tree pays one up+down "
              "wave) - expect ~2x at 16+ hosts. The bare tree barrier can "
              "trail flat on a near-serial box (flat's fetch_add chain has "
              "no contention to lose); apps only issue allreduces at round "
              "boundaries, so bfs(s) should still favor tree at 64+ hosts. "
              "bfs(s) narrows the collective gap - collectives are only the "
              "round boundaries of the app.\n");
  if (!json_path.empty()) write_json(json_path, entries);
  return 0;
}
