// Host-count scaling: flat vs hierarchical OOB collectives under the ULT
// host scheduler (DESIGN.md §16).
//
// The paper's runs span hundreds of hosts; simulating them demands (a) hosts
// as cooperative fibers over a small worker pool instead of OS thread groups
// and (b) an O(log N) control plane — the flat sense barrier serializes one
// fetch_add chain per round and the flat allreduce pays THREE such barriers
// around shared scratch.
//
// For hosts in {8, 16, 64, 128, 256} x {flat, tree} this bench reports:
//   * barrier(us)   - mean OOB barrier latency (host 0's wall / rounds)
//   * allreduce(us) - mean u64 sum-allreduce latency
//   * bfs(s)        - small end-to-end BFS wall time (LCI backend)
// plus the tree/flat speedup per host count. Shape to check: tree wins on
// both collective latencies from 64 hosts up, and the gap widens with N.
//
// A second sweep scales the *graph* instead of the host count: rmat at
// 2^{16,18,20,22} vertices (capped by LCR_BENCH_VERTS), reporting the
// compressed lid-map metadata footprint (DESIGN.md §17) - bytes per mirror
// and the ratio vs the seed vector/hash-map representation - plus BFS and
// PageRank end-to-end walls. The byte counts are deterministic (seeded
// generator, exact-capacity builders), so CI gates on them via
// `--mem-baseline bench/mem_baseline.json` (refresh with `--mem-write`);
// wall times are reported but never gated on this ±15% box.
//
// `--json-out <file>` (or env LCR_BENCH_JSON) writes the measurements as a
// JSON artifact for CI history (archived by the perf-smoke job).
// LCR_BENCH_HOSTS caps the host sweep (default 256).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "abelian/cluster.hpp"
#include "apps/reference.hpp"
#include "bench/bench_common.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "fabric/config.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "runtime/timer.hpp"

using namespace lcr;

namespace {

constexpr int kBarrierRounds = 200;
constexpr int kAllreduceRounds = 200;

struct Entry {
  int hosts = 0;
  std::string coll;  // "flat" | "tree"
  double barrier_us = 0.0;
  double allreduce_us = 0.0;
  double bfs_s = 0.0;
  std::uint64_t sched_yields = 0;
  std::uint64_t sched_switches = 0;
  std::uint64_t graph_mem_bytes = 0;  // summed across hosts, deterministic
  double bytes_per_mirror = 0.0;
};

/// Cluster-wide lid-metadata footprint of a partition (DESIGN.md §17).
struct MemStats {
  std::uint64_t mem_bytes = 0;
  std::uint64_t mem_bytes_uncompressed = 0;
  std::uint64_t mirrors = 0;

  double bytes_per_mirror() const {
    return mirrors == 0 ? 0.0
                        : static_cast<double>(mem_bytes) /
                              static_cast<double>(mirrors);
  }
  double ratio() const {
    return mem_bytes == 0 ? 0.0
                          : static_cast<double>(mem_bytes_uncompressed) /
                                static_cast<double>(mem_bytes);
  }
};

MemStats partition_mem(const graph::Csr& g, int hosts) {
  MemStats m;
  const auto parts = graph::partition(
      g, hosts, graph::PartitionPolicy::CartesianVertexCut);
  for (const auto& p : parts) {
    m.mem_bytes += p.mem_bytes();
    m.mem_bytes_uncompressed += p.mem_bytes_uncompressed();
    m.mirrors += p.num_local - p.num_masters;
  }
  return m;
}

struct VertexEntry {
  unsigned scale = 0;
  std::uint64_t verts = 0;
  std::uint64_t edges = 0;
  int mem_hosts = 0;
  int e2e_hosts = 0;
  MemStats mem;
  double bfs_s = 0.0;
  double pagerank_s = 0.0;
};

abelian::ClusterOptions ult_options(const std::string& coll) {
  abelian::ClusterOptions opts;
  opts.host_sched = abelian::ClusterOptions::HostSched::kUlt;
  opts.oob_coll = coll == "tree" ? abelian::ClusterOptions::OobColl::kTree
                                 : abelian::ClusterOptions::OobColl::kFlat;
  return opts;
}

/// Mean latency of the OOB barrier and the u64 sum-allreduce with all
/// `hosts` participating as fibers. Timed on host 0 across the whole loop;
/// per-op cost includes the fiber scheduling needed to cycle every host
/// through the collective, which is exactly the cost a BSP round pays.
void collective_latency(int hosts, const std::string& coll, Entry* e) {
  abelian::Cluster cluster(hosts, fabric::test_config(), ult_options(coll));
  double barrier_s = 0.0;
  double allreduce_s = 0.0;
  cluster.run([&](int h) {
    rt::Timer timer;
    for (int r = 0; r < kBarrierRounds; ++r) cluster.oob_barrier();
    if (h == 0) barrier_s = timer.elapsed_s();
    cluster.oob_barrier();
    rt::Timer timer2;
    std::uint64_t acc = 0;
    for (int r = 0; r < kAllreduceRounds; ++r)
      acc ^= cluster.oob_allreduce_sum(std::uint64_t{1});
    if (h == 0) allreduce_s = timer2.elapsed_s();
    if (acc == std::uint64_t{0xDEAD}) std::printf("unreachable\n");
  });
  e->barrier_us = barrier_s / kBarrierRounds * 1e6;
  e->allreduce_us = allreduce_s / kAllreduceRounds * 1e6;
}

/// Small end-to-end BFS: the collective plane's share of a real BSP app.
void bfs_e2e(const graph::Csr& g, int hosts, const std::string& coll,
             Entry* e) {
  bench::RunSpec spec;
  spec.app = "bfs";
  spec.hosts = hosts;
  spec.threads = 1;
  spec.host_sched = "ult";
  spec.oob_coll = coll;
  spec.source = bench::choose_source(g);
  const bench::RunResult r = bench::run_app(g, spec);
  e->bfs_s = r.total_s;
  const auto yields = r.telemetry.find("sched.yields");
  if (yields != r.telemetry.end()) e->sched_yields = yields->second;
  const auto switches = r.telemetry.find("sched.switches");
  if (switches != r.telemetry.end()) e->sched_switches = switches->second;
}

std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == flag) return argv[i + 1];
  return {};
}

std::string json_out(int argc, char** argv) {
  const std::string v = arg_value(argc, argv, "--json-out");
  if (!v.empty()) return v;
  if (const char* s = std::getenv("LCR_BENCH_JSON")) return s;
  return {};
}

void write_json(const std::string& path, const std::vector<Entry>& all,
                const std::vector<VertexEntry>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"host_scaling\",\n  \"entries\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Entry& e = all[i];
    std::fprintf(f,
                 "    {\"hosts\": %d, \"coll\": \"%s\", "
                 "\"barrier_us\": %.3f, \"allreduce_us\": %.3f, "
                 "\"bfs_s\": %.6f, \"sched_yields\": %llu, "
                 "\"sched_switches\": %llu, \"graph_mem_bytes\": %llu, "
                 "\"bytes_per_mirror\": %.3f}%s\n",
                 e.hosts, e.coll.c_str(), e.barrier_us, e.allreduce_us,
                 e.bfs_s, static_cast<unsigned long long>(e.sched_yields),
                 static_cast<unsigned long long>(e.sched_switches),
                 static_cast<unsigned long long>(e.graph_mem_bytes),
                 e.bytes_per_mirror, i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"vertex_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const VertexEntry& v = sweep[i];
    std::fprintf(
        f,
        "    {\"scale\": %u, \"verts\": %llu, \"edges\": %llu, "
        "\"mem_hosts\": %d, \"e2e_hosts\": %d, \"graph_mem_bytes\": %llu, "
        "\"graph_mem_bytes_uncompressed\": %llu, \"mirrors\": %llu, "
        "\"bytes_per_mirror\": %.3f, \"ratio\": %.3f, \"bfs_s\": %.6f, "
        "\"pagerank_s\": %.6f}%s\n",
        v.scale, static_cast<unsigned long long>(v.verts),
        static_cast<unsigned long long>(v.edges), v.mem_hosts, v.e2e_hosts,
        static_cast<unsigned long long>(v.mem.mem_bytes),
        static_cast<unsigned long long>(v.mem.mem_bytes_uncompressed),
        static_cast<unsigned long long>(v.mem.mirrors),
        v.mem.bytes_per_mirror(), v.mem.ratio(), v.bfs_s, v.pagerank_s,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json written to %s\n", path.c_str());
}

// Memory-baseline gate (same flat-JSON machinery as the fig6 perf guard):
// keys are "v<scale>_h<hosts>#bytes_per_mirror" (regresses upward) and
// "...#ratio" (regresses downward). Byte counts are deterministic, so the
// headroom only covers representation drift, not machine noise.
std::map<std::string, double> load_baseline(const std::string& path) {
  std::map<std::string, double> vals;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    char key[64];
    double value = 0.0;
    if (std::sscanf(line.c_str(), " \"%63[^\"]\": %lf", key, &value) == 2)
      vals[key] = value;
  }
  return vals;
}

bool write_baseline(const std::string& path,
                    const std::map<std::string, double>& vals) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::size_t i = 0;
  for (const auto& [key, value] : vals)
    std::fprintf(f, "  \"%s\": %.6f%s\n", key.c_str(), value,
                 ++i < vals.size() ? "," : "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_out(argc, argv);
  const int max_hosts = bench::env_hosts(256);
  const std::uint64_t max_verts = bench::env_verts(std::uint64_t{1} << 22);
  std::string mem_baseline_path = arg_value(argc, argv, "--mem-baseline");
  if (mem_baseline_path.empty())
    if (const char* s = std::getenv("LCR_MEM_BASELINE"))
      mem_baseline_path = s;
  const std::string mem_write = arg_value(argc, argv, "--mem-write");

  std::printf("=== Host-count scaling: flat vs tree OOB collectives, hosts "
              "as ULT fibers ===\n");
  std::printf("(%d barrier + %d allreduce rounds per cell; BFS on rmat "
              "scale 9, LCI backend, 1 compute thread/host)\n\n",
              kBarrierRounds, kAllreduceRounds);

  graph::GenOptions opt;
  opt.seed = 1234;
  graph::Csr g = graph::rmat(9, 8.0, opt);

  std::vector<Entry> entries;
  bench::Table table({"hosts", "coll", "barrier(us)", "allreduce(us)",
                      "bfs(s)", "barrier tree/flat", "allred tree/flat"});
  for (int hosts : {8, 16, 64, 128, 256}) {
    if (hosts > max_hosts) break;
    const MemStats host_mem = partition_mem(g, hosts);
    Entry flat_entry;
    for (const char* coll : {"flat", "tree"}) {
      Entry e;
      e.hosts = hosts;
      e.coll = coll;
      e.graph_mem_bytes = host_mem.mem_bytes;
      e.bytes_per_mirror = host_mem.bytes_per_mirror();
      collective_latency(hosts, coll, &e);
      bfs_e2e(g, hosts, coll, &e);
      char bspeed[16] = "-";
      char aspeed[16] = "-";
      if (e.coll == "tree") {
        std::snprintf(bspeed, sizeof(bspeed), "%.2fx",
                      flat_entry.barrier_us / std::max(e.barrier_us, 1e-9));
        std::snprintf(aspeed, sizeof(aspeed), "%.2fx",
                      flat_entry.allreduce_us /
                          std::max(e.allreduce_us, 1e-9));
      } else {
        flat_entry = e;
      }
      char barrier_buf[32], allred_buf[32], bfs_buf[32];
      std::snprintf(barrier_buf, sizeof(barrier_buf), "%.1f", e.barrier_us);
      std::snprintf(allred_buf, sizeof(allred_buf), "%.1f", e.allreduce_us);
      std::snprintf(bfs_buf, sizeof(bfs_buf), "%.3f", e.bfs_s);
      table.add_row({std::to_string(hosts), coll, barrier_buf, allred_buf,
                     bfs_buf, bspeed, aspeed});
      entries.push_back(e);
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: the allreduce gap is the headline (flat "
              "pays 3 full barrier rounds per op, tree pays one up+down "
              "wave) - expect ~2x at 16+ hosts. The bare tree barrier can "
              "trail flat on a near-serial box (flat's fetch_add chain has "
              "no contention to lose); apps only issue allreduces at round "
              "boundaries, so bfs(s) should still favor tree at 64+ hosts. "
              "bfs(s) narrows the collective gap - collectives are only the "
              "round boundaries of the app.\n");

  // ---- vertex-count sweep: compressed metadata footprint + e2e walls ----
  std::printf("\n=== Vertex-count scaling: compressed lid-map metadata "
              "(DESIGN.md \xc2\xa7" "17) ===\n");
  const int mem_hosts = std::min(128, max_hosts);
  const int e2e_hosts = std::min(8, max_hosts);
  std::printf("(rmat E/V~8, metadata partitioned at %d hosts; BFS + "
              "PageRank at %d hosts, ULT fibers, LCI backend; cap "
              "LCR_BENCH_VERTS=%llu)\n\n",
              mem_hosts, e2e_hosts,
              static_cast<unsigned long long>(max_verts));
  std::vector<VertexEntry> sweep;
  std::map<std::string, double> measured_mem;
  bench::Table vtable({"scale", "verts", "edges", "mem/host", "bytes/mirror",
                       "vs uncompressed", "bfs(s)", "pagerank(s)"});
  for (unsigned scale : {16u, 18u, 20u, 22u}) {
    if ((std::uint64_t{1} << scale) > max_verts) break;
    graph::GenOptions vopt;
    vopt.seed = 1234;
    const graph::Csr vg = graph::rmat(scale, 8.0, vopt);

    VertexEntry v;
    v.scale = scale;
    v.verts = vg.num_nodes();
    v.edges = vg.num_edges();
    v.mem_hosts = mem_hosts;
    v.e2e_hosts = e2e_hosts;
    v.mem = partition_mem(vg, mem_hosts);

    bench::RunSpec spec;
    spec.app = "bfs";
    spec.hosts = e2e_hosts;
    spec.threads = 1;
    spec.host_sched = "ult";
    spec.source = bench::choose_source(vg);
    v.bfs_s = bench::run_app(vg, spec).total_s;
    spec.app = "pagerank";
    spec.pagerank_iters = bench::env_pr_iters(5);
    v.pagerank_s = bench::run_app(vg, spec).total_s;

    const std::string key =
        "v" + std::to_string(scale) + "_h" + std::to_string(mem_hosts);
    measured_mem[key + "#bytes_per_mirror"] = v.mem.bytes_per_mirror();
    measured_mem[key + "#ratio"] = v.mem.ratio();

    char mem_buf[32], bpm_buf[32], ratio_buf[32], bfs_buf[32], pr_buf[32];
    std::snprintf(mem_buf, sizeof(mem_buf), "%.1fKiB",
                  static_cast<double>(v.mem.mem_bytes) / mem_hosts / 1024.0);
    std::snprintf(bpm_buf, sizeof(bpm_buf), "%.2f",
                  v.mem.bytes_per_mirror());
    std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2fx", v.mem.ratio());
    std::snprintf(bfs_buf, sizeof(bfs_buf), "%.3f", v.bfs_s);
    std::snprintf(pr_buf, sizeof(pr_buf), "%.3f", v.pagerank_s);
    vtable.add_row({std::to_string(scale), std::to_string(v.verts),
                    std::to_string(v.edges), mem_buf, bpm_buf, ratio_buf,
                    bfs_buf, pr_buf});
    sweep.push_back(v);
  }
  vtable.print(std::cout);
  std::printf("\nshape to check: bytes/mirror stays flat (~2-4) as the "
              "graph grows and the ratio vs the seed vector/hash-map "
              "representation stays >= 4x; walls grow ~linearly in edges.\n");

  if (!mem_write.empty()) {
    if (!write_baseline(mem_write, measured_mem)) {
      std::fprintf(stderr, "failed to write %s\n", mem_write.c_str());
      return 1;
    }
    std::printf("memory baseline written to %s\n", mem_write.c_str());
  }
  if (!mem_baseline_path.empty()) {
    const auto baseline = load_baseline(mem_baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "no baseline entries in %s\n",
                   mem_baseline_path.c_str());
      return 1;
    }
    int regressions = 0;
    for (const auto& [key, value] : measured_mem) {
      const auto it = baseline.find(key);
      if (it == baseline.end()) continue;
      // bytes/mirror regresses upward, the compression ratio downward. The
      // counts are deterministic; 10% headroom only absorbs representation
      // drift (e.g. an extra anchor array), never machine noise.
      const bool lower_bound =
          key.size() > 6 && key.compare(key.size() - 6, 6, "#ratio") == 0;
      const double limit = lower_bound ? it->second * 0.90
                                       : it->second * 1.10 + 0.05;
      const bool bad = lower_bound ? value < limit : value > limit;
      std::printf("  [mem] %-32s %.3f vs baseline %.3f (limit %s%.3f) %s\n",
                  key.c_str(), value, it->second, lower_bound ? ">=" : "<=",
                  limit, bad ? "REGRESSED" : "ok");
      if (bad) ++regressions;
    }
    if (regressions > 0) {
      std::fprintf(stderr, "%d memory metric(s) regressed over %s\n",
                   regressions, mem_baseline_path.c_str());
      return 1;
    }
  }

  if (!json_path.empty()) write_json(json_path, entries, sweep);
  return 0;
}
