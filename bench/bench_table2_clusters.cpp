// Table II (+ Table III): Abelian total execution time on the rmat graph at
// the maximum host count, LCI vs MPI-Probe, on both cluster personalities.
//
// Paper shape (Table II): LCI <= MPI-Probe on both clusters; the ranking is
// portable from the Omni-Path/KNL cluster to the Infiniband/SandyBridge one
// (Section IV-B3: "the results show a similar trend, LCI performs better in
// all tested cases").
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

int main() {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(8);

  std::printf("=== Table III: cluster configurations ===\n");
  for (const auto& profile : bench::all_profiles())
    std::printf("  %s\n", bench::format_profile(profile).c_str());

  std::printf("\n=== Table II: Abelian exec time (s), rmat at %d hosts "
              "===\n\n", hosts);

  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::rmat(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  bench::Table table({"app", "s2-like LCI", "s2-like MPI-Probe",
                      "s1-like LCI", "s1-like MPI-Probe"});
  for (const char* app : {"bfs", "cc", "pagerank", "sssp"}) {
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    std::vector<std::string> row{app};
    for (const auto& profile : bench::all_profiles()) {
      for (auto kind : {comm::BackendKind::Lci, comm::BackendKind::MpiProbe}) {
        bench::RunSpec spec;
        spec.app = app;
        spec.backend = kind;
        spec.hosts = hosts;
        spec.threads = profile.compute_threads;
        spec.source = bench::choose_source(g);
        spec.pagerank_iters = pr_iters;
        spec.fabric = profile.fabric;
        row.push_back(bench::fmt_seconds(bench::run_app(g, spec).total_s));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nshape to check: LCI <= MPI-Probe in each cluster column "
              "pair.\n");
  return 0;
}
