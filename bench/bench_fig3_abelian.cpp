// Figure 3: Abelian total execution time with LCI, MPI-Probe and MPI-RMA
// communication layers, across apps x graphs x host counts.
//
// Paper shape to reproduce: LCI achieves comparable or better performance
// than MPI-RMA and clearly beats MPI-Probe; the gap grows with more
// communication rounds (pagerank). At the largest host count the paper
// reports geomean speedups of 1.34x over MPI-Probe and 1.08x over MPI-RMA.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

int main() {
  const unsigned scale = bench::env_scale(10);
  const int max_hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(8);

  std::printf("=== Figure 3: Abelian exec time - LCI vs MPI-Probe vs "
              "MPI-RMA ===\n");
  std::printf("(graphs at scale %u, vertex-cut partition, stampede2-like "
              "fabric)\n\n", scale);

  const bench::ClusterProfile profile = bench::stampede2_like();
  const comm::BackendKind backends[] = {comm::BackendKind::Lci,
                                        comm::BackendKind::MpiProbe,
                                        comm::BackendKind::MpiRma};

  std::vector<double> speedup_vs_probe, speedup_vs_rma;

  for (const char* gname : {"rmat", "kron", "web"}) {
    graph::GenOptions opt;
    opt.make_weights = true;
    graph::Csr base = graph::by_name(gname, scale, opt);
    graph::Csr sym = graph::symmetrize(base);

    for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
      const graph::Csr& g = std::string(app) == "cc" ? sym : base;
      bench::Table table({"hosts", "lci(s)", "mpi-probe(s)", "mpi-rma(s)",
                          "lci vs probe", "lci vs rma"});
      for (int hosts = 2; hosts <= max_hosts; hosts *= 2) {
        double times[3] = {0, 0, 0};
        for (int b = 0; b < 3; ++b) {
          bench::RunSpec spec;
          spec.app = app;
          spec.backend = backends[b];
          spec.policy = graph::PartitionPolicy::CartesianVertexCut;
          spec.hosts = hosts;
          spec.threads = profile.compute_threads;
          spec.source = bench::choose_source(g);
          spec.pagerank_iters = pr_iters;
          spec.fabric = profile.fabric;
          times[b] = bench::run_app(g, spec).total_s;
        }
        table.add_row({std::to_string(hosts), bench::fmt_seconds(times[0]),
                       bench::fmt_seconds(times[1]),
                       bench::fmt_seconds(times[2]),
                       bench::fmt_ratio(times[1] / times[0]),
                       bench::fmt_ratio(times[2] / times[0])});
        if (hosts == max_hosts) {
          speedup_vs_probe.push_back(times[1] / times[0]);
          speedup_vs_rma.push_back(times[2] / times[0]);
        }
      }
      std::printf("--- %s / %s ---\n", gname, app);
      table.print(std::cout);
      std::printf("\n");
    }
  }

  std::printf("geomean LCI speedup at %d hosts: %.2fx over MPI-Probe "
              "(paper: 1.34x), %.2fx over MPI-RMA (paper: 1.08x)\n",
              max_hosts, bench::geomean(speedup_vs_probe),
              bench::geomean(speedup_vs_rma));
  return 0;
}
