// Figure 1: latency and message-rate microbenchmark.
//
// Compares three interfaces on a 2-host fabric, exactly as the paper does:
//   no-probe : MPI_Isend / pre-posted MPI_Irecv with known size and tag
//   probe    : MPI_Iprobe with wildcards, then MPI_Irecv (Abelian's receive
//              path under MPI, Section III-B)
//   queue    : LCI SEND-ENQ / RECV-DEQ (Section III-D)
//
// Both endpoints are driven from one OS thread (all operations are
// non-blocking), so the numbers measure the pure software path of each
// interface rather than scheduler noise - which is what Figure 1 isolates.
// The paper reports "up to a factor of 3.5x" latency improvement of queue
// over probe; EXPERIMENTS.md records what this reproduction measures.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_support/table.hpp"
#include "fabric/fabric.hpp"
#include "lci/queue.hpp"
#include "mpilite/comm.hpp"
#include "runtime/timer.hpp"

using namespace lcr;

namespace {

constexpr int kIters = 2000;
constexpr int kWarmup = 200;

/// Round-trip latency / 2, in microseconds.
double lat_us(std::uint64_t total_ns, int iters) {
  return static_cast<double>(total_ns) / iters / 2.0 / 1000.0;
}

double bench_mpi_noprobe(fabric::Fabric& fab, std::size_t size) {
  mpi::Comm c0(fab, 0, mpi::default_personality(),
               mpi::ThreadLevel::Funneled);
  mpi::Comm c1(fab, 1, mpi::default_personality(),
               mpi::ThreadLevel::Funneled);
  std::vector<char> sbuf(size, 'a');
  std::vector<char> rbuf(size);
  rt::Timer timer;
  for (int i = 0; i < kIters + kWarmup; ++i) {
    if (i == kWarmup) timer.reset();
    // 0 -> 1 with a pre-posted receive of known size/source/tag.
    mpi::Request r1 = c1.irecv(rbuf.data(), size, 0, 1);
    mpi::Request s0 = c0.isend(sbuf.data(), size, 1, 1);
    while (!c1.test(r1)) c0.progress();
    c0.wait(s0);
    // 1 -> 0.
    mpi::Request r0 = c0.irecv(rbuf.data(), size, 1, 1);
    mpi::Request s1 = c1.isend(sbuf.data(), size, 0, 1);
    while (!c0.test(r0)) c1.progress();
    c1.wait(s1);
  }
  return lat_us(timer.elapsed_ns(), kIters);
}

double bench_mpi_probe(fabric::Fabric& fab, std::size_t size) {
  mpi::Comm c0(fab, 0, mpi::default_personality(),
               mpi::ThreadLevel::Funneled);
  mpi::Comm c1(fab, 1, mpi::default_personality(),
               mpi::ThreadLevel::Funneled);
  std::vector<char> sbuf(size, 'a');
  std::vector<char> rbuf(size);
  auto probe_recv = [&](mpi::Comm& me, mpi::Comm& peer) {
    mpi::Status st;
    while (!me.iprobe(mpi::kAnySource, mpi::kAnyTag, &st)) peer.progress();
    mpi::Request r = me.irecv(rbuf.data(), st.size, st.source, st.tag);
    while (!me.test(r)) peer.progress();
  };
  rt::Timer timer;
  for (int i = 0; i < kIters + kWarmup; ++i) {
    if (i == kWarmup) timer.reset();
    mpi::Request s0 = c0.isend(sbuf.data(), size, 1, 1);
    probe_recv(c1, c0);
    c0.wait(s0);
    mpi::Request s1 = c1.isend(sbuf.data(), size, 0, 1);
    probe_recv(c0, c1);
    c1.wait(s1);
  }
  return lat_us(timer.elapsed_ns(), kIters);
}

double bench_lci_queue(fabric::Fabric& fab, std::size_t size) {
  lci::Queue q0(fab, 0, {});
  lci::Queue q1(fab, 1, {});
  std::vector<char> sbuf(size, 'a');
  auto send = [&](lci::Queue& q, fabric::Rank dst) {
    lci::Request req;
    while (!q.send_enq(sbuf.data(), size, dst, 1, req)) q.progress();
    while (!req.done()) q.progress();
  };
  auto recv = [&](lci::Queue& me, lci::Queue& peer) {
    lci::Request req;
    me.progress();
    while (!me.recv_deq(req)) {
      peer.progress();
      me.progress();
    }
    while (!req.done()) {
      peer.progress();
      me.progress();
    }
    me.release(req);
  };
  rt::Timer timer;
  for (int i = 0; i < kIters + kWarmup; ++i) {
    if (i == kWarmup) timer.reset();
    send(q0, 1);
    recv(q1, q0);
    send(q1, 0);
    recv(q0, q1);
  }
  return lat_us(timer.elapsed_ns(), kIters);
}

// --- Message rate: sender pumps a window of small messages; receiver
// drains; measure messages/second including completion processing. ---

double rate_mpi_probe(fabric::Fabric& fab, int count) {
  mpi::Comm c0(fab, 0, mpi::default_personality(),
               mpi::ThreadLevel::Funneled);
  mpi::Comm c1(fab, 1, mpi::default_personality(),
               mpi::ThreadLevel::Funneled);
  const std::uint64_t payload = 42;
  std::uint64_t sink = 0;
  rt::Timer timer;
  int sent = 0;
  int received = 0;
  std::vector<mpi::Request> pending;
  while (received < count) {
    for (int burst = 0; burst < 16 && sent < count; ++burst, ++sent)
      pending.push_back(c0.isend(&payload, sizeof(payload), 1, sent & 0xFF));
    mpi::Status st;
    while (c1.iprobe(mpi::kAnySource, mpi::kAnyTag, &st)) {
      mpi::Request r = c1.irecv(&sink, sizeof(sink), st.source, st.tag);
      while (!c1.test(r)) c0.progress();
      ++received;
    }
    c0.progress();
  }
  for (auto& req : pending) c0.wait(req);
  return count / timer.elapsed_s();
}

double rate_lci_queue(fabric::Fabric& fab, int count) {
  lci::Queue q0(fab, 0, {});
  lci::Queue q1(fab, 1, {});
  const std::uint64_t payload = 42;
  rt::Timer timer;
  int sent = 0;
  int received = 0;
  std::vector<std::unique_ptr<lci::Request>> reqs;
  while (received < count) {
    for (int burst = 0; burst < 16 && sent < count; ++burst) {
      auto req = std::make_unique<lci::Request>();
      if (!q0.send_enq(&payload, sizeof(payload), 1,
                       static_cast<std::uint32_t>(sent & 0xFF), *req))
        break;
      ++sent;
      reqs.push_back(std::move(req));
    }
    q1.progress();
    lci::Request in;
    while (q1.recv_deq(in)) {
      q1.release(in);
      ++received;
    }
    q0.progress();
  }
  return count / timer.elapsed_s();
}

// --- Pending-peer sweep: P peers send to rank 0; the receiver consumes the
// messages in the WORST order for MPI matching (newest first), so every
// receive scans the whole unexpected queue - the "many concurrent pending
// receives" cost of Section I. LCI's first-packet policy is O(1) regardless.

double pending_mpi_us(int peers, int rounds) {
  fabric::FabricConfig cfg = fabric::omnipath_knl_config();
  cfg.wire_latency = std::chrono::nanoseconds(0);
  cfg.bandwidth_Bps = 0.0;
  cfg.default_rx_buffers = static_cast<std::size_t>(peers) + 32;
  fabric::Fabric fab(static_cast<std::size_t>(peers) + 1, cfg);
  std::vector<std::unique_ptr<mpi::Comm>> comms;
  for (int r = 0; r <= peers; ++r)
    comms.push_back(std::make_unique<mpi::Comm>(
        fab, r, mpi::default_personality(), mpi::ThreadLevel::Funneled));
  std::uint64_t sink = 0;
  rt::Timer timer;
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t payload = 1;
    for (int p = 1; p <= peers; ++p)
      comms[static_cast<std::size_t>(p)]->isend(&payload, sizeof(payload), 0,
                                                p);
    comms[0]->progress();
    // Receive newest-first: each (src, tag)-specific receive walks the UMQ.
    for (int p = peers; p >= 1; --p)
      comms[0]->recv(&sink, sizeof(sink), p, p);
  }
  return timer.elapsed_us() / (static_cast<double>(rounds) * peers);
}

double pending_lci_us(int peers, int rounds) {
  fabric::FabricConfig cfg = fabric::omnipath_knl_config();
  cfg.wire_latency = std::chrono::nanoseconds(0);
  cfg.bandwidth_Bps = 0.0;
  cfg.default_rx_buffers = static_cast<std::size_t>(peers) + 32;
  fabric::Fabric fab(static_cast<std::size_t>(peers) + 1, cfg);
  std::vector<std::unique_ptr<lci::Queue>> queues;
  for (int r = 0; r <= peers; ++r) {
    lci::QueueConfig qcfg;
    qcfg.device.rx_packets = static_cast<std::size_t>(peers) + 32;
    queues.push_back(std::make_unique<lci::Queue>(
        fab, static_cast<fabric::Rank>(r), qcfg));
  }
  rt::Timer timer;
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t payload = 1;
    lci::Request req;
    for (int p = 1; p <= peers; ++p)
      while (!queues[static_cast<std::size_t>(p)]->send_enq(
          &payload, sizeof(payload), 0, static_cast<std::uint32_t>(p), req))
        queues[0]->progress();
    queues[0]->progress_all();
    // First-packet policy: consume in arrival order, no matching at all.
    int got = 0;
    lci::Request in;
    while (got < peers) {
      if (queues[0]->recv_deq(in)) {
        queues[0]->release(in);
        ++got;
      } else {
        queues[0]->progress();
      }
    }
  }
  return timer.elapsed_us() / (static_cast<double>(rounds) * peers);
}

}  // namespace

int main() {
  std::printf("=== Figure 1: latency & message rate microbenchmark ===\n");
  std::printf("(2 hosts, omnipath-knl fabric personality, zero wire "
              "latency to isolate software paths)\n\n");

  fabric::FabricConfig cfg = fabric::omnipath_knl_config();
  cfg.wire_latency = std::chrono::nanoseconds(0);  // software path only
  cfg.bandwidth_Bps = 0.0;

  bench::Table lat({"size(B)", "no-probe(us)", "probe(us)", "queue(us)",
                    "probe/queue"});
  std::vector<double> ratios;
  for (std::size_t size : {8u, 64u, 512u, 4096u, 16384u}) {
    fabric::Fabric f1(2, cfg), f2(2, cfg), f3(2, cfg);
    const double np = bench_mpi_noprobe(f1, size);
    const double pr = bench_mpi_probe(f2, size);
    const double qu = bench_lci_queue(f3, size);
    ratios.push_back(pr / qu);
    lat.add_row({std::to_string(size), bench::fmt_seconds(np),
                 bench::fmt_seconds(pr), bench::fmt_seconds(qu),
                 bench::fmt_ratio(pr / qu)});
  }
  lat.print(std::cout);
  std::printf("max probe/queue latency ratio: %.2fx (paper: up to 3.5x)\n\n",
              *std::max_element(ratios.begin(), ratios.end()));

  constexpr int kMessages = 20000;
  fabric::Fabric fr1(2, cfg), fr2(2, cfg);
  const double rate_probe = rate_mpi_probe(fr1, kMessages);
  const double rate_queue = rate_lci_queue(fr2, kMessages);
  bench::Table rate({"interface", "msgs/s", "vs probe"});
  rate.add_row({"probe", std::to_string(static_cast<long long>(rate_probe)),
                "1.00x"});
  rate.add_row({"queue", std::to_string(static_cast<long long>(rate_queue)),
                bench::fmt_ratio(rate_queue / rate_probe)});
  rate.print(std::cout);

  std::printf("\nper-message receive cost vs concurrent pending peers "
              "(worst-order consumption):\n");
  bench::Table pend({"peers", "mpi (us/msg)", "queue (us/msg)", "mpi/queue"});
  for (int peers : {4, 16, 64}) {
    const double mpi_us = pending_mpi_us(peers, 200);
    const double lci_us = pending_lci_us(peers, 200);
    pend.add_row({std::to_string(peers), bench::fmt_seconds(mpi_us),
                  bench::fmt_seconds(lci_us),
                  bench::fmt_ratio(mpi_us / lci_us)});
  }
  pend.print(std::cout);
  std::printf("shape to check: the mpi/queue ratio grows with the peer "
              "count (sequential matching-queue traversal vs first-packet "
              "policy).\n");
  return 0;
}
