// Receive-side apply thread scaling (DESIGN.md §12): how much of the sync
// phase's wall time shrinks as decode/scatter work spreads from one apply
// worker across the whole compute team.
//
// Sweeps apply_workers in {1, 2, 4} at a fixed compute-thread count for
// bfs / cc / sssp on all three backends and reports:
//   * comm(s)    - non-overlapped communication wall time (max across hosts)
//   * apply(s)   - cluster-wide decode/scatter thread time (sync.apply_ns)
//   * comm x     - comm(s) speedup of this row vs the workers=1 row
//
// apply(s) is *thread time*, so it stays roughly constant across worker
// counts (same records decoded); the wall-clock win shows in comm(s). With
// fewer physical cores than apply workers the wall win disappears - the
// header prints std::thread::hardware_concurrency() so result tables are
// interpretable (see EXPERIMENTS.md).
//
// `--json-out <file>` (or env LCR_BENCH_JSON) writes the measurements as a
// JSON artifact for CI history.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

namespace {

struct Entry {
  std::string app;
  std::string backend;
  std::size_t workers = 0;
  double comm_s = 0.0;
  double apply_s = 0.0;
  double total_s = 0.0;
  double comm_speedup = 1.0;  // vs the workers=1 row of the same cell
};

std::string json_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json-out") return argv[i + 1];
  if (const char* s = std::getenv("LCR_BENCH_JSON")) return s;
  return {};
}

void write_json(const std::string& path, const std::vector<Entry>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"apply_scaling\",\n  \"entries\": [\n");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Entry& e = all[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"backend\": \"%s\", "
                 "\"apply_workers\": %zu, \"comm_s\": %.6f, "
                 "\"apply_s\": %.6f, \"total_s\": %.6f, "
                 "\"comm_speedup\": %.4f}%s\n",
                 e.app.c_str(), e.backend.c_str(), e.workers, e.comm_s,
                 e.apply_s, e.total_s, e.comm_speedup,
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = json_out(argc, argv);
  std::vector<Entry> entries;
  const unsigned scale = bench::env_scale(12);
  const int hosts = bench::env_hosts(4);
  const std::string app_filter = bench::env_app();

  const bench::ClusterProfile profile = bench::stampede2_like();
  const std::size_t threads = 4;

  std::printf("=== Apply-pipeline thread scaling: kron scale %u, %d hosts, "
              "%zu compute threads ===\n",
              scale, hosts, threads);
  std::printf("machine: %u hardware threads (wall-clock apply speedups need "
              "cores >= apply workers)\n\n",
              std::thread::hardware_concurrency());

  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::kron(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  bench::Table table({"app", "backend", "apply thr", "comm(s)", "apply(s)",
                      "total(s)", "comm x"});
  for (const char* app : {"bfs", "cc", "sssp"}) {
    if (!app_filter.empty() && app_filter != app) continue;
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    for (auto kind : {comm::BackendKind::Lci, comm::BackendKind::MpiProbe,
                      comm::BackendKind::MpiRma}) {
      double comm_base = 0.0;
      for (std::size_t workers : {1u, 2u, 4u}) {
        bench::RunSpec spec;
        spec.app = app;
        spec.backend = kind;
        spec.hosts = hosts;
        spec.threads = threads;
        spec.apply_workers = workers;
        spec.source = bench::choose_source(g);
        spec.fabric = profile.fabric;
        const bench::RunResult r = bench::run_app(g, spec);

        const auto apply_it = r.telemetry.find("sync.apply_ns");
        const double apply_s =
            apply_it != r.telemetry.end()
                ? static_cast<double>(apply_it->second) * 1e-9
                : 0.0;
        if (workers == 1) comm_base = r.comm_s;
        char speedup[16];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      comm_base / std::max(r.comm_s, 1e-9));
        table.add_row({app, comm::to_string(kind), std::to_string(workers),
                       bench::fmt_seconds(r.comm_s),
                       bench::fmt_seconds(apply_s),
                       bench::fmt_seconds(r.total_s), speedup});
        Entry e;
        e.app = app;
        e.backend = comm::to_string(kind);
        e.workers = workers;
        e.comm_s = r.comm_s;
        e.apply_s = apply_s;
        e.total_s = r.total_s;
        e.comm_speedup = comm_base / std::max(r.comm_s, 1e-9);
        entries.push_back(e);
      }
    }
  }
  table.print(std::cout);
  std::printf("\nshape to check: comm(s) drops as apply workers grow (given "
              "enough cores); apply(s) thread time stays roughly flat.\n");
  if (!json_path.empty()) write_json(json_path, entries);
  return 0;
}
