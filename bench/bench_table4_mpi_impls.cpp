// Table IV: other MPI implementations - LCI vs {IntelMPI, MVAPICH, OpenMPI}
// personalities, each in Probe and RMA flavors.
//
// Paper shape: "LCI remains the winner compared to other MPI
// implementations. There is no clear winner between different MPI
// implementations, though IntelMPI-RMA performs best in the majority of
// cases. LCI is again closest in performance to RMA implementations."
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "bench_support/cluster_configs.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

using namespace lcr;

int main() {
  const unsigned scale = bench::env_scale(10);
  const int hosts = bench::env_hosts(8);
  const std::uint32_t pr_iters = bench::env_pr_iters(8);

  std::printf("=== Table IV: LCI vs MPI implementation personalities, rmat "
              "at %d hosts ===\n", hosts);
  std::printf("(vendor MPIs are modelled as calibrated cost personalities "
              "over the same faithful MPI semantics; see DESIGN.md)\n\n");

  const bench::ClusterProfile profile = bench::stampede2_like();
  graph::GenOptions opt;
  opt.make_weights = true;
  graph::Csr base = graph::rmat(scale, 16.0, opt);
  graph::Csr sym = graph::symmetrize(base);

  struct Config {
    const char* label;
    comm::BackendKind kind;
    const char* personality;
  };
  const Config configs[] = {
      {"lci", comm::BackendKind::Lci, "default"},
      {"intelmpi-probe", comm::BackendKind::MpiProbe, "intelmpi"},
      {"intelmpi-rma", comm::BackendKind::MpiRma, "intelmpi"},
      {"mvapich-probe", comm::BackendKind::MpiProbe, "mvapich"},
      {"mvapich-rma", comm::BackendKind::MpiRma, "mvapich"},
      {"openmpi-probe", comm::BackendKind::MpiProbe, "openmpi"},
      {"openmpi-rma", comm::BackendKind::MpiRma, "openmpi"},
  };

  std::vector<std::string> headers{"app"};
  for (const Config& c : configs) headers.emplace_back(c.label);
  bench::Table table(std::move(headers));

  std::map<std::string, int> wins;
  for (const char* app : {"bfs", "cc", "sssp", "pagerank"}) {
    const graph::Csr& g = std::string(app) == "cc" ? sym : base;
    std::vector<std::string> row{app};
    double best = 1e30;
    const char* best_label = "";
    for (const Config& c : configs) {
      bench::RunSpec spec;
      spec.app = app;
      spec.backend = c.kind;
      spec.mpi_personality = c.personality;
      spec.hosts = hosts;
      spec.threads = profile.compute_threads;
      spec.source = bench::choose_source(g);
      spec.pagerank_iters = pr_iters;
      spec.fabric = profile.fabric;
      const double t = bench::run_app(g, spec).total_s;
      row.push_back(bench::fmt_seconds(t));
      if (t < best) {
        best = t;
        best_label = c.label;
      }
    }
    ++wins[best_label];
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nper-app winners: ");
  for (const auto& [label, count] : wins)
    std::printf("%s x%d  ", label.c_str(), count);
  std::printf("\nshape to check: lci wins every app; the MPI columns "
              "shuffle among themselves.\n");
  return 0;
}
