// Table I: inputs and their key properties.
//
// The paper's inputs are clueweb12 (|V|=978M, E/V~16, extreme max
// in-degree), kron30 (|V|=1073M, E/V~32) and rmat28 (E/V~16). We generate
// scaled-down graphs with the same degree-distribution signatures (see
// DESIGN.md substitution table) and print their Table-I row set.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_support/table.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

using namespace lcr;

int main() {
  const unsigned scale = bench::env_scale(13);
  std::printf("=== Table I: inputs and their key properties ===\n");
  std::printf("(scaled-down analogues at scale %u; paper originals in "
              "parentheses)\n\n", scale);

  struct Input {
    const char* name;
    const char* analogue;
    graph::Csr g;
  };
  const Input inputs[] = {
      {"web", "clueweb12: |V|=978M E/V~16, max-Din >> max-Dout",
       graph::web(scale, 16.0)},
      {"kron", "kron30: |V|=1073M E/V~32", graph::kron(scale, 32.0)},
      {"rmat", "rmat28: |V|=268M E/V~16", graph::rmat(scale, 16.0)},
  };

  bench::Table table({"graph", "|V|", "|E|", "|E|/|V|", "max Dout",
                      "max Din"});
  for (const Input& in : inputs) {
    const graph::GraphStats s = graph::compute_stats(in.g);
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f", s.avg_degree);
    table.add_row({in.name, std::to_string(s.num_nodes),
                   std::to_string(s.num_edges), avg,
                   std::to_string(s.max_out_degree),
                   std::to_string(s.max_in_degree)});
  }
  table.print(std::cout);
  std::printf("\nsignatures to check: web has max-Din >> max-Dout "
              "(clueweb12); kron has ~2x the E/V of rmat.\n");
  for (const Input& in : inputs)
    std::printf("  %s <- %s\n", in.name, in.analogue);
  return 0;
}
